/// Reproduces **Figure 8** — "One Month Drop": the quantity 1/(β+1), the
/// relative drop of the temporal correlation one month from its peak,
/// derived from the modified-Cauchy β fit, as a function of source
/// packets d.
///
/// Shape targets: drops typically above ~20%, peaking toward ~50% at the
/// mid-brightness (d ≈ 10^3-equivalent) bins, smaller for the brightest
/// and dimmest sources — the churn dip of the drifting beam.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();
  const auto grid = core::fit_grid(study, /*min_sources=*/20);

  std::map<int, std::vector<double>> per_bin;
  for (const auto& cell : grid) {
    per_bin[cell.curve.bin].push_back(cell.curve.modified_cauchy.model.one_month_drop());
  }

  TextTable table("Figure 8: one-month drop 1/(beta+1) vs source packets");
  table.set_header({"d bin", "x=log2(d)/log2(sqrt(N_V))", "mean drop", "min", "max", "n"});
  const double half_log_nv = study.half_log_nv();
  int peak_bin = -1;
  double peak_drop = 0.0;
  for (const auto& [bin, drops] : per_bin) {
    double mean = 0.0, lo = 1.0, hi = 0.0;
    for (double d : drops) {
      mean += d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    mean /= static_cast<double>(drops.size());
    if (mean > peak_drop) {
      peak_drop = mean;
      peak_bin = bin;
    }
    table.add_row({"2^" + std::to_string(bin),
                   fmt_double((static_cast<double>(bin) + 0.5) / half_log_nv, 2),
                   fmt_percent(mean, 1), fmt_percent(lo, 1), fmt_percent(hi, 1),
                   std::to_string(drops.size())});
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "fig8_one_month_drop");

  std::printf("\npeak mean drop: %s at d bin 2^%d (x=%.2f)\n", fmt_percent(peak_drop, 1).c_str(),
              peak_bin, (peak_bin + 0.5) / half_log_nv);
  std::printf("paper: drops >20%% typically, rising to ~50%% at d ~ 10^3 (x ~ 0.66)\n");
  return 0;
}
