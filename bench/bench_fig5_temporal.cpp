/// Reproduces **Figure 5** — "Temporal Correlation": the fraction of the
/// first snapshot's sources in the brightness bin just below sqrt(N_V)
/// (the paper's 2^14 <= d < 2^15 at N_V = 2^30) found in the honeyfarm
/// month by month across the 15-month study, with Gaussian, Cauchy, and
/// modified-Cauchy fits.
///
/// Shape targets: peak at the coeval month, fast initial drop, level-off
/// to a background; modified Cauchy fits best, Gaussian worst.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();
  const int bin = static_cast<int>(study.half_log_nv()) - 1;  // paper: [2^14, 2^15) at 2^30

  const auto curve = core::temporal_correlation(study.snapshots[0], study, bin, 10);
  if (!curve) {
    std::printf("bin 2^%d has too few sources at this scale; raise OBSCORR_LOG2_NV\n", bin);
    return 1;
  }

  std::printf("tracked: %llu sources of %s with 2^%d <= packets < 2^%d\n",
              static_cast<unsigned long long>(curve->bin_sources),
              study.snapshots[0].spec.start_label.c_str(), bin, bin + 1);

  TextTable table("Figure 5: fraction of snapshot sources found in each GreyNoise month");
  table.set_header({"month", "dt (months)", "fraction", "mod-Cauchy", "Cauchy", "Gaussian"});
  for (std::size_t i = 0; i < curve->series.dt.size(); ++i) {
    const double dt = curve->series.dt[i];
    table.add_row({study.months[i].month.to_string(), fmt_double(dt, 0),
                   fmt_double(curve->series.fraction[i], 3),
                   fmt_double(curve->modified_cauchy.amplitude *
                                  curve->modified_cauchy.model.value(dt), 3),
                   fmt_double(curve->cauchy.amplitude * curve->cauchy.model.value(dt), 3),
                   fmt_double(curve->gaussian.amplitude * curve->gaussian.model.value(dt), 3)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "fig5_temporal");

  std::printf("\n# fits (| |^(1/2) norm; lower is better)\n");
  std::printf("modified Cauchy  beta/(beta+|t-t0|^alpha): alpha=%.3f beta=%.3f   residual=%.3f\n",
              curve->modified_cauchy.model.alpha, curve->modified_cauchy.model.beta,
              curve->modified_cauchy.residual);
  std::printf("Cauchy           gamma^2/(gamma^2+dt^2):   gamma=%.3f          residual=%.3f\n",
              curve->cauchy.model.gamma, curve->cauchy.residual);
  std::printf("Gaussian         exp(-dt^2/2 sigma^2):     sigma=%.3f          residual=%.3f\n",
              curve->gaussian.model.sigma, curve->gaussian.residual);
  std::printf("\npaper: modified Cauchy approximates the data best; ordering here: %s\n",
              (curve->modified_cauchy.residual <= curve->cauchy.residual &&
               curve->cauchy.residual <= curve->gaussian.residual)
                  ? "mod-Cauchy < Cauchy < Gaussian (matches)"
                  : "differs");
  return 0;
}
