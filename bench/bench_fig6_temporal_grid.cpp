/// Reproduces **Figure 6** — "Temporal Correlation and Packet Degree":
/// the month-by-month correlation curves for *every* snapshot and every
/// populated brightness bin, each with its best-fit modified Cauchy
/// (the black lines in the paper's panel grid).
///
/// Shape targets: every panel peaks at its coeval month and decays to a
/// background level; the modified Cauchy tracks each curve.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();
  const auto grid = core::fit_grid(study, /*min_sources=*/20);

  std::printf("panels: %zu (snapshots x populated brightness bins)\n\n", grid.size());

  for (const auto& cell : grid) {
    const auto& snap = study.snapshots[cell.snapshot];
    const auto& mc = cell.curve.modified_cauchy;
    std::printf("-- %s  d in [2^%d, 2^%d)  n=%llu  fit: alpha=%.2f beta=%.2f residual=%.3f\n",
                snap.spec.start_label.c_str(), cell.curve.bin, cell.curve.bin + 1,
                static_cast<unsigned long long>(cell.curve.bin_sources), mc.model.alpha,
                mc.model.beta, mc.residual);
    std::printf("   dt:   ");
    for (double dt : cell.curve.series.dt) std::printf("%6.0f", dt);
    std::printf("\n   data: ");
    for (double f : cell.curve.series.fraction) std::printf("%6.3f", f);
    std::printf("\n   fit:  ");
    for (double dt : cell.curve.series.dt) {
      std::printf("%6.3f", mc.amplitude * mc.model.value(dt));
    }
    std::printf("\n");
  }

  // Aggregate fit quality.
  double worst = 0.0, mean = 0.0;
  for (const auto& cell : grid) {
    mean += cell.curve.modified_cauchy.residual;
    worst = std::max(worst, cell.curve.modified_cauchy.residual);
  }
  if (!grid.empty()) mean /= static_cast<double>(grid.size());
  std::printf("\nmean residual %.3f, worst %.3f over %zu panels (| |^(1/2) norm)\n", mean, worst,
              grid.size());
  return 0;
}
