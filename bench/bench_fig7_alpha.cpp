/// Reproduces **Figure 7** — "Modified Cauchy Distribution α": the
/// best-fit tail exponent α as a function of CAIDA source packets d,
/// across all snapshots.
///
/// Shape target: α scatters around ~1 (the paper suggests 1 is typical),
/// with no strong trend in brightness.

#include <cstdio>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "stats/temporal.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();
  const auto grid = core::fit_grid(study, /*min_sources=*/20);

  TextTable table("Figure 7: best-fit modified-Cauchy alpha vs source packets");
  table.set_header({"d bin", "snapshot", "sources", "alpha"});
  std::map<int, std::vector<double>> per_bin;
  for (const auto& cell : grid) {
    table.add_row({"2^" + std::to_string(cell.curve.bin),
                   study.snapshots[cell.snapshot].spec.start_label,
                   fmt_count(cell.curve.bin_sources),
                   fmt_double(cell.curve.modified_cauchy.model.alpha, 3)});
    per_bin[cell.curve.bin].push_back(cell.curve.modified_cauchy.model.alpha);
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "fig7_alpha");

  std::printf("\n# per-bin mean alpha (paper Fig. 7: values scatter around ~1)\n");
  TextTable summary;
  summary.set_header({"d bin", "mean alpha", "n"});
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& [bin, alphas] : per_bin) {
    double mean = 0.0;
    for (double a : alphas) mean += a;
    mean /= static_cast<double>(alphas.size());
    summary.add_row({"2^" + std::to_string(bin), fmt_double(mean, 3),
                     std::to_string(alphas.size())});
    total += mean;
    ++count;
  }
  summary.print(std::cout);
  std::printf("\ngrand mean alpha: %.3f  (paper: ~1 typical)\n",
              count ? total / static_cast<double>(count) : 0.0);

  // Extension: the pure two-parameter fit absorbs the stationary
  // background by deflating alpha; modelling the floor explicitly
  // (f = (1-c) beta/(beta+|dt|^alpha) + c) recovers the beam's intrinsic
  // exponent. Report the floored-fit alphas alongside.
  double floored_total = 0.0;
  std::size_t floored_count = 0;
  for (const auto& cell : grid) {
    const auto floored = stats::fit_floored_modified_cauchy(cell.curve.series);
    floored_total += floored.model.alpha;
    ++floored_count;
  }
  std::printf("grand mean alpha with explicit background floor: %.3f\n"
              "(the generator's intrinsic exponent is 1.0; the pure fit deflates it, the\n"
              " floored fit overshoots on short series — the two bracket the truth)\n",
              floored_count ? floored_total / static_cast<double>(floored_count) : 0.0);
  return 0;
}
