/// Ablation — visibility mechanism. The paper's Fig. 4 log law is purely
/// empirical; this bench contrasts the Fig. 4 curve produced by injecting
/// that law (`EmpiricalLog`) against a mechanistic sensor-coverage model
/// (`Coverage`: P = 1 − exp(−d/d_half)), showing where the shapes depart
/// and why the log law is non-trivial to obtain from simple coverage.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& env = bench::bench_env();
  // A reduced window keeps the double study affordable at any setting.
  const int log2_nv = std::min(env.log2_nv, 20);
  std::printf("# ablation at N_V=2^%d (two full studies)\n", log2_nv);

  auto scenario = netgen::Scenario::paper(log2_nv, env.seed);
  const auto log_study = core::run_study(scenario, bench::bench_pool());

  scenario.visibility.kind = netgen::VisibilityKind::kCoverage;
  scenario.visibility.coverage_half = std::exp2(static_cast<double>(log2_nv) / 4.0);
  const auto cov_study = core::run_study(scenario, bench::bench_pool());

  const auto log_bins = core::peak_correlation_all(log_study);
  const auto cov_bins = core::peak_correlation_all(cov_study);

  TextTable table("Ablation: same-month correlation under two visibility mechanisms");
  table.set_header({"d bin", "empirical-log fraction", "coverage fraction", "paper log law"});
  const std::size_t n = std::min(log_bins.size(), cov_bins.size());
  for (std::size_t b = 0; b < n; ++b) {
    if (log_bins[b].caida_sources < 50) continue;
    table.add_row({"2^" + std::to_string(log_bins[b].bin), fmt_double(log_bins[b].fraction, 3),
                   fmt_double(cov_bins[b].fraction, 3), fmt_double(log_bins[b].model, 3)});
  }
  table.print(std::cout);

  std::printf(
      "\nthe coverage mechanism saturates near d_half=2^%.1f and is convex in log2(d);\n"
      "the observed (injected) law is linear in log2(d) up to sqrt(N_V)=2^%.1f —\n"
      "matching the paper's framing that the log law needs a dedicated explanation.\n",
      static_cast<double>(log2_nv) / 4.0, static_cast<double>(log2_nv) / 2.0);
  return 0;
}
