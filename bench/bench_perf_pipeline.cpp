/// End-to-end pipeline throughput: packets/second through
/// generate -> filter -> anonymize -> hierarchical hypersparse matrix,
/// and the downstream reduction + correlation stages — the per-core
/// analogue of the paper's "hundreds of billions of packets in minutes"
/// at datacenter scale.

#include <benchmark/benchmark.h>

#include "core/correlation.hpp"
#include "core/study.hpp"
#include "netgen/traffic.hpp"
#include "telescope/telescope.hpp"

namespace {

using namespace obscorr;

void BM_CaptureWindow(benchmark::State& state) {
  const int log2_nv = static_cast<int>(state.range(0));
  const auto scenario = netgen::Scenario::paper(log2_nv, 42);
  ThreadPool pool(2);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);
  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  telescope::Telescope scope(cfg, pool);
  for (auto _ : state) {
    generator.stream_window_batched(0, scenario.nv(), 1,
                                    [&](std::span<const Packet> b) { scope.capture_block(b); });
    benchmark::DoNotOptimize(scope.finish_window());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(scenario.nv()));
}
BENCHMARK(BM_CaptureWindow)->Arg(14)->Arg(16)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_CaptureWindowPerPacket(benchmark::State& state) {
  // The pre-batching ingest path (per-packet std::function sink and
  // single-packet capture), kept for before/after comparison.
  const int log2_nv = static_cast<int>(state.range(0));
  const auto scenario = netgen::Scenario::paper(log2_nv, 42);
  ThreadPool pool(2);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);
  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  telescope::Telescope scope(cfg, pool);
  for (auto _ : state) {
    generator.stream_window(0, scenario.nv(), 1, [&](const Packet& p) { scope.capture(p); });
    benchmark::DoNotOptimize(scope.finish_window());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(scenario.nv()));
}
BENCHMARK(BM_CaptureWindowPerPacket)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SnapshotReduceAndConvert(benchmark::State& state) {
  // Table II reduction + trusted deanonymization + D4M conversion.
  const auto scenario = netgen::Scenario::paper(16, 42);
  ThreadPool pool(2);
  const auto study = core::run_telescope_only(scenario, pool);
  const auto& matrix = study.snapshots[0].matrix;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.reduce_rows());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(matrix.nnz()));
}
BENCHMARK(BM_SnapshotReduceAndConvert);

void BM_SameMonthCorrelation(benchmark::State& state) {
  const auto scenario = netgen::Scenario::paper(16, 42);
  ThreadPool pool(2);
  const auto study = core::run_study(scenario, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::peak_correlation_all(study));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(study.snapshots[0].sources.row_keys().size() * 5));
}
BENCHMARK(BM_SameMonthCorrelation)->Unit(benchmark::kMillisecond);

void BM_TemporalFitGrid(benchmark::State& state) {
  const auto scenario = netgen::Scenario::paper(14, 42);
  ThreadPool pool(2);
  const auto study = core::run_study(scenario, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_grid(study, 20));
  }
}
BENCHMARK(BM_TemporalFitGrid)->Unit(benchmark::kMillisecond);

}  // namespace
