#pragma once
/// \file study_cache.hpp
/// Shared setup for the experiment benches: every table/figure binary
/// replays the same deterministic study, configured by the environment
/// (OBSCORR_LOG2_NV / OBSCORR_SEED / OBSCORR_THREADS; see common/env.hpp).

#include <string>

#include "common/env.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"

namespace obscorr::bench {

/// The environment-resolved bench configuration (read once).
const BenchEnv& bench_env();

/// The worker pool sized per the environment.
ThreadPool& bench_pool();

/// The full study (telescope + honeyfarm), run once per process and
/// cached. Prints a one-line provenance header on first use.
const core::StudyData& shared_study();

/// When OBSCORR_CSV_DIR is set, write `table` as `<dir>/<name>.csv` for
/// downstream plotting; otherwise a no-op. Returns true when written.
bool maybe_write_csv(const TextTable& table, const std::string& name);

}  // namespace obscorr::bench
