/// Performance benches for the anonymization layer: raw AES-128 blocks,
/// CryptoPAN address anonymization (32 AES calls each), the telescope's
/// memoized path (the working-set argument for scaling the darkspace
/// with the window), and SipHash keyed hashing.

#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "crypt/aes128.hpp"
#include "crypt/cryptopan.hpp"
#include "crypt/siphash.hpp"
#include "telescope/telescope.hpp"

namespace {

using namespace obscorr;
using namespace obscorr::crypt;

void BM_Aes128Block(benchmark::State& state) {
  Aes128::Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  const Aes128 aes(key);
  Aes128::Block block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Block);

void BM_CryptoPanAnonymize(benchmark::State& state) {
  const CryptoPan pan = CryptoPan::from_seed(42);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pan.anonymize(Ipv4(rng.next_u32())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CryptoPanAnonymize);

void BM_TelescopeMemoizedAnonymize(benchmark::State& state) {
  // Working set of `range` distinct addresses: after warm-up every call
  // is a hash lookup — the regime the telescope operates in.
  ThreadPool pool(1);
  telescope::Telescope scope(telescope::TelescopeConfig{}, pool);
  const auto distinct = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < distinct; ++i) scope.anonymize(Ipv4(i * 2654435761u));
  Rng rng(2);
  for (auto _ : state) {
    const auto v = static_cast<std::uint32_t>(rng.uniform_u64(distinct)) * 2654435761u;
    benchmark::DoNotOptimize(scope.anonymize(Ipv4(v)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelescopeMemoizedAnonymize)->Arg(1 << 10)->Arg(1 << 16);

void BM_SipHashIpKey(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash24(Ipv4(rng.next_u32()).to_string(), 1, 2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SipHashIpKey);

}  // namespace
