/// Reproduces **Figure 4** — "Peak Correlation": the fraction of CAIDA
/// telescope sources also catalogued by the honeyfarm in the same month,
/// as a function of source packets d (binary-log bins), against the
/// empirical law min(1, log2(d) / log2(sqrt(N_V))).
///
/// Shape targets: ~1 above d = sqrt(N_V); linear-in-log2(d) growth below;
/// the paper quotes ~70% for the brightest sources over 6 months.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "stats/bootstrap.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();

  TextTable table("Figure 4: same-month CAIDA->GreyNoise source correlation vs brightness");
  table.set_header({"d bin", "d/sqrt(N_V)", "CAIDA sources", "matched", "fraction", "ci95 lo",
                    "ci95 hi", "log-law model"});
  const auto bins = core::peak_correlation_all(study);
  const double half_log_nv = study.half_log_nv();
  double worst = 0.0;
  for (const auto& b : bins) {
    if (b.caida_sources == 0) continue;
    const auto ci = stats::bootstrap_fraction(b.matched, b.caida_sources, 0.95,
                                              bench::bench_env().seed ^ static_cast<std::uint64_t>(b.bin));
    table.add_row({"2^" + std::to_string(b.bin),
                   fmt_double(std::exp2(static_cast<double>(b.bin) + 0.5 - half_log_nv), 3),
                   fmt_count(b.caida_sources), fmt_count(b.matched), fmt_double(b.fraction, 3),
                   fmt_double(ci.lo, 3), fmt_double(ci.hi, 3), fmt_double(b.model, 3)});
    if (b.caida_sources >= 100) worst = std::max(worst, std::abs(b.fraction - b.model));
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "fig4_peak_correlation");

  std::printf("\nmax |fraction - log law| over populated bins: %.3f\n", worst);
  std::printf("threshold sqrt(N_V) = 2^%.1f: bins at/above it should read ~1.000\n", half_log_nv);

  // Per-snapshot consistency (the paper overlays all 5 samples).
  std::printf("\n# per-snapshot fraction at the mid bin (d ~ 2^%d)\n",
              static_cast<int>(half_log_nv / 2));
  for (const auto& snap : study.snapshots) {
    const auto per = core::peak_correlation(
        snap, study.months[static_cast<std::size_t>(snap.month_index)], half_log_nv);
    const auto mid = static_cast<std::size_t>(half_log_nv / 2);
    if (mid < per.size() && per[mid].caida_sources > 0) {
      std::printf("  %s  fraction=%.3f  (model %.3f)\n", snap.spec.start_label.c_str(),
                  per[mid].fraction, per[mid].model);
    }
  }
  return 0;
}
