/// Reproduces **Table I** — "GreyNoise and CAIDA data sets": collection
/// start time, duration, and unique-source counts for the 15 GreyNoise
/// months and 5 CAIDA constant-packet snapshots.
///
/// Source counts scale with the configured window (paper: N_V = 2^30,
/// counts in the millions); the comparison targets are the *ratios* —
/// baseline GreyNoise months a few x the per-window CAIDA counts, with
/// ~10x surges at the 2020-03 / 2021-04 configuration changes.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();

  TextTable table("Table I: GreyNoise and CAIDA data sets (scaled reproduction)");
  table.set_header({"GreyNoise Start", "Duration", "GreyNoise Sources", "CAIDA Start Time",
                    "CAIDA Duration", "CAIDA Packets", "CAIDA Sources"});

  for (std::size_t m = 0; m < study.months.size(); ++m) {
    const auto& month = study.months[m];
    std::string caida_start, caida_dur, caida_packets, caida_sources;
    for (const auto& snap : study.snapshots) {
      if (snap.month_index == static_cast<int>(m)) {
        caida_start = snap.spec.start_label;
        caida_dur = fmt_double(snap.duration_sec, 2) + " sec";
        caida_packets = "2^" + std::to_string(study.scenario.population.log2_nv);
        caida_sources = fmt_count(snap.sources.row_keys().size());
      }
    }
    table.add_row({month.month.to_string(), std::to_string(month.month.days()) + " days",
                   fmt_count(month.total_sources()), caida_start, caida_dur, caida_packets,
                   caida_sources});
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "table1");

  // The shape checks the paper's Table I exhibits.
  const auto total = [&](int y, int mo) {
    return static_cast<double>(
        study.months[static_cast<std::size_t>(study.scenario.month_index(YearMonth(y, mo)))]
            .total_sources());
  };
  const double baseline = total(2020, 4);
  std::printf("\n# shape checks (paper values in parentheses)\n");
  std::printf("2020-03 / baseline month source ratio: %5.1fx  (paper ~13.1x)\n",
              total(2020, 3) / baseline);
  std::printf("2021-04 / baseline month source ratio: %5.1fx  (paper ~10.8x)\n",
              total(2021, 4) / baseline);
  std::printf("2020-12 / baseline month source ratio: %5.1fx  (paper ~7.2x)\n",
              total(2020, 12) / baseline);
  double caida_mean = 0.0;
  for (const auto& s : study.snapshots) {
    caida_mean += static_cast<double>(s.sources.row_keys().size());
  }
  caida_mean /= static_cast<double>(study.snapshots.size());
  std::printf("GreyNoise baseline / CAIDA window sources: %4.1fx  (paper ~1.5-2.5x)\n",
              baseline / caida_mean);
  std::printf("CAIDA sources / sqrt(N_V): %4.1f  (paper ~16-24)\n",
              caida_mean / std::exp2(study.half_log_nv()));
  return 0;
}
