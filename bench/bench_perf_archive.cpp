/// Archive query path vs recompute: the paper's motivating workload is
/// re-analyzing years of archived observatory captures, so the archive
/// is only worth its disk if loading + analyzing a campaign beats
/// rerunning it. BM_ArchiveLoadVsRecompute pairs the two ends:
///
///   recompute — netgen world build + full run_study per iteration
///   archive   — StudyReader open (manifest + checksums + mmap) and the
///               same report analyses over the archived data
///
/// Run with --benchmark_filter=BM_Archive; see bench/baselines/README.md
/// for the recorded numbers and the paired-run methodology.

#include <benchmark/benchmark.h>

#include <string>

#include "archive/study_archive.hpp"
#include "common/thread_pool.hpp"
#include "core/correlation.hpp"
#include "core/degree_analysis.hpp"
#include "core/study.hpp"

namespace {

using namespace obscorr;

/// The analyses the `report` command runs, from whatever StudyData we
/// hand it — the common downstream of both ends of the comparison.
double report_analyses(const core::StudyData& study) {
  double sink = 0.0;
  for (const auto& degrees : core::analyze_all_degrees(study)) {
    sink += degrees.fit.model.alpha;
  }
  for (const auto& peak : core::peak_correlation_all(study)) sink += peak.fraction;
  for (const auto& cell : core::fit_grid(study, 20)) {
    sink += cell.curve.modified_cauchy.model.alpha;
  }
  return sink;
}

void BM_ArchiveLoadVsRecompute_Recompute(benchmark::State& state) {
  const int log2_nv = static_cast<int>(state.range(0));
  const auto scenario = netgen::Scenario::paper(log2_nv, 42);
  for (auto _ : state) {
    ThreadPool pool(2);
    const auto study = core::run_study(scenario, pool);
    benchmark::DoNotOptimize(report_analyses(study));
  }
}
BENCHMARK(BM_ArchiveLoadVsRecompute_Recompute)
    ->Arg(14)
    ->Arg(16)
    ->Arg(18)
    ->Unit(benchmark::kMillisecond);

void BM_ArchiveLoadVsRecompute_Archive(benchmark::State& state) {
  const int log2_nv = static_cast<int>(state.range(0));
  const auto scenario = netgen::Scenario::paper(log2_nv, 42);
  const std::string dir =
      "bench_archive_nv" + std::to_string(log2_nv) + ".obsar";
  {
    ThreadPool pool(2);
    archive::archive_study(scenario, dir, pool);  // one-time setup, not timed
  }
  for (auto _ : state) {
    // Timed end to end: open (verify every checksum, mmap the log),
    // load, analyze — exactly the `report --from` path (analysis_study
    // skips matrix materialization and the Population rebuild, as the
    // CLI does).
    const archive::StudyReader reader(dir);
    benchmark::DoNotOptimize(report_analyses(reader.analysis_study()));
  }
}
BENCHMARK(BM_ArchiveLoadVsRecompute_Archive)
    ->Arg(14)
    ->Arg(16)
    ->Arg(18)
    ->Unit(benchmark::kMillisecond);

void BM_ArchiveOpenOnly(benchmark::State& state) {
  // The fixed cost of --from: manifest parse + whole-log CRC + catalog
  // verification, no analysis.
  const auto scenario = netgen::Scenario::paper(16, 42);
  const std::string dir = "bench_archive_nv16.obsar";
  {
    ThreadPool pool(2);
    archive::archive_study(scenario, dir, pool);
  }
  for (auto _ : state) {
    const archive::StudyReader reader(dir);
    benchmark::DoNotOptimize(reader.snapshot_count());
  }
}
BENCHMARK(BM_ArchiveOpenOnly)->Unit(benchmark::kMillisecond);

void BM_ArchiveZeroCopyReduce(benchmark::State& state) {
  // Degree reduction straight off the mapped matrix view vs what the
  // recompute path pays to get the same numbers.
  const auto scenario = netgen::Scenario::paper(16, 42);
  const std::string dir = "bench_archive_nv16.obsar";
  {
    ThreadPool pool(2);
    archive::archive_study(scenario, dir, pool);
  }
  const archive::StudyReader reader(dir);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.matrix(0).reduce_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reader.matrix(0).nnz()));
}
BENCHMARK(BM_ArchiveZeroCopyReduce);

}  // namespace
