/// Performance benches for the GraphBLAS-lite hypersparse substrate —
/// the throughput story behind the paper's pipeline (refs [33][34]:
/// billions of streaming inserts/second at datacenter scale; here the
/// single-node per-core rates). Measures tuple sort+combine (serial and
/// pooled), DCSR construction, hierarchical accumulation at the paper's
/// 2^17 block size (scaled), element-wise merges, and Table II
/// reductions.

#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "gbl/coo.hpp"
#include "gbl/dcsr.hpp"
#include "gbl/hierarchical.hpp"
#include "gbl/quantities.hpp"

namespace {

using namespace obscorr;
using namespace obscorr::gbl;

std::vector<Tuple> random_packets(std::size_t n, std::uint32_t sources, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tuples.push_back({static_cast<Index>(rng.uniform_u64(sources)),
                      static_cast<Index>(rng.uniform_u64(1 << 16)), 1.0});
  }
  return tuples;
}

void BM_SortCombineSerial(benchmark::State& state) {
  const auto base = random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 1);
  for (auto _ : state) {
    auto copy = base;
    benchmark::DoNotOptimize(sort_and_combine(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortCombineSerial)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_SortCombinePooled(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  const auto base = random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 1);
  for (auto _ : state) {
    auto copy = base;
    benchmark::DoNotOptimize(sort_and_combine(std::move(copy), pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortCombinePooled)->Args({1 << 17, 1})->Args({1 << 17, 2})->Args({1 << 17, 4})->Args({1 << 20, 4});

void BM_DcsrFromTuples(benchmark::State& state) {
  const auto base = random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 2);
  for (auto _ : state) {
    auto copy = base;
    benchmark::DoNotOptimize(DcsrMatrix::from_tuples(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DcsrFromTuples)->Arg(1 << 14)->Arg(1 << 17);

void BM_HierarchicalStreamingInsert(benchmark::State& state) {
  // The paper's construction: stream packets through 2^block blocks with
  // binary-carry merging. items/s is the headline "inserts per second".
  ThreadPool pool(2);
  const int block_log2 = static_cast<int>(state.range(0));
  const auto packets = random_packets(1 << 18, 1 << 14, 3);
  for (auto _ : state) {
    HierarchicalAccumulator acc(block_log2, pool);
    for (const Tuple& t : packets) acc.add_packet(t.row, t.col);
    benchmark::DoNotOptimize(acc.finish());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_HierarchicalStreamingInsert)->Arg(12)->Arg(14)->Arg(17);

void BM_HierarchicalBatchedInsert(benchmark::State& state) {
  // The zero-copy ingest path: packed u64 keys streamed in 8K batches.
  ThreadPool pool(2);
  const int block_log2 = static_cast<int>(state.range(0));
  const auto packets = random_packets(1 << 18, 1 << 14, 3);
  std::vector<std::uint64_t> keys;
  keys.reserve(packets.size());
  for (const Tuple& t : packets) keys.push_back(pack_key(t.row, t.col));
  for (auto _ : state) {
    HierarchicalAccumulator acc(block_log2, pool);
    for (std::size_t i = 0; i < keys.size(); i += 8192) {
      acc.add_packets(std::span<const std::uint64_t>(keys).subspan(i, std::min<std::size_t>(8192, keys.size() - i)));
    }
    benchmark::DoNotOptimize(acc.finish());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 18));
}
BENCHMARK(BM_HierarchicalBatchedInsert)->Arg(12)->Arg(14)->Arg(17);

void BM_EwiseAdd(benchmark::State& state) {
  const auto a = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 4));
  const auto b = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DcsrMatrix::ewise_add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.nnz() + b.nnz()));
}
BENCHMARK(BM_EwiseAdd)->Arg(1 << 14)->Arg(1 << 17);

void BM_EwiseAddParallel(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  const auto a = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 4));
  const auto b = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DcsrMatrix::ewise_add(a, b, pool));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.nnz() + b.nnz()));
}
BENCHMARK(BM_EwiseAddParallel)->Args({1 << 17, 1})->Args({1 << 17, 2})->Args({1 << 17, 4});

void BM_Mxm(benchmark::State& state) {
  // Destination co-occurrence Aᵀ·A on a pattern matrix — the SpGEMM load
  // of the correlation analyses.
  const auto a = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1 << 10, 9)).pattern();
  const auto at = a.transpose();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DcsrMatrix::mxm(at, a));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_Mxm)->Arg(1 << 12)->Arg(1 << 14);

void BM_TableTwoReductions(benchmark::State& state) {
  const auto m = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1 << 15, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregate_quantities(m));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_TableTwoReductions)->Arg(1 << 14)->Arg(1 << 17);

void BM_Transpose(benchmark::State& state) {
  const auto m = DcsrMatrix::from_tuples(random_packets(1 << 16, 1 << 15, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.transpose());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_Transpose);

void BM_MatrixMemoryBytesPerNnz(benchmark::State& state) {
  // Hypersparse footprint: bytes per stored entry stays ~constant even
  // though the index space is 2^32 x 2^32.
  const auto m = DcsrMatrix::from_tuples(random_packets(static_cast<std::size_t>(state.range(0)), 1u << 31, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.memory_bytes());
  }
  state.counters["bytes_per_nnz"] =
      static_cast<double>(m.memory_bytes()) / static_cast<double>(m.nnz());
}
BENCHMARK(BM_MatrixMemoryBytesPerNnz)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace
