/// Scaling-relation bench (paper §IV and its refs [13][36]): unique
/// sources per constant-packet window vs window size. The paper invokes
/// "the number of unique sources ... approximately proportional to
/// sqrt(N_V)" as the candidate origin of the Fig. 4 threshold; this bench
/// measures the ladder and the fitted exponents directly.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/scaling_analysis.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& env = bench::bench_env();
  const int top = std::min(env.log2_nv, 22);
  const auto scenario = netgen::Scenario::paper(top, env.seed);
  std::printf("# window ladder 2^12 .. 2^%d over one month of the synthetic Internet\n\n", top);

  const auto analysis = core::scaling_analysis(scenario, /*month=*/0, 12, top, bench::bench_pool());

  TextTable table("Scaling: network quantities vs window size N_V");
  table.set_header({"N_V", "unique sources", "sources/sqrt(N_V)", "unique links",
                    "unique destinations", "max source packets"});
  for (const auto& p : analysis.points) {
    table.add_row({"2^" + std::to_string(p.log2_nv), fmt_count(p.unique_sources),
                   fmt_double(static_cast<double>(p.unique_sources) /
                                  std::exp2(static_cast<double>(p.log2_nv) / 2.0), 1),
                   fmt_count(p.unique_links), fmt_count(p.unique_destinations),
                   fmt_count(static_cast<std::uint64_t>(p.max_source_packets))});
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "scaling_sources");

  std::printf("\nfitted exponents (quantity ~ N_V^e):\n");
  std::printf("  unique sources      e = %.3f   (paper refs [13][36]: ~0.5)\n",
              analysis.source_exponent);
  std::printf("  unique links        e = %.3f   (near-linear: most packets hit fresh pairs)\n",
              analysis.link_exponent);
  std::printf("  unique destinations e = %.3f   (saturates toward the darkspace size)\n",
              analysis.destination_exponent);
  std::printf("  max source packets  e = %.3f   (head brightness tracks the window)\n",
              analysis.dmax_exponent);
  std::printf("\nnote: with a finite synthetic population the source exponent falls below\n"
              "0.5 as windows approach saturation; read the sub-saturation rows.\n");
  return 0;
}
