/// Per-kernel SIMD speedups, scalar vs AVX2 side by side. Each benchmark
/// takes the dispatch tier as its argument (0 = scalar, 2 = AVX2) so one
/// binary reports both columns and the ratio is a same-process,
/// same-input comparison. The end-to-end effect of the same kernels is
/// measured by bench_perf_pipeline (BM_CaptureWindow / BM_StudyParallel);
/// this file isolates where the cycles go.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/arena.hpp"
#include "common/prng.hpp"
#include "common/simd.hpp"
#include "gbl/kernels.hpp"
#include "netgen/population.hpp"
#include "netgen/scenario.hpp"
#include "netgen/traffic.hpp"

namespace {

using namespace obscorr;
using gbl::Index;
using gbl::Value;

simd::Tier tier_of(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (tier > simd::detected_tier()) {
    state.SkipWithError("host does not support the requested tier");
  }
  return tier;
}

/// Forces a tier for the duration of one benchmark run.
class TierScope {
 public:
  explicit TierScope(simd::Tier tier) { simd::set_tier(tier); }
  ~TierScope() { simd::set_tier(std::nullopt); }
};

void BM_RadixSortU64(benchmark::State& state) {
  const simd::Tier tier = tier_of(state);
  const TierScope scope(tier);
  Rng rng(42);
  constexpr std::size_t kKeys = 1 << 18;  // one accumulator block's sort
  std::vector<std::uint64_t> base(kKeys);
  for (auto& k : base) k = rng.next();
  std::vector<std::uint64_t> keys;
  for (auto _ : state) {
    state.PauseTiming();
    keys = base;
    state.ResumeTiming();
    gbl::kernels::radix_sort_u64(keys.data(), keys.size(), mem::scratch_arena());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kKeys));
}
BENCHMARK(BM_RadixSortU64)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_MergeAddColumns(benchmark::State& state) {
  const simd::Tier tier = tier_of(state);
  const TierScope scope(tier);
  // Second argument picks the input shape: 0 = tightly interleaved runs
  // (the merge's branchy worst case), 1 = long disjoint stretches (the
  // galloping fast path, and the common shape for hypersparse row unions
  // in the accumulator's carry merges).
  const bool disjoint = state.range(1) != 0;
  Rng rng(7);
  constexpr std::size_t kRun = 1 << 16;
  constexpr std::size_t kStretch = 512;
  std::vector<Index> ac(kRun), bc(kRun);
  std::vector<Value> av(kRun, 1.0), bv(kRun, 2.0);
  std::uint64_t a = 0, b = 1;
  for (std::size_t i = 0; i < kRun; ++i) {
    if (disjoint && i % kStretch == 0) {
      // Leap far past the other run's current stretch (a stretch spans
      // roughly kStretch * 33 columns), creating a long one-sided run.
      const std::uint64_t hop = 1 << 17;
      if (rng.bernoulli(0.5)) a += hop; else b += hop;
    }
    a += 1 + rng.uniform_u64(64);
    b += 1 + rng.uniform_u64(64);
    ac[i] = static_cast<Index>(a);
    bc[i] = static_cast<Index>(b);
  }
  std::vector<Index> out_col(2 * kRun);
  std::vector<Value> out_val(2 * kRun);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbl::kernels::merge_add_columns(
        ac.data(), av.data(), kRun, bc.data(), bv.data(), kRun, out_col.data(), out_val.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * kRun));
}
BENCHMARK(BM_MergeAddColumns)
    ->Args({0, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({2, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_SumSpan(benchmark::State& state) {
  const simd::Tier tier = tier_of(state);
  const TierScope scope(tier);
  Rng rng(13);
  std::vector<Value> values(1 << 20);
  for (auto& v : values) v = static_cast<Value>(rng.uniform_u64(1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbl::kernels::sum_span(values));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_SumSpan)->Arg(0)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_RowSums(benchmark::State& state) {
  const simd::Tier tier = tier_of(state);
  const TierScope scope(tier);
  Rng rng(17);
  // Row lengths mimicking a heavy-tailed degree distribution.
  std::vector<std::uint64_t> row_ptr{0};
  while (row_ptr.back() < (1 << 20)) {
    row_ptr.push_back(row_ptr.back() + 1 + rng.uniform_u64(64));
  }
  std::vector<Value> values(row_ptr.back());
  for (auto& v : values) v = static_cast<Value>(rng.uniform_u64(1 << 16));
  std::vector<Value> sums(row_ptr.size() - 1);
  for (auto _ : state) {
    gbl::kernels::row_sums(row_ptr, values, sums);
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_RowSums)->Arg(0)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_ShardIngest(benchmark::State& state) {
  const simd::Tier tier = tier_of(state);
  const TierScope scope(tier);
  const auto scenario = netgen::Scenario::paper(18, 42);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);
  const netgen::WindowPlan plan = generator.plan_window(0);
  netgen::ShardScratch scratch;
  std::uint64_t sink = 0;
  constexpr std::uint64_t kValid = 1 << 16;
  for (auto _ : state) {
    generator.stream_shard_batched(plan, kValid, /*salt=*/1, /*shard=*/0, scratch,
                                   [&](std::span<const Packet> b) { sink += b.size(); });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kValid));
}
BENCHMARK(BM_ShardIngest)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
