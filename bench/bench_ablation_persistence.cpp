/// Ablation — the drifting-beam persistence profile. The Fig. 8 one-month
/// drop peaking at mid-brightness comes from the brightness-dependent
/// Beta shape a(d); this bench re-runs the campaign with (a) the paper
/// profile (dip at the d ~ 10^3 equivalent), (b) a flat profile
/// (uniform churn), showing that the Fig. 8 shape is a real signature of
/// the brightness-dependent churn, not an artifact of the analysis.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "core/correlation.hpp"
#include "study_cache.hpp"

namespace {

std::map<int, double> mean_drops(const obscorr::core::StudyData& study) {
  std::map<int, std::pair<double, int>> acc;
  for (const auto& cell : obscorr::core::fit_grid(study, 20)) {
    auto& [sum, n] = acc[cell.curve.bin];
    sum += cell.curve.modified_cauchy.model.one_month_drop();
    ++n;
  }
  std::map<int, double> means;
  for (const auto& [bin, sn] : acc) means[bin] = sn.first / sn.second;
  return means;
}

}  // namespace

int main() {
  using namespace obscorr;
  const auto& env = bench::bench_env();
  const int log2_nv = std::min(env.log2_nv, 18);
  std::printf("# ablation at N_V=2^%d (two full studies)\n", log2_nv);

  auto dipped = netgen::Scenario::paper(log2_nv, env.seed);
  const auto dipped_study = core::run_study(dipped, bench::bench_pool());

  auto flat = netgen::Scenario::paper(log2_nv, env.seed);
  flat.population.persist_shape_churny = flat.population.persist_shape_stable;  // no dip
  const auto flat_study = core::run_study(flat, bench::bench_pool());

  const auto dip_drops = mean_drops(dipped_study);
  const auto flat_drops = mean_drops(flat_study);

  TextTable table("Ablation: one-month drop 1/(beta+1) by brightness, dip vs flat churn profile");
  table.set_header({"d bin", "paper profile (dip)", "flat profile"});
  for (const auto& [bin, drop] : dip_drops) {
    const auto it = flat_drops.find(bin);
    table.add_row({"2^" + std::to_string(bin), fmt_percent(drop, 1),
                   it != flat_drops.end() ? fmt_percent(it->second, 1) : "-"});
  }
  table.print(std::cout);

  double dip_spread = 0.0, flat_spread = 0.0;
  const auto spread = [](const std::map<int, double>& drops) {
    double lo = 1.0, hi = 0.0;
    for (const auto& [bin, d] : drops) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    return hi - lo;
  };
  dip_spread = spread(dip_drops);
  flat_spread = spread(flat_drops);
  std::printf("\ndrop spread across brightness: dip profile %.2f, flat profile %.2f\n",
              dip_spread, flat_spread);
  std::printf("the Fig. 8 mid-brightness peak requires the brightness-dependent churn dip;\n"
              "with uniform churn the drop is flat in d (paper's signature disappears).\n");
  return 0;
}
