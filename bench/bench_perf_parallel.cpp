/// \file bench_perf_parallel.cpp
/// Thread-count scaling of the parallel study pipeline.
///
///  * BM_StudyParallel   — whole-study wall clock (`run_study`: sharded
///    packet generation + capture, concurrent snapshots and honeyfarm
///    months) swept over worker-thread counts. The output is bit-identical
///    at every sweep point; only the wall clock may differ.
///  * BM_FitGridParallel — the Figs. 6-8 analysis (`fit_grid`) over the
///    same study, parallel per (snapshot, brightness-bin) cell.
///
/// Defaults to N_V = 2^17 per snapshot — the smallest size where windows
/// span multiple generation shards — so the sweep stays CI-sized;
/// OBSCORR_LOG2_NV / OBSCORR_SEED override as usual.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "core/correlation.hpp"
#include "core/study.hpp"
#include "netgen/scenario.hpp"

namespace {

using namespace obscorr;

int bench_log2_nv() {
  static const int v = static_cast<int>(env_int("OBSCORR_LOG2_NV", 17));
  return v;
}

std::uint64_t bench_seed() {
  static const std::uint64_t v = static_cast<std::uint64_t>(env_int("OBSCORR_SEED", 42));
  return v;
}

netgen::Scenario bench_scenario() { return netgen::Scenario::paper(bench_log2_nv(), bench_seed()); }

/// Sweep 1/2/4 plus the hardware default when it is not already covered.
void thread_sweep(benchmark::internal::Benchmark* b) {
  std::vector<long> sweep = {1, 2, 4};
  const long hw = static_cast<long>(ThreadPool::default_thread_count());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) sweep.push_back(hw);
  for (const long t : sweep) b->Arg(t);
}

void BM_StudyParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const netgen::Scenario scenario = bench_scenario();
  ThreadPool pool(threads);
  for (auto _ : state) {
    core::StudyData study = core::run_study(scenario, pool);
    benchmark::DoNotOptimize(study.snapshots.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scenario.snapshots.size()) *
                          static_cast<std::int64_t>(scenario.nv()));
}
BENCHMARK(BM_StudyParallel)->Apply(thread_sweep)->Unit(benchmark::kMillisecond)->UseRealTime();

const core::StudyData& fit_grid_study() {
  static const core::StudyData study = [] {
    ThreadPool pool;
    return core::run_study(bench_scenario(), pool);
  }();
  return study;
}

void BM_FitGridParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const core::StudyData& study = fit_grid_study();
  ThreadPool pool(threads);
  std::size_t cells = 0;
  for (auto _ : state) {
    const std::vector<core::FitGridCell> grid =
        core::fit_grid(study.snapshots, study.months, 20, pool);
    cells = grid.size();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_FitGridParallel)->Apply(thread_sweep)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
