#include "study_cache.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace obscorr::bench {

const BenchEnv& bench_env() {
  static const BenchEnv env = BenchEnv::from_environment();
  return env;
}

ThreadPool& bench_pool() {
  static ThreadPool pool(bench_env().threads > 0
                             ? static_cast<std::size_t>(bench_env().threads)
                             : ThreadPool::default_thread_count());
  return pool;
}

const core::StudyData& shared_study() {
  static const core::StudyData study = [] {
    const BenchEnv& env = bench_env();
    std::printf("# scenario: N_V=2^%d seed=%llu threads=%zu (paper: N_V=2^30)\n", env.log2_nv,
                static_cast<unsigned long long>(env.seed), bench_pool().thread_count());
    std::fflush(stdout);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = core::run_study(netgen::Scenario::paper(env.log2_nv, env.seed), bench_pool());
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    std::printf("# study generated in %.1fs\n\n", dt.count());
    return result;
  }();
  return study;
}

bool maybe_write_csv(const TextTable& table, const std::string& name) {
  const char* dir = std::getenv("OBSCORR_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream os(path);
  if (!os.is_open()) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  table.print_csv(os);
  std::printf("# wrote %s\n", path.c_str());
  return true;
}

}  // namespace obscorr::bench
