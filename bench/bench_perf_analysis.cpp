/// \file bench_perf_analysis.cpp
/// Hot paths of the anomaly/correlation subsystem feeding `obscorr
/// correlate` and the service's `watch` push.
///
///  * BM_RankCorrelations — rank the full 14-series catalogue over a
///    synthetic store with netdata framing (highlight = trailing fifth,
///    baseline = preceding 4×), swept over method × history length.
///    This is the per-request cost of an uncached `correlate` query.
///  * BM_DetectorObserve — one DetectorBank::observe() per window
///    (rolling z-score + EWMA over every series, plus the
///    degree-histogram shift detector), the per-window cost the ingest
///    thread pays inside on_publish before the event push.
///
/// Inputs are deterministic (fixed-seed mt19937); no archive I/O, so
/// the numbers isolate the analysis math itself.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "analysis/correlate.hpp"
#include "analysis/detectors.hpp"
#include "analysis/window_series.hpp"

namespace {

using namespace obscorr;

/// A plausible window sample stream: stationary noise around paper-ish
/// magnitudes, with a 4x surge over the trailing tenth so the ranking
/// has a real signal to find.
analysis::WindowSample synth_sample(std::mt19937_64& rng, std::size_t w, std::size_t windows) {
  std::uniform_real_distribution<double> noise(0.9, 1.1);
  const double surge = w >= windows - windows / 10 ? 4.0 : 1.0;
  analysis::WindowSample s;
  s.q.valid_packets = 65536.0 * surge * noise(rng);
  s.q.unique_links = static_cast<std::uint64_t>(20000.0 * surge * noise(rng));
  s.q.max_link_packets = 48.0 * noise(rng);
  s.q.unique_sources = static_cast<std::uint64_t>(4000.0 * noise(rng));
  s.q.max_source_packets = 1200.0 * surge * noise(rng);
  s.q.max_source_fanout = 800.0 * noise(rng);
  s.q.unique_destinations = static_cast<std::uint64_t>(9000.0 * noise(rng));
  s.q.max_destination_packets = 300.0 * noise(rng);
  s.q.max_destination_fanin = 150.0 * noise(rng);
  s.discarded_packets = static_cast<std::uint64_t>(500.0 * noise(rng));
  s.duration_sec = 0.065 * noise(rng);
  s.source_gini = 0.62 * noise(rng);
  return s;
}

analysis::SeriesStore synth_store(std::size_t windows) {
  std::mt19937_64 rng(0x0b5c0e500ULL);
  analysis::SeriesStore store;
  for (std::size_t w = 0; w < windows; ++w) store.append(synth_sample(rng, w, windows));
  return store;
}

void BM_RankCorrelations(benchmark::State& state) {
  const auto method = state.range(0) == 0 ? analysis::Method::kKs2 : analysis::Method::kVolume;
  const auto windows = static_cast<std::size_t>(state.range(1));
  const analysis::SeriesStore store = synth_store(windows);
  const analysis::WindowRange highlight = analysis::default_highlight(windows);
  const analysis::WindowRange baseline = analysis::default_baseline(highlight);

  for (auto _ : state) {
    std::vector<analysis::MetricScore> ranked =
        analysis::rank_series(store, baseline, highlight, method);
    benchmark::DoNotOptimize(ranked.data());
  }
  state.counters["series"] = static_cast<double>(store.series_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.series_count()) *
                          static_cast<std::int64_t>(windows));
}
BENCHMARK(BM_RankCorrelations)
    ->ArgNames({"method", "windows"})
    ->ArgsProduct({{0, 1}, {256, 4096}})
    ->Unit(benchmark::kMicrosecond);

void BM_DetectorObserve(benchmark::State& state) {
  const auto degree_n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(0xdec0deULL);
  // Pre-build a long stationary stream of rows + heavy-tailed degree
  // vectors; the bank cycles through it so state keeps evolving instead
  // of re-warming on every iteration.
  constexpr std::size_t kStream = 512;
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> degrees;
  rows.reserve(kStream);
  degrees.reserve(kStream);
  std::exponential_distribution<double> tail(1.0 / 16.0);
  for (std::size_t w = 0; w < kStream; ++w) {
    rows.push_back(analysis::metric_row(synth_sample(rng, w, kStream + 1)));
    std::vector<double> d(degree_n);
    for (double& v : d) v = 1.0 + tail(rng);
    degrees.push_back(std::move(d));
  }

  analysis::DetectorBank bank;
  std::uint64_t window = 0;
  std::size_t fired = 0;
  for (auto _ : state) {
    const std::size_t i = static_cast<std::size_t>(window % kStream);
    std::vector<analysis::AnomalyEvent> events = bank.observe(window, rows[i], degrees[i]);
    fired += events.size();
    benchmark::DoNotOptimize(events.data());
    ++window;
  }
  state.counters["degree_n"] = static_cast<double>(degree_n);
  state.counters["events"] = static_cast<double>(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(analysis::metric_count()));
}
BENCHMARK(BM_DetectorObserve)
    ->ArgNames({"degree_n"})
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
