/// Memory-subsystem benchmarks: what the arena/pool layer actually buys
/// on the capture hot path, isolated from kernel arithmetic.
///
/// - BM_CaptureWindowPooled / BM_CaptureWindowNoPool: the full capture
///   window with buffer recycling on vs off (`BufferPool::set_recycle`)
///   — the off column is what every window paid before this subsystem:
///   fresh mmap + page faults for the whole working set per window.
/// - BM_PoolAllocationRate / BM_FreshAllocationRate: the raw allocator
///   wall for a pipeline-shaped block mix.
/// - BM_ArenaResetCycle: the per-call cost of the kernels' frame-scoped
///   scratch pattern.
/// - BM_CaptureWindowPeakRss: one capture window with the process peak
///   RSS reported as a benchmark counter (bytes), for the baseline JSON.
///
/// All variants produce byte-identical matrices — these benches measure
/// where the bytes live, not what they hold (docs/performance.md,
/// "Memory model").

#include <benchmark/benchmark.h>

#include <cstring>
#include <span>

#include "common/arena.hpp"
#include "common/pool_alloc.hpp"
#include "netgen/scenario.hpp"
#include "netgen/traffic.hpp"
#include "telescope/telescope.hpp"

namespace {

using namespace obscorr;

void run_capture_window(benchmark::State& state, bool recycle) {
  const int log2_nv = static_cast<int>(state.range(0));
  const auto scenario = netgen::Scenario::paper(log2_nv, 42);
  ThreadPool pool(2);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);
  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  telescope::Telescope scope(cfg, pool);
  mem::BufferPool::instance().set_recycle(recycle);
  for (auto _ : state) {
    generator.stream_window_batched(0, scenario.nv(), 1,
                                    [&](std::span<const Packet> b) { scope.capture_block(b); });
    benchmark::DoNotOptimize(scope.finish_window());
  }
  mem::BufferPool::instance().set_recycle(true);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(scenario.nv()));
}

void BM_CaptureWindowPooled(benchmark::State& state) { run_capture_window(state, true); }
BENCHMARK(BM_CaptureWindowPooled)->Arg(16)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_CaptureWindowNoPool(benchmark::State& state) { run_capture_window(state, false); }
BENCHMARK(BM_CaptureWindowNoPool)->Arg(16)->Arg(18)->Unit(benchmark::kMillisecond);

/// The pipeline-shaped block mix: a packed-key block (1 MiB), a radix
/// scatter buffer (1 MiB), DCSR col+val arrays (~1.5 MiB), a packet
/// staging buffer (64 KiB). Touch one byte per page so the no-pool
/// column pays the faults a real consumer pays.
constexpr std::size_t kMixBytes[] = {1u << 20, 1u << 20, 3u << 19, 1u << 16};

void touch_pages(void* p, std::size_t bytes) {
  auto* b = static_cast<unsigned char*>(p);
  for (std::size_t i = 0; i < bytes; i += 4096) b[i] = 1;
}

void run_allocation_rate(benchmark::State& state, bool recycle) {
  mem::BufferPool::instance().set_recycle(recycle);
  std::size_t total = 0;
  for (auto _ : state) {
    for (const std::size_t bytes : kMixBytes) {
      void* p = mem::BufferPool::instance().allocate(bytes);
      touch_pages(p, bytes);
      benchmark::DoNotOptimize(p);
      mem::BufferPool::instance().deallocate(p, bytes);
      total += bytes;
    }
  }
  mem::BufferPool::instance().set_recycle(true);
  state.SetBytesProcessed(static_cast<std::int64_t>(total));
}

void BM_PoolAllocationRate(benchmark::State& state) { run_allocation_rate(state, true); }
BENCHMARK(BM_PoolAllocationRate);

void BM_FreshAllocationRate(benchmark::State& state) { run_allocation_rate(state, false); }
BENCHMARK(BM_FreshAllocationRate);

void BM_ArenaResetCycle(benchmark::State& state) {
  // The radix kernel's exact scratch shape: an n-key scatter buffer plus
  // the 6x2048 histogram, taken and rewound per sealed block.
  const std::size_t n = 1u << 17;
  mem::Arena arena;
  for (auto _ : state) {
    const mem::Arena::Frame frame(arena);
    std::span<std::uint64_t> scratch = arena.alloc_span<std::uint64_t>(n);
    std::span<std::size_t> hist = arena.alloc_span<std::size_t>(6 * 2048);
    std::memset(hist.data(), 0, hist.size_bytes());
    scratch[0] = 1;
    scratch[n - 1] = 2;
    benchmark::DoNotOptimize(scratch.data());
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8 + 6 * 2048 * 8));
}
BENCHMARK(BM_ArenaResetCycle);

void BM_CaptureWindowPeakRss(benchmark::State& state) {
  const auto scenario = netgen::Scenario::paper(18, 42);
  ThreadPool pool(2);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);
  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  telescope::Telescope scope(cfg, pool);
  for (auto _ : state) {
    generator.stream_window_batched(0, scenario.nv(), 1,
                                    [&](std::span<const Packet> b) { scope.capture_block(b); });
    benchmark::DoNotOptimize(scope.finish_window());
  }
  state.counters["peak_rss_bytes"] = static_cast<double>(mem::peak_rss_bytes());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(scenario.nv()));
}
BENCHMARK(BM_CaptureWindowPeakRss)->Unit(benchmark::kMillisecond);

}  // namespace
