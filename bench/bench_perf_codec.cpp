/// Archive storage engine: codec throughput and the hot-vs-cold query
/// path. Three questions, one binary:
///
///   * encode MB/s per entry kind — what `archive compact` pays once to
///     shrink the cold tier (BM_CodecEncode_*);
///   * decode MB/s per entry kind per SIMD tier (0 = scalar, 2 = AVX2) —
///     what a cache miss pays on every compressed read
///     (BM_CodecDecode_*);
///   * the `report --from` load path end to end: raw mmap baseline vs a
///     force-compressed archive with the page cache cold (budget 0,
///     decode every read) and warm (default budget, decode once) —
///     the acceptance criterion is warm-cache within 5% of raw
///     (BM_AnalysisStudy_*).
///
/// See bench/baselines/README.md for recorded numbers and the
/// compression-ratio table.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "archive/codec.hpp"
#include "archive/compact.hpp"
#include "archive/page_cache.hpp"
#include "archive/reader.hpp"
#include "archive/study_archive.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"

namespace {

using namespace obscorr;

simd::Tier tier_of(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (tier > simd::detected_tier()) {
    state.SkipWithError("host does not support the requested tier");
  }
  return tier;
}

/// Forces a tier for the duration of one benchmark run.
class TierScope {
 public:
  explicit TierScope(simd::Tier tier) { simd::set_tier(tier); }
  ~TierScope() { simd::set_tier(std::nullopt); }
};

/// One raw campaign archive shared by every benchmark (built once).
const std::string& raw_archive() {
  static const std::string dir = [] {
    const std::string d = "bench_codec_raw.obsar";
    ThreadPool pool(2);
    archive::archive_study(netgen::Scenario::paper(/*log2_nv=*/14, /*seed=*/42), d, pool);
    return d;
  }();
  return dir;
}

/// A force-compressed copy of the raw archive (built once).
const std::string& compressed_archive() {
  static const std::string dir = [] {
    const std::string d = "bench_codec_compressed.obsar";
    std::filesystem::remove_all(d);
    std::filesystem::copy(raw_archive(), d);
    archive::compact_archive(d, {.compress_all = true});
    return d;
  }();
  return dir;
}

/// Raw payload of one representative entry of each compressible kind.
std::vector<std::byte> entry_payload(const std::string& name) {
  const archive::ArchiveReader r(raw_archive());
  const std::span<const std::byte> p = r.payload(name);
  return {p.begin(), p.end()};
}

void bench_encode(benchmark::State& state, const std::string& name) {
  const std::vector<std::byte> payload = entry_payload(name);
  std::size_t stored_size = 0;
  for (auto _ : state) {
    const auto stored = archive::codec::compress_entry(name, payload);
    if (!stored.has_value()) {
      state.SkipWithError("entry did not compress");
      return;
    }
    stored_size = stored->size();
    benchmark::DoNotOptimize(stored->data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(payload.size()));
  state.counters["ratio"] =
      static_cast<double>(payload.size()) / static_cast<double>(stored_size);
}

void bench_decode(benchmark::State& state, const std::string& name) {
  const TierScope scope(tier_of(state));
  const std::vector<std::byte> payload = entry_payload(name);
  const auto stored = archive::codec::compress_entry(name, payload);
  if (!stored.has_value()) {
    state.SkipWithError("entry did not compress");
    return;
  }
  const std::span<const std::byte> stored_bytes{
      reinterpret_cast<const std::byte*>(stored->data()), stored->size()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive::codec::decompress_payload(stored_bytes).data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(payload.size()));
}

// Entry kinds: a DCSR matrix (delta-varint indices + bitpacked counts), a
// Table II source reduction (the `degrees`/`report` hot read), a D4M
// assoc array (front-coded string keys), and a honeyfarm month (the bulk
// of the archive's bytes).
void BM_CodecEncode_Matrix(benchmark::State& s) { bench_encode(s, "snapshot/0/matrix"); }
void BM_CodecEncode_Sources(benchmark::State& s) { bench_encode(s, "snapshot/0/sources"); }
void BM_CodecEncode_Assoc(benchmark::State& s) { bench_encode(s, "snapshot/0/assoc"); }
void BM_CodecEncode_Month(benchmark::State& s) { bench_encode(s, "month/0"); }
BENCHMARK(BM_CodecEncode_Matrix);
BENCHMARK(BM_CodecEncode_Sources);
BENCHMARK(BM_CodecEncode_Assoc);
BENCHMARK(BM_CodecEncode_Month);

void BM_CodecDecode_Matrix(benchmark::State& s) { bench_decode(s, "snapshot/0/matrix"); }
void BM_CodecDecode_Sources(benchmark::State& s) { bench_decode(s, "snapshot/0/sources"); }
void BM_CodecDecode_Assoc(benchmark::State& s) { bench_decode(s, "snapshot/0/assoc"); }
void BM_CodecDecode_Month(benchmark::State& s) { bench_decode(s, "month/0"); }
BENCHMARK(BM_CodecDecode_Matrix)->Arg(0)->Arg(2);
BENCHMARK(BM_CodecDecode_Sources)->Arg(0)->Arg(2);
BENCHMARK(BM_CodecDecode_Assoc)->Arg(0)->Arg(2);
BENCHMARK(BM_CodecDecode_Month)->Arg(0)->Arg(2);

/// The `report --from` load, minus the fixed open cost: analysis_study()
/// over an already-open reader, which is what the resident service and
/// every per-query CLI read actually pays.
void bench_analysis_study(benchmark::State& state, const std::string& dir,
                          std::optional<std::uint64_t> cache_bytes) {
  archive::set_cache_bytes(cache_bytes);
  const archive::StudyReader reader(dir);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.analysis_study().months.size());
  }
  archive::set_cache_bytes(std::nullopt);
}

void BM_AnalysisStudy_RawMmap(benchmark::State& s) {
  bench_analysis_study(s, raw_archive(), std::nullopt);
}
void BM_AnalysisStudy_CompressedCold(benchmark::State& s) {
  // Budget 0: nothing is retained, every compressed read decodes.
  bench_analysis_study(s, compressed_archive(), 0);
}
void BM_AnalysisStudy_CompressedHot(benchmark::State& s) {
  // Default budget: the working set decodes once, then every read hits.
  bench_analysis_study(s, compressed_archive(), std::nullopt);
}
BENCHMARK(BM_AnalysisStudy_RawMmap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalysisStudy_CompressedCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalysisStudy_CompressedHot)->Unit(benchmark::kMillisecond);

}  // namespace
