/// Performance benches for the D4M associative-array substrate: build
/// rate from string triples, element-wise intersection (the correlation
/// primitive), key intersection, sub-array selection, and TSV round-trip
/// — the operations the monthly GreyNoise arrays go through.

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/ipv4.hpp"
#include "common/prng.hpp"
#include "d4m/assoc.hpp"

namespace {

using namespace obscorr;
using namespace obscorr::d4m;

std::vector<Triple> ip_triples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triple> triples;
  triples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    triples.push_back({Ipv4(rng.next_u32()).to_string(), "packets",
                       static_cast<double>(1 + rng.uniform_u64(1000))});
  }
  return triples;
}

void BM_AssocFromTriples(benchmark::State& state) {
  const auto base = ip_triples(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto copy = base;
    benchmark::DoNotOptimize(AssocArray::from_triples(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AssocFromTriples)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

void BM_AssocEwiseMult(benchmark::State& state) {
  // Correlation primitive: intersect two source catalogs (~50% overlap).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto ta = ip_triples(n, 2);
  auto tb = ip_triples(n / 2, 3);
  tb.insert(tb.end(), ta.begin(), ta.begin() + static_cast<std::ptrdiff_t>(n / 2));
  const auto a = AssocArray::from_triples(std::move(ta));
  const auto b = AssocArray::from_triples(std::move(tb));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssocArray::ewise_mult(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.nnz() + b.nnz()));
}
BENCHMARK(BM_AssocEwiseMult)->Arg(1 << 12)->Arg(1 << 16);

void BM_KeyIntersection(benchmark::State& state) {
  const auto a = AssocArray::from_triples(ip_triples(static_cast<std::size_t>(state.range(0)), 4));
  const auto b = AssocArray::from_triples(ip_triples(static_cast<std::size_t>(state.range(0)), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_keys(a.row_keys(), b.row_keys()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_KeyIntersection)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

void BM_SelectColsPrefix(benchmark::State& state) {
  Rng rng(6);
  std::vector<Triple> triples;
  const char* facets[] = {"classification|malicious", "classification|benign", "intent|scan",
                          "protocol|tcp", "contacts"};
  for (int i = 0; i < state.range(0); ++i) {
    triples.push_back({Ipv4(rng.next_u32()).to_string(), facets[rng.uniform_u64(5)], 1.0});
  }
  const auto a = AssocArray::from_triples(std::move(triples));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.select_cols_prefix("classification|"));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SelectColsPrefix)->Arg(1 << 14);

void BM_TsvRoundTrip(benchmark::State& state) {
  const auto a = AssocArray::from_triples(ip_triples(static_cast<std::size_t>(state.range(0)), 7));
  for (auto _ : state) {
    std::stringstream ss;
    a.write_tsv(ss);
    benchmark::DoNotOptimize(AssocArray::read_tsv(ss));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_TsvRoundTrip)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
