/// Ablation — hybrid power-law population (the generative-model
/// direction in the paper's discussion; Devlin et al. 2021). Regenerates
/// the Fig. 3 degree distribution with and without an adversarial
/// component layered on the background law, showing the two-slope
/// signature a coordinated beam adds and how the single-ZM fit reacts.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/degree_analysis.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& env = bench::bench_env();
  const int log2_nv = std::min(env.log2_nv, 20);
  std::printf("# ablation at N_V=2^%d (two telescope-only studies)\n", log2_nv);

  auto pure = netgen::Scenario::paper(log2_nv, env.seed);
  const auto pure_study = core::run_telescope_only(pure, bench::bench_pool());

  auto hybrid = netgen::Scenario::paper(log2_nv, env.seed);
  hybrid.population.hybrid_share = 0.35;
  hybrid.population.hybrid_sources = hybrid.population.population / 256;
  hybrid.population.hybrid_alpha = 1.05;
  hybrid.population.hybrid_delta = 2.0;
  const auto hybrid_study = core::run_telescope_only(hybrid, bench::bench_pool());

  const auto a_pure = core::analyze_degrees(pure_study.snapshots[0]);
  const auto a_hybrid = core::analyze_degrees(hybrid_study.snapshots[0]);

  TextTable table("Ablation: source-packet D(d_i), background vs background+adversarial beam");
  table.set_header({"d bin", "pure D(d)", "hybrid D(d)", "hybrid/pure"});
  const int bins = std::max(a_pure.histogram.bin_count(), a_hybrid.histogram.bin_count());
  for (int b = 0; b < bins; ++b) {
    const double p = b < a_pure.histogram.bin_count() ? a_pure.dcp[static_cast<std::size_t>(b)] : 0.0;
    const double h =
        b < a_hybrid.histogram.bin_count() ? a_hybrid.dcp[static_cast<std::size_t>(b)] : 0.0;
    table.add_row({"2^" + std::to_string(b), fmt_sci(p, 2), fmt_sci(h, 2),
                   p > 0.0 ? fmt_double(h / p, 2) : "-"});
  }
  table.print(std::cout);

  std::printf("\nZM fit: pure alpha=%.2f delta=%.1f (res %.3f) | hybrid alpha=%.2f delta=%.1f (res %.3f)\n",
              a_pure.fit.model.alpha, a_pure.fit.model.delta, a_pure.fit.residual,
              a_hybrid.fit.model.alpha, a_hybrid.fit.model.delta, a_hybrid.fit.residual);
  std::printf(
      "the adversarial beam (%.0f%% of traffic in %zu sources) inflates the bright bins\n"
      "(hybrid/pure ratios above 1 near and above sqrt(N_V)) while the head stays on the\n"
      "background law — the two-component signature motivating hybrid generative models\n"
      "of adversarial traffic.\n",
      hybrid.population.hybrid_share * 100.0, hybrid.population.hybrid_sources);
  return 0;
}
