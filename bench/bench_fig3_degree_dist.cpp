/// Reproduces **Figure 3** — "CAIDA Source Packet Degree Distribution":
/// the binary-log-binned differential cumulative probability D_t(d_i) of
/// source packets for each 2^log2_nv-packet snapshot, plus the
/// two-parameter Zipf–Mandelbrot fit p(d) ∝ 1/(d+δ)^α.
///
/// Shape targets: a power law spanning the full degree range, nearly
/// identical across snapshots taken months apart, well-approximated by a
/// single ZM model.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/degree_analysis.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();
  const auto analyses = core::analyze_all_degrees(study);

  int max_bins = 0;
  for (const auto& a : analyses) max_bins = std::max(max_bins, a.histogram.bin_count());

  TextTable table("Figure 3: source-packet differential cumulative probability D(d_i)");
  std::vector<std::string> header{"d bin"};
  for (const auto& a : analyses) header.push_back(a.label.substr(0, 10));
  table.set_header(std::move(header));
  for (int b = 0; b < max_bins; ++b) {
    std::vector<std::string> row{"2^" + std::to_string(b)};
    for (const auto& a : analyses) {
      row.push_back(b < a.histogram.bin_count() ? fmt_sci(a.dcp[static_cast<std::size_t>(b)], 2)
                                                : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, "fig3_dcp");

  std::printf("\n# Zipf-Mandelbrot fits p(d) ~ 1/(d+delta)^alpha, | |^(1/2) norm\n");
  TextTable fits;
  fits.set_header({"snapshot", "alpha_zm", "delta_zm", "residual", "sources", "d_max"});
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    const auto& a = analyses[i];
    fits.add_row({a.label, fmt_double(a.fit.model.alpha, 3), fmt_double(a.fit.model.delta, 2),
                  fmt_double(a.fit.residual, 3), fmt_count(a.histogram.total()),
                  fmt_count(a.histogram.max_degree())});
  }
  fits.print(std::cout);

  // Stability check (the paper's point: distributions barely move).
  double max_dev = 0.0;
  for (const auto& a : analyses) {
    for (std::size_t b = 0; b < 6 && b < a.dcp.size() && b < analyses[0].dcp.size(); ++b) {
      max_dev = std::max(max_dev, std::abs(a.dcp[b] - analyses[0].dcp[b]));
    }
  }
  std::printf("\nmax head-bin deviation across snapshots: %.4f  (paper: small, curves overlap)\n",
              max_dev);
  return 0;
}
