/// \file bench_perf_telemetry.cpp
/// Overhead of the telemetry subsystem on the parallel study pipeline.
///
///  * BM_StudyTelemetry — the same whole-study workload as
///    BM_StudyParallel (`run_study`: sharded generation + capture,
///    concurrent snapshots and honeyfarm months), swept over the three
///    telemetry levels × worker-thread counts:
///        level 0 = off        (the cached-flag fast path; must match
///                              BM_StudyParallel to within noise)
///        level 1 = counters   (sharded relaxed atomics; target < 2%)
///        level 2 = full       (counters + span ring buffers)
///    The pipeline output is bit-identical at every sweep point; only
///    the wall clock may differ.
///
/// Defaults to N_V = 2^17 per snapshot, matching bench_perf_parallel so
/// the level-0 rows are directly comparable against the committed
/// BENCH_study_parallel baselines; OBSCORR_LOG2_NV / OBSCORR_SEED
/// override as usual.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"
#include "netgen/scenario.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace obscorr;

int bench_log2_nv() {
  static const int v = static_cast<int>(env_int("OBSCORR_LOG2_NV", 17));
  return v;
}

std::uint64_t bench_seed() {
  static const std::uint64_t v = static_cast<std::uint64_t>(env_int("OBSCORR_SEED", 42));
  return v;
}

obs::Level bench_level(long arg) {
  switch (arg) {
    case 1: return obs::Level::kCounters;
    case 2: return obs::Level::kFull;
    default: return obs::Level::kOff;
  }
}

void BM_StudyTelemetry(benchmark::State& state) {
  const long level = state.range(0);
  const auto threads = static_cast<std::size_t>(state.range(1));
  const netgen::Scenario scenario = netgen::Scenario::paper(bench_log2_nv(), bench_seed());
  ThreadPool pool(threads);

  obs::reset();
  obs::set_level(bench_level(level));
  for (auto _ : state) {
    core::StudyData study = core::run_study(scenario, pool);
    benchmark::DoNotOptimize(study.snapshots.data());
  }
  obs::set_level(obs::Level::kOff);

  state.counters["level"] = static_cast<double>(level);
  state.counters["threads"] = static_cast<double>(threads);
  // At level >= 1 the counters saw every packet of every iteration;
  // surfacing the tally makes "the instrumentation actually ran" visible
  // in the JSON instead of trusting the level knob.
  state.counters["counted_packets"] =
      static_cast<double>(obs::counter("netgen.valid_packets").value());
  obs::reset();

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scenario.snapshots.size()) *
                          static_cast<std::int64_t>(scenario.nv()));
}
BENCHMARK(BM_StudyTelemetry)
    ->ArgNames({"level", "threads"})
    ->ArgsProduct({{0, 1, 2}, {1, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
