/// Reproduces **Table II** operationally: every network quantity the
/// paper defines, computed from each snapshot's hypersparse traffic
/// matrix, with heavy-tail summary statistics (quantiles, Gini) of the
/// four per-entity reductions — the Fig. 2 quantities in numbers.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "gbl/quantities.hpp"
#include "stats/summary.hpp"
#include "study_cache.hpp"

int main() {
  using namespace obscorr;
  const auto& study = bench::shared_study();

  TextTable table("Table II: network quantities per snapshot");
  table.set_header({"quantity", "2020-06", "2020-07", "2020-09", "2020-10", "2020-12"});

  std::vector<gbl::AggregateQuantities> qs;
  for (const auto& snap : study.snapshots) {
    qs.push_back(gbl::aggregate_quantities(snap.matrix));
  }
  const auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& q : qs) cells.push_back(getter(q));
    table.add_row(std::move(cells));
  };
  row("valid packets (1' A 1)", [](const auto& q) {
    return fmt_count(static_cast<std::uint64_t>(q.valid_packets));
  });
  row("unique links (1' |A|0 1)", [](const auto& q) { return fmt_count(q.unique_links); });
  row("max link packets (max A)", [](const auto& q) { return fmt_double(q.max_link_packets, 0); });
  row("unique sources (||A 1||0)", [](const auto& q) { return fmt_count(q.unique_sources); });
  row("max source packets (max A 1)",
      [](const auto& q) { return fmt_double(q.max_source_packets, 0); });
  row("max source fan-out (max |A|0 1)",
      [](const auto& q) { return fmt_double(q.max_source_fanout, 0); });
  row("unique destinations (||1' A||0)",
      [](const auto& q) { return fmt_count(q.unique_destinations); });
  row("max destination packets (max 1' A)",
      [](const auto& q) { return fmt_double(q.max_destination_packets, 0); });
  row("max destination fan-in (max 1' |A|0)",
      [](const auto& q) { return fmt_double(q.max_destination_fanin, 0); });
  table.print(std::cout);
  bench::maybe_write_csv(table, "table2_quantities");

  // Heavy-tail summaries of the per-entity reductions for snapshot 1.
  const auto entity = gbl::entity_quantities(study.snapshots[0].matrix);
  TextTable summary("\nper-entity distribution summaries (snapshot 2020-06)");
  summary.set_header({"reduction", "entities", "mean", "p50", "p90", "p99", "max", "Gini"});
  const auto add_summary = [&](const std::string& name, const gbl::SparseVec& v) {
    const std::vector<double> values(v.values().begin(), v.values().end());
    const auto s = stats::summarize(values);
    summary.add_row({name, fmt_count(s.count), fmt_double(s.mean, 1), fmt_double(s.p50, 0),
                     fmt_double(s.p90, 0), fmt_double(s.p99, 0), fmt_double(s.max, 0),
                     fmt_double(s.gini, 3)});
  };
  add_summary("source packets (A 1)", entity.source_packets);
  add_summary("source fan-out (|A|0 1)", entity.source_fanout);
  add_summary("destination packets (1' A)", entity.destination_packets);
  add_summary("destination fan-in (1' |A|0)", entity.destination_fanin);
  summary.print(std::cout);

  std::printf("\nsource-packet Gini near 1 is the heavy-tail signature: a few sources\n"
              "carry almost all packets, exactly the regime the paper's Fig. 3 plots.\n");
  return 0;
}
