
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/honeyfarm/database.cpp" "src/honeyfarm/CMakeFiles/obscorr_honeyfarm.dir/database.cpp.o" "gcc" "src/honeyfarm/CMakeFiles/obscorr_honeyfarm.dir/database.cpp.o.d"
  "/root/repo/src/honeyfarm/honeyfarm.cpp" "src/honeyfarm/CMakeFiles/obscorr_honeyfarm.dir/honeyfarm.cpp.o" "gcc" "src/honeyfarm/CMakeFiles/obscorr_honeyfarm.dir/honeyfarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/d4m/CMakeFiles/obscorr_d4m.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/obscorr_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/gbl/CMakeFiles/obscorr_gbl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
