# Empty dependencies file for obscorr_honeyfarm.
# This may be replaced when dependencies are built.
