file(REMOVE_RECURSE
  "libobscorr_honeyfarm.a"
)
