file(REMOVE_RECURSE
  "CMakeFiles/obscorr_honeyfarm.dir/database.cpp.o"
  "CMakeFiles/obscorr_honeyfarm.dir/database.cpp.o.d"
  "CMakeFiles/obscorr_honeyfarm.dir/honeyfarm.cpp.o"
  "CMakeFiles/obscorr_honeyfarm.dir/honeyfarm.cpp.o.d"
  "libobscorr_honeyfarm.a"
  "libobscorr_honeyfarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_honeyfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
