file(REMOVE_RECURSE
  "libobscorr_gbl.a"
)
