# Empty dependencies file for obscorr_gbl.
# This may be replaced when dependencies are built.
