
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbl/coo.cpp" "src/gbl/CMakeFiles/obscorr_gbl.dir/coo.cpp.o" "gcc" "src/gbl/CMakeFiles/obscorr_gbl.dir/coo.cpp.o.d"
  "/root/repo/src/gbl/dcsr.cpp" "src/gbl/CMakeFiles/obscorr_gbl.dir/dcsr.cpp.o" "gcc" "src/gbl/CMakeFiles/obscorr_gbl.dir/dcsr.cpp.o.d"
  "/root/repo/src/gbl/hierarchical.cpp" "src/gbl/CMakeFiles/obscorr_gbl.dir/hierarchical.cpp.o" "gcc" "src/gbl/CMakeFiles/obscorr_gbl.dir/hierarchical.cpp.o.d"
  "/root/repo/src/gbl/matrix_io.cpp" "src/gbl/CMakeFiles/obscorr_gbl.dir/matrix_io.cpp.o" "gcc" "src/gbl/CMakeFiles/obscorr_gbl.dir/matrix_io.cpp.o.d"
  "/root/repo/src/gbl/quantities.cpp" "src/gbl/CMakeFiles/obscorr_gbl.dir/quantities.cpp.o" "gcc" "src/gbl/CMakeFiles/obscorr_gbl.dir/quantities.cpp.o.d"
  "/root/repo/src/gbl/sparse_vec.cpp" "src/gbl/CMakeFiles/obscorr_gbl.dir/sparse_vec.cpp.o" "gcc" "src/gbl/CMakeFiles/obscorr_gbl.dir/sparse_vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
