file(REMOVE_RECURSE
  "CMakeFiles/obscorr_gbl.dir/coo.cpp.o"
  "CMakeFiles/obscorr_gbl.dir/coo.cpp.o.d"
  "CMakeFiles/obscorr_gbl.dir/dcsr.cpp.o"
  "CMakeFiles/obscorr_gbl.dir/dcsr.cpp.o.d"
  "CMakeFiles/obscorr_gbl.dir/hierarchical.cpp.o"
  "CMakeFiles/obscorr_gbl.dir/hierarchical.cpp.o.d"
  "CMakeFiles/obscorr_gbl.dir/matrix_io.cpp.o"
  "CMakeFiles/obscorr_gbl.dir/matrix_io.cpp.o.d"
  "CMakeFiles/obscorr_gbl.dir/quantities.cpp.o"
  "CMakeFiles/obscorr_gbl.dir/quantities.cpp.o.d"
  "CMakeFiles/obscorr_gbl.dir/sparse_vec.cpp.o"
  "CMakeFiles/obscorr_gbl.dir/sparse_vec.cpp.o.d"
  "libobscorr_gbl.a"
  "libobscorr_gbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_gbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
