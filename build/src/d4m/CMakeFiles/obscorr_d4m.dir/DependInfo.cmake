
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/d4m/assoc.cpp" "src/d4m/CMakeFiles/obscorr_d4m.dir/assoc.cpp.o" "gcc" "src/d4m/CMakeFiles/obscorr_d4m.dir/assoc.cpp.o.d"
  "/root/repo/src/d4m/gbl_bridge.cpp" "src/d4m/CMakeFiles/obscorr_d4m.dir/gbl_bridge.cpp.o" "gcc" "src/d4m/CMakeFiles/obscorr_d4m.dir/gbl_bridge.cpp.o.d"
  "/root/repo/src/d4m/str_assoc.cpp" "src/d4m/CMakeFiles/obscorr_d4m.dir/str_assoc.cpp.o" "gcc" "src/d4m/CMakeFiles/obscorr_d4m.dir/str_assoc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gbl/CMakeFiles/obscorr_gbl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
