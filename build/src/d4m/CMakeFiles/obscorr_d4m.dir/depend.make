# Empty dependencies file for obscorr_d4m.
# This may be replaced when dependencies are built.
