file(REMOVE_RECURSE
  "CMakeFiles/obscorr_d4m.dir/assoc.cpp.o"
  "CMakeFiles/obscorr_d4m.dir/assoc.cpp.o.d"
  "CMakeFiles/obscorr_d4m.dir/gbl_bridge.cpp.o"
  "CMakeFiles/obscorr_d4m.dir/gbl_bridge.cpp.o.d"
  "CMakeFiles/obscorr_d4m.dir/str_assoc.cpp.o"
  "CMakeFiles/obscorr_d4m.dir/str_assoc.cpp.o.d"
  "libobscorr_d4m.a"
  "libobscorr_d4m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_d4m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
