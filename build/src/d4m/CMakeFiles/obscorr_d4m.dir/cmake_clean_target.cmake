file(REMOVE_RECURSE
  "libobscorr_d4m.a"
)
