# CMake generated Testfile for 
# Source directory: /root/repo/src/d4m
# Build directory: /root/repo/build/src/d4m
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
