file(REMOVE_RECURSE
  "CMakeFiles/obscorr_netgen.dir/population.cpp.o"
  "CMakeFiles/obscorr_netgen.dir/population.cpp.o.d"
  "CMakeFiles/obscorr_netgen.dir/scenario.cpp.o"
  "CMakeFiles/obscorr_netgen.dir/scenario.cpp.o.d"
  "CMakeFiles/obscorr_netgen.dir/traffic.cpp.o"
  "CMakeFiles/obscorr_netgen.dir/traffic.cpp.o.d"
  "CMakeFiles/obscorr_netgen.dir/visibility.cpp.o"
  "CMakeFiles/obscorr_netgen.dir/visibility.cpp.o.d"
  "libobscorr_netgen.a"
  "libobscorr_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
