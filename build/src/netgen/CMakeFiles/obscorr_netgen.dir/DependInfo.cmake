
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netgen/population.cpp" "src/netgen/CMakeFiles/obscorr_netgen.dir/population.cpp.o" "gcc" "src/netgen/CMakeFiles/obscorr_netgen.dir/population.cpp.o.d"
  "/root/repo/src/netgen/scenario.cpp" "src/netgen/CMakeFiles/obscorr_netgen.dir/scenario.cpp.o" "gcc" "src/netgen/CMakeFiles/obscorr_netgen.dir/scenario.cpp.o.d"
  "/root/repo/src/netgen/traffic.cpp" "src/netgen/CMakeFiles/obscorr_netgen.dir/traffic.cpp.o" "gcc" "src/netgen/CMakeFiles/obscorr_netgen.dir/traffic.cpp.o.d"
  "/root/repo/src/netgen/visibility.cpp" "src/netgen/CMakeFiles/obscorr_netgen.dir/visibility.cpp.o" "gcc" "src/netgen/CMakeFiles/obscorr_netgen.dir/visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
