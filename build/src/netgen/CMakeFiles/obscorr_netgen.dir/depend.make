# Empty dependencies file for obscorr_netgen.
# This may be replaced when dependencies are built.
