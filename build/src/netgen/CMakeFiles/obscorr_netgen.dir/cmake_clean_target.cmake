file(REMOVE_RECURSE
  "libobscorr_netgen.a"
)
