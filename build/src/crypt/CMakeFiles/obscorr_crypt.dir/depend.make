# Empty dependencies file for obscorr_crypt.
# This may be replaced when dependencies are built.
