file(REMOVE_RECURSE
  "libobscorr_crypt.a"
)
