file(REMOVE_RECURSE
  "CMakeFiles/obscorr_crypt.dir/aes128.cpp.o"
  "CMakeFiles/obscorr_crypt.dir/aes128.cpp.o.d"
  "CMakeFiles/obscorr_crypt.dir/anon_table.cpp.o"
  "CMakeFiles/obscorr_crypt.dir/anon_table.cpp.o.d"
  "CMakeFiles/obscorr_crypt.dir/cryptopan.cpp.o"
  "CMakeFiles/obscorr_crypt.dir/cryptopan.cpp.o.d"
  "CMakeFiles/obscorr_crypt.dir/siphash.cpp.o"
  "CMakeFiles/obscorr_crypt.dir/siphash.cpp.o.d"
  "libobscorr_crypt.a"
  "libobscorr_crypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_crypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
