
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypt/aes128.cpp" "src/crypt/CMakeFiles/obscorr_crypt.dir/aes128.cpp.o" "gcc" "src/crypt/CMakeFiles/obscorr_crypt.dir/aes128.cpp.o.d"
  "/root/repo/src/crypt/anon_table.cpp" "src/crypt/CMakeFiles/obscorr_crypt.dir/anon_table.cpp.o" "gcc" "src/crypt/CMakeFiles/obscorr_crypt.dir/anon_table.cpp.o.d"
  "/root/repo/src/crypt/cryptopan.cpp" "src/crypt/CMakeFiles/obscorr_crypt.dir/cryptopan.cpp.o" "gcc" "src/crypt/CMakeFiles/obscorr_crypt.dir/cryptopan.cpp.o.d"
  "/root/repo/src/crypt/siphash.cpp" "src/crypt/CMakeFiles/obscorr_crypt.dir/siphash.cpp.o" "gcc" "src/crypt/CMakeFiles/obscorr_crypt.dir/siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
