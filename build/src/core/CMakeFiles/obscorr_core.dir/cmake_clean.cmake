file(REMOVE_RECURSE
  "CMakeFiles/obscorr_core.dir/correlation.cpp.o"
  "CMakeFiles/obscorr_core.dir/correlation.cpp.o.d"
  "CMakeFiles/obscorr_core.dir/degree_analysis.cpp.o"
  "CMakeFiles/obscorr_core.dir/degree_analysis.cpp.o.d"
  "CMakeFiles/obscorr_core.dir/prefix_analysis.cpp.o"
  "CMakeFiles/obscorr_core.dir/prefix_analysis.cpp.o.d"
  "CMakeFiles/obscorr_core.dir/scaling_analysis.cpp.o"
  "CMakeFiles/obscorr_core.dir/scaling_analysis.cpp.o.d"
  "CMakeFiles/obscorr_core.dir/study.cpp.o"
  "CMakeFiles/obscorr_core.dir/study.cpp.o.d"
  "CMakeFiles/obscorr_core.dir/window_series.cpp.o"
  "CMakeFiles/obscorr_core.dir/window_series.cpp.o.d"
  "libobscorr_core.a"
  "libobscorr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
