file(REMOVE_RECURSE
  "libobscorr_core.a"
)
