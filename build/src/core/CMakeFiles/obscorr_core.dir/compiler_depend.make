# Empty compiler generated dependencies file for obscorr_core.
# This may be replaced when dependencies are built.
