
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telescope/capture_session.cpp" "src/telescope/CMakeFiles/obscorr_telescope.dir/capture_session.cpp.o" "gcc" "src/telescope/CMakeFiles/obscorr_telescope.dir/capture_session.cpp.o.d"
  "/root/repo/src/telescope/quadrants.cpp" "src/telescope/CMakeFiles/obscorr_telescope.dir/quadrants.cpp.o" "gcc" "src/telescope/CMakeFiles/obscorr_telescope.dir/quadrants.cpp.o.d"
  "/root/repo/src/telescope/telescope.cpp" "src/telescope/CMakeFiles/obscorr_telescope.dir/telescope.cpp.o" "gcc" "src/telescope/CMakeFiles/obscorr_telescope.dir/telescope.cpp.o.d"
  "/root/repo/src/telescope/trace.cpp" "src/telescope/CMakeFiles/obscorr_telescope.dir/trace.cpp.o" "gcc" "src/telescope/CMakeFiles/obscorr_telescope.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gbl/CMakeFiles/obscorr_gbl.dir/DependInfo.cmake"
  "/root/repo/build/src/crypt/CMakeFiles/obscorr_crypt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
