# Empty dependencies file for obscorr_telescope.
# This may be replaced when dependencies are built.
