file(REMOVE_RECURSE
  "libobscorr_telescope.a"
)
