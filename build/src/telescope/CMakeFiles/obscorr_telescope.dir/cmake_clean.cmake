file(REMOVE_RECURSE
  "CMakeFiles/obscorr_telescope.dir/capture_session.cpp.o"
  "CMakeFiles/obscorr_telescope.dir/capture_session.cpp.o.d"
  "CMakeFiles/obscorr_telescope.dir/quadrants.cpp.o"
  "CMakeFiles/obscorr_telescope.dir/quadrants.cpp.o.d"
  "CMakeFiles/obscorr_telescope.dir/telescope.cpp.o"
  "CMakeFiles/obscorr_telescope.dir/telescope.cpp.o.d"
  "CMakeFiles/obscorr_telescope.dir/trace.cpp.o"
  "CMakeFiles/obscorr_telescope.dir/trace.cpp.o.d"
  "libobscorr_telescope.a"
  "libobscorr_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
