file(REMOVE_RECURSE
  "libobscorr_stats.a"
)
