# Empty dependencies file for obscorr_stats.
# This may be replaced when dependencies are built.
