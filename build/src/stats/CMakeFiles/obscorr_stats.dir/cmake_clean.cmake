file(REMOVE_RECURSE
  "CMakeFiles/obscorr_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/obscorr_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/obscorr_stats.dir/histogram.cpp.o"
  "CMakeFiles/obscorr_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/obscorr_stats.dir/ks_test.cpp.o"
  "CMakeFiles/obscorr_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/obscorr_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/obscorr_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/obscorr_stats.dir/summary.cpp.o"
  "CMakeFiles/obscorr_stats.dir/summary.cpp.o.d"
  "CMakeFiles/obscorr_stats.dir/temporal.cpp.o"
  "CMakeFiles/obscorr_stats.dir/temporal.cpp.o.d"
  "CMakeFiles/obscorr_stats.dir/zipf.cpp.o"
  "CMakeFiles/obscorr_stats.dir/zipf.cpp.o.d"
  "libobscorr_stats.a"
  "libobscorr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
