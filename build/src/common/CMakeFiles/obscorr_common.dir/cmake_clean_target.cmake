file(REMOVE_RECURSE
  "libobscorr_common.a"
)
