file(REMOVE_RECURSE
  "CMakeFiles/obscorr_common.dir/binning.cpp.o"
  "CMakeFiles/obscorr_common.dir/binning.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/cli.cpp.o"
  "CMakeFiles/obscorr_common.dir/cli.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/env.cpp.o"
  "CMakeFiles/obscorr_common.dir/env.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/ipv4.cpp.o"
  "CMakeFiles/obscorr_common.dir/ipv4.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/prng.cpp.o"
  "CMakeFiles/obscorr_common.dir/prng.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/table.cpp.o"
  "CMakeFiles/obscorr_common.dir/table.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/thread_pool.cpp.o"
  "CMakeFiles/obscorr_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/obscorr_common.dir/timeline.cpp.o"
  "CMakeFiles/obscorr_common.dir/timeline.cpp.o.d"
  "libobscorr_common.a"
  "libobscorr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
