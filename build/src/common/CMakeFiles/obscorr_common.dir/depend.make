# Empty dependencies file for obscorr_common.
# This may be replaced when dependencies are built.
