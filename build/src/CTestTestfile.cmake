# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("gbl")
subdirs("d4m")
subdirs("crypt")
subdirs("stats")
subdirs("netgen")
subdirs("telescope")
subdirs("honeyfarm")
subdirs("core")
