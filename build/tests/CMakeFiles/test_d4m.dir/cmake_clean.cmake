file(REMOVE_RECURSE
  "CMakeFiles/test_d4m.dir/d4m/assoc_ops_test.cpp.o"
  "CMakeFiles/test_d4m.dir/d4m/assoc_ops_test.cpp.o.d"
  "CMakeFiles/test_d4m.dir/d4m/assoc_test.cpp.o"
  "CMakeFiles/test_d4m.dir/d4m/assoc_test.cpp.o.d"
  "CMakeFiles/test_d4m.dir/d4m/gbl_bridge_test.cpp.o"
  "CMakeFiles/test_d4m.dir/d4m/gbl_bridge_test.cpp.o.d"
  "CMakeFiles/test_d4m.dir/d4m/str_assoc_test.cpp.o"
  "CMakeFiles/test_d4m.dir/d4m/str_assoc_test.cpp.o.d"
  "test_d4m"
  "test_d4m.pdb"
  "test_d4m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_d4m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
