# Empty compiler generated dependencies file for test_d4m.
# This may be replaced when dependencies are built.
