file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/correlation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/correlation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/degree_analysis_test.cpp.o"
  "CMakeFiles/test_core.dir/core/degree_analysis_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/prefix_analysis_test.cpp.o"
  "CMakeFiles/test_core.dir/core/prefix_analysis_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scaling_analysis_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scaling_analysis_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/study_test.cpp.o"
  "CMakeFiles/test_core.dir/core/study_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/window_series_test.cpp.o"
  "CMakeFiles/test_core.dir/core/window_series_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
