# Empty dependencies file for test_crypt.
# This may be replaced when dependencies are built.
