file(REMOVE_RECURSE
  "CMakeFiles/test_crypt.dir/crypt/aes128_test.cpp.o"
  "CMakeFiles/test_crypt.dir/crypt/aes128_test.cpp.o.d"
  "CMakeFiles/test_crypt.dir/crypt/anon_table_test.cpp.o"
  "CMakeFiles/test_crypt.dir/crypt/anon_table_test.cpp.o.d"
  "CMakeFiles/test_crypt.dir/crypt/cryptopan_test.cpp.o"
  "CMakeFiles/test_crypt.dir/crypt/cryptopan_test.cpp.o.d"
  "CMakeFiles/test_crypt.dir/crypt/siphash_test.cpp.o"
  "CMakeFiles/test_crypt.dir/crypt/siphash_test.cpp.o.d"
  "test_crypt"
  "test_crypt.pdb"
  "test_crypt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
