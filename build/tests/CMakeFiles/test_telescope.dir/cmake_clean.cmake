file(REMOVE_RECURSE
  "CMakeFiles/test_telescope.dir/telescope/capture_session_test.cpp.o"
  "CMakeFiles/test_telescope.dir/telescope/capture_session_test.cpp.o.d"
  "CMakeFiles/test_telescope.dir/telescope/quadrants_test.cpp.o"
  "CMakeFiles/test_telescope.dir/telescope/quadrants_test.cpp.o.d"
  "CMakeFiles/test_telescope.dir/telescope/telescope_test.cpp.o"
  "CMakeFiles/test_telescope.dir/telescope/telescope_test.cpp.o.d"
  "CMakeFiles/test_telescope.dir/telescope/trace_test.cpp.o"
  "CMakeFiles/test_telescope.dir/telescope/trace_test.cpp.o.d"
  "test_telescope"
  "test_telescope.pdb"
  "test_telescope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
