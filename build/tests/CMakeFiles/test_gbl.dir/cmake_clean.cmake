file(REMOVE_RECURSE
  "CMakeFiles/test_gbl.dir/gbl/coo_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/coo_test.cpp.o.d"
  "CMakeFiles/test_gbl.dir/gbl/dcsr_ops_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/dcsr_ops_test.cpp.o.d"
  "CMakeFiles/test_gbl.dir/gbl/dcsr_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/dcsr_test.cpp.o.d"
  "CMakeFiles/test_gbl.dir/gbl/hierarchical_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/hierarchical_test.cpp.o.d"
  "CMakeFiles/test_gbl.dir/gbl/quantities_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/quantities_test.cpp.o.d"
  "CMakeFiles/test_gbl.dir/gbl/semiring_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/semiring_test.cpp.o.d"
  "CMakeFiles/test_gbl.dir/gbl/sparse_vec_test.cpp.o"
  "CMakeFiles/test_gbl.dir/gbl/sparse_vec_test.cpp.o.d"
  "test_gbl"
  "test_gbl.pdb"
  "test_gbl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
