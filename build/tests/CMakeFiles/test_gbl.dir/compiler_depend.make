# Empty compiler generated dependencies file for test_gbl.
# This may be replaced when dependencies are built.
