file(REMOVE_RECURSE
  "CMakeFiles/test_netgen.dir/netgen/botnet_block_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/botnet_block_test.cpp.o.d"
  "CMakeFiles/test_netgen.dir/netgen/hybrid_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/hybrid_test.cpp.o.d"
  "CMakeFiles/test_netgen.dir/netgen/population_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/population_test.cpp.o.d"
  "CMakeFiles/test_netgen.dir/netgen/scan_strategy_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/scan_strategy_test.cpp.o.d"
  "CMakeFiles/test_netgen.dir/netgen/scenario_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/scenario_test.cpp.o.d"
  "CMakeFiles/test_netgen.dir/netgen/traffic_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/traffic_test.cpp.o.d"
  "CMakeFiles/test_netgen.dir/netgen/visibility_test.cpp.o"
  "CMakeFiles/test_netgen.dir/netgen/visibility_test.cpp.o.d"
  "test_netgen"
  "test_netgen.pdb"
  "test_netgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
