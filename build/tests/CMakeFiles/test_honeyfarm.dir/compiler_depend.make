# Empty compiler generated dependencies file for test_honeyfarm.
# This may be replaced when dependencies are built.
