file(REMOVE_RECURSE
  "CMakeFiles/test_honeyfarm.dir/honeyfarm/database_test.cpp.o"
  "CMakeFiles/test_honeyfarm.dir/honeyfarm/database_test.cpp.o.d"
  "CMakeFiles/test_honeyfarm.dir/honeyfarm/honeyfarm_test.cpp.o"
  "CMakeFiles/test_honeyfarm.dir/honeyfarm/honeyfarm_test.cpp.o.d"
  "test_honeyfarm"
  "test_honeyfarm.pdb"
  "test_honeyfarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_honeyfarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
