# Empty dependencies file for cross_observatory.
# This may be replaced when dependencies are built.
