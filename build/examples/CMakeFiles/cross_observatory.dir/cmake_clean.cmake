file(REMOVE_RECURSE
  "CMakeFiles/cross_observatory.dir/cross_observatory.cpp.o"
  "CMakeFiles/cross_observatory.dir/cross_observatory.cpp.o.d"
  "cross_observatory"
  "cross_observatory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_observatory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
