# Empty dependencies file for darknet_monitor.
# This may be replaced when dependencies are built.
