# Empty dependencies file for beam_explorer.
# This may be replaced when dependencies are built.
