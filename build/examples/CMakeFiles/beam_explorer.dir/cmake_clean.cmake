file(REMOVE_RECURSE
  "CMakeFiles/beam_explorer.dir/beam_explorer.cpp.o"
  "CMakeFiles/beam_explorer.dir/beam_explorer.cpp.o.d"
  "beam_explorer"
  "beam_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
