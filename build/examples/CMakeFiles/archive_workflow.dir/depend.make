# Empty dependencies file for archive_workflow.
# This may be replaced when dependencies are built.
