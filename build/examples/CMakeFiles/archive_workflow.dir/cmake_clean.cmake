file(REMOVE_RECURSE
  "CMakeFiles/archive_workflow.dir/archive_workflow.cpp.o"
  "CMakeFiles/archive_workflow.dir/archive_workflow.cpp.o.d"
  "archive_workflow"
  "archive_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
