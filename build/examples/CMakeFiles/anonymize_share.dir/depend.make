# Empty dependencies file for anonymize_share.
# This may be replaced when dependencies are built.
