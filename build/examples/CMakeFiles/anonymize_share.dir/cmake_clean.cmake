file(REMOVE_RECURSE
  "CMakeFiles/anonymize_share.dir/anonymize_share.cpp.o"
  "CMakeFiles/anonymize_share.dir/anonymize_share.cpp.o.d"
  "anonymize_share"
  "anonymize_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
