file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_degree_dist.dir/bench_fig3_degree_dist.cpp.o"
  "CMakeFiles/bench_fig3_degree_dist.dir/bench_fig3_degree_dist.cpp.o.d"
  "CMakeFiles/bench_fig3_degree_dist.dir/study_cache.cpp.o"
  "CMakeFiles/bench_fig3_degree_dist.dir/study_cache.cpp.o.d"
  "bench_fig3_degree_dist"
  "bench_fig3_degree_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_degree_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
