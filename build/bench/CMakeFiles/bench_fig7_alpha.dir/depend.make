# Empty dependencies file for bench_fig7_alpha.
# This may be replaced when dependencies are built.
