file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_alpha.dir/bench_fig7_alpha.cpp.o"
  "CMakeFiles/bench_fig7_alpha.dir/bench_fig7_alpha.cpp.o.d"
  "CMakeFiles/bench_fig7_alpha.dir/study_cache.cpp.o"
  "CMakeFiles/bench_fig7_alpha.dir/study_cache.cpp.o.d"
  "bench_fig7_alpha"
  "bench_fig7_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
