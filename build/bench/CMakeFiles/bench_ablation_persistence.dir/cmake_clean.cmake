file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_persistence.dir/bench_ablation_persistence.cpp.o"
  "CMakeFiles/bench_ablation_persistence.dir/bench_ablation_persistence.cpp.o.d"
  "CMakeFiles/bench_ablation_persistence.dir/study_cache.cpp.o"
  "CMakeFiles/bench_ablation_persistence.dir/study_cache.cpp.o.d"
  "bench_ablation_persistence"
  "bench_ablation_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
