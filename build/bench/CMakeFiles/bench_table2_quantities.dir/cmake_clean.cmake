file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quantities.dir/bench_table2_quantities.cpp.o"
  "CMakeFiles/bench_table2_quantities.dir/bench_table2_quantities.cpp.o.d"
  "CMakeFiles/bench_table2_quantities.dir/study_cache.cpp.o"
  "CMakeFiles/bench_table2_quantities.dir/study_cache.cpp.o.d"
  "bench_table2_quantities"
  "bench_table2_quantities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quantities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
