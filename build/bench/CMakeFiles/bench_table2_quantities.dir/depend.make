# Empty dependencies file for bench_table2_quantities.
# This may be replaced when dependencies are built.
