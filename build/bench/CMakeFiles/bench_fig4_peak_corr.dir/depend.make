# Empty dependencies file for bench_fig4_peak_corr.
# This may be replaced when dependencies are built.
