file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_peak_corr.dir/bench_fig4_peak_corr.cpp.o"
  "CMakeFiles/bench_fig4_peak_corr.dir/bench_fig4_peak_corr.cpp.o.d"
  "CMakeFiles/bench_fig4_peak_corr.dir/study_cache.cpp.o"
  "CMakeFiles/bench_fig4_peak_corr.dir/study_cache.cpp.o.d"
  "bench_fig4_peak_corr"
  "bench_fig4_peak_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_peak_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
