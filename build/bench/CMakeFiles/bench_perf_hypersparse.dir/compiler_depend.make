# Empty compiler generated dependencies file for bench_perf_hypersparse.
# This may be replaced when dependencies are built.
