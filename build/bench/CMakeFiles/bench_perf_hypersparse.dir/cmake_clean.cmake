file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_hypersparse.dir/bench_perf_hypersparse.cpp.o"
  "CMakeFiles/bench_perf_hypersparse.dir/bench_perf_hypersparse.cpp.o.d"
  "bench_perf_hypersparse"
  "bench_perf_hypersparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_hypersparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
