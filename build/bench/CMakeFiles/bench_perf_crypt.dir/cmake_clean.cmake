file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_crypt.dir/bench_perf_crypt.cpp.o"
  "CMakeFiles/bench_perf_crypt.dir/bench_perf_crypt.cpp.o.d"
  "bench_perf_crypt"
  "bench_perf_crypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_crypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
