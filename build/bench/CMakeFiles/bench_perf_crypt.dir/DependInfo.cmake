
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_perf_crypt.cpp" "bench/CMakeFiles/bench_perf_crypt.dir/bench_perf_crypt.cpp.o" "gcc" "bench/CMakeFiles/bench_perf_crypt.dir/bench_perf_crypt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/obscorr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/honeyfarm/CMakeFiles/obscorr_honeyfarm.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/obscorr_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/netgen/CMakeFiles/obscorr_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/obscorr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/crypt/CMakeFiles/obscorr_crypt.dir/DependInfo.cmake"
  "/root/repo/build/src/d4m/CMakeFiles/obscorr_d4m.dir/DependInfo.cmake"
  "/root/repo/build/src/gbl/CMakeFiles/obscorr_gbl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/obscorr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
