# Empty compiler generated dependencies file for bench_perf_crypt.
# This may be replaced when dependencies are built.
