file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_temporal_grid.dir/bench_fig6_temporal_grid.cpp.o"
  "CMakeFiles/bench_fig6_temporal_grid.dir/bench_fig6_temporal_grid.cpp.o.d"
  "CMakeFiles/bench_fig6_temporal_grid.dir/study_cache.cpp.o"
  "CMakeFiles/bench_fig6_temporal_grid.dir/study_cache.cpp.o.d"
  "bench_fig6_temporal_grid"
  "bench_fig6_temporal_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_temporal_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
