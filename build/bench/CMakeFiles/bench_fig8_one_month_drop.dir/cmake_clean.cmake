file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_one_month_drop.dir/bench_fig8_one_month_drop.cpp.o"
  "CMakeFiles/bench_fig8_one_month_drop.dir/bench_fig8_one_month_drop.cpp.o.d"
  "CMakeFiles/bench_fig8_one_month_drop.dir/study_cache.cpp.o"
  "CMakeFiles/bench_fig8_one_month_drop.dir/study_cache.cpp.o.d"
  "bench_fig8_one_month_drop"
  "bench_fig8_one_month_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_one_month_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
