# Empty compiler generated dependencies file for bench_fig8_one_month_drop.
# This may be replaced when dependencies are built.
