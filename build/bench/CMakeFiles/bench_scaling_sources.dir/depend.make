# Empty dependencies file for bench_scaling_sources.
# This may be replaced when dependencies are built.
