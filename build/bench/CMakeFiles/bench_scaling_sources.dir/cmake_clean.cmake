file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_sources.dir/bench_scaling_sources.cpp.o"
  "CMakeFiles/bench_scaling_sources.dir/bench_scaling_sources.cpp.o.d"
  "CMakeFiles/bench_scaling_sources.dir/study_cache.cpp.o"
  "CMakeFiles/bench_scaling_sources.dir/study_cache.cpp.o.d"
  "bench_scaling_sources"
  "bench_scaling_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
