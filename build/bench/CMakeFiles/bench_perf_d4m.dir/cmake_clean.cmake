file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_d4m.dir/bench_perf_d4m.cpp.o"
  "CMakeFiles/bench_perf_d4m.dir/bench_perf_d4m.cpp.o.d"
  "bench_perf_d4m"
  "bench_perf_d4m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_d4m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
