# Empty compiler generated dependencies file for bench_perf_d4m.
# This may be replaced when dependencies are built.
