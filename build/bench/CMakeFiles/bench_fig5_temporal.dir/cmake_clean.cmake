file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_temporal.dir/bench_fig5_temporal.cpp.o"
  "CMakeFiles/bench_fig5_temporal.dir/bench_fig5_temporal.cpp.o.d"
  "CMakeFiles/bench_fig5_temporal.dir/study_cache.cpp.o"
  "CMakeFiles/bench_fig5_temporal.dir/study_cache.cpp.o.d"
  "bench_fig5_temporal"
  "bench_fig5_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
