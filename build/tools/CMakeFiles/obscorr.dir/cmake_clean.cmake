file(REMOVE_RECURSE
  "CMakeFiles/obscorr.dir/obscorr_main.cpp.o"
  "CMakeFiles/obscorr.dir/obscorr_main.cpp.o.d"
  "obscorr"
  "obscorr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
