# Empty dependencies file for obscorr.
# This may be replaced when dependencies are built.
