file(REMOVE_RECURSE
  "libobscorr_tool_commands.a"
)
