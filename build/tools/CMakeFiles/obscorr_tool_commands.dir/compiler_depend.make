# Empty compiler generated dependencies file for obscorr_tool_commands.
# This may be replaced when dependencies are built.
