file(REMOVE_RECURSE
  "CMakeFiles/obscorr_tool_commands.dir/commands.cpp.o"
  "CMakeFiles/obscorr_tool_commands.dir/commands.cpp.o.d"
  "libobscorr_tool_commands.a"
  "libobscorr_tool_commands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obscorr_tool_commands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
