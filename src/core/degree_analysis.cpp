#include "core/degree_analysis.hpp"

namespace obscorr::core {

DegreeAnalysis analyze_degrees(const SnapshotData& snapshot) {
  DegreeAnalysis out;
  out.label = snapshot.spec.start_label;
  out.histogram = stats::LogHistogram::from_sparse_vec(snapshot.source_packets);
  out.dcp = out.histogram.differential_cumulative();
  out.fit = stats::fit_zipf_mandelbrot(out.histogram);
  return out;
}

std::vector<DegreeAnalysis> analyze_all_degrees(const StudyData& study) {
  std::vector<DegreeAnalysis> all;
  all.reserve(study.snapshots.size());
  for (const SnapshotData& snap : study.snapshots) {
    all.push_back(analyze_degrees(snap));
  }
  return all;
}

}  // namespace obscorr::core
