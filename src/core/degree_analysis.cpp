#include "core/degree_analysis.hpp"

#include <utility>

namespace obscorr::core {

DegreeAnalysis analyze_degrees(const SnapshotData& snapshot) {
  return analyze_degrees(snapshot.spec.start_label, snapshot.source_packets);
}

DegreeAnalysis analyze_degrees(std::string label, const gbl::SparseVec& source_packets) {
  DegreeAnalysis out;
  out.label = std::move(label);
  out.histogram = stats::LogHistogram::from_sparse_vec(source_packets);
  out.dcp = out.histogram.differential_cumulative();
  out.fit = stats::fit_zipf_mandelbrot(out.histogram);
  return out;
}

std::vector<DegreeAnalysis> analyze_all_degrees(const StudyData& study) {
  std::vector<DegreeAnalysis> all;
  all.reserve(study.snapshots.size());
  for (const SnapshotData& snap : study.snapshots) {
    all.push_back(analyze_degrees(snap));
  }
  return all;
}

}  // namespace obscorr::core
