#include "core/prefix_analysis.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "stats/summary.hpp"

namespace obscorr::core {

PrefixAnalysis analyze_prefixes(const gbl::SparseVec& source_packets, int length) {
  return analyze_prefixes(source_packets.indices(), source_packets.values(), length);
}

PrefixAnalysis analyze_prefixes(std::span<const gbl::Index> idx,
                                std::span<const gbl::Value> val, int length) {
  OBSCORR_REQUIRE(length >= 1 && length <= 32, "analyze_prefixes: length must be in [1,32]");
  OBSCORR_REQUIRE(idx.size() == val.size(), "analyze_prefixes: index/value size mismatch");
  PrefixAnalysis out;
  out.length = length;
  const int shift = 32 - length;

  std::map<std::uint32_t, PrefixBucket> buckets;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::uint32_t bits = shift == 32 ? 0 : idx[i] >> shift;
    PrefixBucket& b = buckets[bits];
    b.prefix_bits = bits;
    ++b.sources;
    b.packets += val[i];
  }
  out.buckets.reserve(buckets.size());
  for (const auto& [bits, bucket] : buckets) out.buckets.push_back(bucket);
  std::sort(out.buckets.begin(), out.buckets.end(),
            [](const PrefixBucket& a, const PrefixBucket& b) { return a.packets > b.packets; });

  double total = 0.0, top10 = 0.0;
  std::vector<double> source_counts;
  source_counts.reserve(out.buckets.size());
  for (std::size_t i = 0; i < out.buckets.size(); ++i) {
    total += out.buckets[i].packets;
    if (i < 10) top10 += out.buckets[i].packets;
    source_counts.push_back(static_cast<double>(out.buckets[i].sources));
  }
  if (total > 0.0) out.top10_packet_share = top10 / total;
  if (!source_counts.empty()) out.source_gini = stats::gini_coefficient(source_counts);
  return out;
}

}  // namespace obscorr::core
