#include "core/window_series.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/parallel_capture.hpp"
#include "netgen/traffic.hpp"
#include "stats/histogram.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::core {

WindowSeries intra_month_series(const netgen::Scenario& scenario, int month, int n_windows,
                                ThreadPool& pool) {
  OBSCORR_REQUIRE(n_windows >= 2, "intra_month_series: need at least two windows");
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);

  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  cfg.cryptopan_seed = scenario.population.seed ^ 0xCA1DAULL;

  // Windows are independent given the (read-only) population: run them
  // as pool tasks into pre-sized slots, each through its own telescope
  // instance (the per-window stats never read cross-window scope state).
  (void)population.active(0, month);  // warm the activity chain once
  WindowSeries series;
  series.windows.resize(static_cast<std::size_t>(n_windows));
  parallel_for(pool, 0, static_cast<std::size_t>(n_windows), [&](std::size_t b, std::size_t e) {
    for (std::size_t w = b; w < e; ++w) {
      telescope::Telescope scope(cfg, pool);
      WindowStats stats;
      stats.salt = 0x71000 + static_cast<std::uint64_t>(w);
      const gbl::DcsrMatrix matrix =
          capture_window(scope, generator, month, scenario.nv(), stats.salt, pool);
      stats.aggregates = gbl::aggregate_quantities(matrix);
      stats.zipf = stats::fit_zipf_mandelbrot(
          stats::LogHistogram::from_sparse_vec(matrix.reduce_rows()));
      series.windows[w] = std::move(stats);
    }
  });

  // Stability summaries.
  double mean_sources = 0.0;
  double alpha_lo = series.windows[0].zipf.model.alpha;
  double alpha_hi = alpha_lo;
  double dmax_lo = series.windows[0].aggregates.max_source_packets;
  double dmax_hi = dmax_lo;
  for (const WindowStats& w : series.windows) {
    mean_sources += static_cast<double>(w.aggregates.unique_sources);
    alpha_lo = std::min(alpha_lo, w.zipf.model.alpha);
    alpha_hi = std::max(alpha_hi, w.zipf.model.alpha);
    dmax_lo = std::min(dmax_lo, w.aggregates.max_source_packets);
    dmax_hi = std::max(dmax_hi, w.aggregates.max_source_packets);
  }
  mean_sources /= static_cast<double>(series.windows.size());
  double var = 0.0;
  for (const WindowStats& w : series.windows) {
    const double dev = static_cast<double>(w.aggregates.unique_sources) - mean_sources;
    var += dev * dev;
  }
  var /= static_cast<double>(series.windows.size());
  series.source_count_cv = mean_sources > 0.0 ? std::sqrt(var) / mean_sources : 0.0;
  series.alpha_spread = alpha_hi - alpha_lo;
  series.dmax_ratio = dmax_lo > 0.0 ? dmax_hi / dmax_lo : 0.0;
  return series;
}

}  // namespace obscorr::core
