#pragma once
/// \file scaling_analysis.hpp
/// Window-size scaling relations. The paper leans on a prior observation
/// (its refs [13][36], and the §IV discussion of sqrt(N_V)): the number
/// of unique sources seen in a constant-packet window grows roughly like
/// sqrt(N_V), which is also its proposed origin story for the Fig. 4
/// visibility threshold. This module measures those scaling exponents
/// directly: capture nested windows of 2^k packets for a ladder of k and
/// regress log2(quantity) on k.

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "netgen/scenario.hpp"

namespace obscorr::core {

/// Quantities of one window size in the ladder.
struct ScalingPoint {
  int log2_nv = 0;                  ///< window size 2^k
  std::uint64_t unique_sources = 0;
  std::uint64_t unique_links = 0;
  std::uint64_t unique_destinations = 0;
  double max_source_packets = 0.0;
};

/// The measured ladder plus fitted scaling exponents
/// (quantity ≈ c · N_V^exponent).
struct ScalingAnalysis {
  std::vector<ScalingPoint> points;
  double source_exponent = 0.0;       ///< paper: ≈ 0.5
  double link_exponent = 0.0;
  double destination_exponent = 0.0;
  double dmax_exponent = 0.0;
};

/// Least-squares slope of log2(y) against log2(N_V) (helper, exposed for
/// unit testing).
double log_log_slope(const std::vector<int>& log2_x, const std::vector<double>& y);

/// Capture windows of 2^k packets for k in [log2_lo, log2_hi] from month
/// `month` of the scenario's world and fit the exponents. Each window is
/// captured independently (same month, distinct salts), all through the
/// full telescope pipeline.
ScalingAnalysis scaling_analysis(const netgen::Scenario& scenario, int month, int log2_lo,
                                 int log2_hi, ThreadPool& pool);

/// Overload reusing a prebuilt population (the archive query path, where
/// the world has already been constructed once).
ScalingAnalysis scaling_analysis(const netgen::Scenario& scenario,
                                 const netgen::Population& population, int month, int log2_lo,
                                 int log2_hi, ThreadPool& pool);

}  // namespace obscorr::core
