#include "core/parallel_capture.hpp"

#include <algorithm>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.hpp"

namespace obscorr::core {

gbl::DcsrMatrix capture_window(telescope::Telescope& scope,
                               const netgen::TrafficGenerator& generator, int month,
                               std::uint64_t valid_count, std::uint64_t salt, ThreadPool& pool) {
  using netgen::TrafficGenerator;
  const obs::Span span("core.capture_window", [&] { return std::to_string(month); });
  const std::uint64_t shards = TrafficGenerator::shard_count(valid_count);
  if (shards <= 1) {
    // Single-shard windows take the historical serial path straight into
    // the telescope: shard 0 *is* the unsharded stream, so this is
    // byte-identical to pre-shard capture.
    generator.stream_window_batched(month, valid_count, salt,
                                    [&](std::span<const Packet> b) { scope.capture_block(b); });
    return scope.finish_window();
  }

  if (pool.thread_count() == 1) {
    // One worker means one chunk: stream the sharded plan straight into
    // the telescope, skipping the private-capture/merge machinery. The
    // packet sequence is the concatenation of the shards in order —
    // exactly what a single ShardCapture over [0, shards) would absorb —
    // and it keeps the telescope's anonymization memo warm across
    // windows, which a per-window capture context would discard.
    const netgen::WindowPlan plan = generator.plan_window(month);
    netgen::ShardScratch scratch;
    for (std::size_t s = 0; s < shards; ++s) {
      generator.stream_shard_batched(
          plan, TrafficGenerator::shard_valid_packets(valid_count, s), salt, s, scratch,
          [&](std::span<const Packet> batch) { scope.capture_block(batch); });
    }
    return scope.finish_window();
  }

  // Shared read-only sampling plan; per-run private capture contexts.
  // parallel_for's static split assigns each run a contiguous shard
  // range. Runs are summed in first-shard order below, but any grouping
  // yields the same matrix: shard packet multisets are fixed by (seed,
  // month, salt, shard) and counts aggregate exactly.
  const netgen::WindowPlan plan = generator.plan_window(month);
  std::mutex collect_mutex;
  std::vector<std::pair<std::size_t, gbl::DcsrMatrix>> runs;
  // parallel_for hands out at most one contiguous chunk per worker.
  runs.reserve(static_cast<std::size_t>(pool.thread_count()));
  parallel_for(pool, 0, static_cast<std::size_t>(shards), [&](std::size_t b, std::size_t e) {
    telescope::ShardCapture capture(scope, pool);
    netgen::ShardScratch scratch;
    for (std::size_t s = b; s < e; ++s) {
      generator.stream_shard_batched(
          plan, TrafficGenerator::shard_valid_packets(valid_count, s), salt, s, scratch,
          [&](std::span<const Packet> batch) { capture.capture_block(batch); });
    }
    gbl::DcsrMatrix matrix = capture.finish();
    std::scoped_lock lock(collect_mutex);
    scope.absorb(std::move(capture));
    runs.emplace_back(b, std::move(matrix));
  });

  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  gbl::DcsrMatrix total = std::move(runs.front().second);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    total = gbl::DcsrMatrix::ewise_add(total, runs[i].second, pool);
  }
  return total;
}

}  // namespace obscorr::core
