#pragma once
/// \file window_series.hpp
/// Intra-month window-series analysis: take several consecutive
/// constant-packet windows inside one study month and track the network
/// quantities across them. The paper's methodology rests on constant
/// packet, variable time sampling making the heavy-tail statistics
/// stable (§I refs [22]-[24]); this module quantifies that stability —
/// the coefficient of variation of source counts and the spread of the
/// fitted Zipf–Mandelbrot parameters across adjacent windows.

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "gbl/quantities.hpp"
#include "netgen/scenario.hpp"
#include "stats/zipf.hpp"

namespace obscorr::core {

/// Per-window measurements.
struct WindowStats {
  std::uint64_t salt = 0;                 ///< window id within the month
  gbl::AggregateQuantities aggregates;    ///< all Table II scalars
  stats::ZipfFit zipf;                    ///< source-packet distribution fit
};

/// Stability summary across the windows.
struct WindowSeries {
  std::vector<WindowStats> windows;
  double source_count_cv = 0.0;  ///< coefficient of variation of unique sources
  double alpha_spread = 0.0;     ///< max - min fitted alpha_zm
  double dmax_ratio = 0.0;       ///< max/min of max-source-packets (tail volatility)
};

/// Capture `n_windows` consecutive windows of `scenario.nv()` packets in
/// study month `month` and summarize their stability. Deterministic.
WindowSeries intra_month_series(const netgen::Scenario& scenario, int month, int n_windows,
                                ThreadPool& pool);

}  // namespace obscorr::core
