#include "core/study.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/interrupt.hpp"
#include "core/parallel_capture.hpp"
#include "netgen/traffic.hpp"
#include "obs/span.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::core {

namespace {

telescope::TelescopeConfig scope_config_for(const netgen::Scenario& scenario) {
  telescope::TelescopeConfig config;
  config.darkspace = scenario.traffic.darkspace;
  config.legit_prefixes = {scenario.traffic.legit_prefix};
  config.cryptopan_seed = scenario.population.seed ^ 0xCA1DAULL;
  return config;
}

SnapshotData take_snapshot(const netgen::Scenario& scenario, const netgen::Population& population,
                           const netgen::CaidaSnapshotSpec& spec, telescope::Telescope& scope,
                           ThreadPool& pool) {
  const obs::Span span("study.snapshot", [&] { return spec.start_label; });
  SnapshotData snap;
  snap.spec = spec;
  snap.month_index = scenario.month_index(spec.month);
  snap.duration_sec = scenario.scaled_duration_sec(spec);

  const netgen::TrafficGenerator generator(population, scenario.traffic);
  const std::uint64_t before_discarded = scope.discarded_packets();
  snap.matrix =
      capture_window(scope, generator, snap.month_index, scenario.nv(), spec.salt, pool);
  snap.valid_packets = static_cast<std::uint64_t>(snap.matrix.reduce_sum());
  snap.discarded_packets = scope.discarded_packets() - before_discarded;
  OBSCORR_INVARIANT(snap.valid_packets == scenario.nv());

  snap.source_packets = snap.matrix.reduce_rows();

  // Trusted exchange (paper §I, sharing approach 1): the anonymized
  // source ids go back to the telescope operator for deanonymization,
  // producing the D4M associative array used for correlation.
  std::vector<d4m::Triple> triples;
  triples.reserve(snap.source_packets.nnz());
  const auto ids = snap.source_packets.indices();
  const auto counts = snap.source_packets.values();
  for (std::size_t i = 0; i < snap.source_packets.nnz(); ++i) {
    const Ipv4 original = scope.deanonymize(Ipv4(ids[i]));
    triples.push_back({original.to_string(), "packets", counts[i]});
  }
  snap.sources = d4m::AssocArray::from_triples(std::move(triples));
  return snap;
}

StudyData run_impl(const netgen::Scenario& scenario, ThreadPool& pool, bool with_honeyfarm) {
  const obs::Span span("study.run");
  OBSCORR_REQUIRE(!scenario.snapshots.empty(), "scenario needs at least one snapshot");
  StudyData study;
  study.scenario = scenario;
  study.population = std::make_shared<netgen::Population>(scenario.population);
  const netgen::Population& population = *study.population;

  const std::size_t n_snapshots = scenario.snapshots.size();
  const std::size_t n_months = with_honeyfarm ? scenario.months.size() : 0;
  study.snapshots.resize(n_snapshots);
  std::optional<honeyfarm::Honeyfarm> farm;
  if (with_honeyfarm) {
    study.months.resize(n_months);
    farm.emplace(population, scenario.visibility, scenario.population.seed ^ 0x64E4015EULL);
  }

  // Warm the activity chains up front: month m depends on month m-1, so
  // the lazy fill is inherently serial — doing it here keeps the pool
  // tasks from queueing on the population's activity mutex.
  int last_month = 0;
  for (const auto& spec : scenario.snapshots) {
    last_month = std::max(last_month, scenario.month_index(spec.month));
  }
  if (n_months > 0) last_month = std::max(last_month, static_cast<int>(n_months) - 1);
  (void)population.active(0, last_month);

  // Snapshots and honeyfarm months are independent observations of the
  // same (now read-only) world: run them as pool tasks into pre-sized
  // slots. Each chunk captures its snapshots through one Telescope —
  // CryptoPAN is a pure function of the key, so per-chunk instances
  // produce the very bytes the historical shared instance did, while
  // reuse within a chunk keeps the anonymization memo warm across
  // consecutive snapshots (on a 1-thread pool the single inline chunk
  // recovers the old one-scope-for-the-whole-study behavior exactly).
  parallel_for(pool, 0, n_snapshots + n_months, [&](std::size_t b, std::size_t e) {
    std::optional<telescope::Telescope> scope;
    for (std::size_t i = b; i < e; ++i) {
      // Cooperative stop between observations, never mid-frame: a
      // SIGINT/SIGTERM skips the remaining windows and run_impl throws a
      // clean diagnostic below instead of returning a partial study.
      if (interrupt::stop_requested()) continue;
      if (i < n_snapshots) {
        if (!scope) scope.emplace(scope_config_for(scenario), pool);
        study.snapshots[i] =
            take_snapshot(scenario, population, scenario.snapshots[i], *scope, pool);
      } else {
        const std::size_t m = i - n_snapshots;
        const obs::Span month_span("study.month", [&] { return std::to_string(m); });
        study.months[m] = farm->observe_month(scenario.months[m], static_cast<int>(m));
      }
    }
  });
  OBSCORR_REQUIRE(!interrupt::stop_requested(),
                  "study: interrupted — in-memory campaign discarded "
                  "(use `obscorr archive`, which checkpoints and resumes)");
  return study;
}

}  // namespace

StudyData run_study(const netgen::Scenario& scenario, ThreadPool& pool) {
  return run_impl(scenario, pool, /*with_honeyfarm=*/true);
}

StudyData run_telescope_only(const netgen::Scenario& scenario, ThreadPool& pool) {
  return run_impl(scenario, pool, /*with_honeyfarm=*/false);
}

SnapshotData run_snapshot(const netgen::Scenario& scenario, const netgen::Population& population,
                          std::size_t snapshot_index, ThreadPool& pool) {
  OBSCORR_REQUIRE(snapshot_index < scenario.snapshots.size(),
                  "run_snapshot: snapshot index out of range");
  telescope::Telescope scope(scope_config_for(scenario), pool);
  return take_snapshot(scenario, population, scenario.snapshots[snapshot_index], scope, pool);
}

honeyfarm::MonthlyObservation run_month(const netgen::Scenario& scenario,
                                        const netgen::Population& population,
                                        std::size_t month_index) {
  OBSCORR_REQUIRE(month_index < scenario.months.size(), "run_month: month index out of range");
  const honeyfarm::Honeyfarm farm(population, scenario.visibility,
                                  scenario.population.seed ^ 0x64E4015EULL);
  return farm.observe_month(scenario.months[month_index], static_cast<int>(month_index));
}

}  // namespace obscorr::core
