#pragma once
/// \file study.hpp
/// The end-to-end study pipeline: run the scenario's full observation
/// campaign — 15 honeyfarm months and 5 telescope constant-packet
/// snapshots over one consistent synthetic Internet — and return
/// everything the paper's analyses (Figs. 3-8, Table I) consume.
///
/// Pipeline per snapshot, mirroring the paper §I-II:
///   packet stream -> validity filter -> CryptoPAN -> 2^17-packet
///   GraphBLAS blocks -> hierarchical sum -> hypersparse matrix ->
///   Table II reductions -> trusted deanonymization -> D4M assoc array.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "d4m/assoc.hpp"
#include "gbl/dcsr.hpp"
#include "gbl/sparse_vec.hpp"
#include "honeyfarm/honeyfarm.hpp"
#include "netgen/population.hpp"
#include "netgen/scenario.hpp"

namespace obscorr::core {

/// One telescope snapshot, fully reduced.
struct SnapshotData {
  netgen::CaidaSnapshotSpec spec;
  int month_index = 0;            ///< 0-based study month of the window
  gbl::DcsrMatrix matrix;         ///< anonymized ext->int traffic matrix
  gbl::SparseVec source_packets;  ///< A·1 over anonymized source ids
  d4m::AssocArray sources;        ///< deanonymized ip -> "packets" assoc
  std::uint64_t valid_packets = 0;
  std::uint64_t discarded_packets = 0;
  double duration_sec = 0.0;      ///< scaled window duration
};

/// The full study: scenario + population + all observations.
struct StudyData {
  netgen::Scenario scenario;
  std::shared_ptr<netgen::Population> population;
  std::vector<SnapshotData> snapshots;
  std::vector<honeyfarm::MonthlyObservation> months;

  /// log2(sqrt(N_V)): the paper's brightness threshold coordinate.
  double half_log_nv() const { return static_cast<double>(scenario.population.log2_nv) / 2.0; }
};

/// Run the complete campaign. Deterministic in the scenario's seed.
StudyData run_study(const netgen::Scenario& scenario, ThreadPool& pool);

/// Run only the telescope snapshots (cheaper, for degree-distribution
/// work that does not need the honeyfarm).
StudyData run_telescope_only(const netgen::Scenario& scenario, ThreadPool& pool);

/// Run one telescope snapshot of the campaign against a prebuilt
/// population. Bit-identical to `run_study(...).snapshots[index]`:
/// CryptoPAN is a pure function of its key and the deanonymization
/// dictionary is rebuilt per window, so snapshots are independent. This
/// is the resume granularity of the study archive.
SnapshotData run_snapshot(const netgen::Scenario& scenario, const netgen::Population& population,
                          std::size_t snapshot_index, ThreadPool& pool);

/// Run one honeyfarm month; bit-identical to `run_study(...).months[index]`.
honeyfarm::MonthlyObservation run_month(const netgen::Scenario& scenario,
                                        const netgen::Population& population,
                                        std::size_t month_index);

}  // namespace obscorr::core
