#include "core/scaling_analysis.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/parallel_capture.hpp"
#include "gbl/quantities.hpp"
#include "netgen/traffic.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::core {

double log_log_slope(const std::vector<int>& log2_x, const std::vector<double>& y) {
  OBSCORR_REQUIRE(log2_x.size() == y.size(), "log_log_slope: size mismatch");
  OBSCORR_REQUIRE(log2_x.size() >= 2, "log_log_slope: need at least two points");
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(log2_x.size());
  for (std::size_t i = 0; i < log2_x.size(); ++i) {
    OBSCORR_REQUIRE(y[i] > 0.0, "log_log_slope: values must be positive");
    const double x = static_cast<double>(log2_x[i]);
    const double ly = std::log2(y[i]);
    sx += x;
    sy += ly;
    sxx += x * x;
    sxy += x * ly;
  }
  const double denom = n * sxx - sx * sx;
  OBSCORR_REQUIRE(denom > 0.0, "log_log_slope: degenerate x values");
  return (n * sxy - sx * sy) / denom;
}

ScalingAnalysis scaling_analysis(const netgen::Scenario& scenario, int month, int log2_lo,
                                 int log2_hi, ThreadPool& pool) {
  const netgen::Population population(scenario.population);
  return scaling_analysis(scenario, population, month, log2_lo, log2_hi, pool);
}

ScalingAnalysis scaling_analysis(const netgen::Scenario& scenario,
                                 const netgen::Population& population, int month, int log2_lo,
                                 int log2_hi, ThreadPool& pool) {
  OBSCORR_REQUIRE(log2_lo >= 8, "scaling_analysis: windows below 2^8 are all noise");
  OBSCORR_REQUIRE(log2_hi > log2_lo, "scaling_analysis: need an increasing ladder");
  OBSCORR_REQUIRE(log2_hi <= static_cast<int>(scenario.population.log2_nv) + 2,
                  "scaling_analysis: ladder far beyond the scenario scale");

  const netgen::TrafficGenerator generator(population, scenario.traffic);
  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  cfg.cryptopan_seed = scenario.population.seed ^ 0xCA1DAULL;

  // Ladder rungs are independent windows: run them as pool tasks into
  // pre-sized slots, each through its own telescope instance.
  (void)population.active(0, month);  // warm the activity chain once
  const std::size_t rungs = static_cast<std::size_t>(log2_hi - log2_lo + 1);
  ScalingAnalysis analysis;
  analysis.points.resize(rungs);
  parallel_for(pool, 0, rungs, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) {
      const int k = log2_lo + static_cast<int>(r);
      telescope::Telescope scope(cfg, pool);
      const gbl::DcsrMatrix matrix =
          capture_window(scope, generator, month, 1ULL << k,
                         /*salt=*/0x5CA1E000 + static_cast<std::uint64_t>(k), pool);
      const gbl::AggregateQuantities q = gbl::aggregate_quantities(matrix);
      analysis.points[r] = {k, q.unique_sources, q.unique_links, q.unique_destinations,
                            q.max_source_packets};
    }
  });

  std::vector<int> ks;
  std::vector<double> sources, links, destinations, dmax;
  for (const auto& point : analysis.points) {
    ks.push_back(point.log2_nv);
    sources.push_back(static_cast<double>(point.unique_sources));
    links.push_back(static_cast<double>(point.unique_links));
    destinations.push_back(static_cast<double>(point.unique_destinations));
    dmax.push_back(point.max_source_packets);
  }
  analysis.source_exponent = log_log_slope(ks, sources);
  analysis.link_exponent = log_log_slope(ks, links);
  analysis.destination_exponent = log_log_slope(ks, destinations);
  analysis.dmax_exponent = log_log_slope(ks, dmax);
  return analysis;
}

}  // namespace obscorr::core
