#pragma once
/// \file parallel_capture.hpp
/// Deterministic parallel capture of one telescope window.
///
/// The window's valid-packet budget splits into fixed generation shards
/// (`TrafficGenerator::kShardValidPackets` each); every shard's packets
/// are a pure function of (seed, month, salt, shard index). Workers
/// generate and capture contiguous shard runs into private
/// `ShardCapture` contexts, and the per-context matrices are summed in
/// run order. Because the matrix is an exact integer aggregation of the
/// shard packet multisets, the result is byte-identical at every thread
/// count — and, for single-shard windows (<= 2^16 valid packets), to the
/// historical serial capture.

#include <cstdint>

#include "common/thread_pool.hpp"
#include "gbl/dcsr.hpp"
#include "netgen/traffic.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::core {

/// Capture one constant-packet window of `valid_count` valid packets in
/// study month `month` through `scope`. Returns the window's anonymized
/// traffic matrix; the deanonymization dictionary and the discard
/// counter fold into `scope` (so `scope.deanonymize` covers every source
/// the window observed). Bit-identical at any `pool` size.
gbl::DcsrMatrix capture_window(telescope::Telescope& scope,
                               const netgen::TrafficGenerator& generator, int month,
                               std::uint64_t valid_count, std::uint64_t salt, ThreadPool& pool);

}  // namespace obscorr::core
