#pragma once
/// \file degree_analysis.hpp
/// Source-packet degree-distribution analysis (paper Fig. 3): log-binned
/// differential cumulative probability of the Table II source-packet
/// reduction, with the two-parameter Zipf–Mandelbrot fit.

#include <string>
#include <vector>

#include "core/study.hpp"
#include "stats/histogram.hpp"
#include "stats/zipf.hpp"

namespace obscorr::core {

/// The Fig. 3 content for one snapshot.
struct DegreeAnalysis {
  std::string label;                     ///< snapshot start label
  stats::LogHistogram histogram;         ///< source-packet histogram
  std::vector<double> dcp;               ///< D_t(d_i) per log2 bin
  stats::ZipfFit fit;                    ///< Zipf–Mandelbrot fit
};

/// Analyze one snapshot's source-packet distribution.
DegreeAnalysis analyze_degrees(const SnapshotData& snapshot);

/// Component-level overload for the archive query path: the Table II
/// source reduction is all this analysis needs, so archived reductions
/// feed it directly without materializing a SnapshotData.
DegreeAnalysis analyze_degrees(std::string label, const gbl::SparseVec& source_packets);

/// Analyze every snapshot in the study.
std::vector<DegreeAnalysis> analyze_all_degrees(const StudyData& study);

}  // namespace obscorr::core
