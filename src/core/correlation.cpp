#include "core/correlation.hpp"

#include <algorithm>
#include <cmath>

#include "common/binning.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"

namespace obscorr::core {

std::vector<std::string> bin_sources(const SnapshotData& snapshot, int bin) {
  std::vector<std::string> keys;
  for (const d4m::Triple& t : snapshot.sources.to_triples()) {
    if (t.col != "packets") continue;
    if (t.val >= 1.0 && log2_bin(static_cast<std::uint64_t>(t.val)) == bin) {
      keys.push_back(t.row);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<PeakCorrelationBin> peak_correlation(const SnapshotData& snapshot,
                                                 const honeyfarm::MonthlyObservation& month,
                                                 double half_log_nv) {
  OBSCORR_REQUIRE(half_log_nv > 0.0, "half_log_nv must be positive");
  std::vector<PeakCorrelationBin> bins;
  for (const d4m::Triple& t : snapshot.sources.to_triples()) {
    if (t.col != "packets" || t.val < 1.0) continue;
    const int b = log2_bin(static_cast<std::uint64_t>(t.val));
    if (bins.size() <= static_cast<std::size_t>(b)) {
      bins.resize(static_cast<std::size_t>(b) + 1);
      for (std::size_t i = 0; i < bins.size(); ++i) bins[i].bin = static_cast<int>(i);
    }
    auto& cell = bins[static_cast<std::size_t>(b)];
    ++cell.caida_sources;
    if (month.sources.has_row(t.row)) ++cell.matched;
  }
  for (auto& cell : bins) {
    if (cell.caida_sources > 0) {
      cell.fraction = static_cast<double>(cell.matched) / static_cast<double>(cell.caida_sources);
    }
    // The paper's empirical law evaluated at the bin centre.
    cell.model = std::min(1.0, (static_cast<double>(cell.bin) + 0.5) / half_log_nv);
  }
  return bins;
}

std::vector<PeakCorrelationBin> peak_correlation_all(const StudyData& study) {
  return peak_correlation_all(study.snapshots, study.months, study.half_log_nv());
}

std::vector<PeakCorrelationBin> peak_correlation_all(
    std::span<const SnapshotData> snapshots,
    std::span<const honeyfarm::MonthlyObservation> months, double half_log_nv) {
  std::vector<PeakCorrelationBin> total;
  for (const SnapshotData& snap : snapshots) {
    OBSCORR_REQUIRE(static_cast<std::size_t>(snap.month_index) < months.size(),
                    "snapshot month outside honeyfarm coverage");
    const auto bins = peak_correlation(
        snap, months[static_cast<std::size_t>(snap.month_index)], half_log_nv);
    if (total.size() < bins.size()) {
      const std::size_t old = total.size();
      total.resize(bins.size());
      for (std::size_t i = old; i < total.size(); ++i) {
        total[i].bin = static_cast<int>(i);
        total[i].model = bins[i].model;
      }
    }
    for (std::size_t i = 0; i < bins.size(); ++i) {
      total[i].caida_sources += bins[i].caida_sources;
      total[i].matched += bins[i].matched;
    }
  }
  for (auto& cell : total) {
    if (cell.caida_sources > 0) {
      cell.fraction = static_cast<double>(cell.matched) / static_cast<double>(cell.caida_sources);
    }
  }
  return total;
}

std::optional<TemporalCorrelation> temporal_correlation(const SnapshotData& snapshot,
                                                        const StudyData& study, int bin,
                                                        std::uint64_t min_sources) {
  return temporal_correlation(snapshot, study.months, bin, min_sources);
}

std::optional<TemporalCorrelation> temporal_correlation(
    const SnapshotData& snapshot, std::span<const honeyfarm::MonthlyObservation> months,
    int bin, std::uint64_t min_sources) {
  const std::vector<std::string> tracked = bin_sources(snapshot, bin);
  if (tracked.size() < min_sources) return std::nullopt;

  TemporalCorrelation out;
  out.bin = bin;
  out.bin_sources = tracked.size();
  for (std::size_t m = 0; m < months.size(); ++m) {
    std::uint64_t matched = 0;
    for (const std::string& ip : tracked) {
      if (months[m].sources.has_row(ip)) ++matched;
    }
    out.series.dt.push_back(static_cast<double>(static_cast<int>(m) - snapshot.month_index));
    out.series.fraction.push_back(static_cast<double>(matched) /
                                  static_cast<double>(tracked.size()));
  }
  out.modified_cauchy = stats::fit_modified_cauchy(out.series);
  out.cauchy = stats::fit_cauchy(out.series);
  out.gaussian = stats::fit_gaussian(out.series);
  return out;
}

std::vector<FitGridCell> fit_grid(const StudyData& study, std::uint64_t min_sources) {
  return fit_grid(study.snapshots, study.months, min_sources);
}

std::vector<FitGridCell> fit_grid(const StudyData& study, std::uint64_t min_sources,
                                  ThreadPool& pool) {
  return fit_grid(study.snapshots, study.months, min_sources, pool);
}

std::vector<FitGridCell> fit_grid(std::span<const SnapshotData> snapshots,
                                  std::span<const honeyfarm::MonthlyObservation> months,
                                  std::uint64_t min_sources) {
  return fit_grid(snapshots, months, min_sources, ThreadPool::global());
}

std::vector<FitGridCell> fit_grid(std::span<const SnapshotData> snapshots,
                                  std::span<const honeyfarm::MonthlyObservation> months,
                                  std::uint64_t min_sources, ThreadPool& pool) {
  const obs::Span span("study.fit_grid");
  // Enumerate the (snapshot, bin) cells up front, fit them in parallel
  // into per-cell slots, then keep the populated cells in enumeration
  // order — the exact sequence the serial loop produced.
  struct CellRef {
    std::size_t snapshot;
    int bin;
  };
  std::vector<CellRef> cells;
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    const int max_bin = log2_bin(static_cast<std::uint64_t>(
        std::max(1.0, snapshots[s].source_packets.reduce_max())));
    for (int bin = 0; bin <= max_bin; ++bin) cells.push_back({s, bin});
  }
  std::vector<std::optional<TemporalCorrelation>> curves(cells.size());
  parallel_for(pool, 0, cells.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      curves[i] = temporal_correlation(snapshots[cells[i].snapshot], months, cells[i].bin,
                                       min_sources);
    }
  });
  std::vector<FitGridCell> grid;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (curves[i].has_value()) grid.push_back({cells[i].snapshot, std::move(*curves[i])});
  }
  return grid;
}

}  // namespace obscorr::core
