#pragma once
/// \file prefix_analysis.hpp
/// Prefix-level aggregation of traffic matrices. Because CryptoPAN is
/// prefix-preserving, grouping anonymized sources by their top-k bits
/// yields exactly the same concentration structure as grouping the raw
/// addresses — subnet-level analyses survive the trusted-sharing
/// pipeline. This module aggregates a snapshot's sources into /len
/// prefixes and reports the concentration profile (how much traffic the
/// busiest networks carry), the statistic behind "which networks house
/// the scanners".

#include <cstdint>
#include <span>
#include <vector>

#include "gbl/sparse_vec.hpp"

namespace obscorr::core {

/// One aggregated prefix.
struct PrefixBucket {
  std::uint32_t prefix_bits = 0;  ///< the top `length` bits, right-aligned
  std::uint64_t sources = 0;      ///< unique sources inside the prefix
  double packets = 0.0;           ///< total packets from the prefix
};

/// Aggregation result, buckets sorted by descending packets.
struct PrefixAnalysis {
  int length = 0;
  std::vector<PrefixBucket> buckets;
  double top10_packet_share = 0.0;  ///< fraction of packets in the 10 busiest
  double source_gini = 0.0;         ///< inequality of per-prefix source counts
};

/// Aggregate per-source packet counts (`A·1`) into /length prefixes.
/// Works identically on raw and CryptoPAN-anonymized ids.
PrefixAnalysis analyze_prefixes(const gbl::SparseVec& source_packets, int length);

/// Span overload for the archive query path: consumes the reduction
/// arrays in place (e.g. mmap'd archive entries), no SparseVec copy.
PrefixAnalysis analyze_prefixes(std::span<const gbl::Index> source_ids,
                                std::span<const gbl::Value> source_counts, int length);

}  // namespace obscorr::core
