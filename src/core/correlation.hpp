#pragma once
/// \file correlation.hpp
/// Cross-observatory correlation analyses — the paper's §III results.
///
///  * `peak_correlation`     — Fig. 4: fraction of telescope sources seen
///    by the honeyfarm the same month, per brightness bin, with the
///    empirical log-law overlay.
///  * `temporal_correlation` — Figs. 5/6: fraction of one snapshot's
///    sources (in one brightness bin) found in each study month, plus
///    Gaussian / Cauchy / modified-Cauchy fits.
///  * `fit_grid`             — Figs. 7/8: best-fit modified-Cauchy (α, β)
///    across all snapshots and brightness bins.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/study.hpp"
#include "stats/temporal.hpp"

namespace obscorr::core {

/// One brightness bin of the same-month correlation (Fig. 4).
struct PeakCorrelationBin {
  int bin = 0;                     ///< log2 bin: d in [2^bin, 2^(bin+1))
  std::uint64_t caida_sources = 0; ///< telescope sources in the bin
  std::uint64_t matched = 0;       ///< of those, present in the honeyfarm month
  double fraction = 0.0;           ///< matched / caida_sources
  double model = 0.0;              ///< paper law: min(1, (bin+0.5)/log2(sqrt(N_V)))
};

/// Fig. 4 for one snapshot against one honeyfarm month.
std::vector<PeakCorrelationBin> peak_correlation(const SnapshotData& snapshot,
                                                 const honeyfarm::MonthlyObservation& month,
                                                 double half_log_nv);

/// Fig. 4 averaged over every snapshot paired with its coeval month.
std::vector<PeakCorrelationBin> peak_correlation_all(const StudyData& study);

/// Component-level overload for the archive query path: operates on the
/// observation series directly, no Population or StudyData required.
std::vector<PeakCorrelationBin> peak_correlation_all(
    std::span<const SnapshotData> snapshots,
    std::span<const honeyfarm::MonthlyObservation> months, double half_log_nv);

/// One temporal-correlation curve (Figs. 5/6) with its fits.
struct TemporalCorrelation {
  int bin = 0;                        ///< brightness bin of the tracked sources
  std::uint64_t bin_sources = 0;      ///< telescope sources tracked
  stats::TemporalSeries series;       ///< fraction seen per month offset
  stats::TemporalFit<stats::ModifiedCauchy> modified_cauchy;
  stats::TemporalFit<stats::Cauchy> cauchy;
  stats::TemporalFit<stats::Gaussian> gaussian;
};

/// Track the snapshot's bin-`bin` sources across every study month.
/// Returns nullopt when the bin holds fewer than `min_sources` sources
/// (fits on a handful of sources are noise).
std::optional<TemporalCorrelation> temporal_correlation(const SnapshotData& snapshot,
                                                        const StudyData& study, int bin,
                                                        std::uint64_t min_sources = 20);

/// Component-level overload (archive query path).
std::optional<TemporalCorrelation> temporal_correlation(
    const SnapshotData& snapshot, std::span<const honeyfarm::MonthlyObservation> months,
    int bin, std::uint64_t min_sources = 20);

/// One cell of the Fig. 6 grid / Figs. 7-8 parameter tables.
struct FitGridCell {
  std::size_t snapshot = 0;  ///< index into study.snapshots
  TemporalCorrelation curve;
};

/// All (snapshot × brightness-bin) temporal fits with enough sources.
/// Cells are embarrassingly parallel: the pool overloads fit them as
/// `parallel_for` tasks into slots ordered (snapshot, bin) — identical
/// output at any thread count; the pool-less overloads run on the
/// process-global pool.
std::vector<FitGridCell> fit_grid(const StudyData& study, std::uint64_t min_sources = 20);
std::vector<FitGridCell> fit_grid(const StudyData& study, std::uint64_t min_sources,
                                  ThreadPool& pool);

/// Component-level overloads (archive query path).
std::vector<FitGridCell> fit_grid(std::span<const SnapshotData> snapshots,
                                  std::span<const honeyfarm::MonthlyObservation> months,
                                  std::uint64_t min_sources = 20);
std::vector<FitGridCell> fit_grid(std::span<const SnapshotData> snapshots,
                                  std::span<const honeyfarm::MonthlyObservation> months,
                                  std::uint64_t min_sources, ThreadPool& pool);

/// Sources of `snapshot` whose packet count lies in [2^bin, 2^(bin+1)),
/// as dotted-quad keys (helper shared by the analyses and tests).
std::vector<std::string> bin_sources(const SnapshotData& snapshot, int bin);

}  // namespace obscorr::core
