#pragma once
/// \file compact.hpp
/// Tiered retention: rewrite an archive into a new log generation with
/// old windows block-compressed (OBSAENT2) and recent windows kept raw
/// for zero-copy mmap reads.
///
/// Compaction never touches the live generation's files: it builds the
/// complete next-generation log beside them, then publishes one
/// manifest naming it (tmp + rename — the same atomic commit every
/// other archive mutation uses). A crash at any point leaves the
/// previous generation fully readable; only after the manifest lands
/// are the superseded logs deleted (best-effort — stale logs are
/// harmless, the manifest names the one that counts). Live readers pick
/// the new generation up on their next refresh(); a LiveArchive opened
/// afterwards appends raw frames to the new generation's tail, so the
/// ingest path's no-torn-reads guarantee is untouched.

#include <cstddef>
#include <cstdint>
#include <string>

namespace obscorr::archive {

struct CompactOptions {
  /// Windows within this many of the newest stay raw (the hot tail the
  /// service is still hammering); snapshots, months, and older windows
  /// are compression candidates.
  std::size_t keep_recent = 8;
  /// Compress every eligible entry regardless of recency (the CI
  /// forced-compression leg, and cold archives headed for storage).
  bool compress_all = false;
};

struct CompactStats {
  std::uint64_t entries_total = 0;
  std::uint64_t entries_compressed = 0;  ///< compressed in the new log
  std::uint64_t raw_bytes = 0;           ///< decoded payload bytes
  std::uint64_t stored_bytes_before = 0;
  std::uint64_t stored_bytes_after = 0;
  std::uint32_t generation = 0;  ///< generation the rewrite published

  double ratio() const {
    return stored_bytes_after == 0
               ? 1.0
               : static_cast<double>(raw_bytes) / static_cast<double>(stored_bytes_after);
  }
};

/// Rewrite `dir` as described above. Fully verifies the source archive
/// first (same guarantees as ArchiveReader); entries that are already
/// compressed copy through without a decode cycle, and entries the
/// codec cannot shrink stay raw. Decoded bytes are preserved exactly:
/// every read path is byte-identical before and after.
CompactStats compact_archive(const std::string& dir, const CompactOptions& opts = {});

}  // namespace obscorr::archive
