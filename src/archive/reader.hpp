#pragma once
/// \file reader.hpp
/// The archive's read side. Opening an archive parses and CRC-verifies
/// the manifest, maps the entry log (mmap where available), bounds-checks
/// every catalog row against the mapping, and verifies every entry
/// payload checksum up front — after a successful open, any single-byte
/// corruption anywhere in the manifest or an entry payload has already
/// been rejected with a clear std::invalid_argument, never a crash and
/// never a silently wrong answer.
///
/// Raw (OBSAENT1) entries are served as read-only spans straight over
/// the mapping: the zero-copy query path. Compressed (OBSAENT2) entries
/// decode into heap pages retained by a per-reader LRU page cache
/// (page_cache.hpp), so a hot window is decoded once and then served at
/// memory speed; the returned PayloadView keeps the page alive for as
/// long as the caller holds it, independent of cache eviction.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "archive/mapped_file.hpp"
#include "archive/page_cache.hpp"
#include "archive/writer.hpp"  // EntryInfo, ParsedManifest, file names

namespace obscorr::archive {

/// Decoded payload bytes plus whatever owns them: nothing for raw
/// entries (the reader's mapping outlives the view), a cache page for
/// compressed entries. Converts implicitly to a byte span, so span
/// call sites read either kind — but a caller that stores the span
/// beyond the expression must store the view (or the page) with it.
struct PayloadView {
  std::span<const std::byte> bytes;
  CachePage page;  ///< null for zero-copy raw entries

  operator std::span<const std::byte>() const { return bytes; }
  const std::byte* data() const { return bytes.data(); }
  std::size_t size() const { return bytes.size(); }
  bool empty() const { return bytes.empty(); }
};

/// Read-only, integrity-checked view of a completed archive directory.
class ArchiveReader {
 public:
  /// Open and fully verify `dir`; throws std::invalid_argument when the
  /// directory, manifest, or any entry is missing, truncated, or fails
  /// its checksum.
  explicit ArchiveReader(const std::string& dir);

  std::uint64_t scenario_hash() const { return scenario_hash_; }

  const std::vector<EntryInfo>& entries() const { return entries_; }
  bool has(std::string_view name) const;

  /// Decoded payload bytes of `name` — zero-copy over the mapping for
  /// raw entries (8-byte aligned start), a cached decode for compressed
  /// ones; throws when the entry does not exist or its compressed
  /// container is malformed.
  PayloadView payload(std::string_view name) const;

  /// Stored (possibly compressed) payload bytes of `name`, straight
  /// over the mapping with no decode — what `archive compact` copies
  /// through when an entry is already compressed.
  std::span<const std::byte> stored_payload(std::string_view name) const;

  /// Re-read the manifest and absorb entries appended (and published)
  /// since this reader last looked, without remapping the already-served
  /// prefix of the log: only the new tail `[old data size, new data
  /// size)` is mapped, as an additional segment, and only the new bytes
  /// are checksummed (the whole-log CRC extends incrementally). Returns
  /// the number of new entries (0 when the manifest is unchanged).
  ///
  /// When the manifest names a different log generation (`archive
  /// compact` ran since the last look), the new generation's log is
  /// opened and verified in full instead; the previous generation's
  /// mappings are retired, not unmapped, so every span handed out
  /// before the refresh stays valid afterwards — the same lifetime
  /// contract as the append path.
  ///
  /// All-or-nothing: the manifest is published by atomic rename, so a
  /// refresh sees either the previous complete catalog or the new one —
  /// never a torn intermediate.
  ///
  /// Not thread-safe against concurrent queries on the same object;
  /// callers serving refresh concurrently with reads (the service) hold
  /// a shared/exclusive lock around payload()/refresh().
  std::size_t refresh();

  /// True when the entry log is served by mmap (false: owned buffer).
  bool mapped() const { return log_.mapped(); }

  std::uint32_t generation() const { return generation_; }

  const std::string& dir() const { return dir_; }

  /// The decoded-page cache (test/diagnostic use; may be consulted but
  /// not replaced).
  const PageCache& cache() const { return *cache_; }

 private:
  /// A mapping of `[base, base + map.size())` of the entry log, added by
  /// refresh() for bytes beyond the prefix mapped at open.
  struct TailSegment {
    std::uint64_t base = 0;
    MappedFile map;
  };

  /// Open and verify the log generation `m` names, replacing the
  /// current mappings (which the caller must have retired first when
  /// views may be outstanding).
  void attach(ParsedManifest m);
  const EntryInfo& find_entry(std::string_view name) const;
  std::span<const std::byte> locate(const EntryInfo& e) const;

  std::string dir_;
  std::uint64_t scenario_hash_ = 0;
  std::uint32_t generation_ = 0;
  std::vector<EntryInfo> entries_;
  MappedFile log_;
  std::uint64_t data_size_ = 0;  ///< published log bytes covered so far
  std::uint32_t log_crc_ = 0;    ///< whole-log CRC at data_size_
  std::vector<TailSegment> tails_;
  /// Mappings of superseded generations, kept alive so spans handed out
  /// before a cross-generation refresh() remain valid.
  std::vector<MappedFile> retired_;
  std::unique_ptr<PageCache> cache_;
};

}  // namespace obscorr::archive
