#pragma once
/// \file reader.hpp
/// The archive's read side. Opening an archive parses and CRC-verifies
/// the manifest, maps the entry log (mmap where available), bounds-checks
/// every catalog row against the mapping, and verifies every entry
/// payload checksum up front — after a successful open, any single-byte
/// corruption anywhere in the manifest or an entry payload has already
/// been rejected with a clear std::invalid_argument, never a crash and
/// never a silently wrong answer. Entry payloads are then served as
/// read-only spans over the mapping: the zero-copy query path.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "archive/mapped_file.hpp"
#include "archive/writer.hpp"  // EntryInfo, file-name constants

namespace obscorr::archive {

/// Read-only, integrity-checked view of a completed archive directory.
class ArchiveReader {
 public:
  /// Open and fully verify `dir`; throws std::invalid_argument when the
  /// directory, manifest, or any entry is missing, truncated, or fails
  /// its checksum.
  explicit ArchiveReader(const std::string& dir);

  std::uint64_t scenario_hash() const { return scenario_hash_; }

  const std::vector<EntryInfo>& entries() const { return entries_; }
  bool has(std::string_view name) const;

  /// Payload bytes of `name`, zero-copy over the mapping (8-byte aligned
  /// start); throws when the entry does not exist.
  std::span<const std::byte> payload(std::string_view name) const;

  /// Re-read the manifest and absorb entries appended (and published)
  /// since this reader last looked, without remapping the already-served
  /// prefix of the log: only the new tail `[old data size, new data
  /// size)` is mapped, as an additional segment, and only the new bytes
  /// are checksummed (the whole-log CRC extends incrementally). Returns
  /// the number of new entries (0 when the manifest is unchanged).
  ///
  /// All-or-nothing: the manifest is published by atomic rename, so a
  /// refresh sees either the previous complete catalog or the new one —
  /// never a torn intermediate — and every span handed out before a
  /// refresh stays valid afterwards (segments are only ever added).
  ///
  /// Not thread-safe against concurrent queries on the same object;
  /// callers serving refresh concurrently with reads (the service) hold
  /// a shared/exclusive lock around payload()/refresh().
  std::size_t refresh();

  /// True when the entry log is served by mmap (false: owned buffer).
  bool mapped() const { return log_.mapped(); }

  const std::string& dir() const { return dir_; }

 private:
  /// A mapping of `[base, base + map.size())` of the entry log, added by
  /// refresh() for bytes beyond the prefix mapped at open.
  struct TailSegment {
    std::uint64_t base = 0;
    MappedFile map;
  };

  std::string dir_;
  std::uint64_t scenario_hash_ = 0;
  std::vector<EntryInfo> entries_;
  MappedFile log_;
  std::uint64_t data_size_ = 0;  ///< published log bytes covered so far
  std::uint32_t log_crc_ = 0;    ///< whole-log CRC at data_size_
  std::vector<TailSegment> tails_;
};

}  // namespace obscorr::archive
