#include "archive/checksum.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define OBSCORR_CRC32C_HW 1
#endif

namespace obscorr::archive {

namespace {

/// Byte-at-a-time lookup table for the reflected Castagnoli polynomial,
/// built once at first use — the portable fallback and the tail handler
/// for the hardware path.
const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32c_sw(std::span<const std::byte> bytes, std::uint32_t crc) {
  const auto& table = crc32c_table();
  for (const std::byte b : bytes) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#ifdef OBSCORR_CRC32C_HW

/// SSE4.2 crc32 instruction path, ~an order of magnitude faster than the
/// table — opening an archive checksums the entire entry log, so this is
/// directly on the `--from` latency path.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(std::span<const std::byte> bytes,
                                                          std::uint32_t crc) {
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
#if defined(__x86_64__)
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
#else
  while (n >= 4) {
    std::uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    crc = _mm_crc32_u32(crc, chunk);
    p += 4;
    n -= 4;
  }
#endif
  while (n > 0) {
    crc = _mm_crc32_u8(crc, static_cast<std::uint8_t>(*p));
    ++p;
    --n;
  }
  return crc;
}

bool crc32c_hw_available() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

#endif  // OBSCORR_CRC32C_HW

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
#ifdef OBSCORR_CRC32C_HW
  if (crc32c_hw_available()) {
    crc = crc32c_hw(bytes, crc);
  } else {
    crc = crc32c_sw(bytes, crc);
  }
#else
  crc = crc32c_sw(bytes, crc);
#endif
  return ~crc;
}

std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed) {
  return crc32c(std::as_bytes(std::span<const char>(bytes.data(), bytes.size())), seed);
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace obscorr::archive
