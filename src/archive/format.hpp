#pragma once
/// \file format.hpp
/// Low-level byte plumbing for the archive format: a little-endian
/// payload writer that appends into an in-memory buffer (so the frame
/// checksum can be computed before anything touches disk) and a
/// bounds-checked reader over a read-only byte span (the mmap view).
///
/// All multi-byte integers are little-endian; doubles are the IEEE-754
/// bit pattern of the value, little-endian. Array sections inside
/// payloads are 8-byte aligned relative to the payload start so that a
/// payload mapped at an 8-aligned file offset can be read through typed
/// spans with no realignment copy.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace obscorr::archive {

static_assert(std::endian::native == std::endian::little,
              "the archive format is little-endian; big-endian hosts need byte swaps");

/// Append-only little-endian serializer into a growable byte buffer.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  /// Raw bytes of a trivially-copyable array, no length prefix.
  template <typename T>
  void array(std::span<const T> values) {
    raw(values.data(), values.size() * sizeof(T));
  }

  /// Zero-pad so the next byte lands on an 8-byte boundary.
  void pad8() {
    while (buf_.size() % 8 != 0) buf_.push_back('\0');
  }

  std::size_t size() const { return buf_.size(); }
  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  std::string buf_;
};

/// Bounds-checked little-endian reader over a fixed byte span. Every
/// accessor throws std::invalid_argument on overrun, so hostile payloads
/// fail cleanly instead of reading out of the mapping.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return pod<std::uint32_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }
  std::int32_t i32() { return pod<std::int32_t>(); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Length-prefixed string; `max_len` guards against hostile lengths.
  std::string str(std::size_t max_len = 1 << 20) {
    const std::uint32_t n = u32();
    OBSCORR_REQUIRE(n <= max_len, "archive: string length exceeds limit");
    const auto raw = take(n);
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

  /// Typed span over the next `count` elements, zero-copy. The caller is
  /// responsible for element alignment (sections are 8-aligned by
  /// construction; validated here).
  template <typename T>
  std::span<const T> array(std::size_t count) {
    OBSCORR_REQUIRE(count <= remaining() / sizeof(T), "archive: array exceeds payload");
    const auto raw = take(count * sizeof(T));
    OBSCORR_REQUIRE(reinterpret_cast<std::uintptr_t>(raw.data()) % alignof(T) == 0,
                    "archive: misaligned array section");
    return {reinterpret_cast<const T*>(raw.data()), count};
  }

  /// Skip zero padding up to the next 8-byte boundary relative to the
  /// payload start.
  void pad8() {
    while (pos_ % 8 != 0) {
      OBSCORR_REQUIRE(u8() == 0, "archive: nonzero padding byte");
    }
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  template <typename T>
  T pod() {
    const auto raw = take(sizeof(T));
    T value;
    std::memcpy(&value, raw.data(), sizeof(T));
    return value;
  }

  std::span<const std::byte> take(std::size_t n) {
    OBSCORR_REQUIRE(n <= remaining(), "archive: truncated payload");
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace obscorr::archive
