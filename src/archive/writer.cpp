#include "archive/writer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "archive/checksum.hpp"
#include "archive/codec.hpp"
#include "archive/format.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

namespace {

constexpr std::string_view kFrameMagic = "OBSAENT1";
constexpr std::string_view kFrameMagic2 = "OBSAENT2";
constexpr std::string_view kManifestMagic = "OBSARCH1";
constexpr std::uint32_t kManifestVersion2 = 2;
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxEntries = 1u << 20;
constexpr std::size_t kFrameHeaderBytes = 32;

std::size_t padded8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Header bytes [magic, name_len, reserved, payload_size, payload_crc]
/// in frame order — the region the header CRC covers (with the name).
std::string frame_header_prefix(std::string_view magic, std::string_view name,
                                std::uint64_t payload_size, std::uint32_t payload_crc) {
  PayloadWriter w;
  w.array(std::span<const char>(magic.data(), magic.size()));
  w.u32(static_cast<std::uint32_t>(name.size()));
  w.u32(0);
  w.u64(payload_size);
  w.u32(payload_crc);
  return w.take();
}

}  // namespace

std::string log_file_name(std::uint32_t generation) {
  if (generation == 0) return kEntryLogName;
  return "entries." + std::to_string(generation) + ".dat";
}

std::string encode_manifest(std::uint64_t scenario_hash, std::uint64_t data_size,
                            std::uint32_t log_crc, std::span<const EntryInfo> entries,
                            std::uint32_t generation) {
  // Version 1 manifests predate compression; emitting them for the
  // shapes they can represent keeps pre-existing archives (notably the
  // committed golden study) byte-identical across this code.
  const bool all_raw = std::all_of(entries.begin(), entries.end(),
                                   [](const EntryInfo& e) { return e.flags == 0; });
  const std::uint32_t version = (generation == 0 && all_raw) ? 1 : kManifestVersion2;
  PayloadWriter w;
  w.array(std::span<const char>(kManifestMagic.data(), kManifestMagic.size()));
  w.u32(version);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  w.u64(scenario_hash);
  w.u64(data_size);
  w.u32(log_crc);
  if (version >= 2) w.u32(generation);
  for (const EntryInfo& e : entries) {
    w.u32(static_cast<std::uint32_t>(e.name.size()));
    w.u32(e.crc32c);
    w.u64(e.offset);
    w.u64(e.size);
    if (version >= 2) {
      w.u32(e.flags);
      w.u64(e.raw_size);
    }
    w.array(std::span<const char>(e.name.data(), e.name.size()));
  }
  std::string bytes = w.take();
  const std::uint32_t crc = crc32c(bytes);
  PayloadWriter tail;
  tail.u32(crc);
  bytes += tail.take();
  return bytes;
}

ParsedManifest read_manifest(const std::string& dir) {
  const std::string manifest_path = dir + "/" + kManifestName;
  OBSCORR_REQUIRE(std::filesystem::is_regular_file(manifest_path),
                  "archive: " + dir + " has no manifest (incomplete or not an archive)");

  // The manifest is small; read it whole and checksum before parsing.
  std::ifstream is(manifest_path, std::ios::binary | std::ios::ate);
  OBSCORR_REQUIRE(is.is_open(), "archive: cannot open manifest in " + dir);
  const auto file_size = static_cast<std::size_t>(is.tellg());
  std::vector<std::byte> data(file_size);
  is.seekg(0);
  if (!data.empty()) {
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  }
  OBSCORR_REQUIRE(is.good() || data.empty(), "archive: cannot read manifest in " + dir);
  const std::span<const std::byte> manifest(data);
  OBSCORR_REQUIRE(manifest.size() >= 8 + 4 + 4 + 8 + 8 + 4 + 4,
                  "archive: manifest truncated in " + dir);
  const std::size_t body_size = manifest.size() - 4;
  PayloadReader tail(manifest.subspan(body_size));
  const std::uint32_t stored_crc = tail.u32();
  OBSCORR_REQUIRE(crc32c(manifest.first(body_size)) == stored_crc,
                  "archive: manifest checksum mismatch in " + dir +
                      " (corrupted or torn manifest)");

  PayloadReader r(manifest.first(body_size));
  const auto magic = r.array<char>(8);
  OBSCORR_REQUIRE(std::string_view(magic.data(), magic.size()) == kManifestMagic,
                  "archive: bad manifest magic in " + dir);
  const std::uint32_t version = r.u32();
  OBSCORR_REQUIRE(version == 1 || version == kManifestVersion2,
                  "archive: unsupported manifest version " + std::to_string(version));
  const std::uint32_t entry_count = r.u32();
  OBSCORR_REQUIRE(entry_count <= kMaxEntries, "archive: implausible entry count");

  ParsedManifest out;
  out.scenario_hash = r.u64();
  out.data_size = r.u64();
  out.log_crc = r.u32();
  if (version >= 2) out.generation = r.u32();
  out.entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    EntryInfo e;
    const std::uint32_t name_len = r.u32();
    e.crc32c = r.u32();
    e.offset = r.u64();
    e.size = r.u64();
    if (version >= 2) {
      e.flags = r.u32();
      e.raw_size = r.u64();
      OBSCORR_REQUIRE((e.flags & ~kEntryFlagCompressed) == 0,
                      "archive: unknown entry flags in manifest");
      OBSCORR_REQUIRE(e.flags != 0 || e.raw_size == e.size,
                      "archive: raw entry with mismatched decoded size in manifest");
    } else {
      e.raw_size = e.size;
    }
    OBSCORR_REQUIRE(name_len >= 1 && name_len <= kMaxNameLen,
                    "archive: bad entry name length");
    const auto name = r.array<char>(name_len);
    e.name.assign(name.data(), name.size());
    out.entries.push_back(std::move(e));
  }
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes in manifest");
  return out;
}

ArchiveWriter::ArchiveWriter(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OBSCORR_REQUIRE(!ec, "archive: cannot create directory " + dir_);
  // Appends go to the generation the last published manifest names; an
  // absent or unreadable manifest means generation 0 (fresh archive, or
  // a pre-manifest crash — which can only leave a generation-0 log).
  try {
    generation_ = read_manifest(dir_).generation;
  } catch (const std::invalid_argument&) {
    generation_ = 0;
  }
  log_path_ = dir_ + "/" + log_file_name(generation_);
  recover();
}

ArchiveWriter::ArchiveWriter(std::string dir, std::uint32_t generation)
    : dir_(std::move(dir)), generation_(generation) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OBSCORR_REQUIRE(!ec, "archive: cannot create directory " + dir_);
  log_path_ = dir_ + "/" + log_file_name(generation_);
  // A crashed compaction may have left a stale log at this generation;
  // it was never named by a manifest, so start it over.
  reset();
}

void ArchiveWriter::recover() {
  entries_.clear();
  log_size_ = 0;
  log_crc_ = 0;
  std::ifstream is(log_path_, std::ios::binary | std::ios::ate);
  if (!is.is_open()) return;  // no log yet: fresh archive
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  std::vector<char> data(static_cast<std::size_t>(file_size));
  is.seekg(0);
  if (!data.empty()) is.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (!is.good() && file_size > 0) {
    data.clear();  // unreadable log: treat as empty and rebuild
  }

  // Walk complete frames; stop at the first torn or corrupt one. What
  // was validated stays, everything after is truncated away.
  std::uint64_t pos = 0;
  while (pos + kFrameHeaderBytes <= data.size()) {
    const std::span<const char> head(data.data() + pos, kFrameHeaderBytes);
    const std::string_view magic(head.data(), 8);
    const bool compressed = magic == kFrameMagic2;
    if (!compressed && magic != kFrameMagic) break;
    PayloadReader r(std::as_bytes(head.subspan(8)));
    const std::uint32_t name_len = r.u32();
    const std::uint32_t reserved = r.u32();
    const std::uint64_t payload_size = r.u64();
    const std::uint32_t payload_crc = r.u32();
    const std::uint32_t header_crc = r.u32();
    if (reserved != 0 || name_len == 0 || name_len > kMaxNameLen) break;
    const std::uint64_t name_end = pos + kFrameHeaderBytes + name_len;
    if (name_end > data.size()) break;
    const std::string_view name(data.data() + pos + kFrameHeaderBytes, name_len);
    const std::string covered =
        frame_header_prefix(magic, name, payload_size, payload_crc) + std::string(name);
    if (crc32c(covered) != header_crc) break;
    // Overflow-safe bounds (a hostile log can carry a valid header_crc for
    // any payload_size, so `payload_at + payload_size` must never wrap).
    const std::uint64_t payload_at = padded8(name_end);
    if (payload_at > data.size() || payload_size > data.size() - payload_at) break;
    const std::string_view payload(data.data() + payload_at,
                                   static_cast<std::size_t>(payload_size));
    if (crc32c(payload) != payload_crc) break;
    const std::uint64_t frame_end = padded8(payload_at + payload_size);
    if (frame_end > data.size()) break;
    if (has_entry(name)) break;  // duplicate frames never come from us: corrupt
    std::uint64_t raw_size = payload_size;
    if (compressed) {
      // The container header self-declares the decoded size; a frame
      // whose payload checksums but is not a valid container is corrupt.
      const auto declared = codec::decoded_size(std::as_bytes(
          std::span<const char>(payload.data(), payload.size())));
      if (!declared) break;
      raw_size = *declared;
    }
    entries_.push_back({std::string(name), payload_at, payload_size, payload_crc,
                        compressed ? kEntryFlagCompressed : 0, raw_size});
    pos = frame_end;
  }
  log_size_ = pos;
  log_crc_ = crc32c(std::as_bytes(std::span<const char>(data.data(), pos)));
  if (log_size_ < file_size) {
    std::error_code ec;
    std::filesystem::resize_file(log_path_, log_size_, ec);
    OBSCORR_REQUIRE(!ec, "archive: cannot truncate torn tail of " + log_path_);
  }
}

bool ArchiveWriter::has_entry(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const EntryInfo& e) { return e.name == name; });
}

std::vector<std::byte> ArchiveWriter::read_entry(std::string_view name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EntryInfo& e) { return e.name == name; });
  OBSCORR_REQUIRE(it != entries_.end(), "archive: no entry named " + std::string(name));
  std::ifstream is(log_path_, std::ios::binary);
  OBSCORR_REQUIRE(is.is_open(), "archive: cannot open " + log_path_);
  is.seekg(static_cast<std::streamoff>(it->offset));
  std::vector<std::byte> payload(static_cast<std::size_t>(it->size));
  if (!payload.empty()) {
    is.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  }
  OBSCORR_REQUIRE(is.good() || payload.empty(), "archive: short read of entry " +
                                                    std::string(name));
  OBSCORR_REQUIRE(crc32c({payload.data(), payload.size()}) == it->crc32c,
                  "archive: checksum mismatch reading back entry " + std::string(name));
  if (it->flags & kEntryFlagCompressed) return codec::decompress_payload(payload);
  return payload;
}

void ArchiveWriter::append_frame(std::string_view magic, std::string_view name,
                                 std::string_view payload, EntryInfo info) {
  OBSCORR_REQUIRE(!name.empty() && name.size() <= kMaxNameLen,
                  "archive: entry name must be 1..4096 bytes");
  OBSCORR_REQUIRE(!has_entry(name), "archive: duplicate entry " + std::string(name));

  static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
  std::string prefix;
  {
    const obs::ScopedNsCounter crc_time(crc_ns);
    payload_crc = crc32c(payload);
    prefix = frame_header_prefix(magic, name, payload.size(), payload_crc);
    // The header CRC covers the 28-byte prefix plus the name; it sits as
    // the last 4 bytes of the 32-byte fixed header, before the name bytes.
    header_crc = crc32c(prefix + std::string(name));
  }
  PayloadWriter crc_bytes;
  crc_bytes.u32(header_crc);

  std::string block = prefix + crc_bytes.bytes() + std::string(name);
  block.resize(padded8(block.size()), '\0');
  const std::uint64_t payload_at = log_size_ + block.size();
  block += payload;
  block.resize(padded8(block.size()), '\0');

  std::ofstream os(log_path_, std::ios::binary | std::ios::app);
  OBSCORR_REQUIRE(os.is_open(), "archive: cannot append to " + log_path_);
  os.write(block.data(), static_cast<std::streamsize>(block.size()));
  os.flush();
  OBSCORR_REQUIRE(os.good(), "archive: write failure on " + log_path_);

  info.name = std::string(name);
  info.offset = payload_at;
  info.size = payload.size();
  info.crc32c = payload_crc;
  entries_.push_back(std::move(info));
  log_size_ += block.size();
  log_crc_ = crc32c(block, log_crc_);
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_written = obs::counter("archive.bytes_written");
    static obs::Counter& frames_written = obs::counter("archive.frames_written");
    static obs::Counter& raw_bytes = obs::counter("archive.raw_bytes");
    static obs::Counter& stored_bytes = obs::counter("archive.stored_bytes");
    bytes_written.add(block.size());
    frames_written.add(1);
    raw_bytes.add(entries_.back().raw_size);
    stored_bytes.add(payload.size());
  }
}

void ArchiveWriter::add_entry(std::string_view name, std::string_view payload) {
  EntryInfo info;
  info.flags = 0;
  info.raw_size = payload.size();
  append_frame(kFrameMagic, name, payload, std::move(info));
}

void ArchiveWriter::add_entry_compressed(std::string_view name, std::string_view stored,
                                         std::uint64_t raw_size) {
  EntryInfo info;
  info.flags = kEntryFlagCompressed;
  info.raw_size = raw_size;
  append_frame(kFrameMagic2, name, stored, std::move(info));
}

void ArchiveWriter::reset() {
  entries_.clear();
  log_size_ = 0;
  log_crc_ = 0;
  std::ofstream os(log_path_, std::ios::binary | std::ios::trunc);
  OBSCORR_REQUIRE(os.is_open(), "archive: cannot reset " + log_path_);
}

void ArchiveWriter::finalize(std::uint64_t scenario_hash) {
  const obs::Span span("archive.finalize", [&] { return dir_; });
  // The whole-log checksum — frame headers and padding included, so
  // readers can detect corruption anywhere in the file — is maintained
  // incrementally as frames are appended (recover() rebuilds it from the
  // validated prefix), so publication never re-reads the log: the live
  // ingest path re-finalizes after every window.
  const std::string manifest =
      encode_manifest(scenario_hash, log_size_, log_crc_, entries_, generation_);
  const std::string final_path = dir_ + "/" + kManifestName;
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    OBSCORR_REQUIRE(os.is_open(), "archive: cannot write " + tmp_path);
    os.write(manifest.data(), static_cast<std::streamsize>(manifest.size()));
    os.flush();
    OBSCORR_REQUIRE(os.good(), "archive: write failure on " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  OBSCORR_REQUIRE(!ec, "archive: cannot commit manifest " + final_path);
}

}  // namespace obscorr::archive
