#include "archive/writer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "archive/checksum.hpp"
#include "archive/format.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

namespace {

constexpr std::string_view kFrameMagic = "OBSAENT1";
constexpr std::string_view kManifestMagic = "OBSARCH1";
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 32;
constexpr std::uint32_t kMaxNameLen = 4096;

std::size_t padded8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Header bytes [magic, name_len, reserved, payload_size, payload_crc]
/// in frame order — the region the header CRC covers (with the name).
std::string frame_header_prefix(std::string_view name, std::uint64_t payload_size,
                                std::uint32_t payload_crc) {
  PayloadWriter w;
  w.array(std::span<const char>(kFrameMagic.data(), kFrameMagic.size()));
  w.u32(static_cast<std::uint32_t>(name.size()));
  w.u32(0);
  w.u64(payload_size);
  w.u32(payload_crc);
  return w.take();
}

}  // namespace

std::string encode_manifest(std::uint64_t scenario_hash, std::uint64_t data_size,
                            std::uint32_t log_crc, std::span<const EntryInfo> entries) {
  PayloadWriter w;
  w.array(std::span<const char>(kManifestMagic.data(), kManifestMagic.size()));
  w.u32(kManifestVersion);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  w.u64(scenario_hash);
  w.u64(data_size);
  w.u32(log_crc);
  for (const EntryInfo& e : entries) {
    w.u32(static_cast<std::uint32_t>(e.name.size()));
    w.u32(e.crc32c);
    w.u64(e.offset);
    w.u64(e.size);
    w.array(std::span<const char>(e.name.data(), e.name.size()));
  }
  std::string bytes = w.take();
  const std::uint32_t crc = crc32c(bytes);
  PayloadWriter tail;
  tail.u32(crc);
  bytes += tail.take();
  return bytes;
}

ArchiveWriter::ArchiveWriter(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OBSCORR_REQUIRE(!ec, "archive: cannot create directory " + dir_);
  log_path_ = dir_ + "/" + kEntryLogName;
  recover();
}

void ArchiveWriter::recover() {
  entries_.clear();
  log_size_ = 0;
  log_crc_ = 0;
  std::ifstream is(log_path_, std::ios::binary | std::ios::ate);
  if (!is.is_open()) return;  // no log yet: fresh archive
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  std::vector<char> data(static_cast<std::size_t>(file_size));
  is.seekg(0);
  if (!data.empty()) is.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (!is.good() && file_size > 0) {
    data.clear();  // unreadable log: treat as empty and rebuild
  }

  // Walk complete frames; stop at the first torn or corrupt one. What
  // was validated stays, everything after is truncated away.
  std::uint64_t pos = 0;
  while (pos + kFrameHeaderBytes <= data.size()) {
    const std::span<const char> head(data.data() + pos, kFrameHeaderBytes);
    if (std::string_view(head.data(), 8) != kFrameMagic) break;
    PayloadReader r(std::as_bytes(head.subspan(8)));
    const std::uint32_t name_len = r.u32();
    const std::uint32_t reserved = r.u32();
    const std::uint64_t payload_size = r.u64();
    const std::uint32_t payload_crc = r.u32();
    const std::uint32_t header_crc = r.u32();
    if (reserved != 0 || name_len == 0 || name_len > kMaxNameLen) break;
    const std::uint64_t name_end = pos + kFrameHeaderBytes + name_len;
    if (name_end > data.size()) break;
    const std::string_view name(data.data() + pos + kFrameHeaderBytes, name_len);
    const std::string covered =
        frame_header_prefix(name, payload_size, payload_crc) + std::string(name);
    if (crc32c(covered) != header_crc) break;
    // Overflow-safe bounds (a hostile log can carry a valid header_crc for
    // any payload_size, so `payload_at + payload_size` must never wrap).
    const std::uint64_t payload_at = padded8(name_end);
    if (payload_at > data.size() || payload_size > data.size() - payload_at) break;
    const std::string_view payload(data.data() + payload_at,
                                   static_cast<std::size_t>(payload_size));
    if (crc32c(payload) != payload_crc) break;
    const std::uint64_t frame_end = padded8(payload_at + payload_size);
    if (frame_end > data.size()) break;
    if (has_entry(name)) break;  // duplicate frames never come from us: corrupt
    entries_.push_back({std::string(name), payload_at, payload_size, payload_crc});
    pos = frame_end;
  }
  log_size_ = pos;
  log_crc_ = crc32c(std::as_bytes(std::span<const char>(data.data(), pos)));
  if (log_size_ < file_size) {
    std::error_code ec;
    std::filesystem::resize_file(log_path_, log_size_, ec);
    OBSCORR_REQUIRE(!ec, "archive: cannot truncate torn tail of " + log_path_);
  }
}

bool ArchiveWriter::has_entry(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const EntryInfo& e) { return e.name == name; });
}

std::vector<std::byte> ArchiveWriter::read_entry(std::string_view name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EntryInfo& e) { return e.name == name; });
  OBSCORR_REQUIRE(it != entries_.end(), "archive: no entry named " + std::string(name));
  std::ifstream is(log_path_, std::ios::binary);
  OBSCORR_REQUIRE(is.is_open(), "archive: cannot open " + log_path_);
  is.seekg(static_cast<std::streamoff>(it->offset));
  std::vector<std::byte> payload(static_cast<std::size_t>(it->size));
  if (!payload.empty()) {
    is.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  }
  OBSCORR_REQUIRE(is.good() || payload.empty(), "archive: short read of entry " +
                                                    std::string(name));
  OBSCORR_REQUIRE(crc32c({payload.data(), payload.size()}) == it->crc32c,
                  "archive: checksum mismatch reading back entry " + std::string(name));
  return payload;
}

void ArchiveWriter::add_entry(std::string_view name, std::string_view payload) {
  OBSCORR_REQUIRE(!name.empty() && name.size() <= kMaxNameLen,
                  "archive: entry name must be 1..4096 bytes");
  OBSCORR_REQUIRE(!has_entry(name), "archive: duplicate entry " + std::string(name));

  static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
  std::string prefix;
  {
    const obs::ScopedNsCounter crc_time(crc_ns);
    payload_crc = crc32c(payload);
    prefix = frame_header_prefix(name, payload.size(), payload_crc);
    // The header CRC covers the 28-byte prefix plus the name; it sits as
    // the last 4 bytes of the 32-byte fixed header, before the name bytes.
    header_crc = crc32c(prefix + std::string(name));
  }
  PayloadWriter crc_bytes;
  crc_bytes.u32(header_crc);

  std::string block = prefix + crc_bytes.bytes() + std::string(name);
  block.resize(padded8(block.size()), '\0');
  const std::uint64_t payload_at = log_size_ + block.size();
  block += payload;
  block.resize(padded8(block.size()), '\0');

  std::ofstream os(log_path_, std::ios::binary | std::ios::app);
  OBSCORR_REQUIRE(os.is_open(), "archive: cannot append to " + log_path_);
  os.write(block.data(), static_cast<std::streamsize>(block.size()));
  os.flush();
  OBSCORR_REQUIRE(os.good(), "archive: write failure on " + log_path_);

  entries_.push_back({std::string(name), payload_at, payload.size(), payload_crc});
  log_size_ += block.size();
  log_crc_ = crc32c(block, log_crc_);
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_written = obs::counter("archive.bytes_written");
    static obs::Counter& frames_written = obs::counter("archive.frames_written");
    bytes_written.add(block.size());
    frames_written.add(1);
  }
}

void ArchiveWriter::reset() {
  entries_.clear();
  log_size_ = 0;
  log_crc_ = 0;
  std::ofstream os(log_path_, std::ios::binary | std::ios::trunc);
  OBSCORR_REQUIRE(os.is_open(), "archive: cannot reset " + log_path_);
}

void ArchiveWriter::finalize(std::uint64_t scenario_hash) {
  const obs::Span span("archive.finalize", [&] { return dir_; });
  // The whole-log checksum — frame headers and padding included, so
  // readers can detect corruption anywhere in the file — is maintained
  // incrementally as frames are appended (recover() rebuilds it from the
  // validated prefix), so publication never re-reads the log: the live
  // ingest path re-finalizes after every window.
  const std::string manifest = encode_manifest(scenario_hash, log_size_, log_crc_, entries_);
  const std::string final_path = dir_ + "/" + kManifestName;
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    OBSCORR_REQUIRE(os.is_open(), "archive: cannot write " + tmp_path);
    os.write(manifest.data(), static_cast<std::streamsize>(manifest.size()));
    os.flush();
    OBSCORR_REQUIRE(os.good(), "archive: write failure on " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  OBSCORR_REQUIRE(!ec, "archive: cannot commit manifest " + final_path);
}

}  // namespace obscorr::archive
