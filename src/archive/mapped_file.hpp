#pragma once
/// \file mapped_file.hpp
/// Read-only file mapping for the archive's zero-copy query path. On
/// POSIX hosts the whole entry log is mmap'd once and every MatrixView
/// serves spans straight out of the page cache — the "analyze years of
/// archived captures without deserializing them" access pattern of the
/// paper's supercomputing-center store. Where mmap is unavailable (or
/// disabled with OBSCORR_ARCHIVE_NO_MMAP=1) the file is read into an
/// owned buffer instead: same spans, one extra copy, identical results.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace obscorr::archive {

/// An immutable byte view of a whole file, mmap-backed when possible.
class MappedFile {
 public:
  /// Map (or read) `path`; throws std::invalid_argument when the file
  /// cannot be opened. `allow_mmap=false` forces the streaming fallback;
  /// the OBSCORR_ARCHIVE_NO_MMAP environment variable does the same
  /// globally.
  static MappedFile open(const std::string& path, bool allow_mmap = true);

  /// Map (or read) exactly `[offset, offset + length)` of `path` — the
  /// live-archive refresh path, which maps only the newly appended tail
  /// of the entry log instead of remapping the whole file. Page
  /// alignment of the mmap offset is handled internally; `bytes()` spans
  /// exactly the requested range. Throws when the file is shorter than
  /// `offset + length`.
  static MappedFile open_range(const std::string& path, std::size_t offset, std::size_t length,
                               bool allow_mmap = true);

  MappedFile() = default;
  MappedFile(MappedFile&&) noexcept = default;
  MappedFile& operator=(MappedFile&&) noexcept = default;

  std::span<const std::byte> bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

  /// True when the view is served by mmap rather than an owned buffer.
  bool mapped() const { return mapping_ != nullptr; }

 private:
  struct Mapping;  // owns the mmap region; unmaps on destruction

  std::span<const std::byte> bytes_;
  std::shared_ptr<Mapping> mapping_;       // mmap path
  std::shared_ptr<std::vector<std::byte>> buffer_;  // fallback path
};

}  // namespace obscorr::archive
