/// AVX2 bodies for the codec decode kernels (see codec.hpp). Compiled
/// with a per-function target attribute so the translation unit builds
/// on any x86-64 baseline; callers reach these only through the
/// runtime-dispatched wrappers in codec.cpp.

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

#include "archive/codec.hpp"

namespace obscorr::archive::codec {

__attribute__((target("avx2"))) void unpack_f64_avx2(std::span<const std::byte> packed,
                                                     unsigned width, std::size_t count,
                                                     double* out) {
  // The vector body gathers 8-byte windows; widths above 31 (or byte
  // offsets beyond i32 gather range) stay on the scalar path via the
  // dispatch wrapper, so the only residual here is the span tail.
  const std::uint64_t mask = (1ULL << width) - 1;
  std::size_t i = 0;
  if (packed.size() > 8 && packed.size() - 8 <= 0x7FFFFFFFULL) {
    const auto* base = reinterpret_cast<const char*>(packed.data());
    const std::size_t last_safe_byte = packed.size() - 8;
    const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
    const __m256i low_dwords = _mm256_set_epi32(7, 5, 3, 1, 6, 4, 2, 0);
    for (; i + 4 <= count; i += 4) {
      const std::size_t bit = i * width;
      const std::size_t b0 = bit >> 3;
      const std::size_t b1 = (bit + width) >> 3;
      const std::size_t b2 = (bit + 2 * width) >> 3;
      const std::size_t b3 = (bit + 3 * width) >> 3;
      if (b3 > last_safe_byte) break;
      const __m128i offsets =
          _mm_set_epi32(static_cast<int>(b3), static_cast<int>(b2), static_cast<int>(b1),
                        static_cast<int>(b0));
      __m256i window = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(base), offsets, 1);
      const __m256i shifts = _mm256_set_epi64x(
          static_cast<long long>((bit + 3 * width) & 7), static_cast<long long>((bit + 2 * width) & 7),
          static_cast<long long>((bit + width) & 7), static_cast<long long>(bit & 7));
      window = _mm256_and_si256(_mm256_srlv_epi64(window, shifts), vmask);
      // Values are < 2^31, so the low dword of each qword is the whole
      // value and is non-negative under the signed i32 -> f64 convert.
      const __m256i packed32 = _mm256_permutevar8x32_epi32(window, low_dwords);
      _mm256_storeu_pd(out + i, _mm256_cvtepi32_pd(_mm256_castsi256_si128(packed32)));
    }
  }
  for (std::size_t bit = i * width; i < count; ++i, bit += width) {
    const std::size_t byte = bit >> 3;
    std::uint64_t window = 0;
    std::memcpy(&window, packed.data() + byte,
                packed.size() - byte < 8 ? packed.size() - byte : 8);
    out[i] = static_cast<double>((window >> (bit & 7)) & mask);
  }
}

__attribute__((target("avx2"))) void unzigzag_prefix_u32_avx2(
    std::span<const std::uint32_t> zz, std::uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(1);
  const __m256i bcast_hi = _mm256_set1_epi32(3);
  std::uint32_t acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= zz.size(); i += 8) {
    const __m256i z = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zz.data() + i));
    // unzigzag: (z >> 1) ^ -(z & 1)
    __m256i d = _mm256_xor_si256(_mm256_srli_epi32(z, 1),
                                 _mm256_sub_epi32(zero, _mm256_and_si256(z, ones)));
    // In-register inclusive prefix sum: within each 128-bit half, then
    // carry the low half's total into the high half.
    d = _mm256_add_epi32(d, _mm256_slli_si256(d, 4));
    d = _mm256_add_epi32(d, _mm256_slli_si256(d, 8));
    __m256i carry = _mm256_permutevar8x32_epi32(d, bcast_hi);
    carry = _mm256_blend_epi32(zero, carry, 0xF0);
    d = _mm256_add_epi32(d, carry);
    d = _mm256_add_epi32(d, _mm256_set1_epi32(static_cast<int>(acc)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d);
    acc = static_cast<std::uint32_t>(_mm256_extract_epi32(d, 7));
  }
  for (; i < zz.size(); ++i) {
    const std::uint32_t z = zz[i];
    acc += (z >> 1) ^ (~(z & 1) + 1);
    out[i] = acc;
  }
}

}  // namespace obscorr::archive::codec

#endif  // defined(__x86_64__)
