#pragma once
/// \file checksum.hpp
/// Integrity primitives for the study archive. Every persisted payload
/// carries a CRC32C (Castagnoli) checksum — the polynomial used by
/// iSCSI, ext4 and the SSE4.2 crc32 instruction — so any single-byte
/// corruption of an archived entry is detected before its bytes reach a
/// parser. FNV-1a/64 provides the scenario fingerprint that binds an
/// archive to the exact configuration that produced it.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace obscorr::archive {

/// CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) of `bytes`,
/// starting from `seed` (pass a previous result to checksum in chunks).
std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed = 0);

/// Convenience overload over character data.
std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0);

/// FNV-1a 64-bit hash; the archive's scenario fingerprint.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace obscorr::archive
