#include "archive/mapped_file.hpp"

#include <cstdlib>
#include <fstream>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OBSCORR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace obscorr::archive {

#ifdef OBSCORR_HAVE_MMAP
struct MappedFile::Mapping {
  void* addr = nullptr;
  std::size_t length = 0;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, length);
  }
};
#else
struct MappedFile::Mapping {};
#endif

namespace {

bool mmap_disabled_by_env() {
  const char* flag = std::getenv("OBSCORR_ARCHIVE_NO_MMAP");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

std::vector<std::byte> read_whole_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  OBSCORR_REQUIRE(is.is_open(), "archive: cannot open " + path);
  const std::streamoff size = is.tellg();
  OBSCORR_REQUIRE(size >= 0, "archive: cannot stat " + path);
  std::vector<std::byte> buffer(static_cast<std::size_t>(size));
  is.seekg(0);
  if (!buffer.empty()) {
    is.read(reinterpret_cast<char*>(buffer.data()), size);
    OBSCORR_REQUIRE(is.good(), "archive: short read of " + path);
  }
  return buffer;
}

}  // namespace

MappedFile MappedFile::open(const std::string& path, bool allow_mmap) {
  MappedFile file;
#ifdef OBSCORR_HAVE_MMAP
  if (allow_mmap && !mmap_disabled_by_env()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    OBSCORR_REQUIRE(fd >= 0, "archive: cannot open " + path);
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto length = static_cast<std::size_t>(st.st_size);
      if (length == 0) {
        ::close(fd);
        return file;  // empty file: empty span, nothing to map
      }
      void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != MAP_FAILED) {
        file.mapping_ = std::make_shared<Mapping>();
        file.mapping_->addr = addr;
        file.mapping_->length = length;
        file.bytes_ = {static_cast<const std::byte*>(addr), length};
        return file;
      }
      // fall through to the streaming fallback on mmap failure
    } else {
      ::close(fd);
    }
  }
#else
  (void)allow_mmap;
#endif
  file.buffer_ = std::make_shared<std::vector<std::byte>>(read_whole_file(path));
  file.bytes_ = {file.buffer_->data(), file.buffer_->size()};
  return file;
}

}  // namespace obscorr::archive
