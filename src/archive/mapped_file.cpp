#include "archive/mapped_file.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OBSCORR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace obscorr::archive {

#ifdef OBSCORR_HAVE_MMAP
struct MappedFile::Mapping {
  void* addr = nullptr;
  std::size_t length = 0;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, length);
  }
};
#else
struct MappedFile::Mapping {};
#endif

namespace {

bool mmap_disabled_by_env() {
  const char* flag = std::getenv("OBSCORR_ARCHIVE_NO_MMAP");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

std::vector<std::byte> read_whole_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  OBSCORR_REQUIRE(is.is_open(), "archive: cannot open " + path);
  const std::streamoff size = is.tellg();
  OBSCORR_REQUIRE(size >= 0, "archive: cannot stat " + path);
  std::vector<std::byte> buffer(static_cast<std::size_t>(size));
  is.seekg(0);
  if (!buffer.empty()) {
    is.read(reinterpret_cast<char*>(buffer.data()), size);
    OBSCORR_REQUIRE(is.good(), "archive: short read of " + path);
  }
  return buffer;
}

std::vector<std::byte> read_file_range(const std::string& path, std::size_t offset,
                                       std::size_t length) {
  std::ifstream is(path, std::ios::binary);
  OBSCORR_REQUIRE(is.is_open(), "archive: cannot open " + path);
  is.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::byte> buffer(length);
  if (!buffer.empty()) {
    is.read(reinterpret_cast<char*>(buffer.data()), static_cast<std::streamsize>(length));
    OBSCORR_REQUIRE(is.good(), "archive: short read of " + path);
  }
  return buffer;
}

}  // namespace

MappedFile MappedFile::open(const std::string& path, bool allow_mmap) {
  MappedFile file;
#ifdef OBSCORR_HAVE_MMAP
  if (allow_mmap && !mmap_disabled_by_env()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    OBSCORR_REQUIRE(fd >= 0, "archive: cannot open " + path);
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto length = static_cast<std::size_t>(st.st_size);
      if (length == 0) {
        ::close(fd);
        return file;  // empty file: empty span, nothing to map
      }
      void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != MAP_FAILED) {
        file.mapping_ = std::make_shared<Mapping>();
        file.mapping_->addr = addr;
        file.mapping_->length = length;
        file.bytes_ = {static_cast<const std::byte*>(addr), length};
        return file;
      }
      // fall through to the streaming fallback on mmap failure
    } else {
      ::close(fd);
    }
  }
#else
  (void)allow_mmap;
#endif
  file.buffer_ = std::make_shared<std::vector<std::byte>>(read_whole_file(path));
  file.bytes_ = {file.buffer_->data(), file.buffer_->size()};
  return file;
}

MappedFile MappedFile::open_range(const std::string& path, std::size_t offset,
                                  std::size_t length, bool allow_mmap) {
  MappedFile file;
  if (length == 0) return file;
#ifdef OBSCORR_HAVE_MMAP
  if (allow_mmap && !mmap_disabled_by_env()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    OBSCORR_REQUIRE(fd >= 0, "archive: cannot open " + path);
    struct stat st{};
    const bool regular = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    if (regular && static_cast<std::uint64_t>(st.st_size) >= offset + length) {
      // mmap offsets must be page-aligned; map from the enclosing page
      // boundary and expose exactly the requested window.
      const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
      const std::size_t slop = offset % page;
      const std::size_t map_length = length + slop;
      void* addr = ::mmap(nullptr, map_length, PROT_READ, MAP_PRIVATE, fd,
                          static_cast<off_t>(offset - slop));
      ::close(fd);
      if (addr != MAP_FAILED) {
        file.mapping_ = std::make_shared<Mapping>();
        file.mapping_->addr = addr;
        file.mapping_->length = map_length;
        file.bytes_ = {static_cast<const std::byte*>(addr) + slop, length};
        return file;
      }
      // fall through to the streaming fallback on mmap failure
    } else {
      ::close(fd);
      OBSCORR_REQUIRE(regular, "archive: cannot stat " + path);
      OBSCORR_REQUIRE(false, "archive: " + path + " shorter than the requested range");
    }
  }
#else
  (void)allow_mmap;
#endif
  file.buffer_ = std::make_shared<std::vector<std::byte>>(read_file_range(path, offset, length));
  file.bytes_ = {file.buffer_->data(), file.buffer_->size()};
  return file;
}

}  // namespace obscorr::archive
