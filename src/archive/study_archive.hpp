#pragma once
/// \file study_archive.hpp
/// The persistent study archive: one directory per campaign holding the
/// scenario, every telescope snapshot (DCSR matrix, Table II source
/// reduction, deanonymized D4M assoc array, window metadata) and every
/// honeyfarm month, all as checksummed entries in the archive log (see
/// writer.hpp for the on-disk framing).
///
/// Three access levels:
///
///  * `archive_study` — run (or resume) a campaign and persist it. The
///    entry log is append-only and each snapshot/month is regenerated
///    independently, so a killed run continues where it stopped instead
///    of recomputing finished work. The manifest is written last; its
///    existence marks the archive complete.
///  * `StudyReader` — zero-copy queries over a completed archive:
///    matrices as `gbl::MatrixView` and source reductions as spans
///    straight over the mapped log, no nnz-sized copies.
///  * `read_study` — materialize a full `core::StudyData`, bit-identical
///    to what `core::run_study` returns for the archived scenario.
///
/// Entry naming: "scenario", "snapshot/<k>/{meta,matrix,sources,assoc}",
/// "month/<m>", with <k>/<m> 0-based decimal indices. The resident
/// service appends live capture windows on top of a completed archive as
/// "window/<w>/{meta,matrix,sources}" (see live_archive.hpp); they are
/// additive — every batch query over the completed prefix is untouched.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "archive/reader.hpp"
#include "common/thread_pool.hpp"
#include "core/study.hpp"
#include "gbl/matrix_view.hpp"

namespace obscorr::archive {

/// What `archive_study` did: how much work was reused from a previous
/// (possibly killed) run vs generated fresh.
struct ArchiveStats {
  std::size_t snapshots_total = 0;
  std::size_t snapshots_reused = 0;
  std::size_t months_total = 0;
  std::size_t months_reused = 0;
  bool already_complete = false;  ///< a finished archive for this scenario existed
  /// A SIGINT/SIGTERM stopped the run between entries: everything
  /// complete was flushed (the log is resumable) but no manifest was
  /// committed. Rerunning the same command continues where it stopped.
  bool interrupted = false;
};

/// Metadata for one live capture window appended by the resident
/// service, entry "window/<w>/meta".
struct LiveWindowMeta {
  std::uint64_t window = 0;     ///< 0-based live window index
  std::int32_t month_index = 0; ///< scenario month the window drew from
  std::uint64_t salt = 0;       ///< traffic salt: the deterministic replay key
  std::uint64_t valid_packets = 0;
  std::uint64_t discarded_packets = 0;
  double start_sec = 0.0;
  double duration_sec = 0.0;
};

/// Entry name "window/<w>/<part>" for live windows (parts: meta, matrix,
/// sources — live windows carry no deanonymized assoc array).
std::string window_entry(std::size_t w, const char* part);

std::string encode_window_meta(const LiveWindowMeta& meta);
LiveWindowMeta decode_window_meta(std::span<const std::byte> bytes);

/// The archive's source-reduction encoding (u64 nnz, u32[nnz] ids, pad8,
/// f64[nnz] values) — shared by snapshot and live-window entries.
std::string encode_source_vector(const gbl::SparseVec& v);

/// Serialize a scenario to the archive's binary encoding / back. The
/// encoding is canonical: byte-equality of encodings is scenario
/// equality, which is what resume keys on.
std::string encode_scenario(const netgen::Scenario& scenario);
netgen::Scenario decode_scenario(std::span<const std::byte> bytes);

/// FNV-1a 64 fingerprint of the canonical encoding; stored in the
/// manifest so readers can cheaply check archive/scenario identity.
std::uint64_t scenario_fingerprint(const netgen::Scenario& scenario);

/// Run the scenario's campaign into `dir`, resuming any complete
/// snapshots/months left by a previous interrupted run of the *same*
/// scenario (a differing scenario restarts the log from scratch), then
/// commit the manifest. Throws std::invalid_argument when `dir` already
/// holds a *completed* archive of a different scenario.
ArchiveStats archive_study(const netgen::Scenario& scenario, const std::string& dir,
                           ThreadPool& pool);

/// Persist an already-computed study into `dir`, replacing any previous
/// content, and commit the manifest.
void write_study(const core::StudyData& study, const std::string& dir);

/// Materialize the full study from a completed archive. Bit-identical to
/// `core::run_study(scenario, pool)` for the archived scenario.
core::StudyData read_study(const std::string& dir);

/// Zero-copy query access to a completed archive. Opening verifies every
/// checksum and that the catalog is complete for the archived scenario.
class StudyReader {
 public:
  explicit StudyReader(const std::string& dir);

  const netgen::Scenario& scenario() const { return scenario_; }
  std::uint64_t scenario_hash() const { return reader_.scenario_hash(); }
  std::size_t snapshot_count() const { return scenario_.snapshots.size(); }
  std::size_t month_count() const { return scenario_.months.size(); }
  double half_log_nv() const {
    return static_cast<double>(scenario_.population.log2_nv) / 2.0;
  }

  /// Snapshot k's traffic matrix as a validated view — straight over
  /// the mapped log for raw entries, over a cache-retained decoded page
  /// for compressed ones (the view shares ownership of the page, so it
  /// stays valid regardless of eviction). No copy of the DCSR arrays
  /// either way.
  gbl::MatrixView matrix(std::size_t k) const;

  /// A Table II source-packet reduction (A·1) served as spans plus the
  /// page (if any) that keeps them alive: hold the ref as long as the
  /// spans are in use.
  struct SourcesRef {
    std::span<const gbl::Index> ids;
    std::span<const gbl::Value> counts;
    std::shared_ptr<const void> owner;  ///< null when mmap-backed
  };

  /// Snapshot k's source reduction, zero-copy (see SourcesRef).
  SourcesRef sources(std::size_t k) const;

  /// Owning copy of the source reduction (for APIs taking SparseVec).
  gbl::SparseVec source_packets(std::size_t k) const;

  /// Fully materialized snapshot k / month m / whole study. Pass
  /// `with_matrix = false` to leave the snapshot's DCSR matrix empty:
  /// every downstream analysis consumes only the reductions
  /// (`source_packets`, `sources`), and skipping the nnz-sized
  /// materialization is a large share of the `--from` latency win.
  core::SnapshotData snapshot(std::size_t k, bool with_matrix = true) const;
  honeyfarm::MonthlyObservation month(std::size_t m) const;
  std::vector<honeyfarm::MonthlyObservation> months() const;
  core::StudyData study() const;

  /// The `--from` load: a study sufficient for every report analysis but
  /// with no DCSR matrices and no ground-truth Population reconstruction
  /// — the analyses consume only the archived reductions and catalogs,
  /// and those two omissions are most of the query path's speedup over
  /// recompute.
  core::StudyData analysis_study() const;

  /// Re-read the manifest and absorb live windows published since open
  /// (or the last refresh) without remapping the already-served log —
  /// only the appended tail is mapped and checksummed (see
  /// ArchiveReader::refresh). Returns the number of newly visible
  /// complete windows. Spans handed out earlier remain valid. Not
  /// thread-safe against concurrent queries on the same object; the
  /// service holds a shared/exclusive lock around queries/refresh.
  std::size_t refresh();

  /// Live capture windows ("window/<w>/...") appended by the resident
  /// service on top of the completed campaign. Zero for batch archives.
  std::size_t window_count() const { return window_count_; }
  LiveWindowMeta window_meta(std::size_t w) const;
  gbl::MatrixView window_matrix(std::size_t w) const;
  SourcesRef window_sources(std::size_t w) const;
  gbl::SparseVec window_source_packets(std::size_t w) const;

  /// True when queries are served by mmap rather than a heap copy.
  bool mapped() const { return reader_.mapped(); }

  const std::string& dir() const { return reader_.dir(); }

 private:
  /// First index >= `from` whose window entries are incomplete — i.e.
  /// the count of contiguous complete windows.
  std::size_t count_windows(std::size_t from) const;

  ArchiveReader reader_;
  netgen::Scenario scenario_;
  std::size_t window_count_ = 0;
};

}  // namespace obscorr::archive
