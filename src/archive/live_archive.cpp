#include "archive/live_archive.hpp"

#include <filesystem>

#include "common/error.hpp"
#include "gbl/matrix_view.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

LiveArchive::LiveArchive(const std::string& dir) : writer_(dir) {
  OBSCORR_REQUIRE(std::filesystem::exists(std::filesystem::path(dir) / kManifestName),
                  "live archive: " + dir +
                      " is not a completed archive (run `obscorr archive` first)");
  OBSCORR_REQUIRE(writer_.has_entry("scenario"),
                  "live archive: " + dir + " has no scenario entry");
  scenario_hash_ = scenario_fingerprint(decode_scenario(
      std::span<const std::byte>(writer_.read_entry("scenario"))));
  window_count_ = count_windows();
  // Republish: frames recovered from the log become visible to readers
  // even when the crashed run never got to its manifest rename.
  writer_.finalize(scenario_hash_);
}

std::size_t LiveArchive::count_windows() const {
  std::size_t w = 0;
  while (writer_.has_entry(window_entry(w, "meta")) &&
         writer_.has_entry(window_entry(w, "matrix")) &&
         writer_.has_entry(window_entry(w, "sources"))) {
    ++w;
  }
  return w;
}

void LiveArchive::append_window(const LiveWindowMeta& meta, const gbl::DcsrMatrix& matrix,
                                const gbl::SparseVec& source_packets) {
  OBSCORR_REQUIRE(meta.window == window_count_,
                  "live archive: windows must be appended in order (expected " +
                      std::to_string(window_count_) + ", got " +
                      std::to_string(meta.window) + ")");
  const std::size_t w = window_count_;
  if (const auto name = window_entry(w, "meta"); !writer_.has_entry(name)) {
    writer_.add_entry(name, encode_window_meta(meta));
  }
  if (const auto name = window_entry(w, "matrix"); !writer_.has_entry(name)) {
    std::string payload;
    gbl::append_matrix_v2(payload, matrix);
    writer_.add_entry(name, payload);
  }
  if (const auto name = window_entry(w, "sources"); !writer_.has_entry(name)) {
    writer_.add_entry(name, encode_source_vector(source_packets));
  }
  writer_.finalize(scenario_hash_);
  ++window_count_;
  if (obs::counters_enabled()) {
    static obs::Counter& published = obs::counter("svc.windows_published");
    published.add(1);
  }
}

}  // namespace obscorr::archive
