#include "archive/page_cache.hpp"

#include <atomic>

#include "common/env.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

namespace {

constexpr std::uint64_t kDefaultCacheBytes = 256ULL << 20;

/// -1 = no override; >= 0 = forced budget. Relaxed is enough: the
/// override is configuration, set before readers are built.
std::atomic<std::int64_t> g_cache_override{-1};

/// Resident bytes across every live cache, feeding the cache.bytes
/// high-water gauge.
std::atomic<std::uint64_t> g_resident_total{0};

void note_resident(std::int64_t delta) {
  const std::uint64_t now =
      g_resident_total.fetch_add(static_cast<std::uint64_t>(delta),
                                 std::memory_order_relaxed) +
      static_cast<std::uint64_t>(delta);
  if (obs::counters_enabled()) {
    static obs::Gauge& bytes = obs::gauge("cache.bytes");
    bytes.record_max(now);
  }
}

}  // namespace

std::uint64_t resolve_cache_bytes() {
  const std::int64_t forced = g_cache_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<std::uint64_t>(forced);
  const std::int64_t env = env_int("OBSCORR_CACHE_BYTES", -1);
  if (env >= 0) return static_cast<std::uint64_t>(env);
  return kDefaultCacheBytes;
}

void set_cache_bytes(std::optional<std::uint64_t> bytes) {
  g_cache_override.store(bytes ? static_cast<std::int64_t>(*bytes) : -1,
                         std::memory_order_relaxed);
}

PageCache::PageCache(std::uint64_t budget_bytes)
    : budget_(budget_bytes), shard_budget_(budget_bytes / kShards) {}

CachePage PageCache::find(std::uint64_t key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (obs::counters_enabled()) {
      static obs::Counter& misses = obs::counter("cache.misses");
      misses.add(1);
    }
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  if (obs::counters_enabled()) {
    static obs::Counter& hits = obs::counter("cache.hits");
    hits.add(1);
  }
  return it->second->page;
}

CachePage PageCache::insert(std::uint64_t key, CachePage page) {
  if (!page) return page;
  const std::uint64_t size = page->size();
  if (size > shard_budget_) return page;  // zero budget lands here too
  Shard& s = shard_for(key);
  std::uint64_t evicted = 0;
  std::int64_t delta = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Racing decoders can insert the same page twice; keep the
      // incumbent and just refresh recency.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->page;
    }
    while (s.bytes + size > shard_budget_ && !s.lru.empty()) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.page->size();
      delta -= static_cast<std::int64_t>(victim.page->size());
      s.index.erase(victim.key);
      s.lru.pop_back();
      ++evicted;
    }
    s.lru.push_front(Entry{key, page});
    s.index.emplace(key, s.lru.begin());
    s.bytes += size;
    delta += static_cast<std::int64_t>(size);
  }
  note_resident(delta);
  if (evicted > 0 && obs::counters_enabled()) {
    static obs::Counter& evictions = obs::counter("cache.evictions");
    evictions.add(evicted);
  }
  return page;
}

std::uint64_t PageCache::resident_bytes() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.bytes;
  }
  return total;
}

}  // namespace obscorr::archive
