#pragma once
/// \file codec.hpp
/// Per-entry block compression for the archive's OBSAENT2 frames.
///
/// A compressed entry payload is a self-describing container:
///
///   8 bytes  magic "OBSCODC1"
///   u64      raw (decoded) size
///   u32      CRC32C of the raw bytes
///   u32      block count
///   blocks:  u8 codec tag, varint raw length, varint encoded length,
///            encoded bytes
///
/// Blocks concatenate, in order, to exactly the raw payload. The encoder
/// is structure-aware: it parses the entry's own format (OBSCGBL2 matrix
/// sections, source-reduction vectors, D4M assoc arrays) and picks a
/// codec per array — delta + varint for sorted index arrays, fixed-width
/// bitpacking for the integer-valued f64 count arrays, front coding for
/// the sorted string key lists, raw passthrough for anything that does
/// not shrink. The decoder is structure-agnostic: it never needs to know
/// what the entry was, it just replays the blocks, then verifies the
/// declared size and the raw CRC. Any malformation — truncated stream,
/// codec tag out of range, declared size mismatch, failed CRC — throws
/// std::invalid_argument, same as every other hostile-input path.
///
/// The hot decode loops (bit unpacking, zigzag-delta prefix
/// reconstruction) dispatch through the common/simd tiers; the AVX2
/// variants are bit-identical to the scalar references and differentially
/// tested (tests/archive/codec_test.cpp).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace obscorr::archive::codec {

/// Container magic + fixed header size (magic, raw size, raw CRC, count).
inline constexpr std::string_view kContainerMagic = "OBSCODC1";
inline constexpr std::size_t kContainerHeaderBytes = 8 + 8 + 4 + 4;

/// One-byte block codec tags. Anything above kMaxBlockTag is hostile.
enum : std::uint8_t {
  kBlockRaw = 0,            ///< verbatim bytes
  kBlockDeltaU32 = 1,       ///< zigzag delta + varint over u32 lanes
  kBlockDeltaU64 = 2,       ///< zigzag delta + varint over u64 lanes
  kBlockPackF64 = 3,        ///< fixed-width bitpack of integer-valued doubles
  kBlockFrontStr = 4,       ///< front-coded length-prefixed string list
  kBlockFrontStrPack = 5,   ///< front coding + 4-bit charset-packed suffixes
};
inline constexpr std::uint8_t kMaxBlockTag = kBlockFrontStrPack;

/// Compress entry `name`'s payload, choosing a codec per section of the
/// entry's own format. Returns nullopt when the payload is not a known
/// compressible entry kind, fails to parse, or does not shrink — the
/// caller keeps the raw OBSAENT1 frame in every one of those cases, so a
/// surprising payload is never a hard error on the write side.
std::optional<std::string> compress_entry(std::string_view name,
                                          std::span<const std::byte> payload);

/// Decode a compressed container back to the exact raw payload bytes.
/// Validates the header, every block, the declared decoded size and the
/// raw CRC32C; throws std::invalid_argument on any malformation.
std::vector<std::byte> decompress_payload(std::span<const std::byte> stored);

/// Declared decoded size of a compressed container, or nullopt when the
/// fixed header is malformed (log recovery uses this to classify frames
/// without running a full decode).
std::optional<std::uint64_t> decoded_size(std::span<const std::byte> stored);

// --- dispatched decode kernels (exposed for differential tests/bench) ---

/// Unpack `count` values of `width` bits (LSB-first within the packed
/// stream) into doubles. Values are exact unsigned integers < 2^width,
/// width in [1, 51]. `packed` must hold ceil(count*width/8) bytes.
void unpack_f64(std::span<const std::byte> packed, unsigned width, std::size_t count,
                double* out);
void unpack_f64_scalar(std::span<const std::byte> packed, unsigned width, std::size_t count,
                       double* out);
void unpack_f64_avx2(std::span<const std::byte> packed, unsigned width, std::size_t count,
                     double* out);

/// Rebuild a u32 sequence from its zigzag-encoded wrapping deltas:
/// out[i] = out[i-1] + unzigzag(zz[i]) (out[-1] = 0), arithmetic mod 2^32.
void unzigzag_prefix_u32(std::span<const std::uint32_t> zz, std::uint32_t* out);
void unzigzag_prefix_u32_scalar(std::span<const std::uint32_t> zz, std::uint32_t* out);
void unzigzag_prefix_u32_avx2(std::span<const std::uint32_t> zz, std::uint32_t* out);

}  // namespace obscorr::archive::codec
