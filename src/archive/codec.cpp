#include "archive/codec.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "archive/checksum.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive::codec {

namespace {

constexpr std::uint64_t kMaxRawSize = 1ULL << 40;
constexpr std::uint64_t kMaxBlockRawLen = 1ULL << 33;
constexpr std::uint32_t kMaxBlockCount = 1u << 24;
constexpr std::uint64_t kMaxKeyCount = 1ULL << 22;
constexpr std::uint32_t kMaxKeyLen = 1u << 20;

/// 4-bit packing charset for front-coded suffixes: covers the dotted
/// quads and label-style keys the assoc arrays actually hold. A suffix
/// with any other byte falls back to the unpacked front-coded form.
constexpr char kPackCharset[16] = {'0', '1', '2', '3', '4', '5', '6', '7',
                                   '8', '9', '.', '|', ':', '-', '_', '/'};

constexpr std::array<std::int8_t, 256> make_charset_index() {
  std::array<std::int8_t, 256> idx{};
  for (auto& v : idx) v = -1;
  for (std::size_t i = 0; i < sizeof kPackCharset; ++i) {
    idx[static_cast<unsigned char>(kPackCharset[i])] = static_cast<std::int8_t>(i);
  }
  return idx;
}
constexpr std::array<std::int8_t, 256> kCharsetIndex = make_charset_index();

std::uint32_t zigzag32(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^ static_cast<std::uint32_t>(v >> 31);
}

std::uint64_t zigzag64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::uint64_t unzigzag64(std::uint64_t z) { return (z >> 1) ^ (~(z & 1) + 1); }

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Bounds-checked LEB128 read over `bytes` at `pos` (advanced on return).
std::uint64_t get_varint(std::span<const std::byte> bytes, std::size_t& pos) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    OBSCORR_REQUIRE(pos < bytes.size(), "archive: truncated varint in compressed stream");
    const auto b = static_cast<std::uint8_t>(bytes[pos++]);
    OBSCORR_REQUIRE(shift != 63 || (b & 0x7E) == 0,
                    "archive: varint overflow in compressed stream");
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return value;
  }
  OBSCORR_REQUIRE(false, "archive: unterminated varint in compressed stream");
  return 0;  // unreachable
}

std::uint64_t load_u64(std::span<const std::byte> bytes, std::size_t pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + pos, sizeof v);
  return v;
}

std::uint32_t load_u32(std::span<const std::byte> bytes, std::size_t pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data() + pos, sizeof v);
  return v;
}

// ---------------------------------------------------------------- encode

/// One encoded block: the tag plus the bytes that stand in for
/// `raw_len` raw payload bytes.
struct Block {
  std::uint8_t tag = kBlockRaw;
  std::uint64_t raw_len = 0;
  std::string enc;
};

/// Append `section` as a raw passthrough block.
void add_raw(std::vector<Block>& blocks, std::span<const std::byte> section) {
  if (section.empty()) return;
  Block b;
  b.tag = kBlockRaw;
  b.raw_len = section.size();
  b.enc.assign(reinterpret_cast<const char*>(section.data()), section.size());
  blocks.push_back(std::move(b));
}

/// Append an encoded block, or fall back to raw when it did not shrink.
void add_or_raw(std::vector<Block>& blocks, std::span<const std::byte> section,
                std::uint8_t tag, std::string enc) {
  if (enc.size() >= section.size()) {
    add_raw(blocks, section);
    return;
  }
  Block b;
  b.tag = tag;
  b.raw_len = section.size();
  b.enc = std::move(enc);
  blocks.push_back(std::move(b));
}

/// Zigzag-delta-varint a u32 array section (wrapping deltas, so the
/// codec is total: sorted inputs get 1-byte deltas, anything else still
/// round-trips).
void add_delta_u32(std::vector<Block>& blocks, std::span<const std::byte> section) {
  const std::size_t count = section.size() / sizeof(std::uint32_t);
  std::string enc;
  enc.reserve(count + count / 2);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t v = load_u32(section, i * sizeof(std::uint32_t));
    put_varint(enc, zigzag32(static_cast<std::int32_t>(v - prev)));
    prev = v;
  }
  add_or_raw(blocks, section, kBlockDeltaU32, std::move(enc));
}

void add_delta_u64(std::vector<Block>& blocks, std::span<const std::byte> section) {
  const std::size_t count = section.size() / sizeof(std::uint64_t);
  std::string enc;
  enc.reserve(count * 2);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = load_u64(section, i * sizeof(std::uint64_t));
    put_varint(enc, zigzag64(static_cast<std::int64_t>(v - prev)));
    prev = v;
  }
  add_or_raw(blocks, section, kBlockDeltaU64, std::move(enc));
}

/// Fixed-width bitpack of an f64 section whose values are all exact
/// unsigned integers below 2^51 (packet counts are); otherwise raw.
void add_pack_f64(std::vector<Block>& blocks, std::span<const std::byte> section) {
  const std::size_t count = section.size() / sizeof(double);
  std::uint64_t max_value = 0;
  bool packable = true;
  for (std::size_t i = 0; i < count && packable; ++i) {
    double d = 0.0;
    std::memcpy(&d, section.data() + i * sizeof(double), sizeof d);
    const auto u = static_cast<std::uint64_t>(d);
    packable = d >= 0.0 && u < (1ULL << 51) && static_cast<double>(u) == d;
    max_value = std::max(max_value, u);
  }
  if (!packable) {
    add_raw(blocks, section);
    return;
  }
  const unsigned width = static_cast<unsigned>(std::bit_width(max_value | 1));
  std::string enc;
  enc.reserve(1 + (count * width + 7) / 8);
  enc.push_back(static_cast<char>(width));
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    double d = 0.0;
    std::memcpy(&d, section.data() + i * sizeof(double), sizeof d);
    acc |= static_cast<std::uint64_t>(d) << acc_bits;
    acc_bits += width;
    while (acc_bits >= 8) {
      enc.push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) enc.push_back(static_cast<char>(acc & 0xFF));
  add_or_raw(blocks, section, kBlockPackF64, std::move(enc));
}

/// A "u64 count + count * (u32 len + bytes)" key region inside a payload.
struct KeyRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<std::string_view> keys;
};

/// Parse the key region starting at `off`; throws on malformation (the
/// caller treats that as "keep the entry raw").
KeyRegion parse_key_region(std::span<const std::byte> payload, std::size_t off) {
  KeyRegion region;
  region.begin = off;
  OBSCORR_REQUIRE(payload.size() - off >= 8, "codec: truncated key count");
  const std::uint64_t count = load_u64(payload, off);
  OBSCORR_REQUIRE(count <= kMaxKeyCount, "codec: implausible key count");
  std::size_t pos = off + 8;
  region.keys.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    OBSCORR_REQUIRE(payload.size() - pos >= 4, "codec: truncated key length");
    const std::uint32_t len = load_u32(payload, pos);
    pos += 4;
    OBSCORR_REQUIRE(len <= kMaxKeyLen && payload.size() - pos >= len,
                    "codec: truncated key bytes");
    region.keys.emplace_back(reinterpret_cast<const char*>(payload.data()) + pos, len);
    pos += len;
  }
  region.end = pos;
  return region;
}

/// Front-code a sorted key region: per key, the byte length shared with
/// its predecessor plus the fresh suffix — nibble-packed when every
/// suffix byte is in the 16-char archive charset (dotted quads are).
void add_front_keys(std::vector<Block>& blocks, std::span<const std::byte> payload,
                    const KeyRegion& region) {
  const auto section = payload.subspan(region.begin, region.end - region.begin);
  std::vector<std::uint32_t> shared(region.keys.size(), 0);
  bool packable = true;
  for (std::size_t i = 0; i < region.keys.size(); ++i) {
    const std::string_view key = region.keys[i];
    if (i > 0) {
      const std::string_view prev = region.keys[i - 1];
      const std::size_t limit = std::min(prev.size(), key.size());
      std::size_t s = 0;
      while (s < limit && prev[s] == key[s]) ++s;
      shared[i] = static_cast<std::uint32_t>(s);
    }
    for (std::size_t c = shared[i]; c < key.size() && packable; ++c) {
      packable = kCharsetIndex[static_cast<unsigned char>(key[c])] >= 0;
    }
  }
  std::string enc;
  enc.reserve(section.size() / 2);
  put_varint(enc, region.keys.size());
  for (std::size_t i = 0; i < region.keys.size(); ++i) {
    const std::string_view suffix = region.keys[i].substr(shared[i]);
    put_varint(enc, shared[i]);
    put_varint(enc, suffix.size());
    if (packable) {
      std::uint8_t nibble_pair = 0;
      for (std::size_t c = 0; c < suffix.size(); ++c) {
        const auto nibble =
            static_cast<std::uint8_t>(kCharsetIndex[static_cast<unsigned char>(suffix[c])]);
        if (c % 2 == 0) {
          nibble_pair = nibble;
          if (c + 1 == suffix.size()) enc.push_back(static_cast<char>(nibble_pair));
        } else {
          enc.push_back(static_cast<char>(nibble_pair | (nibble << 4)));
        }
      }
    } else {
      enc.append(suffix);
    }
  }
  add_or_raw(blocks, section, packable ? kBlockFrontStrPack : kBlockFrontStr,
             std::move(enc));
}

/// Section split of an OBSCGBL2 matrix payload (see gbl/matrix_view.hpp).
void matrix_sections(std::span<const std::byte> payload, std::vector<Block>& blocks) {
  OBSCORR_REQUIRE(payload.size() >= 24, "codec: truncated matrix header");
  const std::uint64_t rows = load_u64(payload, 8);
  const std::uint64_t nnz = load_u64(payload, 16);
  OBSCORR_REQUIRE(rows <= payload.size() / 4 && nnz <= payload.size() / 4,
                  "codec: implausible matrix counts");
  const auto pad8 = [](std::size_t n) { return (n + 7) & ~std::size_t{7}; };
  const std::size_t ids_at = 24;
  const std::size_t ptr_at = pad8(ids_at + rows * 4);
  const std::size_t col_at = ptr_at + (rows + 1) * 8;
  const std::size_t val_at = pad8(col_at + nnz * 4);
  OBSCORR_REQUIRE(val_at + nnz * 8 == payload.size(), "codec: matrix section sizes disagree");
  add_raw(blocks, payload.first(24));
  add_delta_u32(blocks, payload.subspan(ids_at, rows * 4));
  add_raw(blocks, payload.subspan(ids_at + rows * 4, ptr_at - (ids_at + rows * 4)));
  add_delta_u64(blocks, payload.subspan(ptr_at, (rows + 1) * 8));
  add_delta_u32(blocks, payload.subspan(col_at, nnz * 4));
  add_raw(blocks, payload.subspan(col_at + nnz * 4, val_at - (col_at + nnz * 4)));
  add_pack_f64(blocks, payload.subspan(val_at, nnz * 8));
}

/// Section split of a source-reduction payload (u64 nnz, u32 ids, pad8,
/// f64 values; see study_archive.hpp).
void sources_sections(std::span<const std::byte> payload, std::vector<Block>& blocks) {
  OBSCORR_REQUIRE(payload.size() >= 8, "codec: truncated source vector");
  const std::uint64_t nnz = load_u64(payload, 0);
  OBSCORR_REQUIRE(nnz <= payload.size() / 4, "codec: implausible source count");
  const auto pad8 = [](std::size_t n) { return (n + 7) & ~std::size_t{7}; };
  const std::size_t ids_at = 8;
  const std::size_t val_at = pad8(ids_at + nnz * 4);
  OBSCORR_REQUIRE(val_at + nnz * 8 == payload.size(), "codec: source section sizes disagree");
  add_raw(blocks, payload.first(8));
  add_delta_u32(blocks, payload.subspan(ids_at, nnz * 4));
  add_raw(blocks, payload.subspan(ids_at + nnz * 4, val_at - (ids_at + nnz * 4)));
  add_pack_f64(blocks, payload.subspan(val_at, nnz * 8));
}

/// Section split of a D4M assoc-array binary starting at `off` (see
/// d4m/assoc.cpp write_binary): magic, row keys, col keys, u64 nnz,
/// u64 row_ptr[rows+1], u32 col_idx[nnz], f64 val[nnz]. The numeric
/// arrays are unaligned in this format, so every section is sliced by
/// byte offset and the codecs memcpy lanes out.
void assoc_sections(std::span<const std::byte> payload, std::size_t off,
                    std::vector<Block>& blocks) {
  OBSCORR_REQUIRE(payload.size() - off >= 8, "codec: truncated assoc magic");
  add_raw(blocks, payload.subspan(off, 8));
  const KeyRegion rows = parse_key_region(payload, off + 8);
  add_front_keys(blocks, payload, rows);
  const KeyRegion cols = parse_key_region(payload, rows.end);
  add_front_keys(blocks, payload, cols);
  std::size_t pos = cols.end;
  OBSCORR_REQUIRE(payload.size() - pos >= 8, "codec: truncated assoc entry count");
  const std::uint64_t nnz = load_u64(payload, pos);
  OBSCORR_REQUIRE(nnz <= (payload.size() - pos) / 4, "codec: implausible assoc entry count");
  add_raw(blocks, payload.subspan(pos, 8));
  pos += 8;
  const std::size_t ptr_bytes = (rows.keys.size() + 1) * 8;
  OBSCORR_REQUIRE(payload.size() - pos >= ptr_bytes, "codec: truncated assoc offsets");
  add_delta_u64(blocks, payload.subspan(pos, ptr_bytes));
  pos += ptr_bytes;
  OBSCORR_REQUIRE(payload.size() - pos == nnz * 4 + nnz * 8,
                  "codec: assoc section sizes disagree");
  add_delta_u32(blocks, payload.subspan(pos, nnz * 4));
  add_pack_f64(blocks, payload.subspan(pos + nnz * 4, nnz * 8));
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

// ---------------------------------------------------------------- decode

void decode_raw(std::span<const std::byte> enc, std::uint64_t raw_len,
                std::vector<std::byte>& out) {
  OBSCORR_REQUIRE(enc.size() == raw_len, "archive: raw block length mismatch");
  out.insert(out.end(), enc.begin(), enc.end());
}

void decode_delta_u32(std::span<const std::byte> enc, std::uint64_t raw_len,
                      std::vector<std::byte>& out) {
  OBSCORR_REQUIRE(raw_len % sizeof(std::uint32_t) == 0,
                  "archive: delta-u32 block size not a lane multiple");
  const std::size_t count = static_cast<std::size_t>(raw_len / sizeof(std::uint32_t));
  std::vector<std::uint32_t> zz(count);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = get_varint(enc, pos);
    OBSCORR_REQUIRE(v <= 0xFFFFFFFFULL, "archive: delta-u32 varint exceeds 32 bits");
    zz[i] = static_cast<std::uint32_t>(v);
  }
  OBSCORR_REQUIRE(pos == enc.size(), "archive: trailing bytes in delta-u32 block");
  std::vector<std::uint32_t> values(count);
  unzigzag_prefix_u32(zz, values.data());
  const std::size_t at = out.size();
  out.resize(at + raw_len);
  std::memcpy(out.data() + at, values.data(), raw_len);
}

void decode_delta_u64(std::span<const std::byte> enc, std::uint64_t raw_len,
                      std::vector<std::byte>& out) {
  OBSCORR_REQUIRE(raw_len % sizeof(std::uint64_t) == 0,
                  "archive: delta-u64 block size not a lane multiple");
  const std::size_t count = static_cast<std::size_t>(raw_len / sizeof(std::uint64_t));
  std::vector<std::uint64_t> values(count);
  std::size_t pos = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += unzigzag64(get_varint(enc, pos));
    values[i] = acc;
  }
  OBSCORR_REQUIRE(pos == enc.size(), "archive: trailing bytes in delta-u64 block");
  const std::size_t at = out.size();
  out.resize(at + raw_len);
  std::memcpy(out.data() + at, values.data(), raw_len);
}

void decode_pack_f64(std::span<const std::byte> enc, std::uint64_t raw_len,
                     std::vector<std::byte>& out) {
  OBSCORR_REQUIRE(raw_len % sizeof(double) == 0,
                  "archive: bitpack block size not a lane multiple");
  OBSCORR_REQUIRE(!enc.empty(), "archive: truncated bitpack block");
  const auto width = static_cast<unsigned>(static_cast<std::uint8_t>(enc[0]));
  OBSCORR_REQUIRE(width >= 1 && width <= 51, "archive: bitpack width out of range");
  const std::size_t count = static_cast<std::size_t>(raw_len / sizeof(double));
  OBSCORR_REQUIRE(enc.size() - 1 == (count * width + 7) / 8,
                  "archive: bitpack block length mismatch");
  std::vector<double> values(count);
  unpack_f64(enc.subspan(1), width, count, values.data());
  const std::size_t at = out.size();
  out.resize(at + raw_len);
  std::memcpy(out.data() + at, values.data(), raw_len);
}

void decode_front_str(std::span<const std::byte> enc, std::uint64_t raw_len, bool packed,
                      std::vector<std::byte>& out) {
  const std::size_t at = out.size();
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(enc, pos);
  OBSCORR_REQUIRE(count <= kMaxKeyCount, "archive: implausible front-coded key count");
  const auto put = [&out](const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    out.insert(out.end(), p, p + n);
  };
  put(&count, sizeof count);
  std::string prev;
  std::string key;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t shared = get_varint(enc, pos);
    const std::uint64_t suffix_len = get_varint(enc, pos);
    OBSCORR_REQUIRE(shared <= prev.size(), "archive: front-coded shared length exceeds key");
    OBSCORR_REQUIRE(suffix_len <= kMaxKeyLen, "archive: implausible front-coded key length");
    key.assign(prev, 0, static_cast<std::size_t>(shared));
    if (packed) {
      const std::size_t nibble_bytes = (static_cast<std::size_t>(suffix_len) + 1) / 2;
      OBSCORR_REQUIRE(enc.size() - pos >= nibble_bytes,
                      "archive: truncated front-coded suffix");
      for (std::uint64_t c = 0; c < suffix_len; ++c) {
        const auto pair = static_cast<std::uint8_t>(enc[pos + c / 2]);
        key.push_back(kPackCharset[(c % 2 == 0 ? pair : pair >> 4) & 0x0F]);
      }
      pos += nibble_bytes;
    } else {
      OBSCORR_REQUIRE(enc.size() - pos >= suffix_len,
                      "archive: truncated front-coded suffix");
      key.append(reinterpret_cast<const char*>(enc.data()) + pos,
                 static_cast<std::size_t>(suffix_len));
      pos += static_cast<std::size_t>(suffix_len);
    }
    const auto len = static_cast<std::uint32_t>(key.size());
    OBSCORR_REQUIRE(sizeof len + key.size() <= raw_len &&
                        out.size() - at <= raw_len - sizeof len - key.size(),
                    "archive: front-coded block overruns its declared size");
    put(&len, sizeof len);
    put(key.data(), key.size());
    std::swap(prev, key);
  }
  OBSCORR_REQUIRE(pos == enc.size(), "archive: trailing bytes in front-coded block");
  OBSCORR_REQUIRE(out.size() - at == raw_len,
                  "archive: front-coded block size mismatch");
}

}  // namespace

std::optional<std::uint64_t> decoded_size(std::span<const std::byte> stored) {
  if (stored.size() < kContainerHeaderBytes) return std::nullopt;
  if (std::string_view(reinterpret_cast<const char*>(stored.data()), 8) != kContainerMagic) {
    return std::nullopt;
  }
  const std::uint64_t raw_size = load_u64(stored, 8);
  if (raw_size > kMaxRawSize) return std::nullopt;
  return raw_size;
}

std::optional<std::string> compress_entry(std::string_view name,
                                          std::span<const std::byte> payload) {
  if (payload.size() < 64) return std::nullopt;  // framing overhead dominates
  std::vector<Block> blocks;
  try {
    if (ends_with(name, "/matrix")) {
      matrix_sections(payload, blocks);
    } else if (ends_with(name, "/sources")) {
      sources_sections(payload, blocks);
    } else if (ends_with(name, "/assoc")) {
      assoc_sections(payload, 0, blocks);
    } else if (name.substr(0, 6) == "month/") {
      // Fixed 24-byte month header, then the assoc array's own binary.
      OBSCORR_REQUIRE(payload.size() >= 24, "codec: truncated month header");
      add_raw(blocks, payload.first(24));
      assoc_sections(payload, 24, blocks);
    } else {
      return std::nullopt;
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // unknown shape: keep the raw frame
  }
  if (blocks.size() > kMaxBlockCount) return std::nullopt;

  std::string out;
  out.reserve(payload.size() / 2);
  out.append(kContainerMagic);
  const std::uint64_t raw_size = payload.size();
  const std::uint32_t raw_crc = crc32c(payload);
  const auto block_count = static_cast<std::uint32_t>(blocks.size());
  out.append(reinterpret_cast<const char*>(&raw_size), sizeof raw_size);
  out.append(reinterpret_cast<const char*>(&raw_crc), sizeof raw_crc);
  out.append(reinterpret_cast<const char*>(&block_count), sizeof block_count);
  for (const Block& b : blocks) {
    out.push_back(static_cast<char>(b.tag));
    put_varint(out, b.raw_len);
    put_varint(out, b.enc.size());
    out.append(b.enc);
  }
  if (out.size() >= payload.size()) return std::nullopt;  // incompressible entry
  return out;
}

std::vector<std::byte> decompress_payload(std::span<const std::byte> stored) {
  OBSCORR_REQUIRE(stored.size() >= kContainerHeaderBytes,
                  "archive: truncated compressed payload");
  OBSCORR_REQUIRE(
      std::string_view(reinterpret_cast<const char*>(stored.data()), 8) == kContainerMagic,
      "archive: bad compressed payload magic");
  const std::uint64_t raw_size = load_u64(stored, 8);
  const std::uint32_t raw_crc = load_u32(stored, 16);
  const std::uint32_t block_count = load_u32(stored, 20);
  OBSCORR_REQUIRE(raw_size <= kMaxRawSize, "archive: implausible decoded size");
  OBSCORR_REQUIRE(block_count <= kMaxBlockCount, "archive: implausible block count");

  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(std::min(raw_size, std::uint64_t{1} << 26)));
  std::size_t pos = kContainerHeaderBytes;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    OBSCORR_REQUIRE(pos < stored.size(), "archive: truncated compressed stream");
    const auto tag = static_cast<std::uint8_t>(stored[pos++]);
    OBSCORR_REQUIRE(tag <= kMaxBlockTag, "archive: codec tag out of range");
    const std::uint64_t raw_len = get_varint(stored, pos);
    const std::uint64_t enc_len = get_varint(stored, pos);
    OBSCORR_REQUIRE(raw_len <= kMaxBlockRawLen && raw_len <= raw_size - out.size(),
                    "archive: block exceeds the declared decoded size");
    OBSCORR_REQUIRE(enc_len <= stored.size() - pos, "archive: truncated compressed stream");
    const auto enc = stored.subspan(pos, static_cast<std::size_t>(enc_len));
    pos += static_cast<std::size_t>(enc_len);
    switch (tag) {
      case kBlockRaw: decode_raw(enc, raw_len, out); break;
      case kBlockDeltaU32: decode_delta_u32(enc, raw_len, out); break;
      case kBlockDeltaU64: decode_delta_u64(enc, raw_len, out); break;
      case kBlockPackF64: decode_pack_f64(enc, raw_len, out); break;
      case kBlockFrontStr: decode_front_str(enc, raw_len, /*packed=*/false, out); break;
      case kBlockFrontStrPack: decode_front_str(enc, raw_len, /*packed=*/true, out); break;
      default: OBSCORR_REQUIRE(false, "archive: codec tag out of range");
    }
  }
  OBSCORR_REQUIRE(pos == stored.size(), "archive: trailing bytes after compressed blocks");
  OBSCORR_REQUIRE(out.size() == raw_size,
                  "archive: decoded size does not match the declared size");
  OBSCORR_REQUIRE(crc32c({out.data(), out.size()}) == raw_crc,
                  "archive: decoded payload fails its checksum");
  return out;
}

// ------------------------------------------------------------- dispatch

void unpack_f64(std::span<const std::byte> packed, unsigned width, std::size_t count,
                double* out) {
#if defined(__x86_64__)
  // cvtepi32_pd is signed: the AVX2 lane math holds for widths <= 31.
  if (width <= 31 && count >= 16 && simd::use_avx2()) {
    if (obs::counters_enabled()) {
      static obs::Counter& dispatched = obs::counter("simd.dispatch_codec");
      dispatched.add(1);
    }
    unpack_f64_avx2(packed, width, count, out);
    return;
  }
#endif
  unpack_f64_scalar(packed, width, count, out);
}

void unpack_f64_scalar(std::span<const std::byte> packed, unsigned width, std::size_t count,
                       double* out) {
  const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
  std::size_t bit = 0;
  for (std::size_t i = 0; i < count; ++i, bit += width) {
    const std::size_t byte = bit >> 3;
    // A value spans at most ceil((7 + 51) / 8) = 8 bytes; near the tail
    // the window is loaded short so the read never leaves the span.
    std::uint64_t window = 0;
    std::memcpy(&window, packed.data() + byte, std::min<std::size_t>(8, packed.size() - byte));
    out[i] = static_cast<double>((window >> (bit & 7)) & mask);
  }
}

void unzigzag_prefix_u32(std::span<const std::uint32_t> zz, std::uint32_t* out) {
#if defined(__x86_64__)
  if (zz.size() >= 16 && simd::use_avx2()) {
    if (obs::counters_enabled()) {
      static obs::Counter& dispatched = obs::counter("simd.dispatch_codec");
      dispatched.add(1);
    }
    unzigzag_prefix_u32_avx2(zz, out);
    return;
  }
#endif
  unzigzag_prefix_u32_scalar(zz, out);
}

void unzigzag_prefix_u32_scalar(std::span<const std::uint32_t> zz, std::uint32_t* out) {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < zz.size(); ++i) {
    const std::uint32_t z = zz[i];
    acc += (z >> 1) ^ (~(z & 1) + 1);
    out[i] = acc;
  }
}

}  // namespace obscorr::archive::codec
