#include "archive/study_archive.hpp"

#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "archive/checksum.hpp"
#include "archive/format.hpp"
#include "archive/writer.hpp"
#include "common/error.hpp"
#include "common/interrupt.hpp"
#include "honeyfarm/honeyfarm.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::archive {

namespace {

constexpr std::uint32_t kScenarioVersion = 1;

std::string snapshot_entry(std::size_t k, const char* part) {
  return "snapshot/" + std::to_string(k) + "/" + part;
}

std::string month_entry(std::size_t m) { return "month/" + std::to_string(m); }

void put_year_month(PayloadWriter& w, YearMonth ym) {
  w.i32(ym.year());
  w.i32(ym.month());
}

YearMonth get_year_month(PayloadReader& r) {
  const std::int32_t year = r.i32();
  const std::int32_t month = r.i32();
  OBSCORR_REQUIRE(year >= 0 && year <= 9999 && month >= 1 && month <= 12,
                  "archive: malformed year-month");
  return YearMonth(year, month);
}

void put_prefix(PayloadWriter& w, const Ipv4Prefix& p) {
  w.u32(p.base().value());
  w.i32(p.length());
}

Ipv4Prefix get_prefix(PayloadReader& r) {
  const std::uint32_t base = r.u32();
  const std::int32_t length = r.i32();
  OBSCORR_REQUIRE(length >= 0 && length <= 32, "archive: malformed prefix length");
  return Ipv4Prefix(Ipv4(base), length);
}

/// Snapshot k's Table II source reduction: u64 nnz, u32[nnz] indices,
/// pad8, f64[nnz] values. Indices strictly increasing (DCSR row order).
std::string encode_sources(const gbl::SparseVec& v) {
  PayloadWriter w;
  w.u64(v.nnz());
  w.array(v.indices());
  w.pad8();
  w.array(v.values());
  return w.take();
}

struct SourcesView {
  std::span<const gbl::Index> ids;
  std::span<const gbl::Value> counts;
};

SourcesView decode_sources(std::span<const std::byte> bytes) {
  PayloadReader r(bytes);
  const std::uint64_t nnz = r.u64();
  OBSCORR_REQUIRE(nnz <= bytes.size() / sizeof(gbl::Index),
                  "archive: source vector counts exceed the payload size");
  SourcesView v;
  v.ids = r.array<gbl::Index>(static_cast<std::size_t>(nnz));
  r.pad8();
  v.counts = r.array<gbl::Value>(static_cast<std::size_t>(nnz));
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes after source vector");
  for (std::size_t i = 1; i < v.ids.size(); ++i) {
    OBSCORR_REQUIRE(v.ids[i - 1] < v.ids[i],
                    "archive: source ids must be strictly increasing");
  }
  return v;
}

/// Window metadata: everything in SnapshotData besides the three arrays.
std::string encode_snapshot_meta(const core::SnapshotData& snap) {
  PayloadWriter w;
  put_year_month(w, snap.spec.month);
  w.str(snap.spec.start_label);
  w.f64(snap.spec.paper_duration_sec);
  w.u64(snap.spec.salt);
  w.i32(snap.month_index);
  w.u64(snap.valid_packets);
  w.u64(snap.discarded_packets);
  w.f64(snap.duration_sec);
  return w.take();
}

void decode_snapshot_meta(std::span<const std::byte> bytes, core::SnapshotData& snap) {
  PayloadReader r(bytes);
  snap.spec.month = get_year_month(r);
  snap.spec.start_label = r.str();
  snap.spec.paper_duration_sec = r.f64();
  snap.spec.salt = r.u64();
  snap.month_index = r.i32();
  snap.valid_packets = r.u64();
  snap.discarded_packets = r.u64();
  snap.duration_sec = r.f64();
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes after snapshot metadata");
}

std::string encode_assoc(const d4m::AssocArray& a) {
  std::ostringstream os(std::ios::binary);
  a.write_binary(os);
  return std::move(os).str();
}

d4m::AssocArray decode_assoc(std::span<const std::byte> bytes) {
  return d4m::AssocArray::read_binary(bytes);
}

/// One honeyfarm month: the fixed-size header followed by the assoc
/// array's own binary encoding.
std::string encode_month(const honeyfarm::MonthlyObservation& obs) {
  PayloadWriter w;
  put_year_month(w, obs.month);
  w.u64(obs.population_sources);
  w.u64(obs.ephemeral_sources);
  std::string out = w.take();
  out += encode_assoc(obs.sources);
  return out;
}

honeyfarm::MonthlyObservation decode_month(std::span<const std::byte> bytes) {
  honeyfarm::MonthlyObservation obs;
  PayloadReader r(bytes);
  obs.month = get_year_month(r);
  obs.population_sources = r.u64();
  obs.ephemeral_sources = r.u64();
  obs.sources = decode_assoc(bytes.subspan(r.position()));
  return obs;
}

/// Every entry name a complete archive of `scenario` must contain.
std::vector<std::string> expected_entries(const netgen::Scenario& scenario) {
  std::vector<std::string> names{"scenario"};
  for (std::size_t k = 0; k < scenario.snapshots.size(); ++k) {
    for (const char* part : {"meta", "matrix", "sources", "assoc"}) {
      names.push_back(snapshot_entry(k, part));
    }
  }
  for (std::size_t m = 0; m < scenario.months.size(); ++m) names.push_back(month_entry(m));
  return names;
}

void add_snapshot_entries(ArchiveWriter& w, std::size_t k, const core::SnapshotData& snap) {
  // Resume may find a prefix of a snapshot's four entries already on
  // disk; regeneration is deterministic, so only the missing ones are
  // appended and they agree with the survivors.
  if (const auto name = snapshot_entry(k, "meta"); !w.has_entry(name)) {
    w.add_entry(name, encode_snapshot_meta(snap));
  }
  if (const auto name = snapshot_entry(k, "matrix"); !w.has_entry(name)) {
    std::string payload;
    gbl::append_matrix_v2(payload, snap.matrix);
    w.add_entry(name, payload);
  }
  if (const auto name = snapshot_entry(k, "sources"); !w.has_entry(name)) {
    w.add_entry(name, encode_sources(snap.source_packets));
  }
  if (const auto name = snapshot_entry(k, "assoc"); !w.has_entry(name)) {
    w.add_entry(name, encode_assoc(snap.sources));
  }
}

bool snapshot_complete(const ArchiveWriter& w, std::size_t k) {
  for (const char* part : {"meta", "matrix", "sources", "assoc"}) {
    if (!w.has_entry(snapshot_entry(k, part))) return false;
  }
  return true;
}

}  // namespace

std::string window_entry(std::size_t w, const char* part) {
  return "window/" + std::to_string(w) + "/" + part;
}

std::string encode_window_meta(const LiveWindowMeta& meta) {
  PayloadWriter w;
  w.u64(meta.window);
  w.i32(meta.month_index);
  w.u32(0);  // reserved
  w.u64(meta.salt);
  w.u64(meta.valid_packets);
  w.u64(meta.discarded_packets);
  w.f64(meta.start_sec);
  w.f64(meta.duration_sec);
  return w.take();
}

LiveWindowMeta decode_window_meta(std::span<const std::byte> bytes) {
  PayloadReader r(bytes);
  LiveWindowMeta meta;
  meta.window = r.u64();
  meta.month_index = r.i32();
  const std::uint32_t reserved = r.u32();
  OBSCORR_REQUIRE(reserved == 0, "archive: malformed window metadata");
  meta.salt = r.u64();
  meta.valid_packets = r.u64();
  meta.discarded_packets = r.u64();
  meta.start_sec = r.f64();
  meta.duration_sec = r.f64();
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes after window metadata");
  OBSCORR_REQUIRE(meta.month_index >= 0, "archive: negative window month index");
  return meta;
}

std::string encode_source_vector(const gbl::SparseVec& v) { return encode_sources(v); }

std::string encode_scenario(const netgen::Scenario& s) {
  PayloadWriter w;
  w.u32(kScenarioVersion);

  const netgen::PopulationConfig& p = s.population;
  w.u64(p.population);
  w.f64(p.zm_alpha);
  w.f64(p.zm_delta);
  w.u64(p.log2_nv);
  w.f64(p.rebirth_prob);
  w.f64(p.persist_shape_stable);
  w.f64(p.persist_shape_churny);
  w.f64(p.hybrid_share);
  w.u64(p.hybrid_sources);
  w.f64(p.hybrid_alpha);
  w.f64(p.hybrid_delta);
  w.f64(p.botnet_fraction);
  w.u64(p.botnet_block_size);
  w.f64(p.botnet_block_persist);
  w.f64(p.botnet_block_rebirth);
  w.u64(p.seed);

  const netgen::TrafficConfig& t = s.traffic;
  put_prefix(w, t.darkspace);
  put_prefix(w, t.legit_prefix);
  w.f64(t.legit_fraction);
  w.f64(t.uniform_weight);
  w.f64(t.sequential_weight);
  w.f64(t.subnet_weight);

  w.u32(static_cast<std::uint32_t>(s.visibility.kind));
  w.i32(s.visibility.log2_nv);
  w.f64(s.visibility.coverage_half);

  w.u64(s.months.size());
  for (const netgen::GreyNoiseMonthSpec& m : s.months) {
    put_year_month(w, m.month);
    w.f64(m.coverage);
    w.f64(m.ephemeral_factor);
  }
  w.u64(s.snapshots.size());
  for (const netgen::CaidaSnapshotSpec& snap : s.snapshots) {
    put_year_month(w, snap.month);
    w.str(snap.start_label);
    w.f64(snap.paper_duration_sec);
    w.u64(snap.salt);
  }
  return w.take();
}

netgen::Scenario decode_scenario(std::span<const std::byte> bytes) {
  PayloadReader r(bytes);
  const std::uint32_t version = r.u32();
  OBSCORR_REQUIRE(version == kScenarioVersion, "archive: unsupported scenario version");

  netgen::Scenario s;
  netgen::PopulationConfig& p = s.population;
  p.population = static_cast<std::size_t>(r.u64());
  p.zm_alpha = r.f64();
  p.zm_delta = r.f64();
  p.log2_nv = r.u64();
  p.rebirth_prob = r.f64();
  p.persist_shape_stable = r.f64();
  p.persist_shape_churny = r.f64();
  p.hybrid_share = r.f64();
  p.hybrid_sources = static_cast<std::size_t>(r.u64());
  p.hybrid_alpha = r.f64();
  p.hybrid_delta = r.f64();
  p.botnet_fraction = r.f64();
  p.botnet_block_size = static_cast<std::size_t>(r.u64());
  p.botnet_block_persist = r.f64();
  p.botnet_block_rebirth = r.f64();
  p.seed = r.u64();

  netgen::TrafficConfig& t = s.traffic;
  t.darkspace = get_prefix(r);
  t.legit_prefix = get_prefix(r);
  t.legit_fraction = r.f64();
  t.uniform_weight = r.f64();
  t.sequential_weight = r.f64();
  t.subnet_weight = r.f64();

  const std::uint32_t kind = r.u32();
  OBSCORR_REQUIRE(kind <= static_cast<std::uint32_t>(netgen::VisibilityKind::kCoverage),
                  "archive: unknown visibility kind");
  s.visibility.kind = static_cast<netgen::VisibilityKind>(kind);
  s.visibility.log2_nv = r.i32();
  s.visibility.coverage_half = r.f64();

  const std::uint64_t month_count = r.u64();
  OBSCORR_REQUIRE(month_count <= 100000, "archive: implausible month count");
  for (std::uint64_t m = 0; m < month_count; ++m) {
    netgen::GreyNoiseMonthSpec spec;
    spec.month = get_year_month(r);
    spec.coverage = r.f64();
    spec.ephemeral_factor = r.f64();
    s.months.push_back(spec);
  }
  const std::uint64_t snap_count = r.u64();
  OBSCORR_REQUIRE(snap_count <= 100000, "archive: implausible snapshot count");
  for (std::uint64_t k = 0; k < snap_count; ++k) {
    netgen::CaidaSnapshotSpec spec;
    spec.month = get_year_month(r);
    spec.start_label = r.str();
    spec.paper_duration_sec = r.f64();
    spec.salt = r.u64();
    s.snapshots.push_back(spec);
  }
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes after scenario");
  return s;
}

std::uint64_t scenario_fingerprint(const netgen::Scenario& scenario) {
  return fnv1a64(encode_scenario(scenario));
}

ArchiveStats archive_study(const netgen::Scenario& scenario, const std::string& dir,
                           ThreadPool& pool) {
  OBSCORR_REQUIRE(!scenario.snapshots.empty(), "scenario needs at least one snapshot");
  const std::string encoded = encode_scenario(scenario);
  const std::uint64_t hash = fnv1a64(encoded);

  ArchiveStats stats;
  stats.snapshots_total = scenario.snapshots.size();
  stats.months_total = scenario.months.size();

  // A completed archive is immutable: same scenario is a no-op, a
  // different one is refused rather than silently overwritten.
  if (std::filesystem::exists(std::filesystem::path(dir) / kManifestName)) {
    const ArchiveReader existing(dir);
    OBSCORR_REQUIRE(existing.scenario_hash() == hash,
                    "archive_study: " + dir + " already holds a completed archive of a "
                    "different scenario");
    stats.already_complete = true;
    stats.snapshots_reused = stats.snapshots_total;
    stats.months_reused = stats.months_total;
    return stats;
  }

  ArchiveWriter writer(dir);
  if (writer.has_entry("scenario")) {
    const std::vector<std::byte> existing = writer.read_entry("scenario");
    const bool same = existing.size() == encoded.size() &&
                      std::memcmp(existing.data(), encoded.data(), encoded.size()) == 0;
    if (!same) writer.reset();  // stale partial run of another scenario
  }
  if (!writer.has_entry("scenario")) writer.add_entry("scenario", encoded);

  // The population is only built when at least one snapshot or month is
  // actually missing; a fully recovered log resumes straight to commit.
  std::unique_ptr<netgen::Population> population;
  const auto world = [&]() -> const netgen::Population& {
    if (!population) population = std::make_unique<netgen::Population>(scenario.population);
    return *population;
  };

  // SIGINT/SIGTERM checkpoints sit between entries: every complete
  // snapshot/month is already flushed to the append-only log when the
  // flag is observed, so an interrupted run leaves a resumable partial
  // archive (no manifest) and the same command picks up where it
  // stopped. The in-progress entry is abandoned, never half-written.
  for (std::size_t k = 0; k < scenario.snapshots.size(); ++k) {
    if (snapshot_complete(writer, k)) {
      ++stats.snapshots_reused;
      continue;
    }
    if (interrupt::stop_requested()) {
      stats.interrupted = true;
      return stats;
    }
    add_snapshot_entries(writer, k, core::run_snapshot(scenario, world(), k, pool));
  }
  for (std::size_t m = 0; m < scenario.months.size(); ++m) {
    if (writer.has_entry(month_entry(m))) {
      ++stats.months_reused;
      continue;
    }
    if (interrupt::stop_requested()) {
      stats.interrupted = true;
      return stats;
    }
    writer.add_entry(month_entry(m), encode_month(core::run_month(scenario, world(), m)));
  }
  writer.finalize(hash);
  return stats;
}

void write_study(const core::StudyData& study, const std::string& dir) {
  ArchiveWriter writer(dir);
  writer.reset();
  writer.add_entry("scenario", encode_scenario(study.scenario));
  for (std::size_t k = 0; k < study.snapshots.size(); ++k) {
    add_snapshot_entries(writer, k, study.snapshots[k]);
  }
  for (std::size_t m = 0; m < study.months.size(); ++m) {
    writer.add_entry(month_entry(m), encode_month(study.months[m]));
  }
  writer.finalize(scenario_fingerprint(study.scenario));
}

StudyReader::StudyReader(const std::string& dir) : reader_(dir) {
  OBSCORR_REQUIRE(reader_.has("scenario"), "archive: missing scenario entry");
  scenario_ = decode_scenario(reader_.payload("scenario"));
  OBSCORR_REQUIRE(scenario_fingerprint(scenario_) == reader_.scenario_hash(),
                  "archive: manifest scenario hash does not match the scenario entry");
  for (const std::string& name : expected_entries(scenario_)) {
    OBSCORR_REQUIRE(reader_.has(name), "archive: missing entry " + name);
  }
  window_count_ = count_windows(0);
}

std::size_t StudyReader::count_windows(std::size_t from) const {
  std::size_t w = from;
  while (reader_.has(window_entry(w, "meta")) && reader_.has(window_entry(w, "matrix")) &&
         reader_.has(window_entry(w, "sources"))) {
    ++w;
  }
  return w;
}

std::size_t StudyReader::refresh() {
  reader_.refresh();
  const std::size_t before = window_count_;
  window_count_ = count_windows(window_count_);
  return window_count_ - before;
}

LiveWindowMeta StudyReader::window_meta(std::size_t w) const {
  OBSCORR_REQUIRE(w < window_count_, "archive: window index out of range");
  return decode_window_meta(reader_.payload(window_entry(w, "meta")));
}

gbl::MatrixView StudyReader::window_matrix(std::size_t w) const {
  OBSCORR_REQUIRE(w < window_count_, "archive: window index out of range");
  const PayloadView p = reader_.payload(window_entry(w, "matrix"));
  return gbl::MatrixView::from_bytes(p, p.page);
}

StudyReader::SourcesRef StudyReader::window_sources(std::size_t w) const {
  OBSCORR_REQUIRE(w < window_count_, "archive: window index out of range");
  const PayloadView p = reader_.payload(window_entry(w, "sources"));
  const SourcesView v = decode_sources(p);
  return {v.ids, v.counts, p.page};
}

gbl::SparseVec StudyReader::window_source_packets(std::size_t w) const {
  const SourcesRef v = window_sources(w);
  return gbl::SparseVec(std::vector<gbl::Index>(v.ids.begin(), v.ids.end()),
                        std::vector<gbl::Value>(v.counts.begin(), v.counts.end()));
}

gbl::MatrixView StudyReader::matrix(std::size_t k) const {
  OBSCORR_REQUIRE(k < snapshot_count(), "archive: snapshot index out of range");
  const PayloadView p = reader_.payload(snapshot_entry(k, "matrix"));
  return gbl::MatrixView::from_bytes(p, p.page);
}

StudyReader::SourcesRef StudyReader::sources(std::size_t k) const {
  OBSCORR_REQUIRE(k < snapshot_count(), "archive: snapshot index out of range");
  const PayloadView p = reader_.payload(snapshot_entry(k, "sources"));
  const SourcesView v = decode_sources(p);
  return {v.ids, v.counts, p.page};
}

gbl::SparseVec StudyReader::source_packets(std::size_t k) const {
  const SourcesRef v = sources(k);
  return gbl::SparseVec(std::vector<gbl::Index>(v.ids.begin(), v.ids.end()),
                        std::vector<gbl::Value>(v.counts.begin(), v.counts.end()));
}

core::SnapshotData StudyReader::snapshot(std::size_t k, bool with_matrix) const {
  OBSCORR_REQUIRE(k < snapshot_count(), "archive: snapshot index out of range");
  core::SnapshotData snap;
  decode_snapshot_meta(reader_.payload(snapshot_entry(k, "meta")), snap);
  if (with_matrix) snap.matrix = matrix(k).materialize();
  snap.source_packets = source_packets(k);
  snap.sources = decode_assoc(reader_.payload(snapshot_entry(k, "assoc")));
  return snap;
}

honeyfarm::MonthlyObservation StudyReader::month(std::size_t m) const {
  OBSCORR_REQUIRE(m < month_count(), "archive: month index out of range");
  return decode_month(reader_.payload(month_entry(m)));
}

std::vector<honeyfarm::MonthlyObservation> StudyReader::months() const {
  std::vector<honeyfarm::MonthlyObservation> all;
  all.reserve(month_count());
  for (std::size_t m = 0; m < month_count(); ++m) all.push_back(month(m));
  return all;
}

core::StudyData StudyReader::study() const {
  core::StudyData study;
  study.scenario = scenario_;
  study.population = std::make_shared<netgen::Population>(scenario_.population);
  study.snapshots.reserve(snapshot_count());
  for (std::size_t k = 0; k < snapshot_count(); ++k) study.snapshots.push_back(snapshot(k));
  study.months = months();
  return study;
}

core::StudyData StudyReader::analysis_study() const {
  core::StudyData study;
  study.scenario = scenario_;
  study.snapshots.reserve(snapshot_count());
  for (std::size_t k = 0; k < snapshot_count(); ++k) {
    study.snapshots.push_back(snapshot(k, /*with_matrix=*/false));
  }
  study.months = months();
  return study;
}

core::StudyData read_study(const std::string& dir) { return StudyReader(dir).study(); }

}  // namespace obscorr::archive
