#include "archive/compact.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <string_view>

#include "archive/codec.hpp"
#include "archive/reader.hpp"
#include "archive/writer.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"

namespace obscorr::archive {

namespace {

/// Window index of a "window/<w>/..." entry name, or -1.
std::int64_t window_index(std::string_view name) {
  constexpr std::string_view prefix = "window/";
  if (name.substr(0, prefix.size()) != prefix) return -1;
  const std::string_view rest = name.substr(prefix.size());
  std::uint64_t w = 0;
  const auto [end, err] = std::from_chars(rest.data(), rest.data() + rest.size(), w);
  if (err != std::errc{} || end == rest.data() + rest.size() || *end != '/') return -1;
  return static_cast<std::int64_t>(w);
}

std::string_view as_chars(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

}  // namespace

CompactStats compact_archive(const std::string& dir, const CompactOptions& opts) {
  const obs::Span span("archive.compact", [&] { return dir; });
  const ArchiveReader reader(dir);

  // The raw tier boundary: windows within keep_recent of the newest
  // stay raw. Window count comes from the catalog itself so a partial
  // (resumed) archive tiers correctly too.
  std::int64_t max_window = -1;
  for (const EntryInfo& e : reader.entries()) {
    max_window = std::max(max_window, window_index(e.name));
  }
  const std::int64_t raw_from =
      opts.compress_all ? max_window + 1
                        : max_window + 1 - static_cast<std::int64_t>(opts.keep_recent);

  ArchiveWriter writer(dir, reader.generation() + 1);
  CompactStats stats;
  stats.generation = writer.generation();
  for (const EntryInfo& e : reader.entries()) {
    stats.entries_total += 1;
    stats.raw_bytes += e.raw_size;
    stats.stored_bytes_before += e.size;
    if (e.flags & kEntryFlagCompressed) {
      // Already compressed: copy the stored container through verbatim
      // (no decode/re-encode cycle; its frame CRC is recomputed, its
      // bytes are not touched).
      writer.add_entry_compressed(e.name, as_chars(reader.stored_payload(e.name)),
                                  e.raw_size);
      stats.entries_compressed += 1;
      continue;
    }
    const std::span<const std::byte> payload = reader.payload(e.name);
    const std::int64_t w = window_index(e.name);
    const bool hot_tail = w >= 0 && w >= raw_from;
    if (!hot_tail) {
      if (auto stored = codec::compress_entry(e.name, payload)) {
        writer.add_entry_compressed(e.name, *stored, payload.size());
        stats.entries_compressed += 1;
        continue;
      }
    }
    writer.add_entry(e.name, as_chars(payload));
  }
  for (const EntryInfo& e : writer.entries()) stats.stored_bytes_after += e.size;
  writer.finalize(reader.scenario_hash());

  // The new manifest is committed; superseded generation logs are now
  // unreachable. Deletion is best-effort — a leftover log is dead weight
  // the next compaction will also try to clear, never a correctness
  // problem.
  const std::string keep = log_file_name(writer.generation());
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    const std::string file = de.path().filename().string();
    const bool is_log = file == kEntryLogName ||
                        (file.rfind("entries.", 0) == 0 &&
                         file.size() > 4 && file.substr(file.size() - 4) == ".dat");
    if (is_log && file != keep) std::filesystem::remove(de.path(), ec);
  }
  return stats;
}

}  // namespace obscorr::archive
