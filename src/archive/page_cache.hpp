#pragma once
/// \file page_cache.hpp
/// Sharded LRU cache of decompressed archive pages.
///
/// Compressed OBSAENT2 entries decode into heap pages; hot windows are
/// re-read constantly by `report --from`, the svc QueryEngine, and
/// refresh-driven re-renders, so each ArchiveReader keeps decoded pages
/// in an LRU bounded by a byte budget. Pages are handed out as
/// shared_ptr<const std::vector<std::byte>>: eviction drops the cache's
/// reference but never invalidates a payload view an earlier caller
/// still holds.
///
/// The budget resolves, in priority order: the process-wide
/// set_cache_bytes() override (the CLI's --cache-bytes), the
/// OBSCORR_CACHE_BYTES environment variable, then a 256 MiB default.
/// A budget of zero disables caching (every lookup is a miss and
/// nothing is retained) — the CI cache-off leg runs the whole suite
/// that way to prove reads do not depend on cache state.
///
/// Counters (canonical catalogue): cache.hits, cache.misses,
/// cache.evictions; gauge cache.bytes tracks the high-water resident
/// total across all cache instances.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace obscorr::archive {

/// A decoded page: immutable once inserted, shared between the cache
/// and any outstanding payload views.
using CachePage = std::shared_ptr<const std::vector<std::byte>>;

/// Resolve the page-cache byte budget from override > env > default.
std::uint64_t resolve_cache_bytes();

/// Process-wide budget override (nullopt restores env/default
/// resolution). Takes effect for caches constructed afterwards.
void set_cache_bytes(std::optional<std::uint64_t> bytes);

class PageCache {
 public:
  /// Budget is split evenly across shards; a page bigger than its
  /// shard's slice is served but never retained.
  explicit PageCache(std::uint64_t budget_bytes);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Look up `key`; bumps the page to most-recently-used on hit.
  CachePage find(std::uint64_t key);

  /// Insert (or refresh) `key`; evicts least-recently-used pages until
  /// the shard fits its budget slice. Returns the retained page (or
  /// `page` unchanged when the budget excludes it).
  CachePage insert(std::uint64_t key, CachePage page);

  std::uint64_t budget_bytes() const { return budget_; }

  /// Resident bytes summed over all shards (test/diagnostic use).
  std::uint64_t resident_bytes() const;

 private:
  static constexpr std::size_t kShards = 8;

  struct Entry {
    std::uint64_t key = 0;
    CachePage page;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t bytes = 0;
  };

  Shard& shard_for(std::uint64_t key) { return shards_[(key >> 4) % kShards]; }

  std::uint64_t budget_ = 0;
  std::uint64_t shard_budget_ = 0;
  Shard shards_[kShards];
};

}  // namespace obscorr::archive
