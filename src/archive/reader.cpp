#include "archive/reader.hpp"

#include <algorithm>
#include <filesystem>

#include "archive/checksum.hpp"
#include "archive/format.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

namespace {

constexpr std::string_view kManifestMagic = "OBSARCH1";
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kMaxEntries = 1u << 20;

}  // namespace

ArchiveReader::ArchiveReader(const std::string& dir) : dir_(dir) {
  const obs::Span span("archive.open", [&] { return dir; });
  OBSCORR_REQUIRE(std::filesystem::is_directory(dir),
                  "archive: " + dir + " is not an archive directory");
  const std::string manifest_path = dir + "/" + kManifestName;
  OBSCORR_REQUIRE(std::filesystem::is_regular_file(manifest_path),
                  "archive: " + dir + " has no manifest (incomplete or not an archive)");

  // The manifest is small; read it whole and checksum before parsing.
  const MappedFile manifest_file = MappedFile::open(manifest_path, /*allow_mmap=*/false);
  const auto manifest = manifest_file.bytes();
  OBSCORR_REQUIRE(manifest.size() >= 8 + 4 + 4 + 8 + 8 + 4 + 4,
                  "archive: manifest truncated in " + dir);
  const std::size_t body_size = manifest.size() - 4;
  PayloadReader tail(manifest.subspan(body_size));
  const std::uint32_t stored_crc = tail.u32();
  OBSCORR_REQUIRE(crc32c(manifest.first(body_size)) == stored_crc,
                  "archive: manifest checksum mismatch in " + dir +
                      " (corrupted or torn manifest)");

  PayloadReader r(manifest.first(body_size));
  const auto magic = r.array<char>(8);
  OBSCORR_REQUIRE(std::string_view(magic.data(), magic.size()) == kManifestMagic,
                  "archive: bad manifest magic in " + dir);
  const std::uint32_t version = r.u32();
  OBSCORR_REQUIRE(version == kManifestVersion,
                  "archive: unsupported manifest version " + std::to_string(version));
  const std::uint32_t entry_count = r.u32();
  OBSCORR_REQUIRE(entry_count <= kMaxEntries, "archive: implausible entry count");
  scenario_hash_ = r.u64();
  const std::uint64_t data_size = r.u64();
  const std::uint32_t log_crc = r.u32();

  entries_.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    EntryInfo e;
    const std::uint32_t name_len = r.u32();
    e.crc32c = r.u32();
    e.offset = r.u64();
    e.size = r.u64();
    OBSCORR_REQUIRE(name_len >= 1 && name_len <= 4096, "archive: bad entry name length");
    const auto name = r.array<char>(name_len);
    e.name.assign(name.data(), name.size());
    entries_.push_back(std::move(e));
  }
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes in manifest");

  // Map the entry log and validate the catalog against it.
  log_ = MappedFile::open(dir + "/" + kEntryLogName);
  OBSCORR_REQUIRE(log_.size() >= data_size,
                  "archive: entry log shorter than the manifest expects (truncated)");
  for (const EntryInfo& e : entries_) {
    OBSCORR_REQUIRE(e.offset % 8 == 0, "archive: misaligned entry " + e.name);
    OBSCORR_REQUIRE(e.offset <= data_size && e.size <= data_size - e.offset,
                    "archive: entry " + e.name + " exceeds the log");
  }
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_read = obs::counter("archive.bytes_read");
    static obs::Counter& frames_read = obs::counter("archive.frames_read");
    static obs::Counter& open_mmap = obs::counter("archive.open_mmap");
    static obs::Counter& open_heap = obs::counter("archive.open_heap");
    bytes_read.add(data_size);
    frames_read.add(entries_.size());
    (log_.mapped() ? open_mmap : open_heap).add(1);
  }
  static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
  const obs::ScopedNsCounter crc_time(crc_ns);
  // One integrity pass over the whole log: the manifest's log checksum
  // covers payloads, frame headers and padding alike, so any single-byte
  // corruption of entries.dat fails here. Only then — on failure — is the
  // per-entry CRC scan run, to pin the corruption to a named entry in the
  // error message; the happy path checksums the log exactly once.
  if (crc32c(log_.bytes().first(data_size)) != log_crc) {
    for (const EntryInfo& e : entries_) {
      OBSCORR_REQUIRE(crc32c(log_.bytes().subspan(e.offset, e.size)) == e.crc32c,
                      "archive: checksum mismatch in entry " + e.name +
                          " (corrupted archive data)");
    }
    OBSCORR_REQUIRE(false, "archive: entry log checksum mismatch in " + dir +
                               " (corrupted archive metadata)");
  }
}

bool ArchiveReader::has(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const EntryInfo& e) { return e.name == name; });
}

std::span<const std::byte> ArchiveReader::payload(std::string_view name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EntryInfo& e) { return e.name == name; });
  OBSCORR_REQUIRE(it != entries_.end(), "archive: no entry named " + std::string(name));
  return log_.bytes().subspan(it->offset, it->size);
}

}  // namespace obscorr::archive
