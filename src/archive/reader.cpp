#include "archive/reader.hpp"

#include <algorithm>
#include <filesystem>

#include "archive/checksum.hpp"
#include "archive/codec.hpp"
#include "archive/format.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

namespace {

/// Catalog-row sanity against a log region `[region_begin, region_end)`.
void check_entry_bounds(const EntryInfo& e, std::uint64_t region_begin,
                        std::uint64_t region_end) {
  OBSCORR_REQUIRE(e.offset % 8 == 0, "archive: misaligned entry " + e.name);
  OBSCORR_REQUIRE(e.offset >= region_begin && e.offset <= region_end &&
                      e.size <= region_end - e.offset,
                  "archive: entry " + e.name + " exceeds the log");
}

/// Page-cache key: generation in the top bits, 8-aligned offset below —
/// exact and collision-free, so a key can never serve another entry's
/// (or another generation's) bytes. Offsets at or beyond 2^43 (8 TiB)
/// don't fit; such pages are simply never cached.
constexpr std::uint64_t kCacheOffsetBits = 40;

bool cache_key(std::uint32_t generation, std::uint64_t offset, std::uint64_t* key) {
  const std::uint64_t slot = offset >> 3;
  if (slot >> kCacheOffsetBits != 0) return false;
  *key = (static_cast<std::uint64_t>(generation) << kCacheOffsetBits) | slot;
  return true;
}

}  // namespace

ArchiveReader::ArchiveReader(const std::string& dir)
    : dir_(dir), cache_(std::make_unique<PageCache>(resolve_cache_bytes())) {
  const obs::Span span("archive.open", [&] { return dir; });
  OBSCORR_REQUIRE(std::filesystem::is_directory(dir),
                  "archive: " + dir + " is not an archive directory");
  attach(read_manifest(dir));
}

void ArchiveReader::attach(ParsedManifest m) {
  scenario_hash_ = m.scenario_hash;
  generation_ = m.generation;
  data_size_ = m.data_size;
  log_crc_ = m.log_crc;
  entries_ = std::move(m.entries);
  tails_.clear();

  // Map the entry log and validate the catalog against it.
  log_ = MappedFile::open(dir_ + "/" + log_file_name(generation_));
  OBSCORR_REQUIRE(log_.size() >= data_size_,
                  "archive: entry log shorter than the manifest expects (truncated)");
  for (const EntryInfo& e : entries_) check_entry_bounds(e, 0, data_size_);
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_read = obs::counter("archive.bytes_read");
    static obs::Counter& frames_read = obs::counter("archive.frames_read");
    static obs::Counter& open_mmap = obs::counter("archive.open_mmap");
    static obs::Counter& open_heap = obs::counter("archive.open_heap");
    bytes_read.add(data_size_);
    frames_read.add(entries_.size());
    (log_.mapped() ? open_mmap : open_heap).add(1);
  }
  static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
  const obs::ScopedNsCounter crc_time(crc_ns);
  // One integrity pass over the whole log: the manifest's log checksum
  // covers payloads, frame headers and padding alike, so any single-byte
  // corruption of the entry log fails here. Only then — on failure — is
  // the per-entry CRC scan run, to pin the corruption to a named entry in
  // the error message; the happy path checksums the log exactly once.
  if (crc32c(log_.bytes().first(data_size_)) != log_crc_) {
    for (const EntryInfo& e : entries_) {
      OBSCORR_REQUIRE(crc32c(log_.bytes().subspan(e.offset, e.size)) == e.crc32c,
                      "archive: checksum mismatch in entry " + e.name +
                          " (corrupted archive data)");
    }
    OBSCORR_REQUIRE(false, "archive: entry log checksum mismatch in " + dir_ +
                               " (corrupted archive metadata)");
  }
}

std::size_t ArchiveReader::refresh() {
  ParsedManifest m = read_manifest(dir_);
  OBSCORR_REQUIRE(m.scenario_hash == scenario_hash_,
                  "archive: scenario changed under a live reader in " + dir_);
  if (m.generation != generation_) {
    // `archive compact` republished the catalog over a new log file.
    // Entry layout changed wholesale (offsets, sizes, compression), so
    // reopen against the new generation; the superseded mappings are
    // retired, not unmapped, keeping previously served spans valid.
    const std::size_t before = entries_.size();
    retired_.push_back(std::move(log_));
    for (TailSegment& seg : tails_) retired_.push_back(std::move(seg.map));
    attach(std::move(m));
    return entries_.size() > before ? entries_.size() - before : 0;
  }
  if (m.data_size == data_size_ && m.entries.size() == entries_.size()) return 0;
  OBSCORR_REQUIRE(m.data_size >= data_size_ && m.entries.size() >= entries_.size(),
                  "archive: manifest shrank on refresh (not an append) in " + dir_);
  // The published log is append-only within a generation: every
  // previously cataloged entry must reappear unchanged, in order —
  // including its frame version (flags) and decoded size, since a mixed
  // raw/compressed catalog is legal after a compaction.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const EntryInfo& a = entries_[i];
    const EntryInfo& b = m.entries[i];
    OBSCORR_REQUIRE(a.name == b.name && a.offset == b.offset && a.size == b.size &&
                        a.crc32c == b.crc32c && a.flags == b.flags &&
                        a.raw_size == b.raw_size,
                    "archive: published entry " + a.name + " changed on refresh");
  }
  for (std::size_t i = entries_.size(); i < m.entries.size(); ++i) {
    check_entry_bounds(m.entries[i], data_size_, m.data_size);
  }

  // Map only the appended tail and extend the whole-log checksum over
  // it: refresh cost is proportional to the new windows, not the
  // archive. (The tail mapping is created now, so it sees the bytes the
  // just-read manifest committed.)
  TailSegment seg;
  seg.base = data_size_;
  seg.map = MappedFile::open_range(dir_ + "/" + log_file_name(generation_),
                                   static_cast<std::size_t>(data_size_),
                                   static_cast<std::size_t>(m.data_size - data_size_));
  {
    static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
    const obs::ScopedNsCounter crc_time(crc_ns);
    OBSCORR_REQUIRE(crc32c(seg.map.bytes(), log_crc_) == m.log_crc,
                    "archive: appended log bytes fail the manifest checksum in " + dir_);
  }
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_read = obs::counter("archive.bytes_read");
    static obs::Counter& frames_read = obs::counter("archive.frames_read");
    bytes_read.add(m.data_size - data_size_);
    frames_read.add(m.entries.size() - entries_.size());
  }

  const std::size_t added = m.entries.size() - entries_.size();
  entries_ = std::move(m.entries);
  data_size_ = m.data_size;
  log_crc_ = m.log_crc;
  if (seg.map.size() > 0) tails_.push_back(std::move(seg));
  return added;
}

bool ArchiveReader::has(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const EntryInfo& e) { return e.name == name; });
}

const EntryInfo& ArchiveReader::find_entry(std::string_view name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EntryInfo& e) { return e.name == name; });
  OBSCORR_REQUIRE(it != entries_.end(), "archive: no entry named " + std::string(name));
  return *it;
}

std::span<const std::byte> ArchiveReader::locate(const EntryInfo& e) const {
  // Later tails start where earlier coverage ends, so every entry lies
  // wholly inside exactly one segment (bounds-checked when cataloged).
  for (auto seg = tails_.rbegin(); seg != tails_.rend(); ++seg) {
    if (e.offset >= seg->base && e.offset - seg->base + e.size <= seg->map.size()) {
      return seg->map.bytes().subspan(e.offset - seg->base, e.size);
    }
  }
  return log_.bytes().subspan(e.offset, e.size);
}

std::span<const std::byte> ArchiveReader::stored_payload(std::string_view name) const {
  return locate(find_entry(name));
}

PayloadView ArchiveReader::payload(std::string_view name) const {
  const EntryInfo& e = find_entry(name);
  const auto stored = locate(e);
  if ((e.flags & kEntryFlagCompressed) == 0) return {stored, nullptr};

  std::uint64_t key = 0;
  const bool cacheable = cache_key(generation_, e.offset, &key);
  if (cacheable) {
    if (CachePage page = cache_->find(key)) {
      return {{page->data(), page->size()}, std::move(page)};
    }
  }
  const obs::Span span("archive.decode", [&] { return e.name; });
  std::vector<std::byte> decoded = codec::decompress_payload(stored);
  OBSCORR_REQUIRE(decoded.size() == e.raw_size,
                  "archive: entry " + e.name +
                      " decoded size disagrees with the manifest");
  auto page = std::make_shared<const std::vector<std::byte>>(std::move(decoded));
  if (cacheable) page = cache_->insert(key, std::move(page));
  return {{page->data(), page->size()}, std::move(page)};
}

}  // namespace obscorr::archive
