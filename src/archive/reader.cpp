#include "archive/reader.hpp"

#include <algorithm>
#include <filesystem>

#include "archive/checksum.hpp"
#include "archive/format.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::archive {

namespace {

constexpr std::string_view kManifestMagic = "OBSARCH1";
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kMaxEntries = 1u << 20;

/// A parsed, CRC-verified manifest.
struct ParsedManifest {
  std::uint64_t scenario_hash = 0;
  std::uint64_t data_size = 0;
  std::uint32_t log_crc = 0;
  std::vector<EntryInfo> entries;
};

/// Read and parse `dir`'s manifest; throws on a missing, truncated, or
/// corrupt one. Shared by open and refresh — the manifest is published
/// by atomic rename, so any successfully parsed read is a complete
/// catalog, never a torn intermediate.
ParsedManifest read_manifest(const std::string& dir) {
  const std::string manifest_path = dir + "/" + kManifestName;
  OBSCORR_REQUIRE(std::filesystem::is_regular_file(manifest_path),
                  "archive: " + dir + " has no manifest (incomplete or not an archive)");

  // The manifest is small; read it whole and checksum before parsing.
  const MappedFile manifest_file = MappedFile::open(manifest_path, /*allow_mmap=*/false);
  const auto manifest = manifest_file.bytes();
  OBSCORR_REQUIRE(manifest.size() >= 8 + 4 + 4 + 8 + 8 + 4 + 4,
                  "archive: manifest truncated in " + dir);
  const std::size_t body_size = manifest.size() - 4;
  PayloadReader tail(manifest.subspan(body_size));
  const std::uint32_t stored_crc = tail.u32();
  OBSCORR_REQUIRE(crc32c(manifest.first(body_size)) == stored_crc,
                  "archive: manifest checksum mismatch in " + dir +
                      " (corrupted or torn manifest)");

  PayloadReader r(manifest.first(body_size));
  const auto magic = r.array<char>(8);
  OBSCORR_REQUIRE(std::string_view(magic.data(), magic.size()) == kManifestMagic,
                  "archive: bad manifest magic in " + dir);
  const std::uint32_t version = r.u32();
  OBSCORR_REQUIRE(version == kManifestVersion,
                  "archive: unsupported manifest version " + std::to_string(version));
  const std::uint32_t entry_count = r.u32();
  OBSCORR_REQUIRE(entry_count <= kMaxEntries, "archive: implausible entry count");

  ParsedManifest out;
  out.scenario_hash = r.u64();
  out.data_size = r.u64();
  out.log_crc = r.u32();
  out.entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    EntryInfo e;
    const std::uint32_t name_len = r.u32();
    e.crc32c = r.u32();
    e.offset = r.u64();
    e.size = r.u64();
    OBSCORR_REQUIRE(name_len >= 1 && name_len <= 4096, "archive: bad entry name length");
    const auto name = r.array<char>(name_len);
    e.name.assign(name.data(), name.size());
    out.entries.push_back(std::move(e));
  }
  OBSCORR_REQUIRE(r.done(), "archive: trailing bytes in manifest");
  return out;
}

/// Catalog-row sanity against a log region `[region_begin, region_end)`.
void check_entry_bounds(const EntryInfo& e, std::uint64_t region_begin,
                        std::uint64_t region_end) {
  OBSCORR_REQUIRE(e.offset % 8 == 0, "archive: misaligned entry " + e.name);
  OBSCORR_REQUIRE(e.offset >= region_begin && e.offset <= region_end &&
                      e.size <= region_end - e.offset,
                  "archive: entry " + e.name + " exceeds the log");
}

}  // namespace

ArchiveReader::ArchiveReader(const std::string& dir) : dir_(dir) {
  const obs::Span span("archive.open", [&] { return dir; });
  OBSCORR_REQUIRE(std::filesystem::is_directory(dir),
                  "archive: " + dir + " is not an archive directory");
  ParsedManifest m = read_manifest(dir);
  scenario_hash_ = m.scenario_hash;
  data_size_ = m.data_size;
  log_crc_ = m.log_crc;
  entries_ = std::move(m.entries);

  // Map the entry log and validate the catalog against it.
  log_ = MappedFile::open(dir + "/" + kEntryLogName);
  OBSCORR_REQUIRE(log_.size() >= data_size_,
                  "archive: entry log shorter than the manifest expects (truncated)");
  for (const EntryInfo& e : entries_) check_entry_bounds(e, 0, data_size_);
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_read = obs::counter("archive.bytes_read");
    static obs::Counter& frames_read = obs::counter("archive.frames_read");
    static obs::Counter& open_mmap = obs::counter("archive.open_mmap");
    static obs::Counter& open_heap = obs::counter("archive.open_heap");
    bytes_read.add(data_size_);
    frames_read.add(entries_.size());
    (log_.mapped() ? open_mmap : open_heap).add(1);
  }
  static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
  const obs::ScopedNsCounter crc_time(crc_ns);
  // One integrity pass over the whole log: the manifest's log checksum
  // covers payloads, frame headers and padding alike, so any single-byte
  // corruption of entries.dat fails here. Only then — on failure — is the
  // per-entry CRC scan run, to pin the corruption to a named entry in the
  // error message; the happy path checksums the log exactly once.
  if (crc32c(log_.bytes().first(data_size_)) != log_crc_) {
    for (const EntryInfo& e : entries_) {
      OBSCORR_REQUIRE(crc32c(log_.bytes().subspan(e.offset, e.size)) == e.crc32c,
                      "archive: checksum mismatch in entry " + e.name +
                          " (corrupted archive data)");
    }
    OBSCORR_REQUIRE(false, "archive: entry log checksum mismatch in " + dir +
                               " (corrupted archive metadata)");
  }
}

std::size_t ArchiveReader::refresh() {
  ParsedManifest m = read_manifest(dir_);
  OBSCORR_REQUIRE(m.scenario_hash == scenario_hash_,
                  "archive: scenario changed under a live reader in " + dir_);
  if (m.data_size == data_size_ && m.entries.size() == entries_.size()) return 0;
  OBSCORR_REQUIRE(m.data_size >= data_size_ && m.entries.size() >= entries_.size(),
                  "archive: manifest shrank on refresh (not an append) in " + dir_);
  // The published log is append-only: every previously cataloged entry
  // must reappear unchanged, in order.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const EntryInfo& a = entries_[i];
    const EntryInfo& b = m.entries[i];
    OBSCORR_REQUIRE(a.name == b.name && a.offset == b.offset && a.size == b.size &&
                        a.crc32c == b.crc32c,
                    "archive: published entry " + a.name + " changed on refresh");
  }
  for (std::size_t i = entries_.size(); i < m.entries.size(); ++i) {
    check_entry_bounds(m.entries[i], data_size_, m.data_size);
  }

  // Map only the appended tail and extend the whole-log checksum over
  // it: refresh cost is proportional to the new windows, not the
  // archive. (The tail mapping is created now, so it sees the bytes the
  // just-read manifest committed.)
  TailSegment seg;
  seg.base = data_size_;
  seg.map = MappedFile::open_range(dir_ + "/" + kEntryLogName,
                                   static_cast<std::size_t>(data_size_),
                                   static_cast<std::size_t>(m.data_size - data_size_));
  {
    static obs::Counter& crc_ns = obs::counter("archive.crc_ns");
    const obs::ScopedNsCounter crc_time(crc_ns);
    OBSCORR_REQUIRE(crc32c(seg.map.bytes(), log_crc_) == m.log_crc,
                    "archive: appended log bytes fail the manifest checksum in " + dir_);
  }
  if (obs::counters_enabled()) {
    static obs::Counter& bytes_read = obs::counter("archive.bytes_read");
    static obs::Counter& frames_read = obs::counter("archive.frames_read");
    bytes_read.add(m.data_size - data_size_);
    frames_read.add(m.entries.size() - entries_.size());
  }

  const std::size_t added = m.entries.size() - entries_.size();
  entries_ = std::move(m.entries);
  data_size_ = m.data_size;
  log_crc_ = m.log_crc;
  if (seg.map.size() > 0) tails_.push_back(std::move(seg));
  return added;
}

bool ArchiveReader::has(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const EntryInfo& e) { return e.name == name; });
}

std::span<const std::byte> ArchiveReader::payload(std::string_view name) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const EntryInfo& e) { return e.name == name; });
  OBSCORR_REQUIRE(it != entries_.end(), "archive: no entry named " + std::string(name));
  // Later tails start where earlier coverage ends, so every entry lies
  // wholly inside exactly one segment (bounds-checked when cataloged).
  for (auto seg = tails_.rbegin(); seg != tails_.rend(); ++seg) {
    if (it->offset >= seg->base && it->offset - seg->base + it->size <= seg->map.size()) {
      return seg->map.bytes().subspan(it->offset - seg->base, it->size);
    }
  }
  return log_.bytes().subspan(it->offset, it->size);
}

}  // namespace obscorr::archive
