#pragma once
/// \file writer.hpp
/// The archive's write side. An archive directory holds two files:
///
///   entries.dat     append-only log of named, checksummed entry frames
///   MANIFEST.obsar  catalog written last, atomically (tmp + rename)
///
/// Frames are appended one at a time; each frame carries its own header
/// checksum, so a writer killed mid-frame leaves a recoverable log: the
/// next ArchiveWriter scans the log, keeps every complete valid frame,
/// truncates the torn tail, and continues where the dead run stopped.
/// The manifest's existence is the commit point — readers refuse a
/// directory without one, so a partially written archive can never be
/// queried, only resumed.
///
/// Frame layout (all little-endian, frame start 8-byte aligned):
///   u64  magic "OBSAENT1"
///   u32  name length
///   u32  reserved (0)
///   u64  payload size
///   u32  payload CRC32C
///   u32  header CRC32C (over the 28 bytes above + the name bytes)
///   name bytes, zero-padded to an 8-byte file offset
///   payload bytes, zero-padded to an 8-byte file offset
///
/// The 8-byte alignment of payload starts is what makes the mmap read
/// path zero-copy: typed spans over u64/f64 sections are naturally
/// aligned inside the mapping.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace obscorr::archive {

/// Catalog row: where one named payload lives inside entries.dat.
struct EntryInfo {
  std::string name;
  std::uint64_t offset = 0;  ///< payload byte offset in entries.dat
  std::uint64_t size = 0;    ///< payload byte size
  std::uint32_t crc32c = 0;  ///< payload checksum
};

/// File names inside an archive directory.
inline constexpr const char* kEntryLogName = "entries.dat";
inline constexpr const char* kManifestName = "MANIFEST.obsar";

/// Appends checksummed entry frames and commits the manifest.
class ArchiveWriter {
 public:
  /// Open `dir` for writing, creating it if needed. An existing entry
  /// log is scanned for complete frames (crash recovery); the torn tail,
  /// if any, is truncated away.
  explicit ArchiveWriter(std::string dir);

  /// Entries recovered from a previous run plus those added since.
  const std::vector<EntryInfo>& entries() const { return entries_; }
  bool has_entry(std::string_view name) const;

  /// Payload bytes of an already-present entry (recovered or added),
  /// read back from the log; throws when absent.
  std::vector<std::byte> read_entry(std::string_view name) const;

  /// Append one entry frame and flush it to disk. Duplicate names are
  /// rejected — resume logic must check has_entry() first.
  void add_entry(std::string_view name, std::string_view payload);

  /// Drop every recovered entry and restart the log from scratch (used
  /// when the on-disk scenario no longer matches the requested one).
  void reset();

  /// Write MANIFEST.obsar (tmp + rename). After this the archive is
  /// complete and readable. May be called repeatedly: the live ingest
  /// path appends entries and re-finalizes after every window, so each
  /// manifest publication is one atomic rename and readers opening
  /// between publications see the previous complete catalog.
  void finalize(std::uint64_t scenario_hash);

  /// Bytes of validated log content (header frames + padding included).
  std::uint64_t log_size() const { return log_size_; }

  /// Rolling CRC32C over the validated log bytes — what `finalize`
  /// publishes as the whole-log checksum, maintained incrementally so a
  /// publication after each appended window stays O(entries), not
  /// O(log bytes).
  std::uint32_t log_crc() const { return log_crc_; }

  const std::string& dir() const { return dir_; }

 private:
  void recover();

  std::string dir_;
  std::string log_path_;
  std::vector<EntryInfo> entries_;
  std::uint64_t log_size_ = 0;  ///< bytes of validated log content
  std::uint32_t log_crc_ = 0;   ///< CRC32C of those bytes, kept rolling
};

/// Serialized manifest bytes for `entries` (exposed for tests):
///   8 bytes "OBSARCH1", u32 version, u32 entry count, u64 scenario
///   hash, u64 log data size, u32 CRC32C of the whole entry log, then
///   per entry {u32 name len, u32 payload CRC32C, u64 offset, u64 size,
///   name bytes}, and a trailing u32 CRC32C over all preceding bytes.
/// The whole-log CRC covers frame headers and padding too, so *any*
/// single-byte corruption of entries.dat is detected at open, not just
/// flips inside payloads.
std::string encode_manifest(std::uint64_t scenario_hash, std::uint64_t data_size,
                            std::uint32_t log_crc, std::span<const EntryInfo> entries);

}  // namespace obscorr::archive
