#pragma once
/// \file writer.hpp
/// The archive's write side. An archive directory holds two files:
///
///   entries.dat      append-only log of named, checksummed entry frames
///                    (generation G > 0 logs are named entries.G.dat —
///                    see "log generations" below)
///   MANIFEST.obsar   catalog written last, atomically (tmp + rename)
///
/// Frames are appended one at a time; each frame carries its own header
/// checksum, so a writer killed mid-frame leaves a recoverable log: the
/// next ArchiveWriter scans the log, keeps every complete valid frame,
/// truncates the torn tail, and continues where the dead run stopped.
/// The manifest's existence is the commit point — readers refuse a
/// directory without one, so a partially written archive can never be
/// queried, only resumed.
///
/// Frame layout (all little-endian, frame start 8-byte aligned):
///   u64  magic "OBSAENT1" (raw payload) or "OBSAENT2" (compressed)
///   u32  name length
///   u32  reserved (0)
///   u64  payload size (stored bytes — the compressed size for ENT2)
///   u32  payload CRC32C (over the stored bytes)
///   u32  header CRC32C (over the 28 bytes above + the name bytes)
///   name bytes, zero-padded to an 8-byte file offset
///   payload bytes, zero-padded to an 8-byte file offset
///
/// An OBSAENT2 payload is a codec container (archive/codec.hpp) whose
/// own header declares the decoded size and raw CRC; the frame-level
/// CRC covers the compressed bytes, so log integrity never requires a
/// decode. The 8-byte alignment of payload starts is what makes the
/// mmap read path zero-copy for raw frames: typed spans over u64/f64
/// sections are naturally aligned inside the mapping.
///
/// Log generations: `obscorr archive compact` rewrites the archive into
/// a brand-new log file (generation G+1), then publishes one manifest
/// naming that generation — the rename is the whole commit, so a crash
/// mid-compact leaves the previous generation fully readable. The
/// append path (live ingest, resumed studies) always writes raw ENT1
/// frames to the tail of the current generation's log.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace obscorr::archive {

/// EntryInfo.flags bit: payload is an OBSAENT2 codec container.
inline constexpr std::uint32_t kEntryFlagCompressed = 1;

/// Catalog row: where one named payload lives inside the entry log.
struct EntryInfo {
  std::string name;
  std::uint64_t offset = 0;    ///< payload byte offset in the entry log
  std::uint64_t size = 0;      ///< stored payload byte size
  std::uint32_t crc32c = 0;    ///< stored payload checksum
  std::uint32_t flags = 0;     ///< kEntryFlagCompressed or 0
  std::uint64_t raw_size = 0;  ///< decoded payload size (== size when raw)
};

/// File names inside an archive directory.
inline constexpr const char* kEntryLogName = "entries.dat";
inline constexpr const char* kManifestName = "MANIFEST.obsar";

/// Entry-log file name for a compaction generation ("entries.dat" for
/// generation 0, "entries.G.dat" otherwise).
std::string log_file_name(std::uint32_t generation);

/// A parsed, CRC-verified manifest.
struct ParsedManifest {
  std::uint64_t scenario_hash = 0;
  std::uint64_t data_size = 0;
  std::uint32_t log_crc = 0;
  std::uint32_t generation = 0;
  std::vector<EntryInfo> entries;
};

/// Read and parse `dir`'s manifest; throws on a missing, truncated, or
/// corrupt one. Shared by the reader's open/refresh and the writer's
/// generation pickup — the manifest is published by atomic rename, so
/// any successfully parsed read is a complete catalog, never a torn
/// intermediate.
ParsedManifest read_manifest(const std::string& dir);

/// Appends checksummed entry frames and commits the manifest.
class ArchiveWriter {
 public:
  /// Open `dir` for writing, creating it if needed. The generation is
  /// picked up from an existing manifest (0 when absent or unreadable);
  /// that generation's entry log is scanned for complete frames (crash
  /// recovery) and the torn tail, if any, is truncated away.
  explicit ArchiveWriter(std::string dir);

  /// Open `dir` writing a fresh log at an explicit `generation`
  /// (truncating any stale log left by a crashed compaction). Used by
  /// `archive compact`, which builds generation G+1 beside the live
  /// generation and commits it with one manifest publication.
  ArchiveWriter(std::string dir, std::uint32_t generation);

  /// Entries recovered from a previous run plus those added since.
  const std::vector<EntryInfo>& entries() const { return entries_; }
  bool has_entry(std::string_view name) const;

  /// Decoded payload bytes of an already-present entry (recovered or
  /// added), read back from the log — compressed entries are verified
  /// and decompressed; throws when absent.
  std::vector<std::byte> read_entry(std::string_view name) const;

  /// Append one raw (OBSAENT1) entry frame and flush it to disk.
  /// Duplicate names are rejected — resume logic must check has_entry()
  /// first.
  void add_entry(std::string_view name, std::string_view payload);

  /// Append one compressed (OBSAENT2) entry frame whose payload is an
  /// already-encoded codec container for `raw_size` decoded bytes.
  void add_entry_compressed(std::string_view name, std::string_view stored,
                            std::uint64_t raw_size);

  /// Drop every recovered entry and restart the log from scratch (used
  /// when the on-disk scenario no longer matches the requested one).
  void reset();

  /// Write MANIFEST.obsar (tmp + rename). After this the archive is
  /// complete and readable. May be called repeatedly: the live ingest
  /// path appends entries and re-finalizes after every window, so each
  /// manifest publication is one atomic rename and readers opening
  /// between publications see the previous complete catalog.
  void finalize(std::uint64_t scenario_hash);

  /// Bytes of validated log content (header frames + padding included).
  std::uint64_t log_size() const { return log_size_; }

  /// Rolling CRC32C over the validated log bytes — what `finalize`
  /// publishes as the whole-log checksum, maintained incrementally so a
  /// publication after each appended window stays O(entries), not
  /// O(log bytes).
  std::uint32_t log_crc() const { return log_crc_; }

  std::uint32_t generation() const { return generation_; }

  const std::string& dir() const { return dir_; }

 private:
  void recover();
  void append_frame(std::string_view magic, std::string_view name,
                    std::string_view payload, EntryInfo info);

  std::string dir_;
  std::string log_path_;
  std::uint32_t generation_ = 0;
  std::vector<EntryInfo> entries_;
  std::uint64_t log_size_ = 0;  ///< bytes of validated log content
  std::uint32_t log_crc_ = 0;   ///< CRC32C of those bytes, kept rolling
};

/// Serialized manifest bytes for `entries` (exposed for tests):
///   8 bytes "OBSARCH1", u32 version, u32 entry count, u64 scenario
///   hash, u64 log data size, u32 CRC32C of the whole entry log,
///   [v2 only: u32 log generation], then per entry {u32 name len, u32
///   payload CRC32C, u64 offset, u64 size, [v2 only: u32 flags, u64
///   decoded size], name bytes}, and a trailing u32 CRC32C over all
///   preceding bytes.
/// Version 1 is emitted for generation-0 all-raw archives — the only
/// shape that existed before compression — so such archives (including
/// the committed golden study) stay byte-identical; anything with a
/// compressed entry or a compacted log is version 2.
/// The whole-log CRC covers frame headers and padding too, so *any*
/// single-byte corruption of the entry log is detected at open, not
/// just flips inside payloads.
std::string encode_manifest(std::uint64_t scenario_hash, std::uint64_t data_size,
                            std::uint32_t log_crc, std::span<const EntryInfo> entries,
                            std::uint32_t generation = 0);

}  // namespace obscorr::archive
