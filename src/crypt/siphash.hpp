#pragma once
/// \file siphash.hpp
/// SipHash-2-4 (Aumasson & Bernstein 2012): a keyed 64-bit PRF over byte
/// strings. Used to derive stable per-source random streams from string
/// keys (e.g. per-IP persistence draws that must agree between the
/// telescope and honeyfarm simulators without shared state).

#include <cstdint>
#include <span>
#include <string_view>

namespace obscorr::crypt {

/// SipHash-2-4 of `data` under the 128-bit key (k0, k1).
std::uint64_t siphash24(std::span<const std::uint8_t> data, std::uint64_t k0, std::uint64_t k1);

/// Convenience overload for strings.
std::uint64_t siphash24(std::string_view data, std::uint64_t k0, std::uint64_t k1);

}  // namespace obscorr::crypt
