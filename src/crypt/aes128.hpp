#pragma once
/// \file aes128.hpp
/// AES-128 block encryption (FIPS-197), encrypt-only.
///
/// Written from the specification so the repository is self-contained
/// offline; it exists solely as the PRF inside CryptoPAN (Fan et al.
/// 2004), the prefix-preserving anonymizer the CAIDA pipeline applies
/// before traffic matrices are shared. Correctness is pinned to the
/// FIPS-197 appendix test vectors in the unit tests. Not intended as a
/// general-purpose cipher (no decryption, no modes, not constant-time).

#include <array>
#include <cstdint>
#include <span>

namespace obscorr::crypt {

/// AES-128 encryptor with a fixed key.
class Aes128 {
 public:
  using Block = std::array<std::uint8_t, 16>;
  using Key = std::array<std::uint8_t, 16>;

  explicit Aes128(const Key& key);

  /// Encrypt one 16-byte block.
  Block encrypt(const Block& plaintext) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace obscorr::crypt
