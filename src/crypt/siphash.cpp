#include "crypt/siphash.hpp"

namespace obscorr::crypt {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2, std::uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(std::span<const std::uint8_t> data, std::uint64_t k0, std::uint64_t k1) {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t n = data.size();
  const std::size_t full = n & ~std::size_t{7};
  for (std::size_t off = 0; off < full; off += 8) {
    std::uint64_t m = 0;
    for (std::size_t b = 0; b < 8; ++b) m |= std::uint64_t{data[off + b]} << (8 * b);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }
  std::uint64_t tail = std::uint64_t{n & 0xff} << 56;
  for (std::size_t b = 0; b < (n & 7); ++b) tail |= std::uint64_t{data[full + b]} << (8 * b);
  v3 ^= tail;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= tail;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t siphash24(std::string_view data, std::uint64_t k0, std::uint64_t k1) {
  return siphash24(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()), data.size()),
      k0, k1);
}

}  // namespace obscorr::crypt
