#include "crypt/anon_table.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace obscorr::crypt {

namespace {
constexpr char kMagic[8] = {'O', 'B', 'S', 'C', 'A', 'N', 'T', '1'};
}  // namespace

AnonymizationTable AnonymizationTable::build(std::span<const Ipv4> observed,
                                             const CryptoPan& own_scheme,
                                             const CryptoPan& common_scheme) {
  AnonymizationTable table;
  table.mapping_.reserve(observed.size() * 2);
  for (const Ipv4 addr : observed) {
    table.mapping_.emplace(own_scheme.anonymize(addr).value(),
                           common_scheme.anonymize(addr).value());
  }
  return table;
}

std::optional<Ipv4> AnonymizationTable::to_common(Ipv4 own_anon) const {
  const auto it = mapping_.find(own_anon.value());
  if (it == mapping_.end()) return std::nullopt;
  return Ipv4(it->second);
}

std::vector<Ipv4> AnonymizationTable::translate(std::span<const Ipv4> own_anon) const {
  std::vector<Ipv4> out;
  out.reserve(own_anon.size());
  for (const Ipv4 id : own_anon) {
    const auto common = to_common(id);
    if (common.has_value()) out.push_back(*common);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void AnonymizationTable::write(std::ostream& os) const {
  os.write(kMagic, sizeof kMagic);
  const std::uint64_t n = mapping_.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof n);
  // Sorted output keeps the format canonical (hash order is not).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(mapping_.begin(), mapping_.end());
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [own, common] : pairs) {
    os.write(reinterpret_cast<const char*>(&own), sizeof own);
    os.write(reinterpret_cast<const char*>(&common), sizeof common);
  }
  OBSCORR_REQUIRE(os.good(), "AnonymizationTable::write: stream failure");
}

AnonymizationTable AnonymizationTable::read(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  OBSCORR_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                  "AnonymizationTable::read: bad magic");
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof n);
  OBSCORR_REQUIRE(is.good(), "AnonymizationTable::read: truncated header");
  AnonymizationTable table;
  table.mapping_.reserve(n * 2);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t pair[2];
    is.read(reinterpret_cast<char*>(pair), sizeof pair);
    OBSCORR_REQUIRE(is.good() || (is.eof() && is.gcount() == sizeof pair),
                    "AnonymizationTable::read: truncated entry");
    table.mapping_.emplace(pair[0], pair[1]);
  }
  return table;
}

std::vector<Ipv4> intersect_common(std::span<const Ipv4> a, std::span<const Ipv4> b) {
  OBSCORR_REQUIRE(std::is_sorted(a.begin(), a.end()), "intersect_common: a must be sorted");
  OBSCORR_REQUIRE(std::is_sorted(b.begin(), b.end()), "intersect_common: b must be sorted");
  std::vector<Ipv4> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace obscorr::crypt
