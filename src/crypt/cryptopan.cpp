#include "crypt/cryptopan.hpp"

#include "common/prng.hpp"

namespace obscorr::crypt {

CryptoPan::CryptoPan(const Secret& secret)
    : aes_([&] {
        Aes128::Key key;
        for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = secret[static_cast<std::size_t>(i)];
        return Aes128(key);
      }()) {
  // The reference implementation first encrypts the raw pad bytes with the
  // keyed cipher to decorrelate the two secret halves.
  Aes128::Block raw;
  for (int i = 0; i < 16; ++i) raw[static_cast<std::size_t>(i)] = secret[static_cast<std::size_t>(16 + i)];
  pad_ = aes_.encrypt(raw);
  pad_word_ = (std::uint32_t{pad_[0]} << 24) | (std::uint32_t{pad_[1]} << 16) |
              (std::uint32_t{pad_[2]} << 8) | std::uint32_t{pad_[3]};
}

CryptoPan CryptoPan::from_seed(std::uint64_t seed) {
  SplitMix64 sm(seed ^ 0xc2b2ae3d27d4eb4fULL);
  Secret secret;
  for (std::size_t i = 0; i < secret.size(); i += 8) {
    const std::uint64_t word = sm.next();
    for (std::size_t b = 0; b < 8; ++b) {
      secret[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return CryptoPan(secret);
}

Ipv4 CryptoPan::anonymize(Ipv4 addr) const {
  const std::uint32_t orig = addr.value();
  std::uint32_t otp = 0;  // one-time pad assembled bit by bit, MSB first

  // For each prefix length i, the PRF input is the first i bits of the
  // original address with the remaining 32-i bits taken from the pad;
  // the output bit is the MSB of the AES ciphertext. Addresses sharing a
  // k-bit prefix share the first k PRF inputs, hence the first k output
  // bits — that is the prefix-preserving property.
  for (int i = 0; i < 32; ++i) {
    const std::uint32_t mask = i == 0 ? 0U : ~0U << (32 - i);
    const std::uint32_t mixed = (orig & mask) | (pad_word_ & ~mask);
    Aes128::Block input = pad_;
    input[0] = static_cast<std::uint8_t>(mixed >> 24);
    input[1] = static_cast<std::uint8_t>(mixed >> 16);
    input[2] = static_cast<std::uint8_t>(mixed >> 8);
    input[3] = static_cast<std::uint8_t>(mixed);
    const Aes128::Block cipher = aes_.encrypt(input);
    otp |= static_cast<std::uint32_t>(cipher[0] >> 7) << (31 - i);
  }
  return Ipv4(orig ^ otp);
}

}  // namespace obscorr::crypt
