#pragma once
/// \file anon_table.hpp
/// Anonymization transformation tables — the paper's trusted-sharing
/// approach 3: "For larger sets, an anonymization transformation table
/// provided by the sources allows direct mapping from anonymized data to
/// the common scheme."
///
/// Each observatory anonymizes with its own CryptoPAN key; to correlate
/// at scale, each source exports a table mapping *its* anonymized ids to
/// a *common* anonymization scheme (a third key held by the enclave).
/// The raw addresses never leave the source: the table is built inside
/// the source's trust boundary and only the (own-anon -> common-anon)
/// pairs are shared.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ipv4.hpp"
#include "crypt/cryptopan.hpp"

namespace obscorr::crypt {

/// A shareable own-scheme -> common-scheme mapping for a set of
/// addresses the source observed.
class AnonymizationTable {
 public:
  AnonymizationTable() = default;

  /// Build inside the source's trust boundary: for every raw address in
  /// `observed`, map own_scheme(addr) -> common_scheme(addr). The raw
  /// addresses are not retained.
  static AnonymizationTable build(std::span<const Ipv4> observed, const CryptoPan& own_scheme,
                                  const CryptoPan& common_scheme);

  std::size_t size() const { return mapping_.size(); }

  /// Translate one of this source's anonymized ids into the common
  /// scheme; nullopt when the id is not covered by the table.
  std::optional<Ipv4> to_common(Ipv4 own_anon) const;

  /// Translate a whole id list, dropping ids outside the table; the
  /// result is sorted and deduplicated (a set in the common scheme).
  std::vector<Ipv4> translate(std::span<const Ipv4> own_anon) const;

  /// Serialize as binary pairs (u32 own, u32 common) with a header.
  void write(std::ostream& os) const;
  static AnonymizationTable read(std::istream& is);

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> mapping_;
};

/// Intersect two observatories' common-scheme id sets (sorted vectors) —
/// correlation without anyone revealing raw addresses.
std::vector<Ipv4> intersect_common(std::span<const Ipv4> a, std::span<const Ipv4> b);

}  // namespace obscorr::crypt
