#pragma once
/// \file cryptopan.hpp
/// CryptoPAN prefix-preserving IPv4 anonymization (Fan, Xu, Ammar & Moon,
/// Computer Networks 2004) — the anonymizer the CAIDA Telescope pipeline
/// applies before building shared GraphBLAS traffic matrices.
///
/// Prefix preservation: if two addresses share their first k bits, their
/// anonymized forms share exactly their first k bits too. Subnet
/// structure (and therefore every permutation-invariant Table II
/// quantity) survives anonymization; the mapping is a bijection.

#include <array>
#include <cstdint>

#include "common/ipv4.hpp"
#include "crypt/aes128.hpp"

namespace obscorr::crypt {

/// Stateless prefix-preserving anonymizer keyed by a 32-byte secret
/// (16 bytes AES key + 16 bytes padding secret, per the reference
/// implementation).
class CryptoPan {
 public:
  using Secret = std::array<std::uint8_t, 32>;

  explicit CryptoPan(const Secret& secret);

  /// Convenience: derive the 32-byte secret from a 64-bit seed through
  /// SplitMix64 (deterministic, for simulations).
  static CryptoPan from_seed(std::uint64_t seed);

  /// Anonymize one address; prefix-preserving bijection on 2^32.
  Ipv4 anonymize(Ipv4 addr) const;

 private:
  Aes128 aes_;
  std::array<std::uint8_t, 16> pad_;
  std::uint32_t pad_word_ = 0;  // first 4 pad bytes as big-endian word
};

}  // namespace obscorr::crypt
