#pragma once
/// \file histogram.hpp
/// Degree histograms and the paper's §II probability machinery: for a
/// network quantity with values d, the histogram n_t(d), probability
/// p_t(d) = n_t(d)/Σn_t, cumulative P_t(d), and the binary-log-binned
/// *differential cumulative probability* D_t(d_i) = P_t(d_i) − P_t(d_{i−1})
/// with d_i = 2^i — the quantity plotted in Fig. 3.

#include <cstdint>
#include <span>
#include <vector>

#include "gbl/sparse_vec.hpp"

namespace obscorr::stats {

/// Histogram over binary-logarithmic bins [2^i, 2^(i+1)).
class LogHistogram {
 public:
  LogHistogram() = default;

  /// Count the values of a reduced network quantity (values < 1 ignored:
  /// a source with zero packets is not observed).
  static LogHistogram from_degrees(std::span<const double> degrees);
  static LogHistogram from_sparse_vec(const gbl::SparseVec& vec);

  /// Incrementally count one observation (same semantics as
  /// from_degrees: values < 1 are ignored, non-finite values throw).
  /// This is what streaming consumers — the service's per-query latency
  /// recorder, the live anomaly detectors — use instead of batching.
  void add(double value);

  /// Raw count in bin i (0 when out of range).
  std::uint64_t count(int bin) const;

  /// Number of populated bins (highest occupied bin + 1).
  int bin_count() const { return static_cast<int>(counts_.size()); }

  /// Total observations Σ_d n_t(d).
  std::uint64_t total() const { return total_; }

  /// Largest observed degree d_max.
  std::uint64_t max_degree() const { return max_degree_; }

  /// Differential cumulative probability D_t(d_i) per bin; sums to 1
  /// (within rounding) when any observation exists.
  std::vector<double> differential_cumulative() const;

  /// Cumulative probability P_t at each bin upper edge.
  std::vector<double> cumulative() const;

  /// Approximate quantile (q clamped to [0, 1]) by locating the bin
  /// holding the q-th ranked observation and interpolating linearly
  /// inside its [2^i, 2^(i+1)) range. Exact to within one binary-log
  /// bin — the right precision/footprint trade for latency percentiles.
  /// Returns 0 for an empty histogram.
  double quantile(double q) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t max_degree_ = 0;
};

}  // namespace obscorr::stats
