#include "stats/temporal.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/norms.hpp"

namespace obscorr::stats {

double ModifiedCauchy::value(double dt) const {
  return beta / (beta + std::pow(std::abs(dt), alpha));
}

double Cauchy::value(double dt) const {
  return gamma * gamma / (gamma * gamma + dt * dt);
}

double Gaussian::value(double dt) const {
  return std::exp(-0.5 * (dt / sigma) * (dt / sigma));
}

namespace {

void validate(const TemporalSeries& series) {
  OBSCORR_REQUIRE(series.dt.size() == series.fraction.size(),
                  "temporal fit: dt/fraction size mismatch");
  OBSCORR_REQUIRE(series.dt.size() >= 3, "temporal fit: need at least 3 observations");
}

/// Peak amplitude: the observed value at the smallest |dt| (the paper
/// normalizes model curves "to the peak in the data").
double peak_amplitude(const TemporalSeries& series) {
  double best_abs = std::abs(series.dt[0]);
  double amp = series.fraction[0];
  for (std::size_t i = 1; i < series.dt.size(); ++i) {
    if (std::abs(series.dt[i]) < best_abs) {
      best_abs = std::abs(series.dt[i]);
      amp = series.fraction[i];
    }
  }
  return amp;
}

template <typename Model>
double residual_for(const TemporalSeries& series, const Model& model, double amplitude) {
  std::vector<double> predicted(series.dt.size());
  for (std::size_t i = 0; i < series.dt.size(); ++i) {
    predicted[i] = amplitude * model.value(series.dt[i]);
  }
  return half_norm_residual(predicted, series.fraction);
}

}  // namespace

TemporalFit<ModifiedCauchy> fit_modified_cauchy(const TemporalSeries& series) {
  validate(series);
  const double amp = peak_amplitude(series);

  TemporalFit<ModifiedCauchy> fit;
  fit.amplitude = amp;
  fit.residual = std::numeric_limits<double>::infinity();

  // Coarse grid: α linear, β logarithmic (it is a scale parameter).
  for (double alpha = 0.05; alpha <= 4.0; alpha += 0.05) {
    for (double log_beta = std::log(0.02); log_beta <= std::log(100.0); log_beta += 0.1) {
      const ModifiedCauchy m{alpha, std::exp(log_beta)};
      const double r = residual_for(series, m, amp);
      if (r < fit.residual) {
        fit.residual = r;
        fit.model = m;
      }
    }
  }

  // Coordinate refinement.
  double alpha_step = 0.05;
  double beta_factor = 1.1;
  for (int iter = 0; iter < 80; ++iter) {
    bool improved = false;
    for (const double a : {fit.model.alpha - alpha_step, fit.model.alpha + alpha_step}) {
      if (a <= 0.01) continue;
      const ModifiedCauchy m{a, fit.model.beta};
      const double r = residual_for(series, m, amp);
      if (r < fit.residual) {
        fit.residual = r;
        fit.model = m;
        improved = true;
      }
    }
    for (const double b : {fit.model.beta / beta_factor, fit.model.beta * beta_factor}) {
      const ModifiedCauchy m{fit.model.alpha, b};
      const double r = residual_for(series, m, amp);
      if (r < fit.residual) {
        fit.residual = r;
        fit.model = m;
        improved = true;
      }
    }
    if (!improved) {
      alpha_step *= 0.5;
      beta_factor = 1.0 + (beta_factor - 1.0) * 0.5;
      if (alpha_step < 1e-4 && beta_factor - 1.0 < 1e-4) break;
    }
  }
  return fit;
}

double FlooredModifiedCauchy::value(double dt) const {
  return (1.0 - floor) * beta / (beta + std::pow(std::abs(dt), alpha)) + floor;
}

double FlooredModifiedCauchy::one_month_drop() const {
  return 1.0 - value(1.0) / value(0.0);
}

TemporalFit<FlooredModifiedCauchy> fit_floored_modified_cauchy(const TemporalSeries& series) {
  validate(series);
  const double amp = peak_amplitude(series);

  TemporalFit<FlooredModifiedCauchy> fit;
  fit.amplitude = amp;
  fit.residual = std::numeric_limits<double>::infinity();

  for (double alpha = 0.1; alpha <= 3.0; alpha += 0.1) {
    for (double log_beta = std::log(0.05); log_beta <= std::log(50.0); log_beta += 0.2) {
      for (double floor = 0.0; floor < 0.9; floor += 0.05) {
        const FlooredModifiedCauchy m{alpha, std::exp(log_beta), floor};
        const double r = residual_for(series, m, amp);
        if (r < fit.residual) {
          fit.residual = r;
          fit.model = m;
        }
      }
    }
  }

  double alpha_step = 0.1;
  double beta_factor = 1.2;
  double floor_step = 0.05;
  for (int iter = 0; iter < 100; ++iter) {
    bool improved = false;
    const auto consider = [&](const FlooredModifiedCauchy& m) {
      if (m.alpha <= 0.01 || m.beta <= 0.0 || m.floor < 0.0 || m.floor >= 0.95) return;
      const double r = residual_for(series, m, amp);
      if (r < fit.residual) {
        fit.residual = r;
        fit.model = m;
        improved = true;
      }
    };
    consider({fit.model.alpha - alpha_step, fit.model.beta, fit.model.floor});
    consider({fit.model.alpha + alpha_step, fit.model.beta, fit.model.floor});
    consider({fit.model.alpha, fit.model.beta / beta_factor, fit.model.floor});
    consider({fit.model.alpha, fit.model.beta * beta_factor, fit.model.floor});
    consider({fit.model.alpha, fit.model.beta, fit.model.floor - floor_step});
    consider({fit.model.alpha, fit.model.beta, fit.model.floor + floor_step});
    if (!improved) {
      alpha_step *= 0.5;
      beta_factor = 1.0 + (beta_factor - 1.0) * 0.5;
      floor_step *= 0.5;
      if (alpha_step < 1e-4 && floor_step < 1e-4) break;
    }
  }
  return fit;
}

TemporalFit<Cauchy> fit_cauchy(const TemporalSeries& series) {
  validate(series);
  const double amp = peak_amplitude(series);
  TemporalFit<Cauchy> fit;
  fit.amplitude = amp;
  fit.residual = std::numeric_limits<double>::infinity();
  for (double log_g = std::log(0.05); log_g <= std::log(50.0); log_g += 0.02) {
    const Cauchy m{std::exp(log_g)};
    const double r = residual_for(series, m, amp);
    if (r < fit.residual) {
      fit.residual = r;
      fit.model = m;
    }
  }
  return fit;
}

TemporalFit<Gaussian> fit_gaussian(const TemporalSeries& series) {
  validate(series);
  const double amp = peak_amplitude(series);
  TemporalFit<Gaussian> fit;
  fit.amplitude = amp;
  fit.residual = std::numeric_limits<double>::infinity();
  for (double log_s = std::log(0.05); log_s <= std::log(50.0); log_s += 0.02) {
    const Gaussian m{std::exp(log_s)};
    const double r = residual_for(series, m, amp);
    if (r < fit.residual) {
      fit.residual = r;
      fit.model = m;
    }
  }
  return fit;
}

}  // namespace obscorr::stats
