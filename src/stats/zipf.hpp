#pragma once
/// \file zipf.hpp
/// The Zipf–Mandelbrot distribution p(d) ∝ 1/(d + δ)^α — the two-parameter
/// power law the paper fits to the CAIDA source-packet distribution
/// (Fig. 3) and the rank law the traffic generator samples sources from.

#include <cstdint>
#include <vector>

#include "stats/histogram.hpp"

namespace obscorr::stats {

/// Zipf–Mandelbrot parameters.
struct ZipfMandelbrot {
  double alpha = 2.0;  ///< exponent α_zm > 0
  double delta = 0.0;  ///< offset δ_zm >= 0

  /// Unnormalized density at degree (or rank) d >= 1.
  double weight(double d) const;

  /// Rank weights w_r = 1/(r+δ)^α for r = 1..n (generator population law).
  std::vector<double> rank_weights(std::size_t n) const;

  /// Probability mass per binary-log bin for degrees in [1, 2^n_bins),
  /// normalized to sum to 1 — directly comparable to
  /// LogHistogram::differential_cumulative().
  std::vector<double> binned_mass(int n_bins) const;
};

/// Result of fitting a Zipf–Mandelbrot model to a log-binned distribution.
struct ZipfFit {
  ZipfMandelbrot model;
  double residual = 0.0;  ///< | |^{1/2} residual at the optimum
};

/// Fit (α, δ) to a histogram's differential cumulative probability by
/// coarse grid search plus coordinate refinement, minimizing the
/// | |^{1/2} norm (the paper's procedure). Empty histograms are invalid.
ZipfFit fit_zipf_mandelbrot(const LogHistogram& hist);

}  // namespace obscorr::stats
