#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "obs/span.hpp"

namespace obscorr::stats {

FractionCi bootstrap_fraction(std::uint64_t successes, std::uint64_t trials, double level,
                              std::uint64_t seed, int replicates) {
  return bootstrap_fraction(successes, trials, level, seed, replicates, ThreadPool::global());
}

FractionCi bootstrap_fraction(std::uint64_t successes, std::uint64_t trials, double level,
                              std::uint64_t seed, int replicates, ThreadPool& pool) {
  const obs::Span span("stats.bootstrap");
  OBSCORR_REQUIRE(trials >= 1, "bootstrap_fraction: need at least one trial");
  OBSCORR_REQUIRE(successes <= trials, "bootstrap_fraction: successes exceed trials");
  OBSCORR_REQUIRE(level > 0.0 && level < 1.0, "bootstrap_fraction: level must be in (0,1)");
  OBSCORR_REQUIRE(replicates >= 10, "bootstrap_fraction: need >= 10 replicates");

  const double p = static_cast<double>(successes) / static_cast<double>(trials);

  // Resampling n Bernoulli(p) observations is a Binomial(n, p) draw; for
  // large n use the normal approximation of the binomial (error O(1/n),
  // far below bootstrap noise at the sizes where it kicks in). Each
  // replicate seeds its own (seed, replicate) stream, so the draw vector
  // is the same whatever the parallel schedule.
  std::vector<double> draws(static_cast<std::size_t>(replicates));
  parallel_for(pool, 0, draws.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      Rng rng(seed, std::uint64_t{0xB0070000} + r);
      std::uint64_t k = 0;
      if (trials > 4096) {
        const double mu = static_cast<double>(trials) * p;
        const double sigma = std::sqrt(mu * (1.0 - p));
        const double g = rng.normal(mu, sigma);
        k = static_cast<std::uint64_t>(std::clamp(g, 0.0, static_cast<double>(trials)));
      } else {
        for (std::uint64_t t = 0; t < trials; ++t) k += rng.bernoulli(p);
      }
      draws[r] = static_cast<double>(k) / static_cast<double>(trials);
    }
  });
  std::sort(draws.begin(), draws.end());
  const double tail = (1.0 - level) / 2.0;
  const auto index = [&](double q) {
    const auto i = static_cast<std::size_t>(q * static_cast<double>(replicates - 1));
    return draws[i];
  };
  return FractionCi{p, index(tail), index(1.0 - tail)};
}

}  // namespace obscorr::stats
