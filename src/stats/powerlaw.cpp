#include "stats/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace obscorr::stats {

double hurwitz_zeta(double s, double q) {
  OBSCORR_REQUIRE(s > 1.0, "hurwitz_zeta: s must exceed 1");
  OBSCORR_REQUIRE(q >= 1.0, "hurwitz_zeta: q must be >= 1");
  // Direct sum of the first N terms plus the Euler-Maclaurin tail with
  // the B2 correction:
  //   Σ_{k>=N} (q+k)^-s ≈ m^(1-s)/(s-1) + m^-s/2 + s·m^(-s-1)/12,  m = q+N,
  // leaving a relative error O(m^-(s+3)) — far below double noise here.
  constexpr int kDirect = 64;
  double sum = 0.0;
  for (int k = 0; k < kDirect; ++k) sum += std::pow(q + k, -s);
  const double m = q + kDirect;
  sum += std::pow(m, 1.0 - s) / (s - 1.0) + 0.5 * std::pow(m, -s) +
         s * std::pow(m, -s - 1.0) / 12.0;
  return sum;
}

double power_law_alpha_mle(std::span<const double> degrees, std::uint64_t d_min) {
  OBSCORR_REQUIRE(d_min >= 1, "power_law_alpha_mle: d_min must be >= 1");
  double log_sum = 0.0;
  std::size_t n = 0;
  const double shift = static_cast<double>(d_min) - 0.5;
  for (double d : degrees) {
    if (d < static_cast<double>(d_min)) continue;
    log_sum += std::log(d / shift);
    ++n;
  }
  OBSCORR_REQUIRE(n >= 2, "power_law_alpha_mle: need at least 2 tail observations");
  OBSCORR_REQUIRE(log_sum > 0.0, "power_law_alpha_mle: degenerate tail");
  return 1.0 + static_cast<double>(n) / log_sum;
}

double power_law_ks(std::span<const double> degrees, double alpha, std::uint64_t d_min) {
  OBSCORR_REQUIRE(alpha > 1.0, "power_law_ks: alpha must exceed 1");
  std::vector<std::uint64_t> tail;
  for (double d : degrees) {
    if (d >= static_cast<double>(d_min)) tail.push_back(static_cast<std::uint64_t>(d));
  }
  OBSCORR_REQUIRE(!tail.empty(), "power_law_ks: empty tail");
  std::sort(tail.begin(), tail.end());

  // Model CDF evaluated in O(1) per distinct degree via Hurwitz zeta:
  //   P(D <= v) = 1 - zeta(alpha, v+1) / zeta(alpha, d_min),
  // which stays cheap however far the heavy tail reaches.
  const double z = hurwitz_zeta(alpha, static_cast<double>(d_min));
  const auto model_cdf_below = [&](std::uint64_t v) {
    return 1.0 - hurwitz_zeta(alpha, static_cast<double>(v)) / z;
  };
  double ks = 0.0;
  const auto n = static_cast<double>(tail.size());
  std::size_t i = 0;
  while (i < tail.size()) {
    const std::uint64_t v = tail[i];
    std::size_t j = i;
    while (j < tail.size() && tail[j] == v) ++j;
    const double empirical_below = static_cast<double>(i) / n;
    const double empirical_at = static_cast<double>(j) / n;
    ks = std::max(ks, std::abs(empirical_below - model_cdf_below(v)));
    ks = std::max(ks, std::abs(empirical_at - model_cdf_below(v + 1)));
    i = j;
  }
  return ks;
}

PowerLawFit fit_power_law(std::span<const double> degrees, std::size_t min_tail) {
  OBSCORR_REQUIRE(!degrees.empty(), "fit_power_law: empty sample");
  PowerLawFit best;
  best.ks = std::numeric_limits<double>::infinity();
  for (std::uint64_t d_min = 1; d_min < (1ULL << 30); d_min *= 2) {
    std::size_t tail = 0;
    for (double d : degrees) tail += d >= static_cast<double>(d_min);
    if (tail < std::max<std::size_t>(min_tail, 2)) break;
    const double alpha = power_law_alpha_mle(degrees, d_min);
    if (alpha <= 1.0 + 1e-9) continue;
    const double ks = power_law_ks(degrees, alpha, d_min);
    if (ks < best.ks) {
      best = PowerLawFit{alpha, d_min, ks, tail};
    }
  }
  OBSCORR_REQUIRE(std::isfinite(best.ks), "fit_power_law: no viable d_min candidate");
  return best;
}

}  // namespace obscorr::stats
