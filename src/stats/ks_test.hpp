#pragma once
/// \file ks_test.hpp
/// Two-sample Kolmogorov–Smirnov comparison. The paper argues the Fig. 3
/// distributions from different months "have similar statistical
/// distributions with small variations"; this makes the claim
/// quantitative: the KS statistic between two degree samples plus the
/// asymptotic significance level (Smirnov's formula), usable for any two
/// network-quantity samples.

#include <span>

namespace obscorr::stats {

/// Result of a two-sample KS comparison.
struct KsResult {
  double statistic = 0.0;  ///< sup |F̂_a − F̂_b|
  double p_value = 1.0;    ///< asymptotic P(D > statistic) under H0
};

/// Asymptotic Kolmogorov distribution tail Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
double kolmogorov_tail(double lambda);

/// Two-sample KS test between samples `a` and `b` (unsorted, any sizes
/// ≥ 1). Ties are handled; returns statistic and asymptotic p-value.
KsResult two_sample_ks(std::span<const double> a, std::span<const double> b);

}  // namespace obscorr::stats
