#pragma once
/// \file ks_test.hpp
/// Two-sample Kolmogorov–Smirnov comparison. The paper argues the Fig. 3
/// distributions from different months "have similar statistical
/// distributions with small variations"; this makes the claim
/// quantitative: the KS statistic between two degree samples plus the
/// asymptotic significance level (Smirnov's formula), usable for any two
/// network-quantity samples.
///
/// The correlation engine (src/analysis/correlate.hpp) feeds this with
/// arbitrary window-metric series, so the edge cases are part of the
/// contract rather than undefined behaviour:
///
///  * NaN observations are dropped before comparison (a missing window
///    sample must not poison the whole score); a sample that is empty
///    after dropping NaNs throws.
///  * Constant series compare exactly: identical constants give
///    statistic 0 / p-value 1, distinct constants give statistic 1.
///  * Tiny samples (n < 5) are legal; the asymptotic p-value is a rough
///    upper bound there (it cannot reach significance with one or two
///    observations, by design of the small-sample correction).
///  * ±infinity sorts as an extreme value and is compared like any other.

#include <span>

namespace obscorr::stats {

/// Result of a two-sample KS comparison.
struct KsResult {
  double statistic = 0.0;  ///< sup |F̂_a − F̂_b|
  double p_value = 1.0;    ///< asymptotic P(D > statistic) under H0
};

/// Asymptotic Kolmogorov distribution tail Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
double kolmogorov_tail(double lambda);

/// Two-sample KS test between samples `a` and `b` (unsorted, any sizes
/// ≥ 1 after NaN filtering). Ties are handled; returns statistic and
/// asymptotic p-value. Throws std::invalid_argument when either sample
/// is empty or all-NaN.
KsResult two_sample_ks(std::span<const double> a, std::span<const double> b);

}  // namespace obscorr::stats
