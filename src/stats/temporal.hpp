#pragma once
/// \file temporal.hpp
/// Temporal correlation models (paper §III): Gaussian, Cauchy, and the
/// *modified Cauchy* distribution
///
///     f(t) ∝ β / (β + |t − t0|^α),   α > 0, β > 0,
///
/// which reduces to the standard Cauchy at α = 2, β = γ². All fits follow
/// the paper's procedure: generate model curves over a parameter grid,
/// normalize to the observed peak, and select parameters minimizing the
/// | |^{1/2} norm. The derived quantity 1/(β+1) is the relative one-month
/// drop from the peak (Fig. 8).

#include <span>
#include <vector>

namespace obscorr::stats {

/// Modified Cauchy parameters.
struct ModifiedCauchy {
  double alpha = 1.0;  ///< tail exponent
  double beta = 1.0;   ///< scale factor

  /// Unnormalized value at month offset dt = t − t0.
  double value(double dt) const;

  /// Relative drop from the peak after one month: 1/(β+1).
  double one_month_drop() const { return 1.0 / (beta + 1.0); }
};

/// Standard Cauchy with half-width γ, as a special case comparator.
struct Cauchy {
  double gamma = 1.0;
  double value(double dt) const;
};

/// Gaussian with standard deviation σ, as a comparator.
struct Gaussian {
  double sigma = 1.0;
  double value(double dt) const;
};

/// A fitted temporal model: parameters + peak amplitude + residual.
template <typename Model>
struct TemporalFit {
  Model model{};
  double amplitude = 0.0;  ///< peak normalization A (model prediction = A·f)
  double residual = 0.0;   ///< | |^{1/2} residual at the optimum
};

/// Observations: fraction seen at month offsets `dt` (dt may be negative;
/// dt = 0 is the coeval month whose value sets the peak normalization).
struct TemporalSeries {
  std::vector<double> dt;
  std::vector<double> fraction;
};

/// Fit the modified Cauchy by grid search over α ∈ [0.05, 4] and β on a
/// log grid ∈ [0.02, 100], refined by coordinate descent.
TemporalFit<ModifiedCauchy> fit_modified_cauchy(const TemporalSeries& series);

/// Extension beyond the paper: modified Cauchy plus a stationary
/// background floor,
///
///     f(t) = (1 − c)·β/(β+|t−t0|^α) + c,
///
/// matching the generative picture of a drifting beam over a re-activating
/// background. The paper fits the pure two-parameter form, which absorbs
/// the floor by deflating α; modelling the floor explicitly recovers the
/// beam's intrinsic exponent (≈1 under Beta persistence).
struct FlooredModifiedCauchy {
  double alpha = 1.0;
  double beta = 1.0;
  double floor = 0.0;  ///< background level c in [0, 1)

  double value(double dt) const;
  double one_month_drop() const;  ///< 1 - f(1)/f(0)
};

/// Fit (α, β, c) by nested grid + coordinate refinement under the
/// | |^{1/2} norm, amplitude pinned to the observed peak.
TemporalFit<FlooredModifiedCauchy> fit_floored_modified_cauchy(const TemporalSeries& series);

/// Fit the standard Cauchy (γ grid + refinement).
TemporalFit<Cauchy> fit_cauchy(const TemporalSeries& series);

/// Fit the Gaussian (σ grid + refinement).
TemporalFit<Gaussian> fit_gaussian(const TemporalSeries& series);

}  // namespace obscorr::stats
