#include "stats/histogram.hpp"

#include <cmath>

#include "common/binning.hpp"
#include "common/error.hpp"

namespace obscorr::stats {

LogHistogram LogHistogram::from_degrees(std::span<const double> degrees) {
  LogHistogram h;
  for (double d : degrees) {
    if (d < 1.0) continue;
    OBSCORR_REQUIRE(std::isfinite(d), "degree values must be finite");
    const int bin = log2_bin(static_cast<std::uint64_t>(d));
    if (h.counts_.size() <= static_cast<std::size_t>(bin)) {
      h.counts_.resize(static_cast<std::size_t>(bin) + 1, 0);
    }
    ++h.counts_[static_cast<std::size_t>(bin)];
    ++h.total_;
    h.max_degree_ = std::max(h.max_degree_, static_cast<std::uint64_t>(d));
  }
  return h;
}

LogHistogram LogHistogram::from_sparse_vec(const gbl::SparseVec& vec) {
  return from_degrees(vec.values());
}

std::uint64_t LogHistogram::count(int bin) const {
  if (bin < 0 || static_cast<std::size_t>(bin) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(bin)];
}

std::vector<double> LogHistogram::differential_cumulative() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return d;
}

std::vector<double> LogHistogram::cumulative() const {
  std::vector<double> c(counts_.size(), 0.0);
  if (total_ == 0) return c;
  double run = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    run += static_cast<double>(counts_[i]);
    c[i] = run / static_cast<double>(total_);
  }
  return c;
}

}  // namespace obscorr::stats
