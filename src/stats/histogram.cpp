#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/binning.hpp"
#include "common/error.hpp"

namespace obscorr::stats {

LogHistogram LogHistogram::from_degrees(std::span<const double> degrees) {
  LogHistogram h;
  for (double d : degrees) h.add(d);
  return h;
}

void LogHistogram::add(double value) {
  if (value < 1.0) return;
  OBSCORR_REQUIRE(std::isfinite(value), "degree values must be finite");
  const int bin = log2_bin(static_cast<std::uint64_t>(value));
  if (counts_.size() <= static_cast<std::size_t>(bin)) {
    counts_.resize(static_cast<std::size_t>(bin) + 1, 0);
  }
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
  max_degree_ = std::max(max_degree_, static_cast<std::uint64_t>(value));
}

LogHistogram LogHistogram::from_sparse_vec(const gbl::SparseVec& vec) {
  return from_degrees(vec.values());
}

std::uint64_t LogHistogram::count(int bin) const {
  if (bin < 0 || static_cast<std::size_t>(bin) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(bin)];
}

std::vector<double> LogHistogram::differential_cumulative() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return d;
}

std::vector<double> LogHistogram::cumulative() const {
  std::vector<double> c(counts_.size(), 0.0);
  if (total_ == 0) return c;
  double run = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    run += static_cast<double>(counts_[i]);
    c[i] = run / static_cast<double>(total_);
  }
  return c;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = std::max(1.0, q * static_cast<double>(total_));
  double run = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c > 0.0 && run + c >= target) {
      const double lo = std::exp2(static_cast<double>(i));
      // The top bin's occupied range ends at the observed maximum, not
      // the bin's nominal upper edge — keeps p99 from overshooting when
      // the tail bin is nearly empty.
      const double hi = std::min(std::exp2(static_cast<double>(i + 1)),
                                 static_cast<double>(max_degree_) + 1.0);
      const double frac = (target - run) / c;
      return lo + frac * (std::max(hi, lo) - lo);
    }
    run += c;
  }
  return static_cast<double>(max_degree_);
}

}  // namespace obscorr::stats
