#pragma once
/// \file norms.hpp
/// Residual norms for empirical fits. The paper selects fit parameters by
/// minimizing the | |^{1/2} norm — sub-linear residual powers weight the
/// many small-count tail bins comparably to the peak, which is what makes
/// the heavy-tail fits stable (§III).

#include <cmath>
#include <span>

#include "common/error.hpp"

namespace obscorr::stats {

/// Σ_i |a_i − b_i|^p for p > 0 (p = 0.5 is the paper's choice).
inline double lp_residual(std::span<const double> a, std::span<const double> b, double p) {
  OBSCORR_REQUIRE(a.size() == b.size(), "lp_residual: size mismatch");
  OBSCORR_REQUIRE(p > 0.0, "lp_residual: p must be positive");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += std::pow(std::abs(a[i] - b[i]), p);
  }
  return total;
}

/// The paper's default residual: p = 1/2.
inline double half_norm_residual(std::span<const double> a, std::span<const double> b) {
  return lp_residual(a, b, 0.5);
}

}  // namespace obscorr::stats
