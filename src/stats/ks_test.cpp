#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace obscorr::stats {

namespace {

/// Sorted copy with NaNs dropped (they carry no ordering information and
/// would make the ECDF comparison ill-defined).
std::vector<double> sorted_finite_or_inf(std::span<const double> s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const double v : s) {
    if (!std::isnan(v)) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double kolmogorov_tail(double lambda) {
  OBSCORR_REQUIRE(lambda >= 0.0, "kolmogorov_tail: lambda must be non-negative");
  if (lambda < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult two_sample_ks(std::span<const double> a, std::span<const double> b) {
  const std::vector<double> sa = sorted_finite_or_inf(a);
  const std::vector<double> sb = sorted_finite_or_inf(b);
  OBSCORR_REQUIRE(!sa.empty() && !sb.empty(), "two_sample_ks: empty (or all-NaN) sample");

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    // Advance both past every observation equal to x (tie handling).
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }

  const double ne = na * nb / (na + nb);
  // Asymptotic p-value with the standard small-sample correction.
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  return KsResult{d, kolmogorov_tail(lambda)};
}

}  // namespace obscorr::stats
