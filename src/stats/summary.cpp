#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace obscorr::stats {

namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  OBSCORR_REQUIRE(!values.empty(), "quantile: empty sample");
  OBSCORR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double gini_coefficient(std::span<const double> values) {
  OBSCORR_REQUIRE(!values.empty(), "gini: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  double total = 0.0;
  for (double v : sorted) {
    OBSCORR_REQUIRE(v >= 0.0 && std::isfinite(v), "gini: values must be finite and >= 0");
    total += v;
  }
  OBSCORR_REQUIRE(total > 0.0, "gini: total must be positive");
  std::sort(sorted.begin(), sorted.end());
  // G = (2 Σ_i i·x_(i) / (n Σ x)) - (n+1)/n with 1-based ranks.
  const double n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

Summary summarize(std::span<const double> values) {
  OBSCORR_REQUIRE(!values.empty(), "summarize: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  double total = 0.0;
  for (double v : sorted) total += v;
  s.mean = total / static_cast<double>(sorted.size());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = quantile_sorted(sorted, 0.5);
  s.p90 = quantile_sorted(sorted, 0.9);
  s.p99 = quantile_sorted(sorted, 0.99);
  s.gini = gini_coefficient(sorted);
  return s;
}

}  // namespace obscorr::stats
