#pragma once
/// \file bootstrap.hpp
/// Seeded bootstrap confidence intervals for the correlation fractions.
/// The paper reports point estimates; error bars tell a reader which
/// Fig. 4 / Fig. 6 wiggles are signal. Binary outcomes (source matched /
/// not matched) resample in O(1) per replicate via binomial draws, so
/// intervals over hundreds of thousands of sources stay cheap.

#include <cstdint>

#include "common/thread_pool.hpp"

namespace obscorr::stats {

/// A two-sided confidence interval around a fraction.
struct FractionCi {
  double fraction = 0.0;  ///< point estimate successes/trials
  double lo = 0.0;        ///< lower percentile bound
  double hi = 0.0;        ///< upper percentile bound
};

/// Percentile-bootstrap CI for `successes` out of `trials` Bernoulli
/// observations. `level` in (0,1), e.g. 0.95; deterministic in `seed`.
/// Requires trials >= 1. Each replicate draws from its own
/// (seed, replicate)-derived stream, so resampling parallelizes over the
/// pool with the same result at any thread count; the pool-less overload
/// runs on the process-global pool.
FractionCi bootstrap_fraction(std::uint64_t successes, std::uint64_t trials, double level,
                              std::uint64_t seed, int replicates = 1000);
FractionCi bootstrap_fraction(std::uint64_t successes, std::uint64_t trials, double level,
                              std::uint64_t seed, int replicates, ThreadPool& pool);

}  // namespace obscorr::stats
