#include "stats/zipf.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/norms.hpp"

namespace obscorr::stats {

double ZipfMandelbrot::weight(double d) const {
  OBSCORR_REQUIRE(d >= 1.0, "weight: degree must be >= 1");
  return std::pow(d + delta, -alpha);
}

std::vector<double> ZipfMandelbrot::rank_weights(std::size_t n) const {
  std::vector<double> w(n);
  for (std::size_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1) + delta, -alpha);
  }
  return w;
}

namespace {

/// ∫ (x+δ)^(−α) dx over [lo, hi]: closed form, handling α = 1.
double power_integral(double lo, double hi, double alpha, double delta) {
  if (std::abs(alpha - 1.0) < 1e-12) {
    return std::log(hi + delta) - std::log(lo + delta);
  }
  const double e = 1.0 - alpha;
  return (std::pow(hi + delta, e) - std::pow(lo + delta, e)) / e;
}

}  // namespace

std::vector<double> ZipfMandelbrot::binned_mass(int n_bins) const {
  OBSCORR_REQUIRE(n_bins > 0, "binned_mass: need at least one bin");
  std::vector<double> mass(static_cast<std::size_t>(n_bins));
  double total = 0.0;
  for (int i = 0; i < n_bins; ++i) {
    const double lo = std::exp2(static_cast<double>(i));
    const double hi = std::exp2(static_cast<double>(i + 1));
    mass[static_cast<std::size_t>(i)] = power_integral(lo, hi, alpha, delta);
    total += mass[static_cast<std::size_t>(i)];
  }
  OBSCORR_INVARIANT(total > 0.0);
  for (double& m : mass) m /= total;
  return mass;
}

ZipfFit fit_zipf_mandelbrot(const LogHistogram& hist) {
  OBSCORR_REQUIRE(hist.total() > 0, "fit_zipf_mandelbrot: empty histogram");
  const std::vector<double> data = hist.differential_cumulative();
  const int n_bins = hist.bin_count();

  const auto objective = [&](double alpha, double delta) {
    const ZipfMandelbrot zm{alpha, delta};
    return half_norm_residual(data, zm.binned_mass(n_bins));
  };

  // Coarse grid over the physically plausible range (network-traffic
  // exponents land in [0.5, 4]; offsets rarely exceed the bin scale).
  double best_alpha = 2.0;
  double best_delta = 0.0;
  double best = objective(best_alpha, best_delta);
  for (double alpha = 0.5; alpha <= 4.0; alpha += 0.125) {
    for (double delta : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
      const double r = objective(alpha, delta);
      if (r < best) {
        best = r;
        best_alpha = alpha;
        best_delta = delta;
      }
    }
  }

  // Coordinate refinement with a shrinking step.
  double alpha_step = 0.125;
  double delta_step = std::max(0.25, best_delta * 0.5);
  for (int iter = 0; iter < 60; ++iter) {
    bool improved = false;
    for (const double a : {best_alpha - alpha_step, best_alpha + alpha_step}) {
      if (a <= 0.05) continue;
      const double r = objective(a, best_delta);
      if (r < best) {
        best = r;
        best_alpha = a;
        improved = true;
      }
    }
    for (const double d : {best_delta - delta_step, best_delta + delta_step}) {
      if (d < 0.0) continue;
      const double r = objective(best_alpha, d);
      if (r < best) {
        best = r;
        best_delta = d;
        improved = true;
      }
    }
    if (!improved) {
      alpha_step *= 0.5;
      delta_step *= 0.5;
      if (alpha_step < 1e-4 && delta_step < 1e-4) break;
    }
  }
  return ZipfFit{{best_alpha, best_delta}, best};
}

}  // namespace obscorr::stats
