#pragma once
/// \file powerlaw.hpp
/// Discrete power-law tail estimation following Clauset, Shalizi &
/// Newman 2009 (the paper's ref [48], whose binning conventions §II
/// adopts): maximum-likelihood exponent for p(d) ∝ d^(−α), d ≥ d_min,
/// with d_min chosen to minimize the Kolmogorov–Smirnov distance between
/// the empirical tail and the fitted model. Complements the
/// Zipf–Mandelbrot `| |^{1/2}` fit with a likelihood-based cross-check.

#include <cstdint>
#include <span>

namespace obscorr::stats {

/// Hurwitz zeta ζ(s, q) = Σ_{k≥0} (q+k)^(−s) for s > 1, q ≥ 1
/// (direct summation with an Euler–Maclaurin tail).
double hurwitz_zeta(double s, double q);

/// MLE exponent for a discrete power law over degrees ≥ d_min
/// (Clauset et al. eq. 3.7 approximation: α ≈ 1 + n / Σ ln(d/(d_min−½))).
/// Requires at least 2 tail observations.
double power_law_alpha_mle(std::span<const double> degrees, std::uint64_t d_min);

/// Result of the full tail fit.
struct PowerLawFit {
  double alpha = 0.0;        ///< MLE exponent at the chosen d_min
  std::uint64_t d_min = 1;   ///< tail start minimizing the KS distance
  double ks = 0.0;           ///< KS distance at the optimum
  std::size_t tail_count = 0;  ///< observations with d >= d_min
};

/// Kolmogorov–Smirnov distance between the empirical distribution of
/// the degrees ≥ d_min and the discrete power law (alpha, d_min).
double power_law_ks(std::span<const double> degrees, double alpha, std::uint64_t d_min);

/// Scan candidate d_min values (powers of two up to the point where the
/// tail gets thinner than `min_tail`) and return the KS-optimal fit.
PowerLawFit fit_power_law(std::span<const double> degrees, std::size_t min_tail = 50);

}  // namespace obscorr::stats
