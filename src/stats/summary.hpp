#pragma once
/// \file summary.hpp
/// Distribution summary statistics for network quantities: quantiles,
/// mean, and the Gini coefficient — the single-number inequality measure
/// that captures how strongly the Zipf–Mandelbrot head dominates (darknet
/// source-packet distributions are extremely unequal; Gini near 1).

#include <span>

namespace obscorr::stats {

/// Summary of a positive-valued sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;   ///< median
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double gini = 0.0;  ///< in [0, 1); 0 = equal, ->1 = one value dominates
};

/// Quantile of a sample by linear interpolation (q in [0,1]).
double quantile(std::span<const double> values, double q);

/// Gini coefficient of a non-negative sample with positive total.
double gini_coefficient(std::span<const double> values);

/// All summary statistics in one pass (values need not be sorted).
Summary summarize(std::span<const double> values);

}  // namespace obscorr::stats
