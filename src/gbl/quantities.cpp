#include "gbl/quantities.hpp"

namespace obscorr::gbl {

AggregateQuantities aggregate_quantities(const DcsrMatrix& a) {
  AggregateQuantities q;
  q.valid_packets = a.reduce_sum();
  q.unique_links = a.nnz();
  q.max_link_packets = a.reduce_max();
  const SparseVec src_packets = a.reduce_rows();
  const SparseVec src_fanout = a.reduce_rows_pattern();
  const SparseVec dst_packets = a.reduce_cols();
  const SparseVec dst_fanin = a.reduce_cols_pattern();
  q.unique_sources = src_packets.nnz();
  q.max_source_packets = src_packets.reduce_max();
  q.max_source_fanout = src_fanout.reduce_max();
  q.unique_destinations = dst_packets.nnz();
  q.max_destination_packets = dst_packets.reduce_max();
  q.max_destination_fanin = dst_fanin.reduce_max();
  return q;
}

EntityQuantities entity_quantities(const DcsrMatrix& a) {
  return EntityQuantities{
      .source_packets = a.reduce_rows(),
      .source_fanout = a.reduce_rows_pattern(),
      .destination_packets = a.reduce_cols(),
      .destination_fanin = a.reduce_cols_pattern(),
  };
}

}  // namespace obscorr::gbl
