#include "gbl/hierarchical.hpp"

#include "common/error.hpp"
#include "gbl/coo.hpp"

namespace obscorr::gbl {

HierarchicalAccumulator::HierarchicalAccumulator(int block_log2, ThreadPool& pool)
    : block_packets_(1ULL << block_log2), pool_(pool) {
  OBSCORR_REQUIRE(block_log2 >= 4 && block_log2 <= 30, "block_log2 must be in [4,30]");
  pending_.reserve(block_packets_);
}

void HierarchicalAccumulator::add_packet(Index src, Index dst) {
  pending_.push_back(pack_key(src, dst));
  ++packets_;
  if (pending_.size() == block_packets_) seal_block();
}

void HierarchicalAccumulator::add_packets(std::span<const std::uint64_t> keys) {
  packets_ += keys.size();
  while (!keys.empty()) {
    const std::size_t room = static_cast<std::size_t>(block_packets_) - pending_.size();
    const std::size_t take = std::min(room, keys.size());
    pending_.insert(pending_.end(), keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(take));
    keys = keys.subspan(take);
    if (pending_.size() == block_packets_) seal_block();
  }
}

void HierarchicalAccumulator::seal_block() {
  if (pending_.empty()) return;
  // Sort in place and fold straight into the block matrix: the pending
  // buffer keeps its (pool-backed) capacity and is recycled by every
  // block of every window — sealing allocates nothing beyond the matrix.
  sort_packed_keys(pending_, pool_);
  DcsrMatrix block = DcsrMatrix::from_sorted_packed_keys(pending_);
  pending_.clear();
  carry(std::move(block), 0);
}

void HierarchicalAccumulator::carry(DcsrMatrix block, int level) {
  // Binary carry: a second block at `level` merges and propagates upward.
  if (levels_.size() <= static_cast<std::size_t>(level)) {
    levels_.resize(static_cast<std::size_t>(level) + 1);
  }
  auto& slot = levels_[static_cast<std::size_t>(level)];
  if (slot.empty()) {
    slot.push_back(std::move(block));
    return;
  }
  DcsrMatrix merged = DcsrMatrix::ewise_add(slot.back(), block, pool_);
  ++merges_;
  slot.clear();
  carry(std::move(merged), level + 1);
}

DcsrMatrix HierarchicalAccumulator::finish() {
  seal_block();
  DcsrMatrix result;
  bool have_result = false;
  for (auto& slot : levels_) {
    if (slot.empty()) continue;
    if (!have_result) {
      result = std::move(slot.back());
      have_result = true;
    } else {
      result = DcsrMatrix::ewise_add(result, slot.back(), pool_);
      ++merges_;
    }
    slot.clear();
  }
  levels_.clear();
  packets_ = 0;
  return result;
}

}  // namespace obscorr::gbl
