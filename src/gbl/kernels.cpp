#include "gbl/kernels.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "common/simd.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::gbl::kernels {

// ---- scalar reference implementations ----------------------------------

void radix_sort_u64_scalar(std::uint64_t* keys, std::size_t n, mem::Arena& arena) {
  constexpr int kBits = 11;
  constexpr int kPasses = 6;  // 6 * 11 = 66 bits >= 64
  constexpr std::size_t kBuckets = std::size_t{1} << kBits;
  constexpr std::uint64_t kMask = kBuckets - 1;
  if (n < 2) return;  // the constant-digit probe below reads src[0]
  const mem::Arena::Frame frame(arena);
  std::uint64_t* const scratch = arena.alloc_span<std::uint64_t>(n).data();
  std::size_t* const hist = arena.alloc_span<std::size_t>(kPasses * kBuckets).data();
  std::fill_n(hist, kPasses * kBuckets, std::size_t{0});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (int p = 0; p < kPasses; ++p) {
      ++hist[static_cast<std::size_t>(p) * kBuckets + ((k >> (p * kBits)) & kMask)];
    }
  }
  std::uint64_t* src = keys;
  std::uint64_t* dst = scratch;
  for (int p = 0; p < kPasses; ++p) {
    std::size_t* h = hist + static_cast<std::size_t>(p) * kBuckets;
    const int shift = p * kBits;
    if (h[(src[0] >> shift) & kMask] == n) continue;  // constant digit
    std::size_t offset = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      const std::size_t c = h[d];
      h[d] = offset;
      offset += c;
    }
    for (std::size_t i = 0; i < n; ++i) dst[h[(src[i] >> shift) & kMask]++] = src[i];
    std::swap(src, dst);
  }
  if (src != keys) std::copy(src, src + n, keys);
}

std::size_t merge_add_columns_scalar(const Index* ac, const Value* av, std::size_t na,
                                     const Index* bc, const Value* bv, std::size_t nb,
                                     Index* out_col, Value* out_val) {
  std::size_t i = 0, j = 0, out = 0;
  while (i < na && j < nb) {
    if (ac[i] == bc[j]) {
      out_col[out] = ac[i];
      out_val[out] = av[i] + bv[j];
      ++i;
      ++j;
    } else if (ac[i] < bc[j]) {
      out_col[out] = ac[i];
      out_val[out] = av[i];
      ++i;
    } else {
      out_col[out] = bc[j];
      out_val[out] = bv[j];
      ++j;
    }
    ++out;
  }
  for (; i < na; ++i, ++out) {
    out_col[out] = ac[i];
    out_val[out] = av[i];
  }
  for (; j < nb; ++j, ++out) {
    out_col[out] = bc[j];
    out_val[out] = bv[j];
  }
  return out;
}

Value sum_span_scalar(std::span<const Value> values) {
  Value total = 0.0;
  for (const Value v : values) total += v;
  return total;
}

Value max_span_scalar(std::span<const Value> values) {
  Value best = 0.0;
  for (const Value v : values) best = std::max(best, v);
  return best;
}

std::size_t count_in_range_span_scalar(std::span<const Value> values, Value lo, Value hi) {
  std::size_t n = 0;
  for (const Value v : values) {
    if (v >= lo && v < hi) ++n;
  }
  return n;
}

void row_sums_scalar(std::span<const std::uint64_t> row_ptr, std::span<const Value> values,
                     std::span<Value> sums) {
  for (std::size_t r = 0; r < sums.size(); ++r) {
    Value s = 0.0;
    for (std::uint64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) s += values[k];
    sums[r] = s;
  }
}

// ---- runtime dispatch ---------------------------------------------------

namespace {

/// Per-kernel dispatch counters: how many times the vectorized variant
/// actually ran (the scalar path counts nothing — a forced-scalar run
/// exports all-zero simd.dispatch_* values).
obs::Counter& radix_dispatches() {
  static obs::Counter& c = obs::counter("simd.dispatch_radix");
  return c;
}
obs::Counter& merge_dispatches() {
  static obs::Counter& c = obs::counter("simd.dispatch_merge");
  return c;
}
obs::Counter& reduce_dispatches() {
  static obs::Counter& c = obs::counter("simd.dispatch_reduce");
  return c;
}

}  // namespace

void radix_sort_u64(std::uint64_t* keys, std::size_t n, mem::Arena& arena) {
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) radix_dispatches().add(1);
    radix_sort_u64_avx2(keys, n, arena);
    return;
  }
  radix_sort_u64_scalar(keys, n, arena);
}

std::size_t merge_add_columns(const Index* ac, const Value* av, std::size_t na, const Index* bc,
                              const Value* bv, std::size_t nb, Index* out_col, Value* out_val) {
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) merge_dispatches().add(1);
    return merge_add_columns_avx2(ac, av, na, bc, bv, nb, out_col, out_val);
  }
  return merge_add_columns_scalar(ac, av, na, bc, bv, nb, out_col, out_val);
}

Value sum_span(std::span<const Value> values) {
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) reduce_dispatches().add(1);
    return sum_span_avx2(values);
  }
  return sum_span_scalar(values);
}

Value max_span(std::span<const Value> values) {
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) reduce_dispatches().add(1);
    return max_span_avx2(values);
  }
  return max_span_scalar(values);
}

std::size_t count_in_range_span(std::span<const Value> values, Value lo, Value hi) {
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) reduce_dispatches().add(1);
    return count_in_range_span_avx2(values, lo, hi);
  }
  return count_in_range_span_scalar(values, lo, hi);
}

void row_sums(std::span<const std::uint64_t> row_ptr, std::span<const Value> values,
              std::span<Value> sums) {
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) reduce_dispatches().add(1);
    row_sums_avx2(row_ptr, values, sums);
    return;
  }
  row_sums_scalar(row_ptr, values, sums);
}

}  // namespace obscorr::gbl::kernels
