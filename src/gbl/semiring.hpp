#pragma once
/// \file semiring.hpp
/// Semiring-generic GraphBLAS operations. The GraphBLAS mathematical
/// foundation (Kepner et al. 2016, the paper's ref [45]) defines graph
/// algorithms as matrix algebra over arbitrary semirings; the concrete
/// plus-times members on DcsrMatrix cover the traffic statistics, and
/// these templates provide the general form:
///
///   * plus-times  — packet counting (the default)
///   * min-plus    — tropical / shortest paths
///   * max-min     — bottleneck capacity
///   * or-and      — boolean reachability
///
/// Operations are free templates over a `Semiring` policy (add, multiply,
/// and the additive identity `zero`), header-only.

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "gbl/dcsr.hpp"
#include "gbl/types.hpp"

namespace obscorr::gbl {

/// Arithmetic (plus, times, 0): the traffic-counting semiring.
struct PlusTimes {
  static constexpr Value zero = 0.0;
  static Value add(Value a, Value b) { return a + b; }
  static Value multiply(Value a, Value b) { return a * b; }
};

/// Tropical (min, plus, +inf): path lengths.
struct MinPlus {
  static constexpr Value zero = std::numeric_limits<Value>::infinity();
  static Value add(Value a, Value b) { return std::min(a, b); }
  static Value multiply(Value a, Value b) { return a + b; }
};

/// Bottleneck (max, min, -inf): widest-path capacity.
struct MaxMin {
  static constexpr Value zero = -std::numeric_limits<Value>::infinity();
  static Value add(Value a, Value b) { return std::max(a, b); }
  static Value multiply(Value a, Value b) { return std::min(a, b); }
};

/// Boolean (or, and, false) over the 0/1 encoding: reachability.
struct OrAnd {
  static constexpr Value zero = 0.0;
  static Value add(Value a, Value b) { return (a != 0.0 || b != 0.0) ? 1.0 : 0.0; }
  static Value multiply(Value a, Value b) { return (a != 0.0 && b != 0.0) ? 1.0 : 0.0; }
};

/// Element-wise union under the semiring's additive monoid: stored cells
/// present in both operands combine with `add`; cells present in one
/// survive unchanged (GraphBLAS eWiseAdd).
template <typename Semiring>
DcsrMatrix ewise_add_semiring(const DcsrMatrix& a, const DcsrMatrix& b) {
  auto ta = a.to_tuples();
  auto tb = b.to_tuples();
  std::vector<Tuple> out;
  out.reserve(ta.size() + tb.size());
  std::size_t i = 0, j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (same_cell(ta[i], tb[j])) {
      out.push_back({ta[i].row, ta[i].col, Semiring::add(ta[i].val, tb[j].val)});
      ++i;
      ++j;
    } else if (tuple_less(ta[i], tb[j])) {
      out.push_back(ta[i++]);
    } else {
      out.push_back(tb[j++]);
    }
  }
  out.insert(out.end(), ta.begin() + static_cast<std::ptrdiff_t>(i), ta.end());
  out.insert(out.end(), tb.begin() + static_cast<std::ptrdiff_t>(j), tb.end());
  return DcsrMatrix::from_sorted_tuples(out);
}

/// Element-wise intersection under the semiring's multiplicative monoid
/// (GraphBLAS eWiseMult).
template <typename Semiring>
DcsrMatrix ewise_mult_semiring(const DcsrMatrix& a, const DcsrMatrix& b) {
  auto ta = a.to_tuples();
  auto tb = b.to_tuples();
  std::vector<Tuple> out;
  std::size_t i = 0, j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (same_cell(ta[i], tb[j])) {
      out.push_back({ta[i].row, ta[i].col, Semiring::multiply(ta[i].val, tb[j].val)});
      ++i;
      ++j;
    } else if (tuple_less(ta[i], tb[j])) {
      ++i;
    } else {
      ++j;
    }
  }
  return DcsrMatrix::from_sorted_tuples(out);
}

/// Matrix-matrix product under the semiring (GraphBLAS mxm): Gustavson
/// row-wise expansion with an accumulator seeded at `Semiring::zero`.
/// Accumulated values equal to the additive identity are dropped (they
/// are structural zeros of the semiring).
template <typename Semiring>
DcsrMatrix mxm_semiring(const DcsrMatrix& a, const DcsrMatrix& b) {
  std::vector<Tuple> out;
  std::unordered_map<Index, Value> acc;
  const auto b_rows = b.row_ids();
  const auto a_rows = a.row_ids();
  const auto a_ptr = a.row_ptr();
  const auto a_col = a.col();
  const auto a_val = a.val();
  const auto b_ptr = b.row_ptr();
  const auto b_col = b.col();
  const auto b_val = b.val();
  for (std::size_t ra = 0; ra < a_rows.size(); ++ra) {
    acc.clear();
    for (std::uint64_t ka = a_ptr[ra]; ka < a_ptr[ra + 1]; ++ka) {
      const Index k = a_col[ka];
      const auto it = std::lower_bound(b_rows.begin(), b_rows.end(), k);
      if (it == b_rows.end() || *it != k) continue;
      const std::size_t rb = static_cast<std::size_t>(it - b_rows.begin());
      for (std::uint64_t kb = b_ptr[rb]; kb < b_ptr[rb + 1]; ++kb) {
        const Value product = Semiring::multiply(a_val[ka], b_val[kb]);
        auto [slot, inserted] = acc.try_emplace(b_col[kb], product);
        if (!inserted) slot->second = Semiring::add(slot->second, product);
      }
    }
    const std::size_t start = out.size();
    for (const auto& [col, val] : acc) {
      if (val != Semiring::zero) out.push_back({a_rows[ra], col, val});
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(), tuple_less);
  }
  return DcsrMatrix::from_sorted_tuples(out);
}

}  // namespace obscorr::gbl
