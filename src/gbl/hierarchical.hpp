#pragma once
/// \file hierarchical.hpp
/// Hierarchical hypersparse accumulation (refs [34][35]).
///
/// The CAIDA pipeline aggregates the packet stream into GraphBLAS blocks
/// of 2^17 valid packets and hierarchically sums 2^13 of them into each
/// 2^30-packet snapshot matrix. Summing small sorted blocks pairwise in a
/// power-of-two tree keeps every merge cache-friendly and bounds the
/// working set, which is what makes streaming insert rates of billions of
/// updates/second attainable. `HierarchicalAccumulator` reproduces that
/// structure: packets stream in, blocks of `block_packets` are built and
/// merged whenever two blocks of equal level meet, exactly like binary
/// carry propagation.
///
/// The hot path is allocation-free per packet: pending packets are packed
/// `(src << 32) | dst` u64 keys (8 bytes instead of a 16-byte tuple),
/// sealed blocks are pool-sorted and folded straight into DCSR arrays,
/// and carry merges use the zero-copy `ewise_add` kernels.

#include <cstdint>
#include <span>
#include <vector>

#include "common/pool_alloc.hpp"
#include "common/thread_pool.hpp"
#include "gbl/dcsr.hpp"
#include "gbl/types.hpp"

namespace obscorr::gbl {

/// Streaming builder: add packets, get the snapshot matrix at the end.
/// The result is bit-identical to building one flat matrix from all
/// packets (verified by property tests); only the work schedule differs.
class HierarchicalAccumulator {
 public:
  /// `block_log2`: log2 of packets per leaf block (paper: 17).
  explicit HierarchicalAccumulator(int block_log2, ThreadPool& pool);

  /// Stream one packet (source, destination).
  void add_packet(Index src, Index dst);

  /// Stream a batch of packets packed as `(src << 32) | dst` keys (see
  /// `pack_key` in coo.hpp). Equivalent to calling `add_packet` per key
  /// but crosses no per-packet function boundary.
  void add_packets(std::span<const std::uint64_t> keys);

  /// Total packets streamed so far.
  std::uint64_t packets() const { return packets_; }

  /// Number of pairwise block merges performed so far (bench metric).
  std::uint64_t merges() const { return merges_; }

  /// Flush and collapse all levels into the final snapshot matrix.
  /// The accumulator resets and can be reused afterwards.
  DcsrMatrix finish();

 private:
  void seal_block();
  void carry(DcsrMatrix block, int level);

  std::uint64_t block_packets_;
  ThreadPool& pool_;
  mem::PoolVec<std::uint64_t> pending_;          // current partial leaf block (packed keys)
  std::vector<std::vector<DcsrMatrix>> levels_;  // levels_[k]: at most 1 block of 2^k leaves
  std::uint64_t packets_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace obscorr::gbl
