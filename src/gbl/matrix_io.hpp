#pragma once
/// \file matrix_io.hpp
/// Binary serialization of hypersparse matrices — the archive format of
/// the pipeline. The real telescope archives trillions of packets as
/// anonymized GraphBLAS traffic matrices at a supercomputing center;
/// this is the equivalent on-disk representation: a small header (magic,
/// version, counts) followed by the raw DCSR arrays, written
/// little-endian.
///
/// Format v1 (stream-oriented, unaligned):
///   8 bytes  magic "OBSCGBL1"
///   u64      nonempty rows
///   u64      nnz
///   u32[rows]  row ids
///   u64[rows+1] row offsets
///   u32[nnz]   column ids
///   f64[nnz]   values
///
/// Format v2 ("OBSCGBL2", 8-byte-aligned sections for mmap zero-copy
/// reads) lives in matrix_view.hpp; the study archive uses v2.

#include <iosfwd>
#include <string>

#include "gbl/dcsr.hpp"

namespace obscorr::gbl {

/// Serialize `m` to a binary stream; throws on stream failure.
void write_matrix(std::ostream& os, const DcsrMatrix& m);

/// Deserialize a matrix; throws std::invalid_argument on malformed input
/// (bad magic, truncation, inconsistent offsets).
DcsrMatrix read_matrix(std::istream& is);

/// Convenience file helpers.
void save_matrix(const std::string& path, const DcsrMatrix& m);
DcsrMatrix load_matrix(const std::string& path);

}  // namespace obscorr::gbl
