/// \file dcsr_simd.cpp
/// AVX2 variant of the DCSR ewise_add column merge. Output is
/// bit-identical to the scalar two-pointer merge on any input: the same
/// union sequence is written and equal cells sum `av[i] + bv[j]` exactly
/// as the reference does. The speedup comes from run detection — instead
/// of advancing one element per compare, the kernel finds how far one
/// side runs below the other's head with 8-wide column compares and then
/// bulk-copies the whole run (with whole-range concatenation fast paths
/// when the operands' column ranges are disjoint, the common case for
/// time-partitioned capture blocks).

#include "gbl/kernels.hpp"

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

namespace obscorr::gbl::kernels {

namespace {

/// Copy a finished run (columns + values) and return the new output count.
inline std::size_t copy_run(const Index* c, const Value* v, std::size_t len, Index* out_col,
                            Value* out_val, std::size_t out) {
  std::memcpy(out_col + out, c, len * sizeof(Index));
  std::memcpy(out_val + out, v, len * sizeof(Value));
  return out + len;
}

/// Length of the prefix of cols[0..limit) strictly below `pivot`, given
/// cols[0..8) is already known to be below it (the caller's gallop guard
/// checked cols[7] < pivot). Column ids are full u32s, so the signed
/// 8-wide compare works on sign-bit-biased values.
__attribute__((target("avx2"))) std::size_t run_below(const Index* cols, std::size_t limit,
                                                      Index pivot) {
  std::size_t run = 8;
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vpivot =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(pivot)), bias);
  while (run + 8 <= limit) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + run)), bias);
    const __m256i lt = _mm256_cmpgt_epi32(vpivot, v);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(lt)));
    if (mask != 0xFFu) return run + static_cast<std::size_t>(__builtin_ctz(~mask));
    run += 8;
  }
  while (run < limit && cols[run] < pivot) ++run;
  return run;
}

}  // namespace

__attribute__((target("avx2"))) std::size_t merge_add_columns_avx2(
    const Index* ac, const Value* av, std::size_t na, const Index* bc, const Value* bv,
    std::size_t nb, Index* out_col, Value* out_val) {
  if (na == 0) return copy_run(bc, bv, nb, out_col, out_val, 0);
  if (nb == 0) return copy_run(ac, av, na, out_col, out_val, 0);
  // Disjoint column ranges: the merge is a concatenation.
  if (ac[na - 1] < bc[0]) {
    return copy_run(bc, bv, nb, out_col, out_val, copy_run(ac, av, na, out_col, out_val, 0));
  }
  if (bc[nb - 1] < ac[0]) {
    return copy_run(ac, av, na, out_col, out_val, copy_run(bc, bv, nb, out_col, out_val, 0));
  }
  std::size_t i = 0, j = 0, out = 0;
  // Galloping merge: stay scalar while the sides alternate (run length
  // ~1, the common case for same-window block merges — the streak
  // counters cost only register arithmetic there), and switch to the
  // vector run scan + bulk copy once one side has advanced kGallopAfter
  // times in a row, which marks a skewed or partially-disjoint region.
  constexpr int kGallopAfter = 4;
  int a_streak = 0, b_streak = 0;
  while (i < na && j < nb) {
    if (ac[i] == bc[j]) {
      out_col[out] = ac[i];
      out_val[out] = av[i] + bv[j];
      ++i;
      ++j;
      ++out;
      a_streak = 0;
      b_streak = 0;
    } else if (ac[i] < bc[j]) {
      if (++a_streak >= kGallopAfter && i + 8 <= na && ac[i + 7] < bc[j]) {
        const std::size_t run = run_below(ac + i, na - i, bc[j]);
        out = copy_run(ac + i, av + i, run, out_col, out_val, out);
        i += run;
      } else {
        out_col[out] = ac[i];
        out_val[out] = av[i];
        ++i;
        ++out;
      }
      b_streak = 0;
    } else {
      if (++b_streak >= kGallopAfter && j + 8 <= nb && bc[j + 7] < ac[i]) {
        const std::size_t run = run_below(bc + j, nb - j, ac[i]);
        out = copy_run(bc + j, bv + j, run, out_col, out_val, out);
        j += run;
      } else {
        out_col[out] = bc[j];
        out_val[out] = bv[j];
        ++j;
        ++out;
      }
      a_streak = 0;
    }
  }
  if (i < na) out = copy_run(ac + i, av + i, na - i, out_col, out_val, out);
  if (j < nb) out = copy_run(bc + j, bv + j, nb - j, out_col, out_val, out);
  return out;
}

}  // namespace obscorr::gbl::kernels

#else  // !defined(__x86_64__)

namespace obscorr::gbl::kernels {

std::size_t merge_add_columns_avx2(const Index* ac, const Value* av, std::size_t na,
                                   const Index* bc, const Value* bv, std::size_t nb,
                                   Index* out_col, Value* out_val) {
  return merge_add_columns_scalar(ac, av, na, bc, bv, nb, out_col, out_val);
}

}  // namespace obscorr::gbl::kernels

#endif
