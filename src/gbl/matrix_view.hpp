#pragma once
/// \file matrix_view.hpp
/// Zero-copy read access to an archived hypersparse matrix.
///
/// Format v2 ("OBSCGBL2") lays the DCSR arrays out with every section
/// 8-byte aligned relative to the payload start:
///
///   8 bytes   magic "OBSCGBL2"
///   u64       nonempty rows
///   u64       nnz
///   u32[rows]   row ids           (pad to 8)
///   u64[rows+1] row offsets
///   u32[nnz]    column ids        (pad to 8)
///   f64[nnz]    values
///
/// so a payload mapped at an 8-aligned offset can be *viewed* rather
/// than deserialized: `MatrixView` wraps const spans straight over the
/// mapped bytes. Construction validates the full structural contract
/// (counts vs. byte size, sorted unique rows, monotone offsets, sorted
/// unique columns per row) up front — a view that constructs is safe to
/// query; hostile or corrupt bytes throw std::invalid_argument.
///
/// The view implements the reductions the archive query path needs
/// (`reduce_sum`, `reduce_rows`, ...) directly over the mapped spans —
/// identical results to the owning DcsrMatrix, no copy of the nnz-sized
/// arrays — plus `materialize()` for call sites that need an owning
/// matrix.

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "gbl/dcsr.hpp"
#include "gbl/sparse_vec.hpp"
#include "gbl/types.hpp"

namespace obscorr::gbl {

/// Immutable DCSR view over externally owned (typically mmap'd) bytes.
/// The underlying buffer must outlive the view.
class MatrixView {
 public:
  /// An empty view (no rows, no entries).
  MatrixView() = default;

  /// Validate and wrap a format-v2 payload. `bytes.data()` must be
  /// 8-byte aligned (archive payload starts are, mapped and decoded
  /// alike). Throws std::invalid_argument on any malformation. When
  /// `owner` is given the view shares ownership of the buffer — how the
  /// archive hands out views over cache pages that may be evicted while
  /// the view is live; untyped because gbl sits below the archive.
  static MatrixView from_bytes(std::span<const std::byte> bytes,
                               std::shared_ptr<const void> owner = {});

  /// Borrow the arrays of an in-memory matrix (no serialization); used
  /// to share the reduction kernels between the view and owning types.
  static MatrixView over(const DcsrMatrix& m);

  std::size_t nnz() const { return col_.size(); }
  std::size_t nonempty_rows() const { return row_ids_.size(); }

  std::span<const Index> row_ids() const { return row_ids_; }
  std::span<const std::uint64_t> row_ptr() const { return row_ptr_; }
  std::span<const Index> col() const { return col_; }
  std::span<const Value> val() const { return val_; }

  /// Value at (row, col); 0 when the cell is not stored.
  Value at(Index row, Index col) const;

  /// Sum of all values `1ᵀ A 1` (the valid-packet count).
  Value reduce_sum() const;

  /// Maximum stored value `max(A)`.
  Value reduce_max() const;

  /// Row reduction `A·1`: packets per source. Bit-identical to
  /// DcsrMatrix::reduce_rows on the same data.
  SparseVec reduce_rows() const;

  /// Row reduction of the pattern `|A|₀·1`: fan-out per source.
  SparseVec reduce_rows_pattern() const;

  /// Owning deep copy, re-validated through the tuple path.
  DcsrMatrix materialize() const;

 private:
  std::span<const Index> row_ids_;
  std::span<const std::uint64_t> row_ptr_;
  std::span<const Index> col_;
  std::span<const Value> val_;
  std::shared_ptr<const void> owner_;  ///< keeps a decoded page alive
};

/// Serialize `m` in format v2 (the layout MatrixView reads), appending
/// to `out`. The caller must place the payload at an 8-aligned offset
/// for the zero-copy read path; the archive writer guarantees this.
void append_matrix_v2(std::string& out, const DcsrMatrix& m);

}  // namespace obscorr::gbl
