#pragma once
/// \file sparse_vec.hpp
/// Sparse vector over the 2^32 IPv4 index space: the result type of the
/// Table II row/column reductions (source packets `A·1`, source fan-out
/// `|A|_0·1`, destination packets `1ᵀ·A`, fan-in `1ᵀ·|A|_0`).

#include <cstdint>
#include <span>
#include <vector>

#include "gbl/types.hpp"

namespace obscorr::gbl {

/// Immutable sparse vector: strictly increasing indices with values.
class SparseVec {
 public:
  SparseVec() = default;

  /// Construct from parallel arrays; indices must be strictly increasing.
  SparseVec(std::vector<Index> indices, std::vector<Value> values);

  /// Number of stored (nonzero) entries.
  std::size_t nnz() const { return indices_.size(); }

  std::span<const Index> indices() const { return indices_; }
  std::span<const Value> values() const { return values_; }

  /// Value at index i, or 0 when the entry is not stored. O(log nnz).
  Value at(Index i) const;

  /// Sum of stored values (e.g. total packets across sources).
  Value reduce_sum() const;

  /// Maximum stored value; 0 for an empty vector (no entries, no packets).
  Value reduce_max() const;

  /// Number of entries with value >= lo and < hi (brightness-bin count).
  std::size_t count_in_range(Value lo, Value hi) const;

  /// Element-wise test: true when every stored value is > 0.
  bool all_positive() const;

  friend bool operator==(const SparseVec&, const SparseVec&) = default;

 private:
  std::vector<Index> indices_;
  std::vector<Value> values_;
};

}  // namespace obscorr::gbl
