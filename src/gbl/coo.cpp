#include "gbl/coo.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace obscorr::gbl {

namespace {

/// Sum values of equal cells in a sorted run; returns the compacted size.
std::vector<Tuple> combine_sorted(std::vector<Tuple> tuples) {
  if (tuples.empty()) return tuples;
  std::size_t out = 0;
  for (std::size_t i = 1; i < tuples.size(); ++i) {
    if (same_cell(tuples[out], tuples[i])) {
      tuples[out].val += tuples[i].val;
    } else {
      tuples[++out] = tuples[i];
    }
  }
  tuples.resize(out + 1);
  return tuples;
}

}  // namespace

std::vector<Tuple> sort_and_combine(std::vector<Tuple> tuples, ThreadPool& pool) {
  const std::size_t n = tuples.size();
  const std::size_t threads = pool.thread_count();
  if (n < 1 << 14 || threads <= 1) {
    return sort_and_combine(std::move(tuples));
  }

  // Phase 1: sort static chunks in parallel.
  const std::size_t chunks = std::min<std::size_t>(threads, 64);
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  parallel_for(pool, 0, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      std::sort(tuples.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                tuples.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]), tuple_less);
    }
  });

  // Phase 2: pairwise merge tree; the tree shape depends only on the chunk
  // count, so the result is identical at any thread count.
  std::vector<std::size_t> level(bounds);
  while (level.size() > 2) {
    const std::size_t pairs = (level.size() - 1) / 2;
    parallel_for(pool, 0, pairs, [&](std::size_t pb, std::size_t pe) {
      for (std::size_t p = pb; p < pe; ++p) {
        auto first = tuples.begin() + static_cast<std::ptrdiff_t>(level[2 * p]);
        auto mid = tuples.begin() + static_cast<std::ptrdiff_t>(level[2 * p + 1]);
        auto last = tuples.begin() + static_cast<std::ptrdiff_t>(level[2 * p + 2]);
        std::inplace_merge(first, mid, last, tuple_less);
      }
    });
    std::vector<std::size_t> next;
    next.reserve(level.size() / 2 + 2);
    for (std::size_t i = 0; i < level.size(); i += 2) next.push_back(level[i]);
    if ((level.size() - 1) % 2 == 1) next.push_back(level.back());
    if (next.back() != n) next.push_back(n);
    level = std::move(next);
  }
  OBSCORR_INVARIANT(std::is_sorted(tuples.begin(), tuples.end(), tuple_less));
  return combine_sorted(std::move(tuples));
}

std::vector<Tuple> sort_and_combine(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end(), tuple_less);
  return combine_sorted(std::move(tuples));
}

std::vector<Tuple> CooBuilder::finish(ThreadPool& pool) && {
  return sort_and_combine(std::move(tuples_), pool);
}

std::vector<Tuple> CooBuilder::finish() && {
  return sort_and_combine(std::move(tuples_));
}

}  // namespace obscorr::gbl
