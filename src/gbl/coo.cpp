#include "gbl/coo.hpp"

#include <algorithm>
#include <functional>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "gbl/kernels.hpp"

namespace obscorr::gbl {

namespace {

/// Sum values of equal cells in a sorted run; returns the compacted size.
std::vector<Tuple> combine_sorted(std::vector<Tuple> tuples) {
  if (tuples.empty()) return tuples;
  std::size_t out = 0;
  for (std::size_t i = 1; i < tuples.size(); ++i) {
    if (same_cell(tuples[out], tuples[i])) {
      tuples[out].val += tuples[i].val;
    } else {
      tuples[++out] = tuples[i];
    }
  }
  tuples.resize(out + 1);
  return tuples;
}

/// Deterministic pooled sort shared by the tuple and packed-key paths:
/// static chunks are sorted in parallel, then pairwise-merged in a tree
/// whose shape depends only on the chunk count — results are identical
/// at any thread count.
template <typename T, typename Less>
void pooled_sort(std::vector<T>& items, ThreadPool& pool, Less less) {
  const std::size_t n = items.size();
  const std::size_t threads = pool.thread_count();

  // Phase 1: sort static chunks in parallel.
  const std::size_t chunks = std::min<std::size_t>(threads, 64);
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  parallel_for(pool, 0, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      std::sort(items.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                items.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]), less);
    }
  });

  // Phase 2: pairwise merge tree; the tree shape depends only on the chunk
  // count, so the result is identical at any thread count.
  std::vector<std::size_t> level(bounds);
  while (level.size() > 2) {
    const std::size_t pairs = (level.size() - 1) / 2;
    parallel_for(pool, 0, pairs, [&](std::size_t pb, std::size_t pe) {
      for (std::size_t p = pb; p < pe; ++p) {
        auto first = items.begin() + static_cast<std::ptrdiff_t>(level[2 * p]);
        auto mid = items.begin() + static_cast<std::ptrdiff_t>(level[2 * p + 1]);
        auto last = items.begin() + static_cast<std::ptrdiff_t>(level[2 * p + 2]);
        std::inplace_merge(first, mid, last, less);
      }
    });
    std::vector<std::size_t> next;
    next.reserve(level.size() / 2 + 2);
    for (std::size_t i = 0; i < level.size(); i += 2) next.push_back(level[i]);
    if ((level.size() - 1) % 2 == 1) next.push_back(level.back());
    if (next.back() != n) next.push_back(n);
    level = std::move(next);
  }
  OBSCORR_INVARIANT(std::is_sorted(items.begin(), items.end(), less));
}

/// Serial LSD radix sort of u64 keys (kernels::radix_sort_u64, runtime
/// SIMD dispatch): six 11-bit digit passes with a scatter buffer. All six
/// histograms are built in one initial sweep (digit counts are
/// order-independent), so the data is touched 7 times total instead of
/// 12 — on random packed packet keys this runs ~5-8x faster than a
/// comparison sort. Passes whose digit is constant across the whole
/// range are skipped outright. Scratch lives in a frame of the calling
/// thread's arena, so repeated sorts (one per sealed block) reuse the
/// same warm pages.
void radix_sort_u64(std::uint64_t* keys, std::size_t n) {
  kernels::radix_sort_u64(keys, n, mem::scratch_arena());
}

}  // namespace

std::vector<Tuple> sort_and_combine(std::vector<Tuple> tuples, ThreadPool& pool) {
  if (tuples.size() < 1 << 14 || pool.thread_count() <= 1) {
    return sort_and_combine(std::move(tuples));
  }
  pooled_sort(tuples, pool, tuple_less);
  return combine_sorted(std::move(tuples));
}

std::vector<Tuple> sort_and_combine(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end(), tuple_less);
  return combine_sorted(std::move(tuples));
}

void sort_packed_keys(std::span<std::uint64_t> keys, ThreadPool& pool) {
  const std::size_t n = keys.size();
  if (n < 1 << 10) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(pool.thread_count(), 64);
  // The serial radix sort is already ~5x a comparison sort, so chunked
  // sorting only pays once the array dwarfs the merge-tree overhead.
  if (chunks <= 1 || n < 1 << 19) {
    radix_sort_u64(keys.data(), n);
    return;
  }
  // Radix-sort static chunks in parallel, then run the deterministic
  // pairwise merge tree (identical output at any thread count — u64
  // keys have one total order whatever the method). Each worker sorts
  // out of its own thread-local arena.
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  parallel_for(pool, 0, chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      radix_sort_u64(keys.data() + bounds[c], bounds[c + 1] - bounds[c]);
    }
  });
  std::vector<std::size_t> level(bounds);
  while (level.size() > 2) {
    const std::size_t pairs = (level.size() - 1) / 2;
    parallel_for(pool, 0, pairs, [&](std::size_t pb, std::size_t pe) {
      for (std::size_t p = pb; p < pe; ++p) {
        auto first = keys.begin() + static_cast<std::ptrdiff_t>(level[2 * p]);
        auto mid = keys.begin() + static_cast<std::ptrdiff_t>(level[2 * p + 1]);
        auto last = keys.begin() + static_cast<std::ptrdiff_t>(level[2 * p + 2]);
        std::inplace_merge(first, mid, last);
      }
    });
    std::vector<std::size_t> next;
    next.reserve(level.size() / 2 + 2);
    for (std::size_t i = 0; i < level.size(); i += 2) next.push_back(level[i]);
    if ((level.size() - 1) % 2 == 1) next.push_back(level.back());
    if (next.back() != n) next.push_back(n);
    level = std::move(next);
  }
  OBSCORR_INVARIANT(std::is_sorted(keys.begin(), keys.end()));
}

std::vector<Tuple> CooBuilder::finish(ThreadPool& pool) && {
  return sort_and_combine(std::move(tuples_), pool);
}

std::vector<Tuple> CooBuilder::finish() && {
  return sort_and_combine(std::move(tuples_));
}

}  // namespace obscorr::gbl
