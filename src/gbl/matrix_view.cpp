#include "gbl/matrix_view.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/error.hpp"
#include "gbl/kernels.hpp"

namespace obscorr::gbl {

namespace {

constexpr char kMagicV2[8] = {'O', 'B', 'S', 'C', 'G', 'B', 'L', '2'};
constexpr std::size_t kHeaderBytes = 24;

template <typename T>
void append_pod(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void append_array(std::string& out, std::span<const T> values) {
  out.append(reinterpret_cast<const char*>(values.data()), values.size() * sizeof(T));
}

void pad_to8(std::string& out, std::size_t base) {
  while ((out.size() - base) % 8 != 0) out.push_back('\0');
}

template <typename T>
std::span<const T> take_array(std::span<const std::byte> bytes, std::size_t& pos,
                              std::size_t count) {
  OBSCORR_REQUIRE(count <= (bytes.size() - pos) / sizeof(T),
                  "matrix view: declared counts exceed the payload size");
  const auto raw = bytes.subspan(pos, count * sizeof(T));
  pos += count * sizeof(T);
  return {reinterpret_cast<const T*>(raw.data()), count};
}

void skip_pad8(std::span<const std::byte> bytes, std::size_t& pos) {
  while (pos % 8 != 0) {
    OBSCORR_REQUIRE(pos < bytes.size() && bytes[pos] == std::byte{0},
                    "matrix view: bad section padding");
    ++pos;
  }
}

}  // namespace

void append_matrix_v2(std::string& out, const DcsrMatrix& m) {
  const std::size_t base = out.size();
  out.append(kMagicV2, sizeof kMagicV2);
  append_pod<std::uint64_t>(out, m.nonempty_rows());
  append_pod<std::uint64_t>(out, m.nnz());
  append_array(out, m.row_ids());
  pad_to8(out, base);
  append_array(out, m.row_ptr());
  append_array(out, m.col());
  pad_to8(out, base);
  append_array(out, m.val());
}

MatrixView MatrixView::from_bytes(std::span<const std::byte> bytes,
                                  std::shared_ptr<const void> owner) {
  OBSCORR_REQUIRE(reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 == 0,
                  "matrix view: payload must start 8-byte aligned");
  OBSCORR_REQUIRE(bytes.size() >= kHeaderBytes, "matrix view: truncated header");
  OBSCORR_REQUIRE(std::memcmp(bytes.data(), kMagicV2, sizeof kMagicV2) == 0,
                  "matrix view: bad magic");

  std::uint64_t rows = 0, nnz = 0;
  std::memcpy(&rows, bytes.data() + 8, sizeof rows);
  std::memcpy(&nnz, bytes.data() + 16, sizeof nnz);
  // Every stored row holds at least one entry, and all four arrays must
  // fit inside the payload — reject hostile counts before touching them.
  OBSCORR_REQUIRE(rows <= nnz, "matrix view: more rows than entries");
  OBSCORR_REQUIRE(nnz <= bytes.size() / sizeof(Index),
                  "matrix view: declared counts exceed the payload size");

  MatrixView v;
  v.owner_ = std::move(owner);
  std::size_t pos = kHeaderBytes;
  v.row_ids_ = take_array<Index>(bytes, pos, static_cast<std::size_t>(rows));
  skip_pad8(bytes, pos);
  v.row_ptr_ = take_array<std::uint64_t>(bytes, pos, static_cast<std::size_t>(rows) + 1);
  v.col_ = take_array<Index>(bytes, pos, static_cast<std::size_t>(nnz));
  skip_pad8(bytes, pos);
  v.val_ = take_array<Value>(bytes, pos, static_cast<std::size_t>(nnz));
  OBSCORR_REQUIRE(pos == bytes.size(), "matrix view: trailing bytes after values");

  // Structural contract: sorted unique rows, monotone offsets covering
  // [0, nnz] with no empty rows, sorted unique columns inside each row.
  OBSCORR_REQUIRE(v.row_ptr_.front() == 0 && v.row_ptr_.back() == nnz,
                  "matrix view: inconsistent row offsets");
  for (std::size_t r = 0; r < v.row_ids_.size(); ++r) {
    OBSCORR_REQUIRE(r == 0 || v.row_ids_[r - 1] < v.row_ids_[r],
                    "matrix view: row ids must be strictly increasing");
    OBSCORR_REQUIRE(v.row_ptr_[r] < v.row_ptr_[r + 1],
                    "matrix view: row offsets must be strictly increasing");
    OBSCORR_REQUIRE(v.row_ptr_[r + 1] <= nnz,
                    "matrix view: row offset exceeds the entry count");
    for (std::uint64_t k = v.row_ptr_[r] + 1; k < v.row_ptr_[r + 1]; ++k) {
      OBSCORR_REQUIRE(v.col_[k - 1] < v.col_[k],
                      "matrix view: columns must be strictly increasing within a row");
    }
  }
  return v;
}

MatrixView MatrixView::over(const DcsrMatrix& m) {
  MatrixView v;
  v.row_ids_ = m.row_ids();
  v.row_ptr_ = m.row_ptr();
  v.col_ = m.col();
  v.val_ = m.val();
  return v;
}

Value MatrixView::at(Index row, Index col) const {
  const auto rit = std::lower_bound(row_ids_.begin(), row_ids_.end(), row);
  if (rit == row_ids_.end() || *rit != row) return 0.0;
  const std::size_t r = static_cast<std::size_t>(rit - row_ids_.begin());
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto cit = std::lower_bound(begin, end, col);
  if (cit == end || *cit != col) return 0.0;
  return val_[static_cast<std::size_t>(cit - col_.begin())];
}

Value MatrixView::reduce_sum() const { return kernels::sum_span(val_); }

Value MatrixView::reduce_max() const { return kernels::max_span(val_); }

SparseVec MatrixView::reduce_rows() const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> sums(row_ids_.size(), 0.0);
  kernels::row_sums(row_ptr_, val_, sums);
  return SparseVec(std::move(idx), std::move(sums));
}

SparseVec MatrixView::reduce_rows_pattern() const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> counts(row_ids_.size(), 0.0);
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    counts[r] = static_cast<Value>(row_ptr_[r + 1] - row_ptr_[r]);
  }
  return SparseVec(std::move(idx), std::move(counts));
}

DcsrMatrix MatrixView::materialize() const {
  std::vector<Tuple> tuples;
  tuples.reserve(nnz());
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      tuples.push_back({row_ids_[r], col_[k], val_[k]});
    }
  }
  return DcsrMatrix::from_sorted_tuples(tuples);
}

}  // namespace obscorr::gbl
