#pragma once
/// \file quantities.hpp
/// The paper's Table II: every streaming network quantity computable from
/// a traffic matrix A_t, in both aggregate (scalar) and per-entity
/// (sparse-vector) form. All formulas are permutation-invariant, so they
/// are valid on CryptoPAN-anonymized matrices — the property the paper's
/// trusted-data-sharing workflow depends on.

#include <cstdint>

#include "gbl/dcsr.hpp"
#include "gbl/sparse_vec.hpp"

namespace obscorr::gbl {

/// Aggregate (scalar) network quantities of one traffic matrix.
struct AggregateQuantities {
  double valid_packets = 0.0;        ///< 1ᵀ A 1
  std::uint64_t unique_links = 0;    ///< 1ᵀ |A|₀ 1
  double max_link_packets = 0.0;     ///< max(A)
  std::uint64_t unique_sources = 0;  ///< |A 1|₀ summed
  double max_source_packets = 0.0;   ///< max(A 1)
  double max_source_fanout = 0.0;    ///< max(|A|₀ 1)
  std::uint64_t unique_destinations = 0;  ///< ||1ᵀ A|₀| summed
  double max_destination_packets = 0.0;   ///< max(1ᵀ A)
  double max_destination_fanin = 0.0;     ///< max(1ᵀ |A|₀)
};

/// Per-entity quantities: the four Table II reductions.
struct EntityQuantities {
  SparseVec source_packets;      ///< A 1
  SparseVec source_fanout;       ///< |A|₀ 1
  SparseVec destination_packets; ///< 1ᵀ A
  SparseVec destination_fanin;   ///< 1ᵀ |A|₀
};

/// Compute all aggregate quantities of `a`.
AggregateQuantities aggregate_quantities(const DcsrMatrix& a);

/// Compute all per-entity quantities of `a`.
EntityQuantities entity_quantities(const DcsrMatrix& a);

}  // namespace obscorr::gbl
