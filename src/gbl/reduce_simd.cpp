/// \file reduce_simd.cpp
/// AVX2 variants of the span-served Table II reductions (sum / max /
/// range-count / per-row sums). The sums use four lane-split accumulators
/// combined in a fixed order; that reassociates the additions, which is
/// bit-identical to the scalar left fold exactly when every partial sum
/// is exactly representable — the pipeline's values are integer packet
/// counts far below 2^53, so it always is (see kernels.hpp for the
/// contract on general doubles). Max and count are order-independent on
/// the no-NaN domain the scalar references assume.

#include "gbl/kernels.hpp"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace obscorr::gbl::kernels {

namespace {

/// Fixed-order horizontal combine shared by the sum kernels: pairwise
/// within the accumulator tree, then lanes low to high.
__attribute__((target("avx2"))) inline double hsum(__m256d acc0, __m256d acc1, __m256d acc2,
                                                   __m256d acc3) {
  const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace

__attribute__((target("avx2"))) Value sum_span_avx2(std::span<const Value> values) {
  const double* p = values.data();
  const std::size_t n = values.size();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(p + i + 4));
    acc2 = _mm256_add_pd(acc2, _mm256_loadu_pd(p + i + 8));
    acc3 = _mm256_add_pd(acc3, _mm256_loadu_pd(p + i + 12));
  }
  Value total = hsum(acc0, acc1, acc2, acc3);
  for (; i < n; ++i) total += p[i];
  return total;
}

__attribute__((target("avx2"))) Value max_span_avx2(std::span<const Value> values) {
  const double* p = values.data();
  const std::size_t n = values.size();
  // Accumulators start at 0.0 like the scalar fold, so the result is
  // floor-clamped at zero identically.
  __m256d best0 = _mm256_setzero_pd();
  __m256d best1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    best0 = _mm256_max_pd(best0, _mm256_loadu_pd(p + i));
    best1 = _mm256_max_pd(best1, _mm256_loadu_pd(p + i + 4));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, _mm256_max_pd(best0, best1));
  Value best = std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
  for (; i < n; ++i) best = std::max(best, p[i]);
  return best;
}

__attribute__((target("avx2"))) std::size_t count_in_range_span_avx2(std::span<const Value> values,
                                                                     Value lo, Value hi) {
  const double* p = values.data();
  const std::size_t n = values.size();
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(p + i);
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GE_OQ),
                                     _mm256_cmp_pd(v, vhi, _CMP_LT_OQ));
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(in))));
  }
  for (; i < n; ++i) {
    if (p[i] >= lo && p[i] < hi) ++count;
  }
  return count;
}

__attribute__((target("avx2"))) void row_sums_avx2(std::span<const std::uint64_t> row_ptr,
                                                   std::span<const Value> values,
                                                   std::span<Value> sums) {
  const double* val = values.data();
  for (std::size_t r = 0; r < sums.size(); ++r) {
    const std::size_t k0 = row_ptr[r];
    const std::size_t k1 = row_ptr[r + 1];
    const std::size_t len = k1 - k0;
    if (len < 16) {
      Value s = 0.0;
      for (std::size_t k = k0; k < k1; ++k) s += val[k];
      sums[r] = s;
      continue;
    }
    const double* p = val + k0;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p + i));
      acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(p + i + 4));
      acc2 = _mm256_add_pd(acc2, _mm256_loadu_pd(p + i + 8));
      acc3 = _mm256_add_pd(acc3, _mm256_loadu_pd(p + i + 12));
    }
    Value s = hsum(acc0, acc1, acc2, acc3);
    for (; i < len; ++i) s += p[i];
    sums[r] = s;
  }
}

}  // namespace obscorr::gbl::kernels

#else  // !defined(__x86_64__)

namespace obscorr::gbl::kernels {

Value sum_span_avx2(std::span<const Value> values) { return sum_span_scalar(values); }
Value max_span_avx2(std::span<const Value> values) { return max_span_scalar(values); }
std::size_t count_in_range_span_avx2(std::span<const Value> values, Value lo, Value hi) {
  return count_in_range_span_scalar(values, lo, hi);
}
void row_sums_avx2(std::span<const std::uint64_t> row_ptr, std::span<const Value> values,
                   std::span<Value> sums) {
  row_sums_scalar(row_ptr, values, sums);
}

}  // namespace obscorr::gbl::kernels

#endif
