/// \file coo_simd.cpp
/// AVX2 variant of the 6x11-bit LSD radix sort. The algorithm — one
/// up-front histogram sweep, constant-digit pass skip, stable scatter —
/// is identical to the scalar reference, so the output permutation is
/// bit-identical on any input. The vector win is in the two memory-bound
/// sweeps: the histogram pass extracts all six digits of four keys at a
/// time with vector shifts, and the scatter pass prefetches the
/// destination cachelines a fixed distance ahead (the scatter writes land
/// at 2048 independent cursors, far beyond what the hardware prefetcher
/// can track).

#include "common/arena.hpp"
#include "gbl/kernels.hpp"

#if defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>

namespace obscorr::gbl::kernels {

namespace {

constexpr int kBits = 11;
constexpr int kPasses = 6;  // 6 * 11 = 66 bits >= 64
constexpr std::size_t kBuckets = std::size_t{1} << kBits;
constexpr std::uint64_t kMask = kBuckets - 1;

/// How many keys ahead the scatter pass prefetches its destination. The
/// bucket cursors move as keys stream, so the hint address is approximate
/// for all but the next key — close enough: a cursor advances at most
/// `dist` slots (64 bytes) between hint and write.
constexpr std::size_t kScatterPrefetchDist = 16;

}  // namespace

__attribute__((target("avx2"))) void radix_sort_u64_avx2(std::uint64_t* keys, std::size_t n,
                                                         mem::Arena& arena) {
  if (n < 2) return;  // the constant-digit probe below reads src[0]
  const mem::Arena::Frame frame(arena);
  std::uint64_t* const scratch = arena.alloc_span<std::uint64_t>(n).data();
  std::size_t* const h0 = arena.alloc_span<std::size_t>(kPasses * kBuckets).data();
  std::fill_n(h0, kPasses * kBuckets, std::size_t{0});

  // Histogram sweep: four keys per iteration, six digits each extracted
  // with one vector shift+mask per pass. The 24 histogram increments stay
  // scalar (they are read-modify-writes at data-dependent indices), but
  // the digit arithmetic and the load traffic vectorize.
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(kMask));
  std::size_t i = 0;
  alignas(32) std::uint64_t dig[kPasses][4];
  for (; i + 4 <= n; i += 4) {
    const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dig[0]), _mm256_and_si256(k, vmask));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dig[1]),
                       _mm256_and_si256(_mm256_srli_epi64(k, kBits), vmask));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dig[2]),
                       _mm256_and_si256(_mm256_srli_epi64(k, 2 * kBits), vmask));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dig[3]),
                       _mm256_and_si256(_mm256_srli_epi64(k, 3 * kBits), vmask));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dig[4]),
                       _mm256_and_si256(_mm256_srli_epi64(k, 4 * kBits), vmask));
    _mm256_store_si256(reinterpret_cast<__m256i*>(dig[5]),
                       _mm256_srli_epi64(k, 5 * kBits));  // top digit needs no mask
    for (int p = 0; p < kPasses; ++p) {
      std::size_t* h = h0 + static_cast<std::size_t>(p) * kBuckets;
      ++h[dig[p][0]];
      ++h[dig[p][1]];
      ++h[dig[p][2]];
      ++h[dig[p][3]];
    }
  }
  for (; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (int p = 0; p < kPasses; ++p) {
      ++h0[static_cast<std::size_t>(p) * kBuckets + ((k >> (p * kBits)) & kMask)];
    }
  }

  std::uint64_t* src = keys;
  std::uint64_t* dst = scratch;
  for (int p = 0; p < kPasses; ++p) {
    std::size_t* h = h0 + static_cast<std::size_t>(p) * kBuckets;
    const int shift = p * kBits;
    if (h[(src[0] >> shift) & kMask] == n) continue;  // constant digit
    std::size_t offset = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      const std::size_t c = h[d];
      h[d] = offset;
      offset += c;
    }
    const std::size_t main = n > kScatterPrefetchDist ? n - kScatterPrefetchDist : 0;
    std::size_t s = 0;
    for (; s < main; ++s) {
      const std::uint64_t ahead = src[s + kScatterPrefetchDist];
      _mm_prefetch(reinterpret_cast<const char*>(dst + h[(ahead >> shift) & kMask]),
                   _MM_HINT_T0);
      dst[h[(src[s] >> shift) & kMask]++] = src[s];
    }
    for (; s < n; ++s) dst[h[(src[s] >> shift) & kMask]++] = src[s];
    std::swap(src, dst);
  }
  if (src != keys) std::copy(src, src + n, keys);
}

}  // namespace obscorr::gbl::kernels

#else  // !defined(__x86_64__)

namespace obscorr::gbl::kernels {

void radix_sort_u64_avx2(std::uint64_t* keys, std::size_t n, mem::Arena& arena) {
  radix_sort_u64_scalar(keys, n, arena);
}

}  // namespace obscorr::gbl::kernels

#endif
