#pragma once
/// \file kernels.hpp
/// The hot GBL loops behind the matrix API, split out so each kernel can
/// ship a scalar reference implementation and an AVX2 variant selected at
/// runtime (common/simd.hpp). The dispatched entry points are what
/// dcsr.cpp / coo.cpp / matrix_view.cpp / sparse_vec.cpp call; the
/// `_scalar` and `_avx2` names are exported so the differential test
/// suites can drive both sides directly and assert byte equality.
///
/// Bit-identity contract: every AVX2 variant produces output bit-identical
/// to its scalar reference.
///  - radix sort and the column merge permute/copy integers and add
///    `a + b` for equal cells in the same order as scalar — identical on
///    any input.
///  - the floating-point reductions (sum, row sums) use lane-split
///    accumulators, which reassociate the adds. That is bit-identical
///    whenever every partial sum is exactly representable — true for this
///    pipeline, whose values are integer packet counts far below 2^53.
///    For general doubles the reassociation can differ in the last ulp.
///  - max/count assume no NaNs (the scalar fold starts at 0.0 and the
///    pipeline stores only finite counts).

#include <cstddef>
#include <cstdint>
#include <span>

#include "gbl/types.hpp"

namespace obscorr::mem {
class Arena;
}  // namespace obscorr::mem

namespace obscorr::gbl::kernels {

// ---- dispatched entry points -------------------------------------------

/// Serial LSD radix sort of u64 keys: six 11-bit digit passes with a
/// scatter buffer; all six histograms are built in one initial sweep and
/// constant-digit passes are skipped. The scatter buffer and histograms
/// live in a frame of `arena` for the duration of the call — callers
/// share one recycled arena (usually `mem::scratch_arena()`) instead of
/// round-tripping malloc per block.
void radix_sort_u64(std::uint64_t* keys, std::size_t n, mem::Arena& arena);

/// Merge-add two sorted unique column runs into `out_col`/`out_val`
/// (shared columns sum `av[i] + bv[j]`). Returns the entries written
/// (the column union size). The output buffers must have room for
/// `na + nb` entries.
std::size_t merge_add_columns(const Index* ac, const Value* av, std::size_t na, const Index* bc,
                              const Value* bv, std::size_t nb, Index* out_col, Value* out_val);

/// Sum of a value span (left fold from 0.0 in the scalar reference).
Value sum_span(std::span<const Value> values);

/// Max of a value span; 0.0 for an empty span. No-NaN contract.
Value max_span(std::span<const Value> values);

/// Entries with value >= lo and < hi (brightness-bin count).
std::size_t count_in_range_span(std::span<const Value> values, Value lo, Value hi);

/// Per-row sums: `sums[r] = sum(values[row_ptr[r] .. row_ptr[r+1]))` for
/// each of the `sums.size()` rows; `row_ptr` holds one more entry than
/// `sums` and its offsets index into `values`.
void row_sums(std::span<const std::uint64_t> row_ptr, std::span<const Value> values,
              std::span<Value> sums);

// ---- scalar reference implementations ----------------------------------

void radix_sort_u64_scalar(std::uint64_t* keys, std::size_t n, mem::Arena& arena);
std::size_t merge_add_columns_scalar(const Index* ac, const Value* av, std::size_t na,
                                     const Index* bc, const Value* bv, std::size_t nb,
                                     Index* out_col, Value* out_val);
Value sum_span_scalar(std::span<const Value> values);
Value max_span_scalar(std::span<const Value> values);
std::size_t count_in_range_span_scalar(std::span<const Value> values, Value lo, Value hi);
void row_sums_scalar(std::span<const std::uint64_t> row_ptr, std::span<const Value> values,
                     std::span<Value> sums);

// ---- AVX2 variants (coo_simd.cpp / dcsr_simd.cpp / reduce_simd.cpp; on
// non-x86 builds each forwards to its scalar reference so the symbols
// always link — dispatch never selects them there) ------------------------

void radix_sort_u64_avx2(std::uint64_t* keys, std::size_t n, mem::Arena& arena);
std::size_t merge_add_columns_avx2(const Index* ac, const Value* av, std::size_t na,
                                   const Index* bc, const Value* bv, std::size_t nb,
                                   Index* out_col, Value* out_val);
Value sum_span_avx2(std::span<const Value> values);
Value max_span_avx2(std::span<const Value> values);
std::size_t count_in_range_span_avx2(std::span<const Value> values, Value lo, Value hi);
void row_sums_avx2(std::span<const std::uint64_t> row_ptr, std::span<const Value> values,
                   std::span<Value> sums);

}  // namespace obscorr::gbl::kernels
