#include "gbl/dcsr.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "gbl/coo.hpp"

namespace obscorr::gbl {

DcsrMatrix DcsrMatrix::from_sorted_tuples(std::span<const Tuple> tuples) {
  DcsrMatrix m;
  m.col_.reserve(tuples.size());
  m.val_.reserve(tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const Tuple& t = tuples[i];
    if (i > 0) {
      OBSCORR_REQUIRE(tuple_less(tuples[i - 1], t),
                      "from_sorted_tuples: tuples must be sorted with unique cells");
    }
    if (m.row_ids_.empty() || m.row_ids_.back() != t.row) {
      m.row_ids_.push_back(t.row);
      m.row_ptr_.push_back(static_cast<std::uint64_t>(i));
    }
    m.col_.push_back(t.col);
    m.val_.push_back(t.val);
  }
  // row_ptr_ was default-initialized with a single 0 for the empty matrix;
  // rebuild the sentinel layout: one offset per stored row plus the end.
  if (!m.row_ids_.empty()) {
    m.row_ptr_.erase(m.row_ptr_.begin());  // drop the constructor's 0 (first row re-added it)
    m.row_ptr_.push_back(static_cast<std::uint64_t>(tuples.size()));
  }
  OBSCORR_INVARIANT(m.row_ptr_.size() == m.row_ids_.size() + 1);
  return m;
}

DcsrMatrix DcsrMatrix::from_tuples(std::vector<Tuple> tuples) {
  const auto sorted = sort_and_combine(std::move(tuples));
  return from_sorted_tuples(sorted);
}

DcsrMatrix DcsrMatrix::from_tuples(std::vector<Tuple> tuples, ThreadPool& pool) {
  const auto sorted = sort_and_combine(std::move(tuples), pool);
  return from_sorted_tuples(sorted);
}

std::size_t DcsrMatrix::nonempty_cols() const {
  std::vector<Index> cols(col_.begin(), col_.end());
  std::sort(cols.begin(), cols.end());
  return static_cast<std::size_t>(std::unique(cols.begin(), cols.end()) - cols.begin());
}

Value DcsrMatrix::at(Index row, Index col) const {
  const auto rit = std::lower_bound(row_ids_.begin(), row_ids_.end(), row);
  if (rit == row_ids_.end() || *rit != row) return 0.0;
  const std::size_t r = static_cast<std::size_t>(rit - row_ids_.begin());
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto cit = std::lower_bound(begin, end, col);
  if (cit == end || *cit != col) return 0.0;
  return val_[static_cast<std::size_t>(cit - col_.begin())];
}

Value DcsrMatrix::reduce_sum() const {
  Value total = 0.0;
  for (Value v : val_) total += v;
  return total;
}

Value DcsrMatrix::reduce_max() const {
  Value best = 0.0;
  for (Value v : val_) best = std::max(best, v);
  return best;
}

SparseVec DcsrMatrix::reduce_rows() const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> sums(row_ids_.size(), 0.0);
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) sums[r] += val_[k];
  }
  return SparseVec(std::move(idx), std::move(sums));
}

SparseVec DcsrMatrix::reduce_rows(ThreadPool& pool) const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> sums(row_ids_.size(), 0.0);
  parallel_for(pool, 0, row_ids_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) sums[r] += val_[k];
    }
  });
  return SparseVec(std::move(idx), std::move(sums));
}

SparseVec DcsrMatrix::reduce_rows_pattern() const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> counts(row_ids_.size(), 0.0);
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    counts[r] = static_cast<Value>(row_ptr_[r + 1] - row_ptr_[r]);
  }
  return SparseVec(std::move(idx), std::move(counts));
}

namespace {

SparseVec reduce_columns(std::span<const Index> col, std::span<const Value> val, bool pattern) {
  // Gather (col, value) pairs, sort by column, and fold runs.
  std::vector<std::pair<Index, Value>> pairs(col.size());
  for (std::size_t k = 0; k < col.size(); ++k) {
    pairs[k] = {col[k], pattern ? 1.0 : val[k]};
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Index> idx;
  std::vector<Value> sums;
  for (const auto& [c, v] : pairs) {
    if (idx.empty() || idx.back() != c) {
      idx.push_back(c);
      sums.push_back(v);
    } else {
      sums.back() += v;
    }
  }
  return SparseVec(std::move(idx), std::move(sums));
}

}  // namespace

SparseVec DcsrMatrix::reduce_cols() const { return reduce_columns(col_, val_, false); }

SparseVec DcsrMatrix::reduce_cols_pattern() const { return reduce_columns(col_, val_, true); }

DcsrMatrix DcsrMatrix::pattern() const {
  DcsrMatrix m = *this;
  std::fill(m.val_.begin(), m.val_.end(), 1.0);
  return m;
}

DcsrMatrix DcsrMatrix::transpose() const {
  std::vector<Tuple> tuples;
  tuples.reserve(nnz());
  for_each([&](Index r, Index c, Value v) { tuples.push_back({c, r, v}); });
  // Cells stay unique under transposition; only the order changes.
  std::sort(tuples.begin(), tuples.end(), tuple_less);
  return from_sorted_tuples(tuples);
}

DcsrMatrix DcsrMatrix::ewise_add(const DcsrMatrix& a, const DcsrMatrix& b) {
  std::vector<Tuple> merged;
  merged.reserve(a.nnz() + b.nnz());
  auto ta = a.to_tuples();
  auto tb = b.to_tuples();
  std::size_t i = 0, j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (same_cell(ta[i], tb[j])) {
      merged.push_back({ta[i].row, ta[i].col, ta[i].val + tb[j].val});
      ++i;
      ++j;
    } else if (tuple_less(ta[i], tb[j])) {
      merged.push_back(ta[i++]);
    } else {
      merged.push_back(tb[j++]);
    }
  }
  merged.insert(merged.end(), ta.begin() + static_cast<std::ptrdiff_t>(i), ta.end());
  merged.insert(merged.end(), tb.begin() + static_cast<std::ptrdiff_t>(j), tb.end());
  return from_sorted_tuples(merged);
}

DcsrMatrix DcsrMatrix::ewise_mult(const DcsrMatrix& a, const DcsrMatrix& b) {
  std::vector<Tuple> merged;
  auto ta = a.to_tuples();
  auto tb = b.to_tuples();
  std::size_t i = 0, j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (same_cell(ta[i], tb[j])) {
      merged.push_back({ta[i].row, ta[i].col, ta[i].val * tb[j].val});
      ++i;
      ++j;
    } else if (tuple_less(ta[i], tb[j])) {
      ++i;
    } else {
      ++j;
    }
  }
  return from_sorted_tuples(merged);
}

DcsrMatrix DcsrMatrix::mxm(const DcsrMatrix& a, const DcsrMatrix& b) {
  // Gustavson's row-wise SpGEMM with a hash accumulator per output row;
  // B's rows are looked up by binary search in its compressed row list.
  std::vector<Tuple> out;
  std::unordered_map<Index, Value> acc;
  const auto b_rows = b.row_ids();
  for (std::size_t ra = 0; ra < a.row_ids_.size(); ++ra) {
    acc.clear();
    for (std::uint64_t ka = a.row_ptr_[ra]; ka < a.row_ptr_[ra + 1]; ++ka) {
      const Index k = a.col_[ka];
      const auto it = std::lower_bound(b_rows.begin(), b_rows.end(), k);
      if (it == b_rows.end() || *it != k) continue;
      const std::size_t rb = static_cast<std::size_t>(it - b_rows.begin());
      const Value av = a.val_[ka];
      for (std::uint64_t kb = b.row_ptr_[rb]; kb < b.row_ptr_[rb + 1]; ++kb) {
        acc[b.col_[kb]] += av * b.val_[kb];
      }
    }
    const std::size_t start = out.size();
    for (const auto& [col, val] : acc) out.push_back({a.row_ids_[ra], col, val});
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(), tuple_less);
  }
  return from_sorted_tuples(out);
}

DcsrMatrix DcsrMatrix::extract_rows(Index row_begin, Index row_end) const {
  OBSCORR_REQUIRE(row_begin <= row_end, "extract_rows: empty or inverted range");
  std::vector<Tuple> kept;
  const auto lo = std::lower_bound(row_ids_.begin(), row_ids_.end(), row_begin);
  const auto hi = std::lower_bound(row_ids_.begin(), row_ids_.end(), row_end);
  for (auto it = lo; it != hi; ++it) {
    const std::size_t r = static_cast<std::size_t>(it - row_ids_.begin());
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      kept.push_back({row_ids_[r], col_[k], val_[k]});
    }
  }
  return from_sorted_tuples(kept);
}

DcsrMatrix DcsrMatrix::select(const std::function<bool(Index, Index)>& keep) const {
  std::vector<Tuple> kept;
  for_each([&](Index r, Index c, Value v) {
    if (keep(r, c)) kept.push_back({r, c, v});
  });
  return from_sorted_tuples(kept);
}

void DcsrMatrix::for_each(const std::function<void(Index, Index, Value)>& visit) const {
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      visit(row_ids_[r], col_[k], val_[k]);
    }
  }
}

std::vector<Tuple> DcsrMatrix::to_tuples() const {
  std::vector<Tuple> tuples;
  tuples.reserve(nnz());
  for_each([&](Index r, Index c, Value v) { tuples.push_back({r, c, v}); });
  return tuples;
}

std::size_t DcsrMatrix::memory_bytes() const {
  return row_ids_.capacity() * sizeof(Index) + row_ptr_.capacity() * sizeof(std::uint64_t) +
         col_.capacity() * sizeof(Index) + val_.capacity() * sizeof(Value);
}

}  // namespace obscorr::gbl
