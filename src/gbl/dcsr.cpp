#include "gbl/dcsr.hpp"

#include <algorithm>
#include <utility>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "gbl/coo.hpp"
#include "gbl/kernels.hpp"

namespace obscorr::gbl {

namespace {

constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;

/// One output row of a two-operand element-wise kernel: the row id and
/// the operands' positions in their compressed row lists (kNoRow when the
/// row is absent from that operand).
struct MergedRow {
  Index row = 0;
  std::uint32_t ra = kNoRow;
  std::uint32_t rb = kNoRow;
};

/// Union-merge of the two sorted row-id lists into `out` (room for
/// a.size() + b.size() entries); returns the union size.
/// O(nrows_a + nrows_b).
std::size_t merge_row_ids(std::span<const Index> a, std::span<const Index> b, MergedRow* out) {
  std::size_t n = 0;
  std::size_t ra = 0, rb = 0;
  while (ra < a.size() || rb < b.size()) {
    if (rb == b.size() || (ra < a.size() && a[ra] < b[rb])) {
      out[n++] = {a[ra], static_cast<std::uint32_t>(ra), kNoRow};
      ++ra;
    } else if (ra == a.size() || b[rb] < a[ra]) {
      out[n++] = {b[rb], kNoRow, static_cast<std::uint32_t>(rb)};
      ++rb;
    } else {
      out[n++] = {a[ra], static_cast<std::uint32_t>(ra), static_cast<std::uint32_t>(rb)};
      ++ra;
      ++rb;
    }
  }
  return n;
}

}  // namespace

DcsrMatrix DcsrMatrix::from_sorted_tuples(std::span<const Tuple> tuples) {
  DcsrMatrix m;
  m.col_.reserve(tuples.size());
  m.val_.reserve(tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const Tuple& t = tuples[i];
    if (i > 0) {
      OBSCORR_REQUIRE(tuple_less(tuples[i - 1], t),
                      "from_sorted_tuples: tuples must be sorted with unique cells");
    }
    if (m.row_ids_.empty() || m.row_ids_.back() != t.row) {
      m.row_ids_.push_back(t.row);
      m.row_ptr_.push_back(static_cast<std::uint64_t>(i));
    }
    m.col_.push_back(t.col);
    m.val_.push_back(t.val);
  }
  // row_ptr_ was default-initialized with a single 0 for the empty matrix;
  // rebuild the sentinel layout: one offset per stored row plus the end.
  if (!m.row_ids_.empty()) {
    m.row_ptr_.erase(m.row_ptr_.begin());  // drop the constructor's 0 (first row re-added it)
    m.row_ptr_.push_back(static_cast<std::uint64_t>(tuples.size()));
  }
  OBSCORR_INVARIANT(m.row_ptr_.size() == m.row_ids_.size() + 1);
  return m;
}

DcsrMatrix DcsrMatrix::from_tuples(std::vector<Tuple> tuples) {
  const auto sorted = sort_and_combine(std::move(tuples));
  return from_sorted_tuples(sorted);
}

DcsrMatrix DcsrMatrix::from_tuples(std::vector<Tuple> tuples, ThreadPool& pool) {
  const auto sorted = sort_and_combine(std::move(tuples), pool);
  return from_sorted_tuples(sorted);
}

DcsrMatrix DcsrMatrix::from_sorted_packed_keys(std::span<const std::uint64_t> keys) {
  DcsrMatrix m;
  if (keys.empty()) return m;
  // Size the arrays to the worst case up front and write through raw
  // indices — this fold runs once per sealed block, and per-element
  // push_back capacity checks are measurable there.
  m.col_.resize(keys.size());
  m.val_.resize(keys.size());
  m.row_ids_.resize(keys.size());
  m.row_ptr_.resize(keys.size() + 1);
  std::size_t nnz = 0;
  std::size_t nrows = 0;
  std::size_t i = 0;
  while (i < keys.size()) {
    const std::uint64_t key = keys[i];
    OBSCORR_REQUIRE(i == 0 || keys[i - 1] <= key, "from_sorted_packed_keys: keys must be sorted");
    std::size_t j = i + 1;
    while (j < keys.size() && keys[j] == key) ++j;
    const Index row = static_cast<Index>(key >> 32);
    if (nrows == 0 || m.row_ids_[nrows - 1] != row) {
      m.row_ids_[nrows] = row;
      m.row_ptr_[nrows] = static_cast<std::uint64_t>(nnz);
      ++nrows;
    }
    m.col_[nnz] = static_cast<Index>(key & 0xFFFFFFFFu);
    m.val_[nnz] = static_cast<Value>(j - i);
    ++nnz;
    i = j;
  }
  m.row_ptr_[nrows] = static_cast<std::uint64_t>(nnz);
  m.col_.resize(nnz);
  m.val_.resize(nnz);
  m.row_ids_.resize(nrows);
  m.row_ptr_.resize(nrows + 1);
  OBSCORR_INVARIANT(m.row_ptr_.size() == m.row_ids_.size() + 1);
  return m;
}

std::size_t DcsrMatrix::nonempty_cols() const {
  // Reuse the column-reduction run-fold: the pattern reduction's support
  // is exactly the set of non-empty columns.
  return reduce_cols_pattern().nnz();
}

Value DcsrMatrix::at(Index row, Index col) const {
  const auto rit = std::lower_bound(row_ids_.begin(), row_ids_.end(), row);
  if (rit == row_ids_.end() || *rit != row) return 0.0;
  const std::size_t r = static_cast<std::size_t>(rit - row_ids_.begin());
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto cit = std::lower_bound(begin, end, col);
  if (cit == end || *cit != col) return 0.0;
  return val_[static_cast<std::size_t>(cit - col_.begin())];
}

Value DcsrMatrix::reduce_sum() const { return kernels::sum_span(val_); }

Value DcsrMatrix::reduce_max() const { return kernels::max_span(val_); }

SparseVec DcsrMatrix::reduce_rows() const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> sums(row_ids_.size(), 0.0);
  kernels::row_sums(row_ptr_, val_, sums);
  return SparseVec(std::move(idx), std::move(sums));
}

SparseVec DcsrMatrix::reduce_rows(ThreadPool& pool) const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> sums(row_ids_.size(), 0.0);
  parallel_for(pool, 0, row_ids_.size(), [&](std::size_t begin, std::size_t end) {
    kernels::row_sums(std::span<const std::uint64_t>(row_ptr_).subspan(begin, end - begin + 1),
                      val_, std::span<Value>(sums).subspan(begin, end - begin));
  });
  return SparseVec(std::move(idx), std::move(sums));
}

SparseVec DcsrMatrix::reduce_rows_pattern() const {
  std::vector<Index> idx(row_ids_.begin(), row_ids_.end());
  std::vector<Value> counts(row_ids_.size(), 0.0);
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    counts[r] = static_cast<Value>(row_ptr_[r + 1] - row_ptr_[r]);
  }
  return SparseVec(std::move(idx), std::move(counts));
}

namespace {

SparseVec reduce_columns(std::span<const Index> col, std::span<const Value> val, bool pattern) {
  // Gather (col, value) pairs, sort by column, and fold runs.
  std::vector<std::pair<Index, Value>> pairs(col.size());
  for (std::size_t k = 0; k < col.size(); ++k) {
    pairs[k] = {col[k], pattern ? 1.0 : val[k]};
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Index> idx;
  std::vector<Value> sums;
  for (const auto& [c, v] : pairs) {
    if (idx.empty() || idx.back() != c) {
      idx.push_back(c);
      sums.push_back(v);
    } else {
      sums.back() += v;
    }
  }
  return SparseVec(std::move(idx), std::move(sums));
}

}  // namespace

SparseVec DcsrMatrix::reduce_cols() const { return reduce_columns(col_, val_, false); }

SparseVec DcsrMatrix::reduce_cols_pattern() const { return reduce_columns(col_, val_, true); }

DcsrMatrix DcsrMatrix::pattern() const {
  DcsrMatrix m = *this;
  std::fill(m.val_.begin(), m.val_.end(), 1.0);
  return m;
}

DcsrMatrix DcsrMatrix::transpose() const {
  // Pack each entry as ((col << 32) | row, val): sorting the keys yields
  // exactly the row-major order of Aᵀ, which then streams straight into
  // the output arrays. Cells stay unique under transposition.
  const std::size_t n = nnz();
  std::vector<std::pair<std::uint64_t, Value>> entries;
  entries.reserve(n);
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    const std::uint64_t lo = row_ids_[r];
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      entries.emplace_back((static_cast<std::uint64_t>(col_[k]) << 32) | lo, val_[k]);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  DcsrMatrix out;
  if (entries.empty()) return out;
  out.row_ptr_.clear();
  out.col_.reserve(n);
  out.val_.reserve(n);
  for (const auto& [key, v] : entries) {
    const Index row = static_cast<Index>(key >> 32);
    if (out.row_ids_.empty() || out.row_ids_.back() != row) {
      out.row_ids_.push_back(row);
      out.row_ptr_.push_back(static_cast<std::uint64_t>(out.col_.size()));
    }
    out.col_.push_back(static_cast<Index>(key & 0xFFFFFFFFu));
    out.val_.push_back(v);
  }
  out.row_ptr_.push_back(static_cast<std::uint64_t>(out.col_.size()));
  OBSCORR_INVARIANT(out.row_ptr_.size() == out.row_ids_.size() + 1);
  return out;
}

namespace {

/// Number of cells in the union of two sorted column ranges.
std::size_t union_count(std::span<const Index> ac, std::span<const Index> bc) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < ac.size() && j < bc.size()) {
    if (ac[i] == bc[j]) {
      ++i;
      ++j;
    } else if (ac[i] < bc[j]) {
      ++i;
    } else {
      ++j;
    }
    ++n;
  }
  return n + (ac.size() - i) + (bc.size() - j);
}

/// Merge-add two sorted column ranges into `col/val` starting at `out`.
/// Returns one past the last written slot.
std::size_t union_fill(std::span<const Index> ac, std::span<const Value> av,
                       std::span<const Index> bc, std::span<const Value> bv, Index* col,
                       Value* val, std::size_t out) {
  return out + kernels::merge_add_columns(ac.data(), av.data(), ac.size(), bc.data(), bv.data(),
                                          bc.size(), col + out, val + out);
}

}  // namespace

DcsrMatrix DcsrMatrix::ewise_add(const DcsrMatrix& a, const DcsrMatrix& b) {
  // Stream the CSR arrays of both operands directly into the output: a
  // two-pointer walk over the row-id lists, with a column merge for rows
  // present in both. No tuples, no re-sort, one allocation per array.
  DcsrMatrix out;
  const std::size_t na = a.row_ids_.size(), nb = b.row_ids_.size();
  if (na == 0 && nb == 0) return out;
  // Size everything to the worst case and write through raw indices: the
  // carry merges run on every sealed block, and for mostly-shared row
  // sets the per-row insert/push_back machinery dominates otherwise.
  out.row_ids_.resize(na + nb);
  out.row_ptr_.resize(na + nb + 1);
  out.col_.resize(a.nnz() + b.nnz());
  out.val_.resize(a.nnz() + b.nnz());
  Index* ocol = out.col_.data();
  Value* oval = out.val_.data();
  std::size_t nnz = 0;
  std::size_t nrows = 0;
  std::size_t ra = 0, rb = 0;
  while (ra < na || rb < nb) {
    out.row_ptr_[nrows] = static_cast<std::uint64_t>(nnz);
    if (rb == nb || (ra < na && a.row_ids_[ra] < b.row_ids_[rb])) {
      out.row_ids_[nrows++] = a.row_ids_[ra];
      const std::uint64_t k0 = a.row_ptr_[ra], k1 = a.row_ptr_[ra + 1];
      std::copy(a.col_.data() + k0, a.col_.data() + k1, ocol + nnz);
      std::copy(a.val_.data() + k0, a.val_.data() + k1, oval + nnz);
      nnz += static_cast<std::size_t>(k1 - k0);
      ++ra;
    } else if (ra == na || b.row_ids_[rb] < a.row_ids_[ra]) {
      out.row_ids_[nrows++] = b.row_ids_[rb];
      const std::uint64_t k0 = b.row_ptr_[rb], k1 = b.row_ptr_[rb + 1];
      std::copy(b.col_.data() + k0, b.col_.data() + k1, ocol + nnz);
      std::copy(b.val_.data() + k0, b.val_.data() + k1, oval + nnz);
      nnz += static_cast<std::size_t>(k1 - k0);
      ++rb;
    } else {
      out.row_ids_[nrows++] = a.row_ids_[ra];
      const std::uint64_t a0 = a.row_ptr_[ra], a1 = a.row_ptr_[ra + 1];
      const std::uint64_t b0 = b.row_ptr_[rb], b1 = b.row_ptr_[rb + 1];
      nnz += kernels::merge_add_columns(a.col_.data() + a0, a.val_.data() + a0,
                                        static_cast<std::size_t>(a1 - a0), b.col_.data() + b0,
                                        b.val_.data() + b0, static_cast<std::size_t>(b1 - b0),
                                        ocol + nnz, oval + nnz);
      ++ra;
      ++rb;
    }
  }
  out.row_ptr_[nrows] = static_cast<std::uint64_t>(nnz);
  out.row_ids_.resize(nrows);
  out.row_ptr_.resize(nrows + 1);
  out.col_.resize(nnz);
  out.val_.resize(nnz);
  OBSCORR_INVARIANT(out.row_ptr_.size() == out.row_ids_.size() + 1);
  return out;
}

DcsrMatrix DcsrMatrix::ewise_add(const DcsrMatrix& a, const DcsrMatrix& b, ThreadPool& pool) {
  // The pooled variant walks the row union twice (count, then fill), so
  // with fewer than three workers the single-pass serial merge wins.
  if (pool.thread_count() <= 2 || a.nnz() + b.nnz() < (1u << 14)) return ewise_add(a, b);

  // Pass 0 (serial, cheap): union-merge the row-id lists. The merged-row
  // table and the per-row counts are call-scoped scratch — they live in
  // an arena frame on this thread (all taken before the parallel_for, so
  // help-drain re-entry nests its own frames safely).
  mem::Arena& arena = mem::scratch_arena();
  const mem::Arena::Frame frame(arena);
  MergedRow* const rows = arena.alloc_span<MergedRow>(a.row_ids_.size() + b.row_ids_.size()).data();
  const std::size_t nrows = merge_row_ids(a.row_ids_, b.row_ids_, rows);
  std::uint64_t* const counts = arena.alloc_span<std::uint64_t>(nrows).data();

  auto a_cols = [&](std::uint32_t r) {
    return std::span<const Index>(a.col_.data() + a.row_ptr_[r], a.row_ptr_[r + 1] - a.row_ptr_[r]);
  };
  auto b_cols = [&](std::uint32_t r) {
    return std::span<const Index>(b.col_.data() + b.row_ptr_[r], b.row_ptr_[r + 1] - b.row_ptr_[r]);
  };

  // Pass 1 (parallel): per-row output sizes.
  parallel_for(pool, 0, nrows, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const MergedRow& m = rows[r];
      if (m.rb == kNoRow) {
        counts[r] = a.row_ptr_[m.ra + 1] - a.row_ptr_[m.ra];
      } else if (m.ra == kNoRow) {
        counts[r] = b.row_ptr_[m.rb + 1] - b.row_ptr_[m.rb];
      } else {
        counts[r] = union_count(a_cols(m.ra), b_cols(m.rb));
      }
    }
  });

  // Exclusive scan -> row_ptr, then size the value arrays exactly.
  DcsrMatrix out;
  out.row_ptr_.assign(nrows + 1, 0);
  for (std::size_t r = 0; r < nrows; ++r) out.row_ptr_[r + 1] = out.row_ptr_[r] + counts[r];
  out.row_ids_.resize(nrows);
  out.col_.resize(out.row_ptr_[nrows]);
  out.val_.resize(out.row_ptr_[nrows]);

  // Pass 2 (parallel): fill each row at its precomputed offset.
  parallel_for(pool, 0, nrows, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const MergedRow& m = rows[r];
      out.row_ids_[r] = m.row;
      std::size_t o = out.row_ptr_[r];
      if (m.rb == kNoRow) {
        const std::uint64_t k0 = a.row_ptr_[m.ra], k1 = a.row_ptr_[m.ra + 1];
        std::copy(a.col_.begin() + static_cast<std::ptrdiff_t>(k0),
                  a.col_.begin() + static_cast<std::ptrdiff_t>(k1), out.col_.begin() + static_cast<std::ptrdiff_t>(o));
        std::copy(a.val_.begin() + static_cast<std::ptrdiff_t>(k0),
                  a.val_.begin() + static_cast<std::ptrdiff_t>(k1), out.val_.begin() + static_cast<std::ptrdiff_t>(o));
      } else if (m.ra == kNoRow) {
        const std::uint64_t k0 = b.row_ptr_[m.rb], k1 = b.row_ptr_[m.rb + 1];
        std::copy(b.col_.begin() + static_cast<std::ptrdiff_t>(k0),
                  b.col_.begin() + static_cast<std::ptrdiff_t>(k1), out.col_.begin() + static_cast<std::ptrdiff_t>(o));
        std::copy(b.val_.begin() + static_cast<std::ptrdiff_t>(k0),
                  b.val_.begin() + static_cast<std::ptrdiff_t>(k1), out.val_.begin() + static_cast<std::ptrdiff_t>(o));
      } else {
        const std::uint64_t a0 = a.row_ptr_[m.ra], a1 = a.row_ptr_[m.ra + 1];
        const std::uint64_t b0 = b.row_ptr_[m.rb], b1 = b.row_ptr_[m.rb + 1];
        union_fill({a.col_.data() + a0, a1 - a0}, {a.val_.data() + a0, a1 - a0},
                   {b.col_.data() + b0, b1 - b0}, {b.val_.data() + b0, b1 - b0},
                   out.col_.data(), out.val_.data(), o);
      }
    }
  });
  OBSCORR_INVARIANT(out.row_ptr_.size() == out.row_ids_.size() + 1);
  return out;
}

DcsrMatrix DcsrMatrix::ewise_mult(const DcsrMatrix& a, const DcsrMatrix& b) {
  // Intersection: only rows present in both operands can contribute, and
  // within such a row only shared columns survive.
  DcsrMatrix out;
  const std::size_t na = a.row_ids_.size(), nb = b.row_ids_.size();
  if (na == 0 || nb == 0) return out;
  out.row_ptr_.clear();
  out.col_.reserve(std::min(a.nnz(), b.nnz()));
  out.val_.reserve(std::min(a.nnz(), b.nnz()));
  std::size_t ra = 0, rb = 0;
  while (ra < na && rb < nb) {
    if (a.row_ids_[ra] < b.row_ids_[rb]) {
      ++ra;
      continue;
    }
    if (b.row_ids_[rb] < a.row_ids_[ra]) {
      ++rb;
      continue;
    }
    const std::size_t row_start = out.col_.size();
    const std::uint64_t a1 = a.row_ptr_[ra + 1], b1 = b.row_ptr_[rb + 1];
    std::uint64_t i = a.row_ptr_[ra], j = b.row_ptr_[rb];
    while (i < a1 && j < b1) {
      if (a.col_[i] == b.col_[j]) {
        out.col_.push_back(a.col_[i]);
        out.val_.push_back(a.val_[i] * b.val_[j]);
        ++i;
        ++j;
      } else if (a.col_[i] < b.col_[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (out.col_.size() > row_start) {
      out.row_ids_.push_back(a.row_ids_[ra]);
      out.row_ptr_.push_back(static_cast<std::uint64_t>(row_start));
    }
    ++ra;
    ++rb;
  }
  out.row_ptr_.push_back(static_cast<std::uint64_t>(out.col_.size()));
  OBSCORR_INVARIANT(out.row_ptr_.size() == out.row_ids_.size() + 1);
  return out;
}

DcsrMatrix DcsrMatrix::mxm(const DcsrMatrix& a, const DcsrMatrix& b) {
  // Gustavson's row-wise SpGEMM with a sort-based accumulator: gather all
  // (col, product) contributions of one output row, stable-sort by
  // column, and fold runs straight into the output arrays. Contributions
  // to a cell are summed in gather order (A's columns ascending), which
  // is deterministic — unlike the hash-map accumulator it replaces.
  DcsrMatrix out;
  out.row_ptr_.clear();
  std::vector<std::pair<Index, Value>> scratch;
  const auto b_rows = b.row_ids();
  for (std::size_t ra = 0; ra < a.row_ids_.size(); ++ra) {
    scratch.clear();
    for (std::uint64_t ka = a.row_ptr_[ra]; ka < a.row_ptr_[ra + 1]; ++ka) {
      const Index k = a.col_[ka];
      const auto it = std::lower_bound(b_rows.begin(), b_rows.end(), k);
      if (it == b_rows.end() || *it != k) continue;
      const std::size_t rb = static_cast<std::size_t>(it - b_rows.begin());
      const Value av = a.val_[ka];
      for (std::uint64_t kb = b.row_ptr_[rb]; kb < b.row_ptr_[rb + 1]; ++kb) {
        scratch.emplace_back(b.col_[kb], av * b.val_[kb]);
      }
    }
    if (scratch.empty()) continue;
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const auto& x, const auto& y) { return x.first < y.first; });
    out.row_ids_.push_back(a.row_ids_[ra]);
    out.row_ptr_.push_back(static_cast<std::uint64_t>(out.col_.size()));
    for (const auto& [col, v] : scratch) {
      if (out.col_.size() > out.row_ptr_.back() && out.col_.back() == col) {
        out.val_.back() += v;
      } else {
        out.col_.push_back(col);
        out.val_.push_back(v);
      }
    }
  }
  out.row_ptr_.push_back(static_cast<std::uint64_t>(out.col_.size()));
  OBSCORR_INVARIANT(out.row_ptr_.size() == out.row_ids_.size() + 1);
  return out;
}

DcsrMatrix DcsrMatrix::extract_rows(Index row_begin, Index row_end) const {
  OBSCORR_REQUIRE(row_begin <= row_end, "extract_rows: empty or inverted range");
  std::vector<Tuple> kept;
  const auto lo = std::lower_bound(row_ids_.begin(), row_ids_.end(), row_begin);
  const auto hi = std::lower_bound(row_ids_.begin(), row_ids_.end(), row_end);
  for (auto it = lo; it != hi; ++it) {
    const std::size_t r = static_cast<std::size_t>(it - row_ids_.begin());
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      kept.push_back({row_ids_[r], col_[k], val_[k]});
    }
  }
  return from_sorted_tuples(kept);
}

DcsrMatrix DcsrMatrix::select(const std::function<bool(Index, Index)>& keep) const {
  std::vector<Tuple> kept;
  for_each([&](Index r, Index c, Value v) {
    if (keep(r, c)) kept.push_back({r, c, v});
  });
  return from_sorted_tuples(kept);
}

void DcsrMatrix::for_each(const std::function<void(Index, Index, Value)>& visit) const {
  for (std::size_t r = 0; r < row_ids_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      visit(row_ids_[r], col_[k], val_[k]);
    }
  }
}

std::vector<Tuple> DcsrMatrix::to_tuples() const {
  std::vector<Tuple> tuples;
  tuples.reserve(nnz());
  for_each([&](Index r, Index c, Value v) { tuples.push_back({r, c, v}); });
  return tuples;
}

std::size_t DcsrMatrix::memory_bytes() const {
  return row_ids_.capacity() * sizeof(Index) + row_ptr_.capacity() * sizeof(std::uint64_t) +
         col_.capacity() * sizeof(Index) + val_.capacity() * sizeof(Value);
}

}  // namespace obscorr::gbl
