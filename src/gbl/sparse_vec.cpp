#include "gbl/sparse_vec.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gbl/kernels.hpp"

namespace obscorr::gbl {

SparseVec::SparseVec(std::vector<Index> indices, std::vector<Value> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  OBSCORR_REQUIRE(indices_.size() == values_.size(),
                  "SparseVec: index/value arrays must have equal length");
  OBSCORR_REQUIRE(std::adjacent_find(indices_.begin(), indices_.end(),
                                     [](Index a, Index b) { return a >= b; }) == indices_.end(),
                  "SparseVec: indices must be strictly increasing");
}

Value SparseVec::at(Index i) const {
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), i);
  if (it == indices_.end() || *it != i) return 0.0;
  return values_[static_cast<std::size_t>(it - indices_.begin())];
}

Value SparseVec::reduce_sum() const { return kernels::sum_span(values_); }

Value SparseVec::reduce_max() const { return kernels::max_span(values_); }

std::size_t SparseVec::count_in_range(Value lo, Value hi) const {
  return kernels::count_in_range_span(values_, lo, hi);
}

bool SparseVec::all_positive() const {
  return std::all_of(values_.begin(), values_.end(), [](Value v) { return v > 0.0; });
}

}  // namespace obscorr::gbl
