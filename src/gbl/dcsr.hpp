#pragma once
/// \file dcsr.hpp
/// Doubly-compressed sparse row (DCSR) hypersparse matrix.
///
/// Traffic matrices live in a 2^32 x 2^32 index space but a 2^30-packet
/// snapshot touches well under 2^21 rows, so a conventional CSR row-pointer
/// array (2^32+1 entries) is ruinous. DCSR stores only the non-empty rows:
///
///   row_ids  — sorted ids of non-empty rows            (nrows entries)
///   row_ptr  — offsets into col/val per stored row      (nrows+1 entries)
///   col, val — column ids and values, row-major sorted  (nnz entries)
///
/// This is the layout SuiteSparse:GraphBLAS selects for hypersparse
/// matrices (Davis 2019, ref [40]) and the representation behind the
/// paper's traffic-matrix pipeline.

#include <functional>
#include <span>
#include <vector>

#include "common/pool_alloc.hpp"
#include "common/thread_pool.hpp"
#include "gbl/sparse_vec.hpp"
#include "gbl/types.hpp"

namespace obscorr::gbl {

/// Immutable hypersparse matrix in DCSR form.
class DcsrMatrix {
 public:
  /// The empty matrix (no stored rows).
  DcsrMatrix() { row_ptr_.push_back(0); }

  /// Build from tuples that are already row-major sorted with unique
  /// cells (the post-condition of `sort_and_combine`).
  static DcsrMatrix from_sorted_tuples(std::span<const Tuple> tuples);

  /// Build from arbitrary tuples: sorts and combines duplicates first.
  static DcsrMatrix from_tuples(std::vector<Tuple> tuples);
  static DcsrMatrix from_tuples(std::vector<Tuple> tuples, ThreadPool& pool);

  /// Build from packed `(row << 32) | col` keys that are already sorted;
  /// duplicate keys are allowed and fold into their multiplicity, so a
  /// sorted packet block becomes its traffic matrix in one pass with no
  /// tuple materialization. This is the ingest fast path.
  static DcsrMatrix from_sorted_packed_keys(std::span<const std::uint64_t> keys);

  /// Number of stored entries.
  std::size_t nnz() const { return col_.size(); }

  /// Number of non-empty rows (unique sources for an ext->int matrix).
  std::size_t nonempty_rows() const { return row_ids_.size(); }

  /// Number of non-empty columns (unique destinations). O(nnz).
  std::size_t nonempty_cols() const;

  /// Value at (row, col); 0 when the cell is not stored.
  Value at(Index row, Index col) const;

  /// Sum of all values: the valid-packet count `1ᵀ A 1` (Table II).
  Value reduce_sum() const;

  /// Maximum stored value: max link packets `max(A)` (Table II).
  Value reduce_max() const;

  /// Row reduction `A·1`: packets per source (Table II).
  SparseVec reduce_rows() const;

  /// Parallel row reduction over `pool`. Each row is summed in index
  /// order whatever the chunking, so the result is bit-identical to the
  /// serial reduction at every thread count.
  SparseVec reduce_rows(ThreadPool& pool) const;

  /// Row reduction of the pattern `|A|₀·1`: fan-out per source.
  SparseVec reduce_rows_pattern() const;

  /// Column reduction `1ᵀ·A`: packets per destination.
  SparseVec reduce_cols() const;

  /// Column reduction of the pattern `1ᵀ·|A|₀`: fan-in per destination.
  SparseVec reduce_cols_pattern() const;

  /// Zero-norm `|A|₀`: every stored value replaced by 1.
  DcsrMatrix pattern() const;

  /// Transpose `Aᵀ` (swaps the traffic-matrix quadrants).
  DcsrMatrix transpose() const;

  /// Element-wise sum `A ⊕ B` over the union of stored cells. Streams
  /// the CSR arrays of both operands into a preallocated output; no
  /// intermediate tuples.
  static DcsrMatrix ewise_add(const DcsrMatrix& a, const DcsrMatrix& b);

  /// Parallel `A ⊕ B`: the merged row-id list is partitioned over `pool`
  /// (count pass, exclusive scan, fill pass). Per-row merges are
  /// independent, so the result is bit-identical to the serial kernel at
  /// every thread count.
  static DcsrMatrix ewise_add(const DcsrMatrix& a, const DcsrMatrix& b, ThreadPool& pool);

  /// Element-wise product `A ⊗ B` over the *intersection* of stored
  /// cells — the GraphBLAS masking/correlation primitive.
  static DcsrMatrix ewise_mult(const DcsrMatrix& a, const DcsrMatrix& b);

  /// Sparse matrix-matrix product `A ·(+,×) B` (row-major Gustavson with
  /// a sort-based per-row accumulator).
  /// With patterns this counts 2-step paths, e.g. `Aᵀ·A` is the
  /// destination co-occurrence matrix of a traffic matrix.
  static DcsrMatrix mxm(const DcsrMatrix& a, const DcsrMatrix& b);

  /// Sub-matrix of the rows whose id is in [row_begin, row_end).
  DcsrMatrix extract_rows(Index row_begin, Index row_end) const;

  /// Keep only entries whose (row, col) satisfies `keep`; used for
  /// quadrant extraction (Fig. 1).
  DcsrMatrix select(const std::function<bool(Index, Index)>& keep) const;

  /// Visit every stored entry in row-major order.
  void for_each(const std::function<void(Index, Index, Value)>& visit) const;

  /// Export as sorted tuples (inverse of `from_sorted_tuples`).
  std::vector<Tuple> to_tuples() const;

  std::span<const Index> row_ids() const { return row_ids_; }
  std::span<const std::uint64_t> row_ptr() const { return row_ptr_; }
  std::span<const Index> col() const { return col_; }
  std::span<const Value> val() const { return val_; }

  /// Approximate heap footprint in bytes, for the memory-scaling bench.
  std::size_t memory_bytes() const;

  friend bool operator==(const DcsrMatrix&, const DcsrMatrix&) = default;

 private:
  // Pool-backed storage: snapshot matrices are built and torn down once
  // per window, so their large col/val arrays recycle through the
  // BufferPool instead of re-faulting fresh pages each time. The element
  // sequences (and so operator==, spans, serialization) are unchanged.
  mem::PoolVec<Index> row_ids_;
  mem::PoolVec<std::uint64_t> row_ptr_;
  mem::PoolVec<Index> col_;
  mem::PoolVec<Value> val_;
};

}  // namespace obscorr::gbl
