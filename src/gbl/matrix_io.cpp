#include "gbl/matrix_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace obscorr::gbl {

namespace {

constexpr char kMagic[8] = {'O', 'B', 'S', 'C', 'G', 'B', 'L', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void write_array(std::ostream& os, std::span<const T> values) {
  os.write(reinterpret_cast<const char*>(values.data()),
           static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  OBSCORR_REQUIRE(is.good(), "read_matrix: truncated stream");
  return value;
}

template <typename T>
std::vector<T> read_array(std::istream& is, std::size_t n) {
  std::vector<T> values(n);
  is.read(reinterpret_cast<char*>(values.data()), static_cast<std::streamsize>(n * sizeof(T)));
  OBSCORR_REQUIRE(is.good() || (is.eof() && is.gcount() == static_cast<std::streamsize>(n * sizeof(T))),
                  "read_matrix: truncated stream");
  return values;
}

}  // namespace

void write_matrix(std::ostream& os, const DcsrMatrix& m) {
  os.write(kMagic, sizeof kMagic);
  write_pod<std::uint64_t>(os, m.nonempty_rows());
  write_pod<std::uint64_t>(os, m.nnz());
  write_array(os, m.row_ids());
  write_array(os, m.row_ptr());
  write_array(os, m.col());
  write_array(os, m.val());
  OBSCORR_REQUIRE(os.good(), "write_matrix: stream failure");
}

DcsrMatrix read_matrix(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof magic);
  OBSCORR_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                  "read_matrix: bad magic");
  const auto rows = read_pod<std::uint64_t>(is);
  const auto nnz = read_pod<std::uint64_t>(is);
  OBSCORR_REQUIRE(rows <= nnz, "read_matrix: more rows than entries");
  // Reject absurd counts before allocating (hostile or corrupted
  // headers must fail cleanly, not with bad_alloc).
  OBSCORR_REQUIRE(nnz <= (1ULL << 40), "read_matrix: implausible entry count");
  // When the stream is seekable, bound the declared counts by the bytes
  // actually remaining: a hostile header must not trigger a huge
  // allocation that the stream could never fill. The arithmetic cannot
  // overflow under the 2^40 cap above.
  const std::streampos here = is.tellg();
  if (here != std::streampos(-1)) {
    is.seekg(0, std::ios::end);
    const std::streampos end = is.tellg();
    is.seekg(here);
    OBSCORR_REQUIRE(is.good() && end >= here, "read_matrix: unseekable stream state");
    const auto remaining = static_cast<std::uint64_t>(end - here);
    const std::uint64_t required = rows * sizeof(Index) + (rows + 1) * sizeof(std::uint64_t) +
                                   nnz * (sizeof(Index) + sizeof(Value));
    OBSCORR_REQUIRE(required <= remaining,
                    "read_matrix: declared counts exceed the remaining stream size");
  }
  const auto row_ids = read_array<Index>(is, rows);
  const auto row_ptr = read_array<std::uint64_t>(is, rows + 1);
  const auto col = read_array<Index>(is, nnz);
  const auto val = read_array<Value>(is, nnz);
  OBSCORR_REQUIRE(row_ptr.front() == 0 && row_ptr.back() == nnz,
                  "read_matrix: inconsistent row offsets");

  // Rebuild through the validated tuple path so every structural
  // invariant (sortedness, uniqueness) is re-checked on load.
  std::vector<Tuple> tuples;
  tuples.reserve(nnz);
  for (std::size_t r = 0; r < rows; ++r) {
    OBSCORR_REQUIRE(row_ptr[r] <= row_ptr[r + 1], "read_matrix: descending offsets");
    OBSCORR_REQUIRE(row_ptr[r + 1] <= nnz, "read_matrix: row offset exceeds the entry count");
    for (std::uint64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      tuples.push_back({row_ids[r], col[k], val[k]});
    }
  }
  return DcsrMatrix::from_sorted_tuples(tuples);
}

void save_matrix(const std::string& path, const DcsrMatrix& m) {
  std::ofstream os(path, std::ios::binary);
  OBSCORR_REQUIRE(os.is_open(), "save_matrix: cannot open " + path);
  write_matrix(os, m);
}

DcsrMatrix load_matrix(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  OBSCORR_REQUIRE(is.is_open(), "load_matrix: cannot open " + path);
  return read_matrix(is);
}

}  // namespace obscorr::gbl
