#pragma once
/// \file types.hpp
/// Fundamental types of the GraphBLAS-lite (gbl) hypersparse matrix
/// library. Matrices live in the full 2^32 x 2^32 IPv4 x IPv4 index space
/// (uint32 row/column ids, as in the paper), values are double (GraphBLAS
/// FP64; packet counts are exactly representable up to 2^53).

#include <compare>
#include <cstdint>

namespace obscorr::gbl {

/// Row/column index: an IPv4 address value in host order.
using Index = std::uint32_t;

/// Matrix value: a (possibly accumulated) packet count.
using Value = double;

/// One (row, col, value) entry, the unit of matrix construction.
/// A packet from source s to destination d contributes {s, d, 1}.
struct Tuple {
  Index row = 0;
  Index col = 0;
  Value val = 0.0;

  friend constexpr bool operator==(const Tuple&, const Tuple&) = default;
};

/// Row-major ordering used by every sorted-tuple invariant in gbl.
constexpr bool tuple_less(const Tuple& a, const Tuple& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

/// True when a and b address the same matrix cell.
constexpr bool same_cell(const Tuple& a, const Tuple& b) {
  return a.row == b.row && a.col == b.col;
}

}  // namespace obscorr::gbl
