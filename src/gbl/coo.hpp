#pragma once
/// \file coo.hpp
/// COO tuple assembly: the streaming-insert front end of the hypersparse
/// pipeline. Packets append (src, dst, 1) tuples; `sort_and_combine`
/// produces the canonical sorted, duplicate-accumulated tuple list that
/// DCSR construction consumes. Sorting is the dominant cost at telescope
/// scale, so it is parallelized over a thread pool with a deterministic
/// merge tree (results are independent of thread count).

#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "gbl/types.hpp"

namespace obscorr::gbl {

/// Sort tuples row-major and sum values of duplicate (row, col) cells,
/// in place; returns the combined tuples. Uses `pool` for the sort.
std::vector<Tuple> sort_and_combine(std::vector<Tuple> tuples, ThreadPool& pool);

/// Single-threaded overload (still deterministic, used by small paths).
std::vector<Tuple> sort_and_combine(std::vector<Tuple> tuples);

/// Sort packed `(row << 32) | col` keys ascending, in place, using the
/// pool's deterministic chunk-sort + merge tree. The batched ingest path
/// sorts these 8-byte keys instead of 16-byte tuples: half the bytes
/// moved per merge and a branch-free comparison. Radix scratch comes
/// from the calling thread's recycled arena (`mem::scratch_arena()`),
/// never from malloc. Accepts any contiguous key buffer (std::vector,
/// mem::PoolVec, raw span).
void sort_packed_keys(std::span<std::uint64_t> keys, ThreadPool& pool);

/// Pack a (row, col) cell into the ingest key order. Sorting packed keys
/// equals sorting tuples with `tuple_less`.
constexpr std::uint64_t pack_key(Index row, Index col) {
  return (static_cast<std::uint64_t>(row) << 32) | col;
}

/// Growable tuple buffer with O(1) amortized append.
class CooBuilder {
 public:
  CooBuilder() = default;

  /// Reserve capacity for n tuples.
  void reserve(std::size_t n) { tuples_.reserve(n); }

  /// Append one entry; duplicates are allowed and later accumulated.
  void add(Index row, Index col, Value val) { tuples_.push_back({row, col, val}); }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  std::span<const Tuple> tuples() const { return tuples_; }

  /// Consume the buffer: sorted, duplicate-combined tuples.
  std::vector<Tuple> finish(ThreadPool& pool) &&;
  std::vector<Tuple> finish() &&;

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace obscorr::gbl
