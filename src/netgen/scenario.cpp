#include "netgen/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obscorr::netgen {

int Scenario::month_index(YearMonth ym) const {
  OBSCORR_REQUIRE(!months.empty(), "scenario has no months");
  const int idx = ym.months_since(months.front().month);
  OBSCORR_REQUIRE(idx >= 0 && static_cast<std::size_t>(idx) < months.size(),
                  "month outside the study window: " + ym.to_string());
  OBSCORR_INVARIANT(months[static_cast<std::size_t>(idx)].month == ym);
  return idx;
}

double Scenario::scaled_duration_sec(const CaidaSnapshotSpec& snap) const {
  const double paper_rate = std::exp2(30.0) / snap.paper_duration_sec;
  return static_cast<double>(nv()) / paper_rate;
}

Scenario Scenario::paper(int log2_nv, std::uint64_t seed) {
  OBSCORR_REQUIRE(log2_nv >= 10 && log2_nv <= 34, "log2_nv must be in [10,34]");
  Scenario s;
  s.population.log2_nv = static_cast<std::uint64_t>(log2_nv);
  s.population.seed = seed;
  // Population scales with sqrt(N_V), matching the paper's observation
  // that unique source counts are ~ proportional to sqrt(N_V): 2^17
  // candidates at the default 2^22 window.
  s.population.population = std::size_t{1} << (log2_nv / 2 + 6);
  s.visibility.log2_nv = log2_nv;

  // Darkspace size tracks the window: the paper's /8 is ~1/256 of the
  // Internet observed with 2^30-packet windows; scaled windows monitor a
  // proportionally smaller prefix so per-address packet density (and the
  // CryptoPAN working set) stays realistic.
  const int dark_len = std::clamp(32 - (log2_nv - 6), 8, 24);
  s.traffic.darkspace = Ipv4Prefix(Ipv4(77, 0, 0, 0), dark_len);

  // Table I GreyNoise months. Coverage jumps: the 2020-03 and 2021-04
  // "configuration changes" (and the elevated 2020-12 / 2020-11 months)
  // are modelled as ephemeral-source surges; baseline months carry a
  // modest ephemeral load so GreyNoise totals sit ~2-4x above the
  // telescope's per-window source counts, as in the paper.
  struct MonthInit {
    int year;
    int month;
    double coverage;
    double ephemeral;
  };
  // Ephemeral factors derived from the paper's Table I source counts:
  // factor_m ~ (paper_sources_m / paper_CAIDA_sources) x
  //            (sim_CAIDA_sources / population) - detected-population share,
  // with paper_CAIDA ~ 0.69M and sim CAIDA ~ 22 sqrt(N_V), so each
  // simulated month reproduces its Table I count *relative to the
  // telescope's per-window source count* (the scale-free comparison).
  const MonthInit kMonths[] = {
      {2020, 2, 1.0, 1.32},  {2020, 3, 1.0, 6.90},  {2020, 4, 1.0, 0.47},
      {2020, 5, 1.0, 0.86},  {2020, 6, 1.0, 0.49},  {2020, 7, 1.0, 0.66},
      {2020, 8, 1.0, 0.62},  {2020, 9, 1.0, 0.56},  {2020, 10, 1.0, 0.94},
      {2020, 11, 1.0, 1.37}, {2020, 12, 1.0, 3.77}, {2021, 1, 1.0, 1.39},
      {2021, 2, 1.0, 1.23},  {2021, 3, 1.0, 1.60},  {2021, 4, 1.0, 5.72},
  };
  for (const MonthInit& m : kMonths) {
    s.months.push_back({YearMonth(m.year, m.month), m.coverage, m.ephemeral});
  }

  // Table I CAIDA snapshots: Wednesdays at noon or midnight, ~6-week
  // spacing, with the published 2^30-packet window durations.
  s.snapshots = {
      {YearMonth(2020, 6), "2020-06-17-12:00:00", 1594.0, 1},
      {YearMonth(2020, 7), "2020-07-29-00:00:00", 1312.0, 2},
      {YearMonth(2020, 9), "2020-09-16-12:00:00", 997.0, 3},
      {YearMonth(2020, 10), "2020-10-28-00:00:00", 1068.0, 4},
      {YearMonth(2020, 12), "2020-12-16-12:00:00", 1204.0, 5},
  };
  return s;
}

}  // namespace obscorr::netgen
