#include "netgen/visibility.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace obscorr::netgen {

double VisibilityModel::probability(double degree) const {
  OBSCORR_REQUIRE(degree >= 0.0, "visibility: degree must be non-negative");
  switch (kind) {
    case VisibilityKind::kEmpiricalLog: {
      const double half_log_nv = static_cast<double>(log2_nv) / 2.0;
      if (degree <= 1.0) return std::min(1.0, 0.5 / half_log_nv);  // sub-1-packet floor
      return std::clamp(std::log2(degree) / half_log_nv, 0.0, 1.0);
    }
    case VisibilityKind::kCoverage:
      OBSCORR_REQUIRE(coverage_half > 0.0, "visibility: coverage_half must be positive");
      return 1.0 - std::exp(-degree / coverage_half);
  }
  OBSCORR_INVARIANT(false);
}

}  // namespace obscorr::netgen
