#include "netgen/traffic.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/simd.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::netgen {

TrafficGenerator::TrafficGenerator(const Population& population, TrafficConfig config)
    : population_(population), config_(config) {
  OBSCORR_REQUIRE(config.legit_fraction >= 0.0 && config.legit_fraction < 1.0,
                  "legit_fraction must be in [0,1)");
  OBSCORR_REQUIRE(config.uniform_weight >= 0.0 && config.sequential_weight >= 0.0 &&
                      config.subnet_weight >= 0.0,
                  "strategy weights must be non-negative");
  OBSCORR_REQUIRE(config.uniform_weight + config.sequential_weight + config.subnet_weight > 0.0,
                  "at least one strategy weight must be positive");
}

ScanStrategy TrafficGenerator::strategy_of(std::size_t i) const {
  OBSCORR_REQUIRE(i < population_.size(), "strategy_of: source index out of range");
  const double total =
      config_.uniform_weight + config_.sequential_weight + config_.subnet_weight;
  // Deterministic per (seed, source) draw, independent of traffic order.
  Rng rng(population_.config().seed, std::uint64_t{0x800000000} + i);
  const double u = rng.uniform() * total;
  if (u < config_.uniform_weight) return ScanStrategy::kUniform;
  if (u < config_.uniform_weight + config_.sequential_weight) return ScanStrategy::kSequential;
  return ScanStrategy::kSubnet;
}

std::uint64_t TrafficGenerator::shard_count(std::uint64_t valid_count) {
  if (valid_count == 0) return 1;
  return (valid_count + kShardValidPackets - 1) / kShardValidPackets;
}

std::uint64_t TrafficGenerator::shard_valid_packets(std::uint64_t valid_count,
                                                    std::uint64_t shard) {
  const std::uint64_t shards = shard_count(valid_count);
  OBSCORR_REQUIRE(shard < shards, "shard_valid_packets: shard index out of range");
  if (shard + 1 < shards) return kShardValidPackets;
  return valid_count - shard * kShardValidPackets;
}

WindowPlan TrafficGenerator::plan_window(int month) const {
  const obs::Span span("netgen.plan_window", [&] { return std::to_string(month); });
  if (obs::counters_enabled()) {
    static obs::Counter& windows = obs::counter("netgen.windows_planned");
    windows.add(1);
  }
  std::vector<std::uint32_t> active = population_.active_sources(month);
  OBSCORR_REQUIRE(!active.empty(), "stream_window: no active sources this month");
  std::vector<double> weights(active.size());
  std::vector<std::uint32_t> src_ips(active.size());
  // Strategies depend only on (population seed, source index), so every
  // shard of every window would re-derive the same values on its first
  // valid packet per source; deriving them once here takes them (and
  // their per-call RNG construction) out of the per-shard hot loop.
  std::vector<ScanStrategy> strategies(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    const SourceRecord& rec = population_.source(active[i]);
    weights[i] = rec.weight;
    src_ips[i] = rec.ip.value();
    strategies[i] = strategy_of(active[i]);
  }
  return WindowPlan(month, std::move(active), std::move(src_ips), std::move(strategies),
                    AliasTable(weights));
}

std::uint64_t TrafficGenerator::stream_window(
    int month, std::uint64_t valid_count, std::uint64_t salt,
    const std::function<void(const Packet&)>& sink) const {
  return stream_window_batched(month, valid_count, salt, [&](std::span<const Packet> batch) {
    for (const Packet& p : batch) sink(p);
  });
}

std::uint64_t TrafficGenerator::stream_window_batched(int month, std::uint64_t valid_count,
                                                      std::uint64_t salt, const BatchSink& sink,
                                                      std::size_t batch_packets) const {
  // One whole-window stream == shard 0's stream: the unsharded sequence
  // is by construction the single-shard special case.
  const WindowPlan plan = plan_window(month);
  ShardScratch scratch;
  return stream_shard_batched(plan, valid_count, salt, /*shard=*/0, scratch, sink, batch_packets);
}

std::uint64_t TrafficGenerator::stream_shard_batched(const WindowPlan& plan,
                                                     std::uint64_t shard_valid_count,
                                                     std::uint64_t salt, std::uint64_t shard,
                                                     ShardScratch& scratch, const BatchSink& sink,
                                                     std::size_t batch_packets) const {
  OBSCORR_REQUIRE(batch_packets > 0, "stream_shard_batched: batch must be positive");
  OBSCORR_REQUIRE(!plan.active.empty(), "stream_shard_batched: plan has no active sources");
  ShardStats st;
  if (simd::use_avx2()) {
    if (obs::counters_enabled()) {
      static obs::Counter& ingest = obs::counter("simd.dispatch_ingest");
      ingest.add(1);
    }
    st = stream_shard_avx2(plan, shard_valid_count, salt, shard, scratch, sink, batch_packets);
  } else {
    st = stream_shard_scalar(plan, shard_valid_count, salt, shard, scratch, sink, batch_packets);
  }
  if (obs::counters_enabled()) {
    static obs::Counter& packets = obs::counter("netgen.packets_emitted");
    static obs::Counter& valid_packets = obs::counter("netgen.valid_packets");
    static obs::Counter& shards = obs::counter("netgen.shards_generated");
    static obs::Counter& streams = obs::counter("netgen.rng_streams");
    packets.add(st.emitted);
    valid_packets.add(st.valid);
    shards.add(1);
    // Two fixed streams (source selection, destinations) plus one lazy
    // init stream per fresh per-source scan state.
    streams.add(2 + st.fresh_source_states);
  }
  return st.emitted;
}

TrafficGenerator::ShardStats TrafficGenerator::stream_shard_scalar(
    const WindowPlan& plan, std::uint64_t shard_valid_count, std::uint64_t salt,
    std::uint64_t shard, ShardScratch& scratch, const BatchSink& sink,
    std::size_t batch_packets) const {
  const std::vector<std::uint32_t>& active = plan.active;
  const std::uint64_t month = static_cast<std::uint64_t>(plan.month);
  const std::uint64_t stream_offset = shard * kShardStreamGamma;

  // New epoch: every scan-state entry from previous shards goes stale at
  // once (stamps are always < the incremented epoch) without touching the
  // population-sized table; entries re-initialize lazily from this
  // shard's init stream.
  scratch.stamps_.resize(active.size());
  scratch.states_.resize(active.size());
  ++scratch.epoch_;
  const std::uint64_t epoch = scratch.epoch_;

  // Two independent streams: source selection (alias + validity) and
  // destination choice. Splitting them makes the source-packet sequence
  // — the quantity every correlation analysis reduces to — invariant
  // under the scan-strategy mixture, which only consumes dst_rng.
  Rng rng(population_.config().seed,
          std::uint64_t{0x300000000} + month * std::uint64_t{0x10001} + salt + stream_offset);
  Rng dst_rng(population_.config().seed,
              std::uint64_t{0xA00000000} + month * std::uint64_t{0x10001} + salt + stream_offset);

  const std::uint64_t dark_size = config_.darkspace.size();
  // Subnet blocks: 256 addresses, or the whole darkspace when smaller.
  const std::uint64_t block = std::min<std::uint64_t>(256, dark_size);
  // Packets accumulate in a fixed-size buffer flushed to the sink when
  // full; generation order (and so the emitted sequence) is unchanged.
  mem::PoolVec<Packet>& buffer = scratch.buffer_;
  buffer.clear();
  buffer.reserve(batch_packets);
  ShardStats st;
  std::uint64_t& valid = st.valid;
  while (valid < shard_valid_count) {
    Packet p;
    if (rng.bernoulli(config_.legit_fraction)) {
      // Legitimate noise: a host inside the legit prefix touching the
      // darkspace (e.g. a mistyped address) — discarded by the filter.
      p.src = config_.legit_prefix.at(rng.uniform_u64(config_.legit_prefix.size()));
      p.dst = config_.darkspace.at(dst_rng.uniform_u64(dark_size));
    } else {
      const std::size_t pick = plan.alias.sample(rng);
      const std::size_t source_index = active[pick];
      p.src = population_.source(source_index).ip;
      if (scratch.stamps_[pick] != epoch) {
        Rng init(population_.config().seed, std::uint64_t{0x900000000} + source_index * 31 +
                                                salt + stream_offset);
        ShardScratch::ScanState& s = scratch.states_[pick];
        s.cursor = init.uniform_u64(dark_size);
        s.subnet_base = (init.uniform_u64(dark_size) / block) * block;
        scratch.stamps_[pick] = epoch;
        ++st.fresh_source_states;
      }
      // The strategy lives in the shared read-only plan (same value the
      // old per-state copy held), so uniform sources — the majority —
      // never touch the cursor array at all.
      switch (plan.strategies[pick]) {
        case ScanStrategy::kUniform:
          p.dst = config_.darkspace.at(dst_rng.uniform_u64(dark_size));
          break;
        case ScanStrategy::kSequential: {
          ShardScratch::ScanState& s = scratch.states_[pick];
          p.dst = config_.darkspace.at(s.cursor);
          s.cursor = s.cursor + 1 == dark_size ? 0 : s.cursor + 1;
          break;
        }
        case ScanStrategy::kSubnet:
          p.dst = config_.darkspace.at(scratch.states_[pick].subnet_base +
                                       dst_rng.uniform_u64(block));
          break;
      }
      ++valid;
    }
    buffer.push_back(p);
    ++st.emitted;
    if (buffer.size() == batch_packets) {
      sink(buffer);
      buffer.clear();
    }
  }
  if (!buffer.empty()) sink(buffer);
  return st;
}

}  // namespace obscorr::netgen
