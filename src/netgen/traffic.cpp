#include "netgen/traffic.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace obscorr::netgen {

TrafficGenerator::TrafficGenerator(const Population& population, TrafficConfig config)
    : population_(population), config_(config) {
  OBSCORR_REQUIRE(config.legit_fraction >= 0.0 && config.legit_fraction < 1.0,
                  "legit_fraction must be in [0,1)");
  OBSCORR_REQUIRE(config.uniform_weight >= 0.0 && config.sequential_weight >= 0.0 &&
                      config.subnet_weight >= 0.0,
                  "strategy weights must be non-negative");
  OBSCORR_REQUIRE(config.uniform_weight + config.sequential_weight + config.subnet_weight > 0.0,
                  "at least one strategy weight must be positive");
}

ScanStrategy TrafficGenerator::strategy_of(std::size_t i) const {
  OBSCORR_REQUIRE(i < population_.size(), "strategy_of: source index out of range");
  const double total =
      config_.uniform_weight + config_.sequential_weight + config_.subnet_weight;
  // Deterministic per (seed, source) draw, independent of traffic order.
  Rng rng(population_.config().seed, std::uint64_t{0x800000000} + i);
  const double u = rng.uniform() * total;
  if (u < config_.uniform_weight) return ScanStrategy::kUniform;
  if (u < config_.uniform_weight + config_.sequential_weight) return ScanStrategy::kSequential;
  return ScanStrategy::kSubnet;
}

std::uint64_t TrafficGenerator::stream_window(
    int month, std::uint64_t valid_count, std::uint64_t salt,
    const std::function<void(const Packet&)>& sink) const {
  return stream_window_batched(month, valid_count, salt, [&](std::span<const Packet> batch) {
    for (const Packet& p : batch) sink(p);
  });
}

std::uint64_t TrafficGenerator::stream_window_batched(int month, std::uint64_t valid_count,
                                                      std::uint64_t salt, const BatchSink& sink,
                                                      std::size_t batch_packets) const {
  OBSCORR_REQUIRE(batch_packets > 0, "stream_window_batched: batch must be positive");
  const std::vector<std::uint32_t> active = population_.active_sources(month);
  OBSCORR_REQUIRE(!active.empty(), "stream_window: no active sources this month");

  std::vector<double> weights(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    weights[i] = population_.source(active[i]).weight;
  }
  const AliasTable alias(weights);

  // Per-source scan state for the window: strategy, sweep cursor or
  // subnet base, derived lazily for sources actually sampled.
  struct ScanState {
    ScanStrategy strategy = ScanStrategy::kUniform;
    std::uint64_t cursor = 0;      // sequential: next offset
    std::uint64_t subnet_base = 0; // subnet: offset of the /24-equivalent block
    bool initialized = false;
  };
  std::vector<ScanState> state(active.size());

  // Two independent streams: source selection (alias + validity) and
  // destination choice. Splitting them makes the source-packet sequence
  // — the quantity every correlation analysis reduces to — invariant
  // under the scan-strategy mixture, which only consumes dst_rng.
  Rng rng(population_.config().seed,
          std::uint64_t{0x300000000} + static_cast<std::uint64_t>(month) * std::uint64_t{0x10001} +
              salt);
  Rng dst_rng(population_.config().seed,
              std::uint64_t{0xA00000000} +
                  static_cast<std::uint64_t>(month) * std::uint64_t{0x10001} + salt);

  const std::uint64_t dark_size = config_.darkspace.size();
  // Subnet blocks: 256 addresses, or the whole darkspace when smaller.
  const std::uint64_t block = std::min<std::uint64_t>(256, dark_size);
  // Packets accumulate in a fixed-size buffer flushed to the sink when
  // full; generation order (and so the emitted sequence) is unchanged.
  std::vector<Packet> buffer;
  buffer.reserve(batch_packets);
  std::uint64_t emitted = 0;
  std::uint64_t valid = 0;
  while (valid < valid_count) {
    Packet p;
    if (rng.bernoulli(config_.legit_fraction)) {
      // Legitimate noise: a host inside the legit prefix touching the
      // darkspace (e.g. a mistyped address) — discarded by the filter.
      p.src = config_.legit_prefix.at(rng.uniform_u64(config_.legit_prefix.size()));
      p.dst = config_.darkspace.at(dst_rng.uniform_u64(dark_size));
    } else {
      const std::size_t pick = alias.sample(rng);
      const std::size_t source_index = active[pick];
      p.src = population_.source(source_index).ip;
      ScanState& s = state[pick];
      if (!s.initialized) {
        s.strategy = strategy_of(source_index);
        Rng init(population_.config().seed,
                 std::uint64_t{0x900000000} + source_index * 31 + salt);
        s.cursor = init.uniform_u64(dark_size);
        s.subnet_base = (init.uniform_u64(dark_size) / block) * block;
        s.initialized = true;
      }
      switch (s.strategy) {
        case ScanStrategy::kUniform:
          p.dst = config_.darkspace.at(dst_rng.uniform_u64(dark_size));
          break;
        case ScanStrategy::kSequential:
          p.dst = config_.darkspace.at(s.cursor);
          s.cursor = (s.cursor + 1) % dark_size;
          break;
        case ScanStrategy::kSubnet:
          p.dst = config_.darkspace.at(s.subnet_base + dst_rng.uniform_u64(block));
          break;
      }
      ++valid;
    }
    buffer.push_back(p);
    ++emitted;
    if (buffer.size() == batch_packets) {
      sink(buffer);
      buffer.clear();
    }
  }
  if (!buffer.empty()) sink(buffer);
  return emitted;
}

}  // namespace obscorr::netgen
