#include "netgen/population.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace obscorr::netgen {

double persistence_shape(double expected_degree, const PopulationConfig& config) {
  // Work in x = log2(d) / log2(sqrt(N_V)), the brightness coordinate the
  // paper's thresholds are expressed in. The churn dip sits at the
  // d ~ 10^3 equivalent: x_mid = log2(10^3)/15 ~ 0.66 at N_V = 2^30.
  const double half_log_nv = static_cast<double>(config.log2_nv) / 2.0;
  const double x = std::log2(std::max(expected_degree, 1.0)) / half_log_nv;
  // The dip is parameterized on the *full-population* expected degree;
  // observed window degrees are conditioned on activity (~3x brighter),
  // so the centre sits ~0.15 below the paper's observed x ~ 0.66.
  constexpr double kDip = 0.50;
  constexpr double kWidth = 0.33;
  const double u = (x - kDip) / kWidth;
  const double dip = std::exp(-u * u);  // 1 at the dip, ->0 at the extremes
  return config.persist_shape_stable +
         (config.persist_shape_churny - config.persist_shape_stable) * dip;
}

Population::Population(const PopulationConfig& config) : config_(config) {
  OBSCORR_REQUIRE(config.population > 0, "population must be non-empty");
  OBSCORR_REQUIRE(config.zm_alpha > 0.0, "zm_alpha must be positive");
  OBSCORR_REQUIRE(config.zm_delta >= 0.0, "zm_delta must be non-negative");
  OBSCORR_REQUIRE(config.rebirth_prob >= 0.0 && config.rebirth_prob < 1.0,
                  "rebirth_prob must be in [0,1)");

  OBSCORR_REQUIRE(config.hybrid_share >= 0.0 && config.hybrid_share < 1.0,
                  "hybrid_share must be in [0,1)");
  OBSCORR_REQUIRE(config.hybrid_share == 0.0 || config.hybrid_sources > 0,
                  "hybrid_share > 0 requires hybrid_sources > 0");
  OBSCORR_REQUIRE(config.hybrid_sources < config.population,
                  "hybrid_sources must leave room for the background population");

  sources_.resize(config.population);

  // Rank weights first so total_weight_ is available for the
  // brightness-dependent persistence draw. With the hybrid extension the
  // first `hybrid_sources` ranks form an adversarial component whose own
  // Zipf-Mandelbrot law carries `hybrid_share` of the total weight; the
  // rest is the background law (Devlin et al. 2021 hybrid model).
  const std::size_t adversarial = config.hybrid_share > 0.0 ? config.hybrid_sources : 0;
  double adv_weight = 0.0;
  for (std::size_t r = 0; r < adversarial; ++r) {
    sources_[r].weight =
        std::pow(static_cast<double>(r + 1) + config.hybrid_delta, -config.hybrid_alpha);
    adv_weight += sources_[r].weight;
  }
  double bg_weight = 0.0;
  for (std::size_t r = adversarial; r < config.population; ++r) {
    sources_[r].weight =
        std::pow(static_cast<double>(r - adversarial + 1) + config.zm_delta, -config.zm_alpha);
    bg_weight += sources_[r].weight;
  }
  if (adversarial > 0) {
    // Normalize so the adversarial block carries exactly hybrid_share.
    const double adv_scale = config.hybrid_share / adv_weight;
    const double bg_scale = (1.0 - config.hybrid_share) / bg_weight;
    for (std::size_t r = 0; r < adversarial; ++r) sources_[r].weight *= adv_scale;
    for (std::size_t r = adversarial; r < config.population; ++r) sources_[r].weight *= bg_scale;
    total_weight_ = 1.0;
  } else {
    total_weight_ = bg_weight;
  }

  // Botnet-block layout: the dimmest `botnet_fraction` of sources are
  // grouped into /24 blocks of `botnet_block_size` members each.
  OBSCORR_REQUIRE(config.botnet_fraction >= 0.0 && config.botnet_fraction <= 1.0,
                  "botnet_fraction must be in [0,1]");
  OBSCORR_REQUIRE(config.botnet_block_size >= 2 && config.botnet_block_size <= 256,
                  "botnet_block_size must be in [2,256]");
  OBSCORR_REQUIRE(config.botnet_block_persist > 0.0 && config.botnet_block_persist < 1.0,
                  "botnet_block_persist must be in (0,1)");
  OBSCORR_REQUIRE(config.botnet_block_rebirth > 0.0 && config.botnet_block_rebirth <= 1.0,
                  "botnet_block_rebirth must be in (0,1]");
  const auto botnet_members =
      static_cast<std::size_t>(config.botnet_fraction * static_cast<double>(config.population));
  block_count_ = botnet_members / config.botnet_block_size;
  const std::size_t blocked = block_count_ * config.botnet_block_size;
  block_of_.assign(config.population, -1);
  for (std::size_t j = 0; j < blocked; ++j) {
    block_of_[config.population - blocked + j] = static_cast<int>(j / config.botnet_block_size);
  }

  // Unique IPs drawn outside 0.0.0.0/8 and the conventional telescope /8
  // (owned by the telescope config, but excluding one /8 here keeps the
  // population valid for any darkspace choice in [1,126]). Botnet block
  // members get contiguous addresses inside one /24.
  Rng ip_rng(config.seed, /*stream=*/0x1b);
  std::unordered_set<std::uint32_t> used;
  used.reserve(config.population * 2);
  const auto top_ok = [](std::uint32_t candidate) {
    const std::uint32_t top = candidate >> 24;
    return top != 0 && top != 10 && top != 77 && top != 127 && top < 224;
  };
  // Block bases first so members can claim contiguous runs. At this
  // point `used` holds only members of previously placed blocks, every
  // base is /24-aligned, and members stay inside their base's /24 — so a
  // candidate clashes exactly when some earlier block drew the *same*
  // base. One probe of the claimed bases replaces the member-by-member
  // scan (whose cost grew with the block size) and accepts/rejects the
  // identical candidate sequence, so every drawn IP is unchanged.
  std::vector<std::uint32_t> block_base(block_count_);
  std::unordered_set<std::uint32_t> claimed_bases;
  claimed_bases.reserve(block_count_ * 2);
  for (std::size_t b = 0; b < block_count_; ++b) {
    for (;;) {
      const std::uint32_t base = ip_rng.next_u32() & ~0xFFu;
      if (!top_ok(base)) continue;
      if (!claimed_bases.insert(base).second) continue;
      // Members still enter `used` so the singles draw below avoids them.
      for (std::size_t j = 0; j < config.botnet_block_size; ++j) {
        used.insert(base + static_cast<std::uint32_t>(j));
      }
      block_base[b] = base;
      break;
    }
  }
  for (std::size_t r = 0; r < config.population; ++r) {
    if (block_of_[r] >= 0) {
      const std::size_t offset = (r - (config.population - blocked)) % config.botnet_block_size;
      sources_[r].ip =
          Ipv4(block_base[static_cast<std::size_t>(block_of_[r])] + static_cast<std::uint32_t>(offset));
      continue;
    }
    for (;;) {
      const std::uint32_t candidate = ip_rng.next_u32();
      if (!top_ok(candidate)) continue;  // reserved/legit/darkspace
      if (used.insert(candidate).second) {
        sources_[r].ip = Ipv4(candidate);
        break;
      }
    }
  }

  const double nv = std::exp2(static_cast<double>(config.log2_nv));
  for (std::size_t r = 0; r < config.population; ++r) {
    const double expected = nv * sources_[r].weight / total_weight_;
    const double shape = persistence_shape(expected, config);
    Rng source_rng(config.seed, std::uint64_t{0x100000000} + r);
    sources_[r].persist = source_rng.beta_a1(shape);
    sources_[r].rebirth = config.rebirth_prob;
    active_weight_ += sources_[r].weight * stationary_activity(r);
  }
  OBSCORR_INVARIANT(active_weight_ > 0.0);

  sorted_ips_.reserve(sources_.size());
  for (const SourceRecord& s : sources_) sorted_ips_.push_back(s.ip.value());
  std::sort(sorted_ips_.begin(), sorted_ips_.end());
}

bool Population::owns_ip(Ipv4 ip) const {
  return std::binary_search(sorted_ips_.begin(), sorted_ips_.end(), ip.value());
}

double Population::expected_window_degree(std::size_t i) const {
  OBSCORR_REQUIRE(i < sources_.size(), "source index out of range");
  const double nv = std::exp2(static_cast<double>(config_.log2_nv));
  return nv * sources_[i].weight / total_weight_;
}

double Population::expected_active_degree(std::size_t i) const {
  OBSCORR_REQUIRE(i < sources_.size(), "source index out of range");
  const double nv = std::exp2(static_cast<double>(config_.log2_nv));
  return nv * sources_[i].weight / active_weight_;
}

double Population::stationary_activity(std::size_t i) const {
  OBSCORR_REQUIRE(i < sources_.size(), "source index out of range");
  const SourceRecord& s = sources_[i];
  return s.rebirth / (1.0 - s.persist + s.rebirth);
}

void Population::ensure_months(int month) const {
  // Callers hold activity_mutex_.
  OBSCORR_REQUIRE(month >= 0, "month index must be non-negative");
  while (activity_.size() <= static_cast<std::size_t>(month)) {
    const int m = static_cast<int>(activity_.size());

    // Block chains first: a botnet member is active only while its block
    // is (the whole subnet joins and leaves campaigns together).
    std::vector<std::uint8_t> blocks(block_count_);
    for (std::size_t b = 0; b < block_count_; ++b) {
      Rng rng(config_.seed, std::uint64_t{0xB00000000} +
                                static_cast<std::uint64_t>(m) * (block_count_ + 1) + b);
      if (m == 0) {
        const double pi = config_.botnet_block_rebirth /
                          (1.0 - config_.botnet_block_persist + config_.botnet_block_rebirth);
        blocks[b] = rng.bernoulli(pi) ? 1 : 0;
      } else {
        const bool was = block_activity_[static_cast<std::size_t>(m - 1)][b] != 0;
        blocks[b] =
            rng.bernoulli(was ? config_.botnet_block_persist : config_.botnet_block_rebirth) ? 1
                                                                                             : 0;
      }
    }

    std::vector<std::uint8_t> row(sources_.size());
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      // Per-(source, month) decision stream: reproducible regardless of
      // which months were evaluated before.
      Rng rng(config_.seed,
              std::uint64_t{0x200000000} + static_cast<std::uint64_t>(m) * sources_.size() + i);
      const SourceRecord& s = sources_[i];
      bool active;
      if (m == 0) {
        // Start at the chain's stationary distribution so the study
        // window sees an equilibrium Internet, not a cold start.
        active = rng.bernoulli(stationary_activity(i));
      } else {
        const bool was_active = activity_[static_cast<std::size_t>(m - 1)][i] != 0;
        active = rng.bernoulli(was_active ? s.persist : s.rebirth);
      }
      if (block_of_[i] >= 0 && blocks[static_cast<std::size_t>(block_of_[i])] == 0) {
        active = false;  // the block is dormant this month
      }
      row[i] = active ? 1 : 0;
    }
    activity_.push_back(std::move(row));
    block_activity_.push_back(std::move(blocks));
  }
}

int Population::block_of(std::size_t i) const {
  OBSCORR_REQUIRE(i < sources_.size(), "source index out of range");
  return block_of_[i];
}

bool Population::active(std::size_t i, int month) const {
  OBSCORR_REQUIRE(i < sources_.size(), "source index out of range");
  std::scoped_lock lock(activity_mutex_);
  ensure_months(month);
  return activity_[static_cast<std::size_t>(month)][i] != 0;
}

std::vector<std::uint32_t> Population::active_sources(int month) const {
  std::scoped_lock lock(activity_mutex_);
  ensure_months(month);
  std::vector<std::uint32_t> out;
  const auto& row = activity_[static_cast<std::size_t>(month)];
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] != 0) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint8_t> Population::activity_row(int month) const {
  std::scoped_lock lock(activity_mutex_);
  ensure_months(month);
  return activity_[static_cast<std::size_t>(month)];
}

}  // namespace obscorr::netgen
