#pragma once
/// \file population.hpp
/// Ground-truth Internet source population for the simulation.
///
/// The paper's unsolicited-traffic sources (botnets, scanners,
/// backscatter) are modelled as a fixed population with:
///
///  * **Brightness**: packet-rate weights following the Zipf–Mandelbrot
///    rank law w_r ∝ 1/(r+δ)^α — the distribution the paper itself fits
///    to the CAIDA data (Fig. 3), so the telescope recovers it.
///  * **Persistence (the drifting beam)**: monthly activity follows a
///    two-state Markov chain per source. The stay-active probability s is
///    drawn once per source from Beta(a, 1) (density a·s^(a−1)); then
///
///        E[s^k] = a / (a + k)
///
///    so the expected k-month overlap of active sources is *exactly* the
///    paper's modified Cauchy β/(β+|Δt|^α) with α = 1, β = a. A small
///    constant re-activation probability yields the stationary background
///    level the paper observes the correlations flattening onto.
///  * The shape a(d) is brightness-dependent (see `persistence_shape`),
///    producing the Fig. 8 profile where sources near d ≈ 10³ churn
///    fastest (≈50% one-month drop) while bright and dim sources are
///    steadier (≈20%).
///
/// Everything is a pure function of (seed, source index, month index):
/// the telescope and honeyfarm simulators observe one consistent world
/// without sharing mutable state.

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/ipv4.hpp"
#include "common/prng.hpp"

namespace obscorr::netgen {

/// Static per-source ground truth.
struct SourceRecord {
  Ipv4 ip;           ///< unique public address (outside the darkspace)
  double weight = 0.0;   ///< relative packet rate (ZM rank law)
  double persist = 0.0;  ///< monthly stay-active probability s ~ Beta(a,1)
  double rebirth = 0.0;  ///< monthly re-activation probability b
};

/// Population configuration.
struct PopulationConfig {
  std::size_t population = 1 << 17;  ///< number of candidate sources
  double zm_alpha = 1.5;             ///< brightness rank-law exponent
  double zm_delta = 50.0;            ///< brightness rank-law offset
  std::uint64_t log2_nv = 22;        ///< log2 of the telescope window (sets brightness scale)
  double rebirth_prob = 0.07;        ///< background re-activation probability; sets the
                                     ///< stationary activity level (the correlation floor)

  /// Persistence shape extremes: a(d) for bright/dim vs mid sources.
  double persist_shape_stable = 4.0;  ///< a for the brightest and dimmest sources
  double persist_shape_churny = 0.55;  ///< a at the churn dip (d ≈ 10³-equivalent)

  /// Hybrid power-law extension (Devlin et al., IPDPSW 2021 — the
  /// generative-model direction the paper's discussion points to): an
  /// *adversarial* source component with its own rank law layered on the
  /// background population. share = 0 disables it.
  double hybrid_share = 0.0;      ///< fraction of total traffic weight carried by it
  std::size_t hybrid_sources = 0; ///< how many of the first sources belong to it
  double hybrid_alpha = 1.05;     ///< adversarial rank-law exponent (flatter beam)
  double hybrid_delta = 2.0;      ///< adversarial rank-law offset

  /// Botnet-block extension: a fraction of the dimmest sources live in
  /// contiguous /24 blocks whose members activate *together* (an extra
  /// per-block on/off chain gates the members' own chains) — compromised
  /// subnets joining and leaving campaigns as a unit. Because CryptoPAN
  /// preserves prefixes, the block structure survives anonymization and
  /// is visible to `core::analyze_prefixes`. fraction = 0 disables it.
  double botnet_fraction = 0.0;      ///< tail fraction of sources placed in blocks
  std::size_t botnet_block_size = 64;  ///< members per /24 block (<= 256)
  double botnet_block_persist = 0.8; ///< block chain stay-active probability
  double botnet_block_rebirth = 0.25;  ///< block chain re-activation probability

  std::uint64_t seed = 42;
};

/// Brightness-dependent Beta shape a(d): a smooth dip in log2-degree
/// space centred on the paper's fastest-churning brightness (d ≈ 10³ at
/// N_V = 2^30, i.e. log2 d ≈ (2/3)·log2 √N_V), interpolating toward
/// `stable` at both extremes. Exposed for direct unit testing.
double persistence_shape(double expected_degree, const PopulationConfig& config);

/// The simulated world: sources plus their month-by-month activity.
class Population {
 public:
  explicit Population(const PopulationConfig& config);

  const PopulationConfig& config() const { return config_; }
  std::size_t size() const { return sources_.size(); }
  const SourceRecord& source(std::size_t i) const { return sources_[i]; }
  const std::vector<SourceRecord>& sources() const { return sources_; }

  /// Expected packet count of source i in one telescope window of
  /// N_V = 2^log2_nv packets, assuming the full population were active.
  double expected_window_degree(std::size_t i) const;

  /// Expected packet count of source i in a window *given that it is
  /// active*, using the stationary expected active weight: only active
  /// sources share the constant-packet window, so conditional degrees
  /// exceed the full-population ones. This is the brightness coordinate
  /// the visibility model sees.
  double expected_active_degree(std::size_t i) const;

  /// Stationary activity probability of source i (the chain's π).
  double stationary_activity(std::size_t i) const;

  /// Σ w_i·π_i: expected total weight of the active sub-population.
  double active_weight() const { return active_weight_; }

  /// True when `ip` belongs to a population source (used by the
  /// honeyfarm to keep ephemeral noise sources disjoint from the
  /// ground-truth population).
  bool owns_ip(Ipv4 ip) const;

  /// Botnet block id of source i, or -1 for independent sources.
  int block_of(std::size_t i) const;

  /// Number of botnet blocks (0 when the extension is disabled).
  std::size_t block_count() const { return block_count_; }

  /// True when source i is active during month index m (m >= 0 counts
  /// from the start of the study). Evaluated lazily, cached per month,
  /// deterministic in (seed, i, m). Thread-safe: concurrent callers for
  /// any months see one consistent simulation of the activity chains.
  bool active(std::size_t i, int month) const;

  /// Indices of all sources active during month m. Thread-safe.
  std::vector<std::uint32_t> active_sources(int month) const;

  /// Snapshot of month m's full activity row (index i -> 0/1). One lock
  /// instead of one per `active` call — the per-source hot loops
  /// (honeyfarm detection sweep) read this copy lock-free.
  std::vector<std::uint8_t> activity_row(int month) const;

  /// Sum of weights over the full population.
  double total_weight() const { return total_weight_; }

 private:
  void ensure_months(int month) const;

  PopulationConfig config_;
  std::vector<SourceRecord> sources_;
  double total_weight_ = 0.0;
  double active_weight_ = 0.0;
  std::vector<std::uint32_t> sorted_ips_;
  std::vector<int> block_of_;   // -1 for independent sources
  std::size_t block_count_ = 0;
  // activity_[m][i] for months simulated so far (mutable lazy cache);
  // block_activity_[m][b] gates botnet-block members. The Markov chains
  // advance month by month, so extension is inherently serial; the mutex
  // makes the lazy fill safe under concurrent snapshot/month tasks.
  mutable std::mutex activity_mutex_;
  mutable std::vector<std::vector<std::uint8_t>> activity_;
  mutable std::vector<std::vector<std::uint8_t>> block_activity_;
};

}  // namespace obscorr::netgen
