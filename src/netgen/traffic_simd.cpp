/// \file traffic_simd.cpp
/// AVX2 variant of the per-shard packet ingest loop. The emitted packet
/// stream is bit-identical to `stream_shard_scalar` on any input because
/// every RNG draw happens on the scalar generators in exactly the
/// reference order:
///
///   - source stream (`rng`): per packet, bernoulli -> Lemire slot ->
///     acceptance uniform, drawn scalar while *collecting* a batch of
///     valid-packet candidates;
///   - destination stream (`dst_rng`): drawn scalar while *emitting* the
///     batch, one packet at a time in generation order (it is a separate
///     stream, so deferring its draws past the batched source draws
///     cannot change either sequence).
///
/// What vectorizes is the pure lookup work between those draws: the alias
/// acceptance (`uniform() < prob[slot]`) becomes a gathered compare, the
/// alias redirect a gathered blend, and the source-ip lookup a gather
/// from the plan's flat `src_ips` array instead of a strided walk over
/// population records. The u64 -> double conversion of the acceptance
/// uniform reproduces `(next() >> 11) * 0x1.0p-53` exactly: the 53-bit
/// integer is split into a 52-bit mantissa part plus the top bit (both
/// exactly representable), summed (exact: the total is an integer below
/// 2^53), and scaled by a power of two (exact).
///
/// A legitimate-noise packet ends the batch early: its source draw is
/// taken immediately (keeping the source-stream order), its destination
/// draw after the batch flushes (keeping the destination-stream order).

#include "netgen/traffic.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/prng.hpp"

#if defined(__x86_64__)

#include <immintrin.h>

namespace obscorr::netgen {

namespace {

/// Valid-packet candidates resolved per SIMD pass. Small enough that the
/// staging arrays live in L1; large enough to amortize the vector setup.
constexpr std::size_t kIngestBatch = 128;

}  // namespace

__attribute__((target("avx2"))) TrafficGenerator::ShardStats TrafficGenerator::stream_shard_avx2(
    const WindowPlan& plan, std::uint64_t shard_valid_count, std::uint64_t salt,
    std::uint64_t shard, ShardScratch& scratch, const BatchSink& sink,
    std::size_t batch_packets) const {
  const std::vector<std::uint32_t>& active = plan.active;
  const std::uint64_t month = static_cast<std::uint64_t>(plan.month);
  const std::uint64_t stream_offset = shard * kShardStreamGamma;

  scratch.stamps_.resize(active.size());
  scratch.states_.resize(active.size());
  ++scratch.epoch_;
  const std::uint64_t epoch = scratch.epoch_;

  Rng rng(population_.config().seed,
          std::uint64_t{0x300000000} + month * std::uint64_t{0x10001} + salt + stream_offset);
  Rng dst_rng(population_.config().seed,
              std::uint64_t{0xA00000000} + month * std::uint64_t{0x10001} + salt + stream_offset);

  const std::uint64_t dark_size = config_.darkspace.size();
  const std::uint64_t block = std::min<std::uint64_t>(256, dark_size);
  mem::PoolVec<Packet>& buffer = scratch.buffer_;
  buffer.clear();
  buffer.reserve(batch_packets);

  const double* prob = plan.alias.probs().data();
  const std::uint32_t* alias = plan.alias.aliases().data();
  const std::uint32_t* src_ips = plan.src_ips.data();
  const std::uint64_t n_active = active.size();

  ShardStats st;
  alignas(32) std::uint64_t u_raw[kIngestBatch];  // acceptance draw, raw next()
  alignas(32) std::uint32_t slot[kIngestBatch];   // Lemire slot into the alias table
  alignas(32) std::uint32_t pick[kIngestBatch];   // resolved active-set index
  alignas(32) std::uint32_t src[kIngestBatch];    // gathered source ip

  const auto push = [&](const Packet& p) {
    buffer.push_back(p);
    ++st.emitted;
    if (buffer.size() == batch_packets) {
      sink(buffer);
      buffer.clear();
    }
  };

  const __m256i mant_mask = _mm256_set1_epi64x((1LL << 52) - 1);
  const __m256i exp_bits = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  const __m256i pack_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  // All-lanes masks for the gathers: GCC's unmasked gather intrinsics
  // expand through _mm256_undefined_pd and trip -Wmaybe-uninitialized.
  const __m256d all_pd = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m128i all_epi32 = _mm_set1_epi32(-1);

  while (st.valid < shard_valid_count) {
    // Collect: scalar source-stream draws in exact reference order. Never
    // draw past the shard quota — the scalar loop would not.
    std::size_t n = 0;
    bool legit_pending = false;
    Packet legit;
    const std::uint64_t room = shard_valid_count - st.valid;
    const std::size_t cap = room < kIngestBatch ? static_cast<std::size_t>(room) : kIngestBatch;
    while (n < cap) {
      if (rng.bernoulli(config_.legit_fraction)) {
        legit.src = config_.legit_prefix.at(rng.uniform_u64(config_.legit_prefix.size()));
        legit_pending = true;
        break;
      }
      slot[n] = static_cast<std::uint32_t>(rng.uniform_u64(n_active));
      u_raw[n] = rng.next();
      ++n;
    }

    // Resolve: gathered acceptance compare + alias blend + source-ip
    // gather, four candidates per step.
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
      const __m128i idx = _mm_load_si128(reinterpret_cast<const __m128i*>(slot + k));
      const __m256d p4 = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), prob, idx, all_pd, 8);
      const __m256i x53 =
          _mm256_srli_epi64(_mm256_load_si256(reinterpret_cast<const __m256i*>(u_raw + k)), 11);
      const __m256d dlo = _mm256_sub_pd(
          _mm256_castsi256_pd(_mm256_or_si256(_mm256_and_si256(x53, mant_mask), exp_bits)),
          two52);
      const __m256d dhi = _mm256_and_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_srli_epi64(x53, 52), one64)), two52);
      const __m256d u4 = _mm256_mul_pd(_mm256_add_pd(dlo, dhi), scale);
      const __m256d take = _mm256_cmp_pd(u4, p4, _CMP_LT_OQ);
      const __m128i a4 = _mm_mask_i32gather_epi32(
          _mm_setzero_si128(), reinterpret_cast<const int*>(alias), idx, all_epi32, 4);
      const __m128i take32 = _mm256_castsi256_si128(
          _mm256_permutevar8x32_epi32(_mm256_castpd_si256(take), pack_even));
      const __m128i pick4 = _mm_blendv_epi8(a4, idx, take32);
      const __m128i src4 = _mm_mask_i32gather_epi32(
          _mm_setzero_si128(), reinterpret_cast<const int*>(src_ips), pick4, all_epi32, 4);
      _mm_store_si128(reinterpret_cast<__m128i*>(pick + k), pick4);
      _mm_store_si128(reinterpret_cast<__m128i*>(src + k), src4);
    }
    for (; k < n; ++k) {
      const double u = static_cast<double>(u_raw[k] >> 11) * 0x1.0p-53;
      const std::uint32_t s = slot[k];
      pick[k] = u < prob[s] ? s : alias[s];
      src[k] = src_ips[pick[k]];
    }

    // Emit: scalar, in generation order — scan-state updates and every
    // destination-stream draw happen exactly as the reference path does.
    for (std::size_t m = 0; m < n; ++m) {
      Packet p;
      p.src = Ipv4(src[m]);
      const std::size_t source_index = active[pick[m]];
      if (scratch.stamps_[pick[m]] != epoch) {
        Rng init(population_.config().seed,
                 std::uint64_t{0x900000000} + source_index * 31 + salt + stream_offset);
        ShardScratch::ScanState& s = scratch.states_[pick[m]];
        s.cursor = init.uniform_u64(dark_size);
        s.subnet_base = (init.uniform_u64(dark_size) / block) * block;
        scratch.stamps_[pick[m]] = epoch;
        ++st.fresh_source_states;
      }
      switch (plan.strategies[pick[m]]) {
        case ScanStrategy::kUniform:
          p.dst = config_.darkspace.at(dst_rng.uniform_u64(dark_size));
          break;
        case ScanStrategy::kSequential: {
          ShardScratch::ScanState& s = scratch.states_[pick[m]];
          p.dst = config_.darkspace.at(s.cursor);
          s.cursor = s.cursor + 1 == dark_size ? 0 : s.cursor + 1;
          break;
        }
        case ScanStrategy::kSubnet:
          p.dst = config_.darkspace.at(scratch.states_[pick[m]].subnet_base +
                                       dst_rng.uniform_u64(block));
          break;
      }
      ++st.valid;
      push(p);
    }
    if (legit_pending) {
      legit.dst = config_.darkspace.at(dst_rng.uniform_u64(dark_size));
      push(legit);
    }
  }
  if (!buffer.empty()) sink(buffer);
  return st;
}

}  // namespace obscorr::netgen

#else  // !defined(__x86_64__)

namespace obscorr::netgen {

TrafficGenerator::ShardStats TrafficGenerator::stream_shard_avx2(
    const WindowPlan& plan, std::uint64_t shard_valid_count, std::uint64_t salt,
    std::uint64_t shard, ShardScratch& scratch, const BatchSink& sink,
    std::size_t batch_packets) const {
  return stream_shard_scalar(plan, shard_valid_count, salt, shard, scratch, sink, batch_packets);
}

}  // namespace obscorr::netgen

#endif
