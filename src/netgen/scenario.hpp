#pragma once
/// \file scenario.hpp
/// Study scenarios: the full observation timeline of Table I, scaled to a
/// configurable window size. A scenario fixes the ground-truth population,
/// the traffic configuration, the honeyfarm visibility model, the 15
/// GreyNoise collection months (with the two sensor-configuration-change
/// coverage jumps), and the 5 CAIDA constant-packet snapshots at ~6-week
/// spacing.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/timeline.hpp"
#include "netgen/population.hpp"
#include "netgen/traffic.hpp"
#include "netgen/visibility.hpp"

namespace obscorr::netgen {

/// One GreyNoise collection month.
struct GreyNoiseMonthSpec {
  YearMonth month;
  /// Multiplier on the visibility probability; >1 models the sensor
  /// expansions behind the 2020-03 / 2021-04 source-count jumps.
  double coverage = 1.0;
  /// One-month-only noise sources outside the persistent population, as
  /// a fraction of the population size (misconfigurations, one-shot
  /// scanners; they inflate monthly source counts but never recur).
  double ephemeral_factor = 0.0;
};

/// One CAIDA constant-packet snapshot.
struct CaidaSnapshotSpec {
  YearMonth month;
  std::string start_label;       ///< e.g. "2020-06-17-12:00:00" (Table I)
  double paper_duration_sec = 0; ///< duration of the 2^30-packet window in the paper
  std::uint64_t salt = 0;        ///< decorrelates windows within a month
};

/// The full study configuration.
struct Scenario {
  PopulationConfig population;
  TrafficConfig traffic;
  VisibilityModel visibility;
  std::vector<GreyNoiseMonthSpec> months;
  std::vector<CaidaSnapshotSpec> snapshots;

  /// Study-month index (0-based) of a calendar month; checked.
  int month_index(YearMonth ym) const;

  /// Packets per snapshot window at this scenario's scale.
  std::uint64_t nv() const { return 1ULL << population.log2_nv; }

  /// Window duration at this scale: the paper's implied telescope packet
  /// rate (2^30 / paper duration) applied to the scaled window.
  double scaled_duration_sec(const CaidaSnapshotSpec& snap) const;

  /// The paper's Table I timeline (2020-02 .. 2021-04, 5 snapshots),
  /// scaled to N_V = 2^log2_nv packets per window.
  static Scenario paper(int log2_nv, std::uint64_t seed);
};

}  // namespace obscorr::netgen
