#pragma once
/// \file visibility.hpp
/// Honeyfarm visibility models: the probability that an active source is
/// catalogued by the outpost during one month.
///
/// The paper's Fig. 4 finding is empirical: sources brighter than
/// sqrt(N_V) telescope packets are nearly always in GreyNoise the same
/// month, and below that the probability is log2(d)/log2(sqrt(N_V)).
/// The paper offers no generating mechanism (it flags the law as a target
/// for theory), so the simulator supports two modes:
///
///  * `kEmpiricalLog` — injects the paper's law directly; the analysis
///    pipeline must then *recover* it from raw simulated observations
///    (the default, used for the Fig. 4 reproduction).
///  * `kCoverage` — a mechanistic sensor-coverage model
///    P = 1 − exp(−d / d_half): a honeyfarm covering a fraction of the
///    address space sees at least one probe from a rate-d source with
///    exponentially saturating probability. Used by the ablation bench to
///    show where the mechanistic shape departs from the observed law.

#include <cstdint>

namespace obscorr::netgen {

/// Which detection law the honeyfarm follows.
enum class VisibilityKind {
  kEmpiricalLog,  ///< the paper's log2(d)/log2(sqrt(N_V)) law
  kCoverage,      ///< mechanistic 1 − exp(−d/d_half) saturation
};

/// Visibility model configuration + evaluation.
struct VisibilityModel {
  VisibilityKind kind = VisibilityKind::kEmpiricalLog;
  int log2_nv = 22;        ///< telescope window size (sets sqrt(N_V))
  double coverage_half = 256.0;  ///< d_half for kCoverage

  /// Detection probability for a source whose expected in-window degree
  /// is `degree`, in [0, 1], monotone non-decreasing in `degree`.
  double probability(double degree) const;
};

}  // namespace obscorr::netgen
