#pragma once
/// \file traffic.hpp
/// Packet-stream generation: the synthetic stand-in for the raw darknet
/// capture feed. For a given study month, packets are multinomial draws
/// over the *active* sources' Zipf–Mandelbrot weights, each aimed at a
/// uniform address inside the telescope darkspace (scanners and
/// backscatter have no preference within an unused /8). A configurable
/// trickle of non-valid "legitimate" traffic is interleaved so the
/// telescope's validity filter has something to discard, as on the real
/// instrument.

#include <cstdint>
#include <functional>
#include <span>

#include "common/ipv4.hpp"
#include "common/packet.hpp"
#include "netgen/population.hpp"

namespace obscorr::netgen {

/// How a source picks destinations inside the darkspace. Real scanners
/// are not all uniform: worms sweep sequentially, targeted scanners camp
/// on subnets, backscatter lands anywhere. The strategy shapes the
/// fan-out quantities of Table II without touching the source-packet
/// statistics the correlation analyses rest on.
enum class ScanStrategy {
  kUniform,     ///< independent uniform addresses (backscatter/spray)
  kSequential,  ///< linear sweep from a per-source offset (worm style)
  kSubnet,      ///< uniform within one random /24 of the darkspace
};

/// Traffic-stream configuration.
struct TrafficConfig {
  /// The telescope darkspace: a routed /8 with no allocated hosts.
  Ipv4Prefix darkspace{Ipv4(77, 0, 0, 0), 8};
  /// Prefix whose traffic counts as legitimate (discarded by the filter);
  /// the population never allocates sources here.
  Ipv4Prefix legit_prefix{Ipv4(10, 0, 0, 0), 8};
  /// Fraction of emitted packets that are legitimate noise.
  double legit_fraction = 0.001;
  /// Mixture over scan strategies (uniform, sequential, subnet); need
  /// not be normalized. Sources are assigned a strategy deterministically
  /// from these odds.
  double uniform_weight = 0.6;
  double sequential_weight = 0.25;
  double subnet_weight = 0.15;
};

/// Generates packet streams for telescope windows.
class TrafficGenerator {
 public:
  TrafficGenerator(const Population& population, TrafficConfig config);

  const TrafficConfig& config() const { return config_; }

  /// Batched sink: receives consecutive fixed-size packet buffers (the
  /// final buffer may be short). The span is only valid for the call.
  using BatchSink = std::function<void(std::span<const Packet>)>;

  /// Emit packets for one constant-packet window in study month `month`
  /// until exactly `valid_count` valid (non-legit) packets have been
  /// produced, handing `sink` fixed-size buffers of packets including
  /// the legitimate noise. `salt` decorrelates windows taken in the same
  /// month. Returns the total number of packets emitted (valid + legit).
  /// The packet sequence is identical to the per-packet overload.
  std::uint64_t stream_window_batched(int month, std::uint64_t valid_count, std::uint64_t salt,
                                      const BatchSink& sink,
                                      std::size_t batch_packets = kDefaultBatchPackets) const;

  /// Per-packet compatibility wrapper over the batched path.
  std::uint64_t stream_window(int month, std::uint64_t valid_count, std::uint64_t salt,
                              const std::function<void(const Packet&)>& sink) const;

  /// Default emission buffer: large enough to amortize the sink call,
  /// small enough to stay resident in L2 (8192 packets = 64 KiB).
  static constexpr std::size_t kDefaultBatchPackets = 8192;

  /// Deterministic strategy assignment of population source `i`.
  ScanStrategy strategy_of(std::size_t i) const;

 private:
  const Population& population_;
  TrafficConfig config_;
};

}  // namespace obscorr::netgen
