#pragma once
/// \file traffic.hpp
/// Packet-stream generation: the synthetic stand-in for the raw darknet
/// capture feed. For a given study month, packets are multinomial draws
/// over the *active* sources' Zipf–Mandelbrot weights, each aimed at a
/// uniform address inside the telescope darkspace (scanners and
/// backscatter have no preference within an unused /8). A configurable
/// trickle of non-valid "legitimate" traffic is interleaved so the
/// telescope's validity filter has something to discard, as on the real
/// instrument.
///
/// Windows decompose into fixed-size generation *shards* of
/// `kShardValidPackets` valid packets. Every shard's RNG streams are a
/// pure function of (seed, month, salt, shard index) — never of thread
/// count or execution order — so shards can be generated concurrently in
/// any schedule and the union of their packets is always the same
/// multiset. Shard 0 uses exactly the unsharded stream ids, so any window
/// of at most one shard is byte-identical to the historical single-stream
/// sequence.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ipv4.hpp"
#include "common/packet.hpp"
#include "common/pool_alloc.hpp"
#include "common/prng.hpp"
#include "netgen/population.hpp"

namespace obscorr::netgen {

/// How a source picks destinations inside the darkspace. Real scanners
/// are not all uniform: worms sweep sequentially, targeted scanners camp
/// on subnets, backscatter lands anywhere. The strategy shapes the
/// fan-out quantities of Table II without touching the source-packet
/// statistics the correlation analyses rest on.
enum class ScanStrategy {
  kUniform,     ///< independent uniform addresses (backscatter/spray)
  kSequential,  ///< linear sweep from a per-source offset (worm style)
  kSubnet,      ///< uniform within one random /24 of the darkspace
};

/// Traffic-stream configuration.
struct TrafficConfig {
  /// The telescope darkspace: a routed /8 with no allocated hosts.
  Ipv4Prefix darkspace{Ipv4(77, 0, 0, 0), 8};
  /// Prefix whose traffic counts as legitimate (discarded by the filter);
  /// the population never allocates sources here.
  Ipv4Prefix legit_prefix{Ipv4(10, 0, 0, 0), 8};
  /// Fraction of emitted packets that are legitimate noise.
  double legit_fraction = 0.001;
  /// Mixture over scan strategies (uniform, sequential, subnet); need
  /// not be normalized. Sources are assigned a strategy deterministically
  /// from these odds.
  double uniform_weight = 0.6;
  double sequential_weight = 0.25;
  double subnet_weight = 0.15;
};

/// Per-(generator, month) sampling state shared by every shard of a
/// window: the active-source set and the alias table over its weights.
/// Built once per window (it scans the whole population) and read-only
/// afterwards, so concurrent shard generators can share one plan.
struct WindowPlan {
  WindowPlan(int month_, std::vector<std::uint32_t> active_, std::vector<std::uint32_t> src_ips_,
             std::vector<ScanStrategy> strategies_, AliasTable alias_)
      : month(month_),
        active(std::move(active_)),
        src_ips(std::move(src_ips_)),
        strategies(std::move(strategies_)),
        alias(std::move(alias_)) {}

  int month;
  std::vector<std::uint32_t> active;     ///< active source indices this month
  std::vector<std::uint32_t> src_ips;    ///< source ip per active slot (gather-friendly)
  std::vector<ScanStrategy> strategies;  ///< strategy per active slot (see strategy_of)
  AliasTable alias;                      ///< over the active sources' weights
};

/// Reusable per-caller scratch for `stream_shard_batched`: the lazy
/// per-source scan-state table and the emission buffer. Logically reset
/// per shard via an epoch stamp, so reusing one scratch across many
/// shards costs no clearing of the population-sized table.
///
/// The scan state is split structure-of-arrays: the epoch stamp — the
/// only field every valid packet touches — is a dense u64 array (8
/// entries per cache line), while the cursor/subnet state only the
/// sequential and subnet strategies read lives separately. The strategy
/// itself comes from the read-only plan. Arrays are pool-backed, so the
/// per-window scratch contexts of the parallel capture path recycle
/// their blocks instead of re-faulting them.
class ShardScratch {
 public:
  ShardScratch() = default;

 private:
  friend class TrafficGenerator;

  struct ScanState {
    std::uint64_t cursor = 0;       // sequential: next offset
    std::uint64_t subnet_base = 0;  // subnet: offset of the /24-equivalent block
  };

  mem::PoolVec<std::uint64_t> stamps_;  // epoch of last init; != epoch_ means stale
  mem::PoolVec<ScanState> states_;
  mem::PoolVec<Packet> buffer_;
  std::uint64_t epoch_ = 0;
};

/// Generates packet streams for telescope windows.
class TrafficGenerator {
 public:
  TrafficGenerator(const Population& population, TrafficConfig config);

  const TrafficConfig& config() const { return config_; }

  /// Batched sink: receives consecutive fixed-size packet buffers (the
  /// final buffer may be short). The span is only valid for the call.
  using BatchSink = std::function<void(std::span<const Packet>)>;

  /// Emit packets for one constant-packet window in study month `month`
  /// until exactly `valid_count` valid (non-legit) packets have been
  /// produced, handing `sink` fixed-size buffers of packets including
  /// the legitimate noise. `salt` decorrelates windows taken in the same
  /// month. Returns the total number of packets emitted (valid + legit).
  /// The packet sequence is identical to the per-packet overload, and to
  /// `stream_shard_batched` with shard 0 over the whole window.
  std::uint64_t stream_window_batched(int month, std::uint64_t valid_count, std::uint64_t salt,
                                      const BatchSink& sink,
                                      std::size_t batch_packets = kDefaultBatchPackets) const;

  /// Per-packet compatibility wrapper over the batched path.
  std::uint64_t stream_window(int month, std::uint64_t valid_count, std::uint64_t salt,
                              const std::function<void(const Packet&)>& sink) const;

  /// Build the shared per-window sampling plan (active set + alias
  /// table) for `month`. Throws when no source is active.
  WindowPlan plan_window(int month) const;

  /// Emit one generation shard: exactly `shard_valid_count` valid
  /// packets drawn from shard `shard`'s RNG streams, which are a pure
  /// function of (seed, plan.month, salt, shard). Shard 0 reproduces the
  /// unsharded `stream_window_batched` stream prefix exactly. `scratch`
  /// may be reused across calls (any plan, any shard) without clearing.
  /// Returns the total number of packets emitted (valid + legit).
  std::uint64_t stream_shard_batched(const WindowPlan& plan, std::uint64_t shard_valid_count,
                                     std::uint64_t salt, std::uint64_t shard,
                                     ShardScratch& scratch, const BatchSink& sink,
                                     std::size_t batch_packets = kDefaultBatchPackets) const;

  /// Valid packets per generation shard. 2^16 keeps every historical
  /// window size (tests run at <= 2^16) single-shard — hence byte-stable
  /// across this decomposition — while giving a 2^22 window 64 shards.
  static constexpr std::uint64_t kShardValidPackets = 1ULL << 16;

  /// Number of shards a window of `valid_count` valid packets splits
  /// into: ceil(valid_count / kShardValidPackets), at least 1.
  static std::uint64_t shard_count(std::uint64_t valid_count);

  /// Valid packets assigned to shard `shard` of a `valid_count` window:
  /// full shards of kShardValidPackets, the last takes the remainder.
  static std::uint64_t shard_valid_packets(std::uint64_t valid_count, std::uint64_t shard);

  /// Default emission buffer: large enough to amortize the sink call,
  /// small enough to stay resident in L2 (8192 packets = 64 KiB).
  static constexpr std::size_t kDefaultBatchPackets = 8192;

  /// Deterministic strategy assignment of population source `i`.
  ScanStrategy strategy_of(std::size_t i) const;

 private:
  /// Per-shard stream-id offset: the golden-ratio increment (SplitMix64's
  /// own gamma) keeps shard streams far apart in id space. Shard 0
  /// offsets by zero, preserving the historical unsharded stream ids.
  static constexpr std::uint64_t kShardStreamGamma = 0x9E3779B97F4A7C15ULL;

  /// Per-shard emission tallies, returned by the streaming variants so
  /// the dispatching wrapper owns the telemetry flush.
  struct ShardStats {
    std::uint64_t emitted = 0;
    std::uint64_t valid = 0;
    std::uint64_t fresh_source_states = 0;  // one init RNG stream each
  };

  /// Reference implementation of `stream_shard_batched` (traffic.cpp).
  ShardStats stream_shard_scalar(const WindowPlan& plan, std::uint64_t shard_valid_count,
                                 std::uint64_t salt, std::uint64_t shard, ShardScratch& scratch,
                                 const BatchSink& sink, std::size_t batch_packets) const;

  /// AVX2 ingest variant (traffic_simd.cpp): identical packet stream —
  /// the source/destination RNG draws happen in exactly the scalar order;
  /// only the alias-slot resolution and source-ip lookups are batched
  /// into gathers. On non-x86 builds this forwards to the scalar path.
  ShardStats stream_shard_avx2(const WindowPlan& plan, std::uint64_t shard_valid_count,
                               std::uint64_t salt, std::uint64_t shard, ShardScratch& scratch,
                               const BatchSink& sink, std::size_t batch_packets) const;

  const Population& population_;
  TrafficConfig config_;
};

}  // namespace obscorr::netgen
