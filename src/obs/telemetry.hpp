#pragma once
/// \file telemetry.hpp
/// Process-wide pipeline telemetry: a counter/gauge registry with
/// per-thread sharded atomics, merged deterministically at read time.
///
/// Telemetry is off by default and compiles down to one branch on a
/// cached atomic flag at every instrumentation site — hot loops tally
/// into stack locals and flush once per batch behind
/// `counters_enabled()`, so a disabled run does no atomic traffic and
/// allocates nothing. Turning telemetry on never changes pipeline
/// *results*: counters and spans are write-only during execution and the
/// instrumented code paths are byte-identical either way, so the
/// determinism and golden-archive suites hold at any level.
///
/// Counter handles are stable for the life of the process; the idiom at
/// an instrumentation site is a function-local static reference:
///
///   static obs::Counter& packets = obs::counter("netgen.packets_emitted");
///   ...
///   if (obs::counters_enabled()) packets.add(batch_total);
///
/// Counter names form a canonical catalogue (see docs/observability.md);
/// the registry pre-creates every canonical name so a metrics document
/// always carries the full catalogue, zeros included, and a golden test
/// pins the list — renames are deliberate, never accidental.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace obscorr::obs {

/// Telemetry level. kCounters arms the counter/gauge registry only;
/// kFull additionally records span events for trace export.
enum class Level : int { kOff = 0, kCounters = 1, kFull = 2 };

namespace detail {
/// The cached flag every instrumentation site branches on.
extern std::atomic<int> g_level;
/// This thread's shard index (assigned on first use, stable thereafter).
std::size_t shard_slot();
}  // namespace detail

inline bool counters_enabled() {
  return detail::g_level.load(std::memory_order_relaxed) >= static_cast<int>(Level::kCounters);
}
inline bool spans_enabled() {
  return detail::g_level.load(std::memory_order_relaxed) >= static_cast<int>(Level::kFull);
}

void set_level(Level level);
Level level();

/// Zero every counter/gauge and drop all recorded span events. Handles
/// stay valid. Intended between CLI invocations and in tests.
void reset();

/// Number of per-counter shards. Threads are assigned a shard slot on
/// first use; concurrent adds from different threads usually land on
/// different cache lines.
inline constexpr std::size_t kCounterShards = 16;

/// Monotonic u64 counter, sharded per thread. `add` is a relaxed
/// fetch_add on the caller's shard; `value` sums the shards in fixed
/// index order — u64 addition is exact and associative, so the merge is
/// deterministic for any schedule that produced the same increments.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) {
    shards_[detail::shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void zero();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_{};
};

/// High-water-mark gauge: `record_max` keeps the largest value seen on
/// the caller's shard; `value` is the max over shards (order-free).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void record_max(std::uint64_t v);
  std::uint64_t value() const;
  void zero();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_{};
};

/// Look up (or create) the counter/gauge named `name`. The returned
/// reference is valid for the life of the process. Thread-safe; cache it
/// in a function-local static at hot sites.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);

/// One (name, merged value) sample.
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
};

/// All counters / gauges, sorted by name (zeros included).
std::vector<MetricSample> counters_snapshot();
std::vector<MetricSample> gauges_snapshot();

/// The canonical metric catalogue (sorted): every counter and gauge name
/// the instrumented pipeline emits. Pre-registered at startup so metrics
/// documents always carry the whole catalogue; pinned by a golden test.
const std::vector<std::string>& canonical_counter_names();
const std::vector<std::string>& canonical_gauge_names();

/// RAII accumulator of elapsed nanoseconds into a counter (e.g. CRC or
/// merge time); no-op when counters are disabled at construction.
class ScopedNsCounter {
 public:
  explicit ScopedNsCounter(Counter& c);
  ~ScopedNsCounter();
  ScopedNsCounter(const ScopedNsCounter&) = delete;
  ScopedNsCounter& operator=(const ScopedNsCounter&) = delete;

 private:
  Counter* counter_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// Nanoseconds since the process telemetry epoch (steady clock).
std::uint64_t now_ns();

}  // namespace obscorr::obs
