#include "obs/export.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::obs {

namespace {

/// JSON string escaping for detail labels (names are controlled
/// literals, but details may carry arbitrary text).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c);
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-µs precision, as Chrome's trace viewer expects.
std::string us_text(std::uint64_t ns) {
  std::ostringstream os;
  os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000;
  return os.str();
}

std::string seconds_text(std::uint64_t ns, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision)
     << static_cast<double>(ns) / 1e9;
  return os.str();
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
     << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"obscorr\"}}";
  for (const SpanEvent& e : span_events()) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"cat\":\"obscorr\",\"name\":\""
       << json_escape(e.name) << "\",\"ts\":" << us_text(e.start_ns)
       << ",\"dur\":" << us_text(e.dur_ns);
    if (!e.detail.empty()) {
      os << ",\"args\":{\"detail\":\"" << json_escape(e.detail) << "\"}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

void write_metrics_json(std::ostream& os) {
  os << "{\n  \"schema\": \"obscorr.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const MetricSample& c : counters_snapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(c.name) << "\": " << c.value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const MetricSample& g : gauges_snapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(g.name) << "\": " << g.value;
    first = false;
  }
  os << "\n  },\n  \"spans\": {";
  first = true;
  for (const SpanAggregate& a : aggregate_spans()) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(a.name)
       << "\": {\"count\": " << a.count << ", \"total_ns\": " << a.total_ns
       << ", \"min_ns\": " << a.min_ns << ", \"max_ns\": " << a.max_ns << "}";
    first = false;
  }
  os << "\n  },\n  \"dropped_span_events\": " << dropped_span_events() << "\n}\n";
}

namespace {

/// `svc.bytes_in` → `obscorr_svc_bytes_in`. Catalogue names are
/// [a-z0-9._]-only so dots→underscores is the whole mapping.
std::string prom_name(const std::string& name) {
  std::string out = "obscorr_";
  out.reserve(out.size() + name.size());
  for (const char c : name) out += (c == '.') ? '_' : c;
  return out;
}

}  // namespace

void write_metrics_prometheus(std::ostream& os) {
  for (const MetricSample& c : counters_snapshot()) {
    const std::string n = prom_name(c.name);
    os << "# TYPE " << n << " counter\n" << n << "_total " << c.value << '\n';
  }
  for (const MetricSample& g : gauges_snapshot()) {
    const std::string n = prom_name(g.name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << g.value << '\n';
  }
  for (const SpanAggregate& a : aggregate_spans()) {
    const std::string n = prom_name(std::string("span.") + a.name);
    os << "# TYPE " << n << " summary\n"
       << n << "_count " << a.count << '\n'
       << n << "_seconds_sum " << seconds_text(a.total_ns, 9) << '\n';
  }
  {
    const std::string n = prom_name("dropped_span_events");
    os << "# TYPE " << n << " counter\n" << n << "_total " << dropped_span_events() << '\n';
  }
  os << "# EOF\n";
}

void write_timing_summary(std::ostream& os) {
  os << "-- telemetry timing summary --\n";
  const std::vector<SpanAggregate> spans = aggregate_spans();
  if (!spans.empty()) {
    os << "spans (count, total s, min s, max s):\n";
    for (const SpanAggregate& a : spans) {
      os << "  " << a.name << ": " << a.count << ", " << seconds_text(a.total_ns) << ", "
         << seconds_text(a.min_ns) << ", " << seconds_text(a.max_ns) << '\n';
    }
  }
  os << "counters (non-zero):\n";
  for (const MetricSample& c : counters_snapshot()) {
    if (c.value != 0) os << "  " << c.name << ": " << c.value << '\n';
  }
  for (const MetricSample& g : gauges_snapshot()) {
    if (g.value != 0) os << "  " << g.name << " (gauge): " << g.value << '\n';
  }
  const std::uint64_t dropped = dropped_span_events();
  if (dropped != 0) os << "dropped span events: " << dropped << '\n';
}

}  // namespace obscorr::obs
