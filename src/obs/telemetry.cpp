#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "obs/span.hpp"

namespace obscorr::obs {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::kOff)};
}  // namespace detail

namespace {

/// The canonical metric catalogue. One name per fact the instrumented
/// pipeline can report; docs/observability.md documents each. Renaming
/// or adding an entry must update the golden schema test too — that is
/// the point.
constexpr const char* kCanonicalCounters[] = {
    "analysis.anomalies",
    "analysis.windows_observed",
    "archive.bytes_read",
    "archive.bytes_written",
    "archive.crc_ns",
    "archive.frames_read",
    "archive.frames_written",
    "archive.open_heap",
    "archive.open_mmap",
    "archive.raw_bytes",
    "archive.stored_bytes",
    "cache.evictions",
    "cache.hits",
    "cache.misses",
    "mem.arena_bytes",
    "mem.arena_resets",
    "mem.pool_hits",
    "mem.pool_misses",
    "netgen.packets_emitted",
    "netgen.rng_streams",
    "netgen.shards_generated",
    "netgen.valid_packets",
    "netgen.windows_planned",
    "simd.dispatch_codec",
    "simd.dispatch_ingest",
    "simd.dispatch_merge",
    "simd.dispatch_radix",
    "simd.dispatch_reduce",
    "svc.accepted",
    "svc.bytes_in",
    "svc.bytes_out",
    "svc.errors",
    "svc.ingest_packets",
    "svc.refreshes",
    "svc.requests",
    "svc.shed",
    "svc.timeouts",
    "svc.watch_events",
    "svc.windows_published",
    "telescope.anon_cache_hits",
    "telescope.anon_cache_misses",
    "telescope.discarded_packets",
    "telescope.merge_ns",
    "telescope.valid_packets",
    "threadpool.busy_ns",
    "threadpool.help_drains",
    "threadpool.tasks_executed",
};

constexpr const char* kCanonicalGauges[] = {
    "cache.bytes",
    "mem.arena_high_water",
    "mem.hugepage_bytes",
    "mem.peak_rss",
    "mem.pool_high_water",
    "simd.tier",
    "svc.connections_high_water",
    "svc.watchers_high_water",
    "threadpool.queue_high_water",
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;

  Registry() {
    for (const char* name : kCanonicalCounters) {
      counters.emplace(name, std::make_unique<Counter>());
    }
    for (const char* name : kCanonicalGauges) {
      gauges.emplace(name, std::make_unique<Gauge>());
    }
  }
};

/// Leaked singleton: instrumentation sites (including the global thread
/// pool) may fire during static destruction, so the registry must never
/// be torn down.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

void set_level(Level l) {
  detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

Level level() {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

namespace detail {
std::size_t shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return slot;
}
}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::zero() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::record_max(std::uint64_t v) {
  std::atomic<std::uint64_t>& a = shards_[detail::shard_slot()].v;
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Gauge::value() const {
  std::uint64_t m = 0;
  for (const Shard& s : shards_) m = std::max(m, s.v.load(std::memory_order_relaxed));
  return m;
}

void Gauge::zero() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::vector<MetricSample> counters_snapshot() {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  std::vector<MetricSample> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.push_back({name, c->value()});
  return out;
}

std::vector<MetricSample> gauges_snapshot() {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  std::vector<MetricSample> out;
  out.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.push_back({name, g->value()});
  return out;
}

const std::vector<std::string>& canonical_counter_names() {
  static const std::vector<std::string> names(std::begin(kCanonicalCounters),
                                              std::end(kCanonicalCounters));
  return names;
}

const std::vector<std::string>& canonical_gauge_names() {
  static const std::vector<std::string> names(std::begin(kCanonicalGauges),
                                              std::end(kCanonicalGauges));
  return names;
}

namespace detail {
void reset_span_store();  // span.cpp
}  // namespace detail

void reset() {
  Registry& r = registry();
  {
    std::scoped_lock lock(r.mutex);
    for (auto& [name, c] : r.counters) c->zero();
    for (auto& [name, g] : r.gauges) g->zero();
  }
  detail::reset_span_store();
}

ScopedNsCounter::ScopedNsCounter(Counter& c) {
  if (counters_enabled()) {
    counter_ = &c;
    start_ns_ = now_ns();
  }
}

ScopedNsCounter::~ScopedNsCounter() {
  if (counter_ != nullptr) counter_->add(now_ns() - start_ns_);
}

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

}  // namespace obscorr::obs
