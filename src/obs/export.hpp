#pragma once
/// \file export.hpp
/// Telemetry exporters: Chrome trace-event JSON (`chrome://tracing` /
/// Perfetto), a structured metrics document, and a human timing summary.
///
/// None of these ever write to stdout — the CLI routes them to files or
/// stderr so data output stays machine-parseable. The metrics document
/// has a stable schema (`obscorr.metrics.v1`): the counter/gauge key
/// sets are the canonical catalogue (golden-tested), span aggregates are
/// keyed by canonical span name. Values carry wall-clock measurements
/// and are therefore run-dependent; the *keys* are not.

#include <iosfwd>

namespace obscorr::obs {

/// Chrome trace-event JSON: one complete ("ph":"X") event per recorded
/// span, microsecond timestamps relative to the telemetry epoch. Load
/// the file in chrome://tracing or https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os);

/// The structured metrics document:
///   { "schema": "obscorr.metrics.v1",
///     "counters": {name: u64, ...},        // full canonical catalogue
///     "gauges":   {name: u64, ...},
///     "spans":    {name: {"count","total_ns","min_ns","max_ns"}, ...},
///     "dropped_span_events": u64 }
void write_metrics_json(std::ostream& os);

/// Prometheus/OpenMetrics text exposition of the same registry
/// (`--metrics-format prom`, svc `metrics` with format=prom). Metric
/// names are the catalogue names with dots mapped to underscores under
/// an `obscorr_` prefix; counters get the OpenMetrics `_total` suffix,
/// span aggregates become `_count` / `_seconds_sum` pairs. Ends with
/// `# EOF` per the OpenMetrics framing rules.
void write_metrics_prometheus(std::ostream& os);

/// Human-readable summary (for `--timing` on stderr): span aggregates
/// and the non-zero counters.
void write_timing_summary(std::ostream& os);

}  // namespace obscorr::obs
