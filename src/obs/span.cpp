#include "obs/span.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

namespace obscorr::obs {

namespace {

/// One thread's span log. Owned by the global store (shared_ptr) so the
/// events outlive the thread; the thread itself holds a second
/// reference via its thread_local slot. `depth` is touched only by the
/// owning thread; `ring`/`recorded` are guarded by `mutex` because the
/// exporter reads them from another thread.
struct ThreadLog {
  std::mutex mutex;
  std::vector<SpanEvent> ring;
  std::uint64_t recorded = 0;  ///< total events pushed since last reset
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< live nesting depth (owner thread only)
};

struct SpanStore {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::uint32_t next_tid = 0;
};

SpanStore& store() {
  static SpanStore* s = new SpanStore;  // leaked: usable during static teardown
  return *s;
}

ThreadLog& thread_log() {
  thread_local const std::shared_ptr<ThreadLog> log = [] {
    auto fresh = std::make_shared<ThreadLog>();
    SpanStore& s = store();
    std::scoped_lock lock(s.mutex);
    fresh->tid = s.next_tid++;
    s.logs.push_back(fresh);
    return fresh;
  }();
  return *log;
}

}  // namespace

namespace detail {

void span_begin(std::uint64_t* start_ns, std::uint32_t* depth) {
  ThreadLog& log = thread_log();
  *depth = log.depth++;
  *start_ns = now_ns();
}

void span_end(const char* name, std::string&& detail, std::uint64_t start_ns,
              std::uint32_t depth) {
  const std::uint64_t end_ns = now_ns();
  ThreadLog& log = thread_log();
  log.depth = depth;  // unwind even if inner spans were dropped
  SpanEvent event{name, std::move(detail), log.tid, depth, start_ns, end_ns - start_ns};
  std::scoped_lock lock(log.mutex);
  if (log.ring.size() < kSpanRingCapacity) {
    log.ring.push_back(std::move(event));
  } else {
    log.ring[static_cast<std::size_t>(log.recorded % kSpanRingCapacity)] = std::move(event);
  }
  ++log.recorded;
}

void reset_span_store() {
  SpanStore& s = store();
  std::scoped_lock lock(s.mutex);
  for (const auto& log : s.logs) {
    std::scoped_lock log_lock(log->mutex);
    log->ring.clear();
    log->recorded = 0;
  }
}

}  // namespace detail

std::vector<SpanEvent> span_events() {
  SpanStore& s = store();
  std::vector<SpanEvent> out;
  {
    std::scoped_lock lock(s.mutex);
    for (const auto& log : s.logs) {
      std::scoped_lock log_lock(log->mutex);
      out.insert(out.end(), log->ring.begin(), log->ring.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return out;
}

std::uint64_t dropped_span_events() {
  SpanStore& s = store();
  std::scoped_lock lock(s.mutex);
  std::uint64_t dropped = 0;
  for (const auto& log : s.logs) {
    std::scoped_lock log_lock(log->mutex);
    if (log->recorded > log->ring.size()) dropped += log->recorded - log->ring.size();
  }
  return dropped;
}

std::vector<SpanAggregate> aggregate_spans() {
  std::vector<SpanAggregate> out;
  for (const SpanEvent& e : span_events()) {
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const SpanAggregate& a) { return a.name == e.name; });
    if (it == out.end()) {
      out.push_back({e.name, 1, e.dur_ns, e.dur_ns, e.dur_ns});
    } else {
      ++it->count;
      it->total_ns += e.dur_ns;
      it->min_ns = std::min(it->min_ns, e.dur_ns);
      it->max_ns = std::max(it->max_ns, e.dur_ns);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) { return a.name < b.name; });
  return out;
}

}  // namespace obscorr::obs
