#pragma once
/// \file span.hpp
/// Hierarchical span timers over per-thread ring buffers.
///
/// A `Span` is an RAII timer: construction stamps a start time and
/// nesting depth, destruction pushes one completed event into the
/// calling thread's ring buffer. Buffers hold the most recent
/// `kSpanRingCapacity` events per thread (older events are overwritten
/// and counted as dropped), are owned by a global registry so events
/// survive thread exit (pool workers die with their pool, their spans
/// must not), and are merged at export time sorted by start timestamp —
/// the deterministic read-side merge mirroring the counter registry.
///
/// Span construction is a no-op unless the telemetry level is kFull
/// (`spans_enabled()`): the constructor is one branch, and the optional
/// detail label is built lazily via a callable so disabled sites never
/// format strings. Spans are coarse-grained by design — one per window,
/// shard run, archive open, study phase — never per packet.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"

namespace obscorr::obs {

/// Per-thread ring capacity; a full study records a few thousand spans,
/// so drops only occur under pathological instrumentation.
inline constexpr std::size_t kSpanRingCapacity = 1 << 16;

/// One completed span.
struct SpanEvent {
  const char* name = "";     ///< canonical span name (string literal)
  std::string detail;        ///< optional instance label (e.g. snapshot date)
  std::uint32_t tid = 0;     ///< stable per-thread id (registration order)
  std::uint32_t depth = 0;   ///< nesting depth on its thread (0 = top level)
  std::uint64_t start_ns = 0;  ///< start, ns since the telemetry epoch
  std::uint64_t dur_ns = 0;    ///< wall duration in ns
};

namespace detail {
void span_begin(std::uint64_t* start_ns, std::uint32_t* depth);
void span_end(const char* name, std::string&& detail, std::uint64_t start_ns,
              std::uint32_t depth);
}  // namespace detail

/// RAII hierarchical span timer. Move-free, scope-bound.
class Span {
 public:
  explicit Span(const char* name) {
    if (spans_enabled()) begin(name, std::string());
  }
  /// `detail_fn() -> std::string` is only invoked when spans are enabled.
  template <typename F>
  Span(const char* name, F&& detail_fn) {
    if (spans_enabled()) begin(name, std::forward<F>(detail_fn)());
  }
  ~Span() {
    if (active_) detail::span_end(name_, std::move(detail_), start_ns_, depth_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, std::string detail) {
    active_ = true;
    name_ = name;
    detail_ = std::move(detail);
    detail::span_begin(&start_ns_, &depth_);
  }

  const char* name_ = "";
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Merged snapshot of every thread's recorded events, sorted by
/// (start_ns, tid, depth) — a deterministic read-time order.
std::vector<SpanEvent> span_events();

/// Events lost to ring overwrites since the last reset.
std::uint64_t dropped_span_events();

/// Per-name aggregate over the recorded events.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Aggregates sorted by name.
std::vector<SpanAggregate> aggregate_spans();

}  // namespace obscorr::obs
