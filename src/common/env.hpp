#pragma once
/// \file env.hpp
/// Environment-variable knobs for the bench harnesses. The paper ran at
/// N_V = 2^30 packets per snapshot on supercomputers; these knobs let the
/// same binaries scale from CI-size to paper-size without recompiling:
///
///   OBSCORR_LOG2_NV   log2 of the packets-per-snapshot window (default 22)
///   OBSCORR_SEED      master simulation seed (default 42)
///   OBSCORR_THREADS   worker threads (default: hardware concurrency)
///
/// Memory-subsystem knobs (docs/performance.md "Memory model"); results
/// are byte-identical either way — they only change speed and RSS:
///
///   OBSCORR_NO_HUGEPAGES=1  never madvise(MADV_HUGEPAGE) pooled blocks
///   OBSCORR_NO_POOL=1       disable buffer recycling (every block is
///                           mapped and unmapped fresh; A/B baseline)

#include <cstdint>
#include <string>

namespace obscorr {

/// Read an integer environment variable; `fallback` when unset or invalid.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Worker-thread count for a tool invocation: an explicit `requested > 0`
/// (e.g. a --threads flag) wins, otherwise OBSCORR_THREADS, otherwise the
/// hardware default. The result is always >= 1.
int resolve_thread_count(std::int64_t requested = 0);

/// Bench-harness configuration resolved from the environment.
struct BenchEnv {
  int log2_nv = 22;          ///< log2(N_V); the paper used 30.
  std::uint64_t seed = 42;   ///< master seed.
  int threads = 0;           ///< 0 = hardware concurrency.

  /// Packets per snapshot window.
  std::uint64_t nv() const { return 1ULL << log2_nv; }

  static BenchEnv from_environment();
};

}  // namespace obscorr
