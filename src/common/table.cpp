#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/error.hpp"

namespace obscorr {

void TextTable::set_header(std::vector<std::string> header) {
  OBSCORR_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  OBSCORR_REQUIRE(header_.empty() || row.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(row));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+' ||
          c == 'e' || c == 'E' || c == '%' || c == ',')) {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  const std::size_t cols = header_.empty() ? (rows_.empty() ? 0 : rows_[0].size()) : header_.size();
  if (cols == 0) return;
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) {
    if (c < header_.size()) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) width[c] = std::max(width[c], row[c].size());
    }
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      if (c) os << "  ";
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace obscorr
