#pragma once
/// \file asan.hpp
/// AddressSanitizer interop for the custom allocators. The arena and the
/// buffer pool recycle memory without returning it to the OS, which would
/// normally blind ASan to use-after-reset and use-after-free-to-pool
/// bugs. Under an ASan build these macros manually poison recycled
/// memory, so touching an arena span after its frame popped (or a pooled
/// block sitting in a free list) reports like any heap error. In normal
/// builds they compile to nothing.

#if defined(__SANITIZE_ADDRESS__)
#define OBSCORR_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OBSCORR_ASAN 1
#endif
#endif

#if defined(OBSCORR_ASAN)
#include <sanitizer/asan_interface.h>
#define OBSCORR_ASAN_POISON(addr, size) ASAN_POISON_MEMORY_REGION((addr), (size))
#define OBSCORR_ASAN_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION((addr), (size))
#else
#define OBSCORR_ASAN_POISON(addr, size) ((void)0)
#define OBSCORR_ASAN_UNPOISON(addr, size) ((void)0)
#endif
