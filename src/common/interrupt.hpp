#pragma once
/// \file interrupt.hpp
/// Cooperative stop for long-running commands and the resident service.
///
/// A SIGINT/SIGTERM must never kill `obscorr archive` mid-frame or the
/// `serve` daemon mid-window: the handler installed here only sets a
/// process-wide flag (and pokes an optional wake fd so a blocked event
/// loop notices immediately). Long loops poll `stop_requested()` at
/// their natural checkpoint granularity — between archive entries,
/// between capture batches, between epoll iterations — and unwind
/// cleanly: flush what is complete, leave resumable state on disk, exit.
///
/// Everything the handler touches is async-signal-safe: one relaxed
/// atomic store plus (optionally) a single `write(2)` to the registered
/// eventfd/pipe. The flag is process-wide by design — a second SIGINT
/// during a slow drain still only requests the same stop; delivery
/// remains one-shot semantics at the checkpoints.

#include <atomic>

namespace obscorr::interrupt {

/// Install the SIGINT/SIGTERM handlers (idempotent). Returns false when
/// the handlers could not be installed (non-POSIX host); the stop flag
/// still works through `request_stop()`.
bool install_handlers();

/// True once a stop was requested by signal or `request_stop()`.
bool stop_requested();

/// Request a stop programmatically (tests, admin shutdown queries).
void request_stop();

/// Clear the flag (tests and between embedded CLI invocations).
void reset();

/// Register a file descriptor the signal handler writes one byte to on
/// delivery, so an epoll/select loop blocked in the kernel wakes up.
/// Pass -1 to unregister. The fd must stay valid while registered.
void set_wake_fd(int fd);

}  // namespace obscorr::interrupt
