#pragma once
/// \file binning.hpp
/// Binary-logarithmic binning, the pooling scheme the paper uses for all
/// probability distributions: bin i covers degrees [2^i, 2^(i+1)).
/// Consistent binning across data sets is what makes the Fig. 3-8
/// comparisons statistically meaningful (Clauset et al. 2009).

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace obscorr {

/// Index of the binary-logarithmic bin containing degree d >= 1:
/// bin(d) = floor(log2 d), so d in [2^i, 2^(i+1)) maps to i.
constexpr int log2_bin(std::uint64_t d) {
  if (d == 0) return -1;
  return static_cast<int>(std::bit_width(d)) - 1;
}

/// Lower edge 2^i of bin i.
constexpr std::uint64_t bin_lower(int i) { return 1ULL << i; }

/// Exclusive upper edge 2^(i+1) of bin i.
constexpr std::uint64_t bin_upper(int i) { return 2ULL << i; }

/// Geometric mid-point of bin i, the canonical x-coordinate when plotting
/// log-binned distributions.
double bin_center(int i);

/// Edges [2^0, 2^1, ..., 2^n] for n bins starting at degree 1.
std::vector<std::uint64_t> bin_edges(int n_bins);

}  // namespace obscorr
