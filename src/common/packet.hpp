#pragma once
/// \file packet.hpp
/// The minimal packet record flowing between the traffic generator and
/// the observatory simulators: an anonymizable (source, destination)
/// header pair. Everything the paper computes (Table II) derives from
/// these two fields; payloads never leave the sensors.

#include "common/ipv4.hpp"

namespace obscorr {

/// One captured packet header.
struct Packet {
  Ipv4 src;
  Ipv4 dst;

  friend constexpr bool operator==(const Packet&, const Packet&) = default;
};

}  // namespace obscorr
