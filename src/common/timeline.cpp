#include "common/timeline.hpp"

#include <charconv>
#include <cstdio>

#include "common/error.hpp"

namespace obscorr {

YearMonth::YearMonth(int year, int month) : year_(year), month_(month) {
  OBSCORR_REQUIRE(month >= 1 && month <= 12, "month must be in [1,12]");
}

namespace {
bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}
}  // namespace

int YearMonth::days() const {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month_ == 2 && is_leap(year_)) return 29;
  return kDays[month_ - 1];
}

YearMonth YearMonth::plus_months(int n) const {
  const int idx = index() + n;
  OBSCORR_REQUIRE(idx >= 0, "month arithmetic underflowed year 0");
  return YearMonth(idx / 12, idx % 12 + 1);
}

std::string YearMonth::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d", year_, month_);
  return buf;
}

std::optional<YearMonth> YearMonth::parse(std::string_view text) {
  if (text.size() != 7 || text[4] != '-') return std::nullopt;
  int year = 0;
  int month = 0;
  auto [p1, e1] = std::from_chars(text.data(), text.data() + 4, year);
  auto [p2, e2] = std::from_chars(text.data() + 5, text.data() + 7, month);
  if (e1 != std::errc{} || e2 != std::errc{} || p1 != text.data() + 4 ||
      p2 != text.data() + 7) {
    return std::nullopt;
  }
  if (month < 1 || month > 12) return std::nullopt;
  return YearMonth(year, month);
}

}  // namespace obscorr
