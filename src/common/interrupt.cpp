#include "common/interrupt.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OBSCORR_HAVE_SIGACTION 1
#include <csignal>
#include <unistd.h>
#endif

namespace obscorr::interrupt {

namespace {

std::atomic<bool> g_stop{false};
std::atomic<int> g_wake_fd{-1};

#ifdef OBSCORR_HAVE_SIGACTION
extern "C" void obscorr_stop_handler(int) {
  g_stop.store(true, std::memory_order_relaxed);
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // Best-effort: the loop also polls the flag, so a full pipe is fine.
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}
#endif

}  // namespace

bool install_handlers() {
#ifdef OBSCORR_HAVE_SIGACTION
  struct sigaction sa = {};
  sa.sa_handler = obscorr_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls return EINTR and re-check
  return ::sigaction(SIGINT, &sa, nullptr) == 0 && ::sigaction(SIGTERM, &sa, nullptr) == 0;
#else
  return false;
#endif
}

bool stop_requested() { return g_stop.load(std::memory_order_relaxed); }

void request_stop() {
#ifdef OBSCORR_HAVE_SIGACTION
  obscorr_stop_handler(0);
#else
  g_stop.store(true, std::memory_order_relaxed);
#endif
}

void reset() { g_stop.store(false, std::memory_order_relaxed); }

void set_wake_fd(int fd) { g_wake_fd.store(fd, std::memory_order_relaxed); }

}  // namespace obscorr::interrupt
