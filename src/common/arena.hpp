#pragma once
/// \file arena.hpp
/// Bump/region arena with epoch-stamped reset for per-window scratch.
///
/// The hot kernels (radix sort, carry merge) need short-lived scratch —
/// a scatter buffer and histograms per sealed block, a merged-row table
/// per ewise_add — whose lifetime is exactly one call. Round-tripping
/// malloc for them re-faults megabytes per window; the arena bump-
/// allocates out of pooled regions instead, so the same warm pages serve
/// every block of every window.
///
/// Lifecycle: allocations only move a cursor forward; `reset()` (or a
/// `Frame` popping) rewinds it and bumps the arena epoch — O(1), nothing
/// is freed, the next cycle reuses the same bytes. Pointers from an
/// earlier epoch are invalid; under ASan the rewound range is poisoned,
/// so use-after-reset reports like a heap error (common/asan.hpp).
///
/// `Frame` is the stack-discipline reset: it restores the cursor to its
/// construction mark on destruction. Kernels open a frame around their
/// scratch so nested uses compose — important because the thread pool's
/// help-draining can re-enter an arena-using kernel on the same thread
/// mid-`parallel_for`; a bare reset there would pull allocations out from
/// under the outer caller, a frame cannot. The rule for code that shares
/// an arena with nested pool work: take all arena allocations *before*
/// spawning the nested work, inside a frame.
///
/// Arenas are single-owner (not thread-safe); `scratch_arena()` hands
/// each thread its own.

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace obscorr::mem {

/// Region-backed bump allocator. Regions come from the BufferPool (so
/// they are recycled, page-aligned, and hugepage-backed when large) and
/// grow geometrically; they are only returned on destruction.
class Arena {
 public:
  /// Size of the first region; later regions double.
  static constexpr std::size_t kDefaultRegionBytes = std::size_t{1} << 16;  // 64 KiB

  explicit Arena(std::size_t first_region_bytes = kDefaultRegionBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` of storage aligned to `align` (power of two, <= 4096),
  /// valid until the enclosing frame pops or `reset()` runs.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Uninitialized span of `count` Ts. The element type must be
  /// trivially destructible — nothing runs at reset.
  template <typename T>
  std::span<T> alloc_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> && std::is_trivially_copyable_v<T>,
                  "arena spans are released without destructors");
    return {static_cast<T*>(allocate(count * sizeof(T), alignof(T))), count};
  }

  /// Rewind everything and start epoch + 1. O(1); regions are kept.
  void reset();

  /// Current epoch: increments on every reset and frame pop. Allocations
  /// from an earlier epoch must not be touched.
  std::uint64_t epoch() const { return epoch_; }

  /// Bytes currently allocated (rounded to the arena's 8-byte quantum).
  std::size_t bytes_in_use() const { return in_use_; }

  /// Bytes of region capacity held.
  std::size_t bytes_reserved() const;

  /// Largest bytes_in_use ever seen.
  std::size_t high_water() const { return high_water_; }

  /// Stack-scoped rewind: restores the arena cursor (and poisons the
  /// abandoned range under ASan) on destruction.
  class Frame {
   public:
    explicit Frame(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
    ~Frame() { arena_.rewind(mark_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    struct Mark {
      std::size_t region;
      std::size_t offset;
      std::size_t in_use;
    };
    friend class Arena;

    Arena& arena_;
    Mark mark_;
  };

 private:
  struct Region {
    std::byte* base = nullptr;
    std::size_t capacity = 0;
  };

  Frame::Mark mark() const { return {region_, offset_, in_use_}; }
  void rewind(const Frame::Mark& mark);
  void* allocate_slow(std::size_t bytes);

  std::vector<Region> regions_;
  std::size_t region_ = 0;  ///< index of the region the cursor is in
  std::size_t offset_ = 0;  ///< bump offset within regions_[region_]
  std::size_t first_region_bytes_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t epoch_ = 1;
};

/// This thread's kernel-scratch arena (thread_local, pool-backed). The
/// gbl sort/merge kernels draw their scratch here inside frames.
Arena& scratch_arena();

/// Peak resident set size of the process in bytes (getrusage); 0 when
/// the platform doesn't report it. Surfaced by `--timing`.
std::size_t peak_rss_bytes();

}  // namespace obscorr::mem
