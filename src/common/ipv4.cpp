#include "common/ipv4.hpp"

#include <charconv>

#include "common/error.hpp"

namespace obscorr {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(static_cast<unsigned>(octet(i)));
  }
  return out;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal forms).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4(value);
}

Ipv4Prefix::Ipv4Prefix(Ipv4 base, int length) : base_(base), length_(length) {
  OBSCORR_REQUIRE(length >= 0 && length <= 32, "prefix length must be in [0,32]");
  if (length < 32) {
    const std::uint32_t mask = length == 0 ? 0U : ~0U << (32 - length);
    base_ = Ipv4(base.value() & mask);
  }
}

Ipv4 Ipv4Prefix::at(std::uint64_t i) const {
  OBSCORR_REQUIRE(i < size(), "prefix address index out of range");
  return Ipv4(base_.value() + static_cast<std::uint32_t>(i));
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = Ipv4::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  int length = -1;
  const auto len_text = text.substr(slash + 1);
  auto [next, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size()) return std::nullopt;
  if (length < 0 || length > 32) return std::nullopt;
  return Ipv4Prefix(*base, length);
}

}  // namespace obscorr
