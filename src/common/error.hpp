#pragma once
/// \file error.hpp
/// Error handling for the obscorr libraries.
///
/// The libraries are exception-based: precondition violations throw
/// `std::invalid_argument` (caller bug) and internal invariant violations
/// throw `obscorr::InternalError` (library bug). No error codes, no abort.

#include <stdexcept>
#include <string>

namespace obscorr {

/// Thrown when an internal invariant of the library is violated.
/// Seeing this exception always indicates a bug in obscorr itself.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  throw std::invalid_argument(std::string("requirement failed: ") + expr + " at " + file + ":" +
                              std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line) {
  throw InternalError(std::string("invariant violated: ") + expr + " at " + file + ":" +
                      std::to_string(line));
}
}  // namespace detail

}  // namespace obscorr

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define OBSCORR_REQUIRE(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) ::obscorr::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validate an internal invariant; throws obscorr::InternalError.
#define OBSCORR_INVARIANT(expr)                                                 \
  do {                                                                          \
    if (!(expr)) ::obscorr::detail::throw_invariant(#expr, __FILE__, __LINE__); \
  } while (false)
