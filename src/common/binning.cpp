#include "common/binning.hpp"

#include <cmath>

namespace obscorr {

double bin_center(int i) {
  OBSCORR_REQUIRE(i >= 0, "bin index must be non-negative");
  return std::exp2(static_cast<double>(i) + 0.5);
}

std::vector<std::uint64_t> bin_edges(int n_bins) {
  OBSCORR_REQUIRE(n_bins >= 0 && n_bins < 64, "bin count must be in [0,64)");
  std::vector<std::uint64_t> edges(static_cast<std::size_t>(n_bins) + 1);
  for (int i = 0; i <= n_bins; ++i) edges[static_cast<std::size_t>(i)] = 1ULL << i;
  return edges;
}

}  // namespace obscorr
