#pragma once
/// \file prng.hpp
/// Deterministic pseudo-random number generation for reproducible
/// simulation. Every generator is seedable and every derived stream is a
/// pure function of (seed, stream id), so experiments are bit-reproducible
/// regardless of thread count or evaluation order.

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace obscorr {

/// SplitMix64: tiny, fast, passes BigCrush when used as a seeder.
/// Used to expand a single 64-bit seed into generator state and to derive
/// independent stream seeds (Vigna 2015).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): the workhorse generator.
/// State is seeded through SplitMix64 so any 64-bit seed is valid,
/// including zero.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a seed; identical seeds give identical sequences.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Construct an independent stream: a pure function of (seed, stream).
  /// Streams with distinct ids are statistically independent, which makes
  /// per-source / per-month / per-thread substreams reproducible no matter
  /// how work is scheduled.
  Rng(std::uint64_t seed, std::uint64_t stream);

  // next/uniform/uniform_u64/bernoulli are defined inline: they sit in
  // the per-packet hot loops of traffic generation and block ingest,
  // where the cross-TU call would block inlining the whole sample chain.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }
  std::uint64_t operator()() { return next(); }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire rejection).
  std::uint64_t uniform_u64(std::uint64_t n) {
    OBSCORR_REQUIRE(n > 0, "uniform_u64: n must be positive");
    // Lemire's nearly-divisionless unbiased bounded sampling.
    __extension__ typedef unsigned __int128 Uint128;
    std::uint64_t x = next();
    Uint128 m = static_cast<Uint128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<Uint128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next() >> 32); }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Standard normal via Box-Muller (no cached spare: keeps streams
  /// stateless-per-call and simple to reason about).
  double normal();

  /// Normal with mean mu and standard deviation sigma >= 0.
  double normal(double mu, double sigma);

  /// Beta(a, 1) variate: density a*x^(a-1) on (0,1); sampled as U^(1/a).
  /// This is the persistence distribution of the drifting-beam model:
  /// E[X^k] = a / (a + k), the paper's modified Cauchy with alpha = 1.
  double beta_a1(double a);

  /// Poisson with mean lambda >= 0 (Knuth for small lambda, PTRS rejection
  /// for large lambda).
  std::uint64_t poisson(double lambda);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Walker alias method for O(1) sampling from a fixed discrete
/// distribution. Build is O(n); memory is 2 words per outcome.
/// Used to draw packet sources from the Zipf-Mandelbrot population.
class AliasTable {
 public:
  /// Build from non-negative weights, at least one strictly positive.
  explicit AliasTable(std::span<const double> weights);

  /// Draw an index in [0, size()).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

  /// The acceptance probabilities and alias slots backing `sample`,
  /// exposed for vectorized batch sampling (gather + compare + blend).
  /// `sample(rng)` is exactly: `i = rng.uniform_u64(size());
  /// rng.uniform() < probs()[i] ? i : aliases()[i]` — batch callers must
  /// reproduce that draw order to stay stream-identical.
  std::span<const double> probs() const { return prob_; }
  std::span<const std::uint32_t> aliases() const { return alias_; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace obscorr
