#include "common/cli.hpp"

#include <algorithm>
#include <charconv>

#include "common/error.hpp"

namespace obscorr {

CliArgs CliArgs::parse(const std::vector<std::string>& args,
                       const std::vector<std::string>& switches) {
  CliArgs out;
  const auto is_switch = [&](const std::string& name) {
    return std::find(switches.begin(), switches.end(), name) != switches.end();
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0) {
      out.positional_.push_back(token);
      continue;
    }
    OBSCORR_REQUIRE(token.size() > 2, "bare '--' is not a valid option");
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      out.options_[token.substr(2, eq - 2)] = token.substr(eq + 1);
      continue;
    }
    const std::string name = token.substr(2);
    if (is_switch(name)) {
      out.options_[name] = "";
      continue;
    }
    OBSCORR_REQUIRE(i + 1 < args.size(), "option --" + name + " needs a value");
    out.options_[name] = args[++i];
  }
  for (const auto& [name, value] : out.options_) out.consumed_[name] = false;
  return out;
}

bool CliArgs::has(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto raw = get(name);
  if (!raw.has_value()) return fallback;
  std::int64_t value = 0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  auto [p, ec] = std::from_chars(begin, end, value);
  OBSCORR_REQUIRE(ec == std::errc{} && p == end, "option --" + name + " expects an integer");
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto raw = get(name);
  if (!raw.has_value()) return fallback;
  double value = 0.0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  auto [p, ec] = std::from_chars(begin, end, value);
  OBSCORR_REQUIRE(ec == std::errc{} && p == end, "option --" + name + " expects a number");
  return value;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, used] : consumed_) {
    if (!used) names.push_back(name);
  }
  return names;
}

}  // namespace obscorr
