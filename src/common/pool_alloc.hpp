#pragma once
/// \file pool_alloc.hpp
/// Size-classed recycling pool for the pipeline's recurring large blocks.
///
/// The capture pipeline allocates the same handful of big buffers over
/// and over: packed-key block arrays, radix scatter buffers, DCSR column
/// and value arrays, carry-merge outputs, packet staging buffers. glibc
/// serves multi-megabyte requests straight from `mmap` and returns them
/// with `munmap`, so every window re-faults its working set from zero
/// pages — at bench scale the pipeline spends a large share of its time
/// in page faults and kernel zeroing instead of the SIMD kernels
/// (docs/performance.md, "Memory model").
///
/// `BufferPool` keeps those blocks alive: requests of 64 KiB and up are
/// rounded to a power-of-two size class and served from a per-class free
/// list when possible, so steady-state windows run at a ~100% hit rate
/// with zero page-fault traffic. Fresh class blocks come from anonymous
/// `mmap` and classes of 2 MiB+ are advised `MADV_HUGEPAGE` (graceful
/// fallback when either is unavailable; `OBSCORR_NO_HUGEPAGES=1` forces
/// it off). Pages are intentionally *not* pre-touched: first touch stays
/// with the consuming thread, which keeps pages NUMA-local to their
/// owner. Requests below 64 KiB pass through to `operator new` — small
/// test matrices should not pin size-class blocks.
///
/// `PoolAllocator<T>` / `PoolVec<T>` adapt the pool to standard
/// containers. Swapping a vector's allocator never changes its element
/// sequence, so pool-backed pipeline output stays byte-identical to the
/// heap-backed build (the golden-archive and determinism suites pin
/// this).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace obscorr::mem {

/// Process-wide size-classed block pool. Thread-safe; `allocate` and
/// `deallocate` take one per-class mutex on the pooled path.
class BufferPool {
 public:
  struct Config {
    /// Advise transparent hugepages for classes of `kHugepageBytes`+.
    bool hugepages = true;
    /// Cache freed blocks for reuse. Off, every deallocation releases to
    /// the OS — the bench harness measures the allocator wall with this.
    bool recycle = true;
    /// Free-list depth per size class; blocks beyond it are released.
    std::size_t max_cached_per_class = 8;
  };

  /// Pool totals since construction (always tracked; the `mem.pool_*`
  /// telemetry mirrors the hit/miss/high-water values when armed). Only
  /// pooled-class requests (>= kMinPooledBytes) are counted.
  struct Stats {
    std::uint64_t hits = 0;            ///< allocations served from a free list
    std::uint64_t misses = 0;          ///< allocations that went to the OS
    std::uint64_t outstanding_bytes = 0;  ///< pooled bytes currently handed out
    std::uint64_t high_water_bytes = 0;   ///< max outstanding_bytes ever
    std::uint64_t hugepage_bytes = 0;  ///< cumulative bytes advised MADV_HUGEPAGE
    std::uint64_t cached_blocks = 0;   ///< blocks currently in free lists
  };

  explicit BufferPool(Config config);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The process pool (leaked singleton, safe during static teardown).
  /// Honors OBSCORR_NO_HUGEPAGES=1 and OBSCORR_NO_POOL=1 at first use.
  static BufferPool& instance();

  /// A block of at least `bytes` bytes. Pooled blocks (>= kMinPooledBytes)
  /// are `kBlockAlignment`-aligned; smaller requests have `operator new`
  /// alignment. Throws std::bad_alloc when the OS refuses.
  void* allocate(std::size_t bytes);

  /// Return a block; `bytes` must be the value passed to `allocate`.
  void deallocate(void* ptr, std::size_t bytes) noexcept;

  Stats stats() const;

  /// Release every cached block to the OS.
  void trim();

  /// Toggle recycling at runtime (disabling trims the free lists).
  void set_recycle(bool on);

  bool hugepages_enabled() const { return config_.hugepages; }

  /// Smallest request the pool manages; below it, plain heap.
  static constexpr std::size_t kMinPooledBytes = std::size_t{1} << 16;  // 64 KiB
  /// Largest pooled size class; above it, blocks are never cached.
  static constexpr std::size_t kMaxPooledBytes = std::size_t{1} << 30;  // 1 GiB
  /// Class size from which hugepage backing is advised.
  static constexpr std::size_t kHugepageBytes = std::size_t{1} << 21;  // 2 MiB
  /// Alignment of every pooled block (page-aligned via mmap or aligned new).
  static constexpr std::size_t kBlockAlignment = 4096;

  /// Bytes actually reserved for a request: the enclosing power-of-two
  /// size class for pooled sizes, the request itself otherwise.
  static std::size_t class_bytes(std::size_t bytes);

 private:
  static constexpr std::size_t kMinClassLog2 = 16;
  static constexpr std::size_t kMaxClassLog2 = 30;
  static constexpr std::size_t kClasses = kMaxClassLog2 - kMinClassLog2 + 1;

  struct alignas(64) SizeClass {
    std::mutex mutex;
    std::vector<void*> free_list;
  };

  static std::size_t class_index(std::size_t bytes);

  void* map_block(std::size_t bytes);
  void unmap_block(void* ptr, std::size_t bytes) noexcept;
  void note_outstanding(std::int64_t delta);

  Config config_;
  std::atomic<bool> recycle_;
  std::array<SizeClass, kClasses> classes_;
  /// Rare path: blocks served by aligned `operator new` because `mmap`
  /// failed (or the request was over kMaxPooledBytes); consulted only
  /// when a block leaves the pool for good.
  std::mutex heap_blocks_mutex_;
  std::unordered_set<void*> heap_blocks_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> outstanding_bytes_{0};
  std::atomic<std::uint64_t> high_water_bytes_{0};
  std::atomic<std::uint64_t> hugepage_bytes_{0};
  std::atomic<std::uint64_t> cached_blocks_{0};
};

/// Standard allocator over the process BufferPool. Stateless: all
/// instances compare equal, so containers move and swap freely.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(BufferPool::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* ptr, std::size_t n) noexcept {
    BufferPool::instance().deallocate(ptr, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) { return true; }
};

/// A std::vector whose heap traffic goes through the BufferPool. Element
/// semantics (and `operator==`, spans, iteration) are unchanged — only
/// where the bytes come from differs.
template <typename T>
using PoolVec = std::vector<T, PoolAllocator<T>>;

}  // namespace obscorr::mem
