#include "common/pool_alloc.hpp"

#include <algorithm>
#include <bit>
#include <new>

#include "common/asan.hpp"
#include "common/env.hpp"
#include "obs/telemetry.hpp"

#if defined(__unix__)
#include <sys/mman.h>
#endif

namespace obscorr::mem {

namespace {

void flush_pool_counters(bool hit, std::uint64_t outstanding) {
  if (!obs::counters_enabled()) return;
  static obs::Counter& hits = obs::counter("mem.pool_hits");
  static obs::Counter& misses = obs::counter("mem.pool_misses");
  static obs::Gauge& high_water = obs::gauge("mem.pool_high_water");
  (hit ? hits : misses).add(1);
  high_water.record_max(outstanding);
}

}  // namespace

std::size_t BufferPool::class_index(std::size_t bytes) {
  const std::size_t rounded = std::bit_ceil(std::max(bytes, kMinPooledBytes));
  return static_cast<std::size_t>(std::countr_zero(rounded)) - kMinClassLog2;
}

std::size_t BufferPool::class_bytes(std::size_t bytes) {
  if (bytes < kMinPooledBytes || bytes > kMaxPooledBytes) return bytes;
  return std::bit_ceil(bytes);
}

BufferPool::BufferPool(Config config) : config_(config), recycle_(config.recycle) {}

BufferPool::~BufferPool() { trim(); }

BufferPool& BufferPool::instance() {
  // Leaked: thread_local arenas (and so pooled blocks) are destroyed
  // during thread/static teardown, which must still find a live pool.
  static BufferPool* pool = new BufferPool(Config{
      .hugepages = env_int("OBSCORR_NO_HUGEPAGES", 0) == 0,
      .recycle = env_int("OBSCORR_NO_POOL", 0) == 0,
  });
  return *pool;
}

void* BufferPool::map_block(std::size_t bytes) {
#if defined(__unix__)
  if (bytes <= kMaxPooledBytes) {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
#if defined(MADV_HUGEPAGE)
      if (config_.hugepages && bytes >= kHugepageBytes &&
          ::madvise(p, bytes, MADV_HUGEPAGE) == 0) {
        const std::uint64_t total =
            hugepage_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
        if (obs::counters_enabled()) {
          static obs::Gauge& hugepages = obs::gauge("mem.hugepage_bytes");
          hugepages.record_max(total);
        }
      }
#endif
      return p;
    }
  }
#endif
  // Graceful fallback (mmap exhausted/unavailable, or an over-kMaxPooledBytes
  // request): aligned heap block, remembered so the final free matches.
  void* p = ::operator new(bytes, std::align_val_t{kBlockAlignment});
  const std::scoped_lock lock(heap_blocks_mutex_);
  heap_blocks_.insert(p);
  return p;
}

void BufferPool::unmap_block(void* ptr, std::size_t bytes) noexcept {
  {
    const std::scoped_lock lock(heap_blocks_mutex_);
    const auto it = heap_blocks_.find(ptr);
    if (it != heap_blocks_.end()) {
      heap_blocks_.erase(it);
      ::operator delete(ptr, std::align_val_t{kBlockAlignment});
      return;
    }
  }
#if defined(__unix__)
  ::munmap(ptr, bytes);
#else
  (void)bytes;
#endif
}

void BufferPool::note_outstanding(std::int64_t delta) {
  const std::uint64_t now = outstanding_bytes_.fetch_add(static_cast<std::uint64_t>(delta),
                                                         std::memory_order_relaxed) +
                            static_cast<std::uint64_t>(delta);
  if (delta <= 0) return;
  std::uint64_t high = high_water_bytes_.load(std::memory_order_relaxed);
  while (high < now &&
         !high_water_bytes_.compare_exchange_weak(high, now, std::memory_order_relaxed)) {
  }
}

void* BufferPool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes < kMinPooledBytes) return ::operator new(bytes);
  const std::size_t size = class_bytes(bytes);
  bool hit = false;
  void* p = nullptr;
  if (bytes <= kMaxPooledBytes) {
    SizeClass& sc = classes_[class_index(bytes)];
    const std::scoped_lock lock(sc.mutex);
    if (recycle_.load(std::memory_order_relaxed) && !sc.free_list.empty()) {
      p = sc.free_list.back();
      sc.free_list.pop_back();
      hit = true;
    }
  }
  if (hit) {
    cached_blocks_.fetch_sub(1, std::memory_order_relaxed);
    OBSCORR_ASAN_UNPOISON(p, size);
  } else {
    p = map_block(size);
  }
  hits_.fetch_add(hit ? 1 : 0, std::memory_order_relaxed);
  misses_.fetch_add(hit ? 0 : 1, std::memory_order_relaxed);
  note_outstanding(static_cast<std::int64_t>(size));
  flush_pool_counters(hit, outstanding_bytes_.load(std::memory_order_relaxed));
  return p;
}

void BufferPool::deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes < kMinPooledBytes) {
    ::operator delete(ptr);
    return;
  }
  const std::size_t size = class_bytes(bytes);
  note_outstanding(-static_cast<std::int64_t>(size));
  if (bytes <= kMaxPooledBytes && recycle_.load(std::memory_order_relaxed)) {
    SizeClass& sc = classes_[class_index(bytes)];
    const std::scoped_lock lock(sc.mutex);
    if (sc.free_list.size() < config_.max_cached_per_class) {
      sc.free_list.push_back(ptr);
      cached_blocks_.fetch_add(1, std::memory_order_relaxed);
      OBSCORR_ASAN_POISON(ptr, size);
      return;
    }
  }
  unmap_block(ptr, size);
}

BufferPool::Stats BufferPool::stats() const {
  return Stats{
      .hits = hits_.load(std::memory_order_relaxed),
      .misses = misses_.load(std::memory_order_relaxed),
      .outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed),
      .high_water_bytes = high_water_bytes_.load(std::memory_order_relaxed),
      .hugepage_bytes = hugepage_bytes_.load(std::memory_order_relaxed),
      .cached_blocks = cached_blocks_.load(std::memory_order_relaxed),
  };
}

void BufferPool::trim() {
  for (std::size_t c = 0; c < kClasses; ++c) {
    std::vector<void*> drop;
    {
      const std::scoped_lock lock(classes_[c].mutex);
      drop.swap(classes_[c].free_list);
    }
    const std::size_t size = std::size_t{1} << (kMinClassLog2 + c);
    for (void* p : drop) {
      OBSCORR_ASAN_UNPOISON(p, size);
      unmap_block(p, size);
    }
    cached_blocks_.fetch_sub(drop.size(), std::memory_order_relaxed);
  }
}

void BufferPool::set_recycle(bool on) {
  recycle_.store(on, std::memory_order_relaxed);
  if (!on) trim();
}

}  // namespace obscorr::mem
