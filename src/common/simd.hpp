#pragma once
/// \file simd.hpp
/// Runtime SIMD dispatch for the pipeline's hot kernels.
///
/// The four hottest loops — batched packet ingest, the 6x11-bit LSD
/// radix sort, the DCSR ewise_add column merge, and the Table II span
/// reductions — each ship a scalar implementation and a vectorized
/// variant in a sibling `*_simd.cpp` translation unit. Which variant
/// runs is a process-wide *tier* resolved at startup from cpuid and
/// clamped by two overrides:
///
///   OBSCORR_SIMD=scalar|sse42|avx2   environment cap (invalid = auto)
///   --simd scalar|sse42|avx2|auto    CLI override (beats the env var)
///
/// Every vectorized variant is bit-identical to its scalar fallback:
/// same packet streams, same sort order, same sums. Floating-point
/// reductions keep that promise because pipeline values are exact
/// integer packet counts (every partial sum is an integer below 2^53,
/// so lane-split accumulation commits the same bits as a left fold);
/// the kernels document that contract where it applies. The golden
/// study archive and the determinism suite therefore hold at any tier,
/// and the differential suites in tests/ assert byte equality between
/// forced-scalar and vectorized runs of every kernel.
///
/// The selected tier is observable: `--timing` prints it, the metrics
/// export carries a `simd.tier` gauge (0 scalar, 1 sse42, 2 avx2), and
/// per-kernel `simd.dispatch_*` counters record how many times each
/// vectorized kernel actually ran.

#include <optional>
#include <string_view>

namespace obscorr::simd {

/// Instruction-set tiers, ordered: a kernel compiled for tier T may run
/// whenever the active tier is >= T. kSse42 exists for hosts with SSE4.2
/// but no AVX2 (the CRC32C path keys off it); the four hot kernels ship
/// scalar and AVX2 variants, so kSse42 runs their scalar fallback.
enum class Tier : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Highest tier the CPU supports (cpuid, cached after the first call).
/// Always kScalar on non-x86 builds.
Tier detected_tier();

/// The tier kernels dispatch on: `detected_tier()` capped by the
/// OBSCORR_SIMD environment variable and any `set_tier` override.
/// Never exceeds `detected_tier()` — forcing avx2 on a host without it
/// clamps down, it does not crash.
Tier active_tier();

/// Override the active tier for the rest of the process (the CLI --simd
/// flag). The request is clamped to `detected_tier()`. Passing
/// std::nullopt restores auto (env cap, then detection).
void set_tier(std::optional<Tier> tier);

/// Parse "scalar" / "sse42" / "avx2"; nullopt for anything else
/// (including "auto", which callers map to set_tier(nullopt)).
std::optional<Tier> parse_tier(std::string_view name);

/// Canonical lower-case tier name ("scalar", "sse42", "avx2").
std::string_view tier_name(Tier tier);

/// True when the active tier runs the AVX2 kernel variants. This is the
/// hot-path dispatch predicate: one relaxed atomic load.
bool use_avx2();

}  // namespace obscorr::simd
