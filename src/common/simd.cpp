#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace obscorr::simd {

namespace {

Tier detect() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Tier::kSse42;
#endif
  return Tier::kScalar;
}

Tier clamp_to_detected(Tier tier) {
  return static_cast<int>(tier) <= static_cast<int>(detected_tier()) ? tier : detected_tier();
}

/// Tier implied by the environment when no set_tier override is active:
/// detection capped by OBSCORR_SIMD. Read once — the environment is not
/// expected to change under a running process.
Tier env_tier() {
  static const Tier tier = [] {
    const char* raw = std::getenv("OBSCORR_SIMD");
    if (raw != nullptr && *raw != '\0') {
      if (auto parsed = parse_tier(raw)) return clamp_to_detected(*parsed);
    }
    return detected_tier();
  }();
  return tier;
}

/// Active tier as a plain int so kernels pay one relaxed load per
/// dispatch. -1 means "no override": fall through to env_tier().
std::atomic<int>& override_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

Tier detected_tier() {
  static const Tier tier = detect();
  return tier;
}

Tier active_tier() {
  const int forced = override_slot().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return env_tier();
}

void set_tier(std::optional<Tier> tier) {
  if (!tier.has_value()) {
    override_slot().store(-1, std::memory_order_relaxed);
    return;
  }
  override_slot().store(static_cast<int>(clamp_to_detected(*tier)), std::memory_order_relaxed);
}

std::optional<Tier> parse_tier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "sse42") return Tier::kSse42;
  if (name == "avx2") return Tier::kAvx2;
  return std::nullopt;
}

std::string_view tier_name(Tier tier) {
  switch (tier) {
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

bool use_avx2() { return active_tier() == Tier::kAvx2; }

}  // namespace obscorr::simd
