#pragma once
/// \file thread_pool.hpp
/// A small work-stealing-free thread pool with a blocking `parallel_for`.
///
/// The GraphBLAS-style kernels (tuple sort, block merge, reductions) are
/// written against this pool rather than OpenMP so the parallelism is
/// explicit, testable at any thread count, and deterministic: ranges are
/// split statically, so results never depend on scheduling.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace obscorr {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawn `threads` workers (>= 1). The default uses hardware concurrency.
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (violations terminate).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// max(1, hardware_concurrency).
  static std::size_t default_thread_count();

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Statically partition [begin, end) into ~`pool.thread_count()` chunks and
/// run `body(chunk_begin, chunk_end)` on the pool; blocks until complete.
/// Partitioning depends only on (range, thread count), never on timing, so
/// any reduction the caller does per-chunk is reproducible.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace obscorr
