#pragma once
/// \file thread_pool.hpp
/// A small work-stealing-free thread pool with a blocking `parallel_for`.
///
/// The GraphBLAS-style kernels (tuple sort, block merge, reductions) are
/// written against this pool rather than OpenMP so the parallelism is
/// explicit, testable at any thread count, and deterministic: ranges are
/// split statically, so results never depend on scheduling.
///
/// The pool tolerates nesting: a task (or `parallel_for` body) running on
/// a worker may itself call `parallel_for` on the same pool. Instead of
/// sleeping on work it may be blocking, a waiting caller helps drain the
/// queue (`run_one_task`), so every pending chunk is always either queued
/// or executing on some thread and progress is guaranteed at any thread
/// count, including one. (`wait_idle` helps the same way, but waits for
/// ALL tasks — including the caller's own, so only call it from threads
/// outside the pool.)

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace obscorr {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawn `threads` workers (>= 1). The default uses hardware concurrency.
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (violations terminate).
  void submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread; false when the
  /// queue was empty. This is how blocked waiters help instead of
  /// deadlocking when every worker is itself waiting on nested work.
  bool run_one_task();

  /// Block until every submitted task has finished, helping drain the
  /// queue while waiting (safe to call from inside a pool task).
  void wait_idle();

  /// max(1, hardware_concurrency).
  static std::size_t default_thread_count();

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

namespace detail {

/// Non-owning type-erased view of a `parallel_for` body. Keeps the
/// chunked implementation out of line without a `std::function`
/// allocation per call; only valid for the duration of the call.
class ParallelBody {
 public:
  template <typename F>
  explicit ParallelBody(const F& f)
      : object_(&f), call_([](const void* o, std::size_t b, std::size_t e) {
          (*static_cast<const F*>(o))(b, e);
        }) {}

  void operator()(std::size_t b, std::size_t e) const { call_(object_, b, e); }

 private:
  const void* object_;
  void (*call_)(const void*, std::size_t, std::size_t);
};

void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end, ParallelBody body);

}  // namespace detail

/// Ranges shorter than this run inline on the caller: a chunk task costs
/// a queue round-trip and a `std::function` allocation, which dwarfs the
/// body on tiny ranges.
inline constexpr std::size_t kParallelForInlineCutoff = 2;

/// Statically partition [begin, end) into ~`pool.thread_count()` chunks and
/// run `body(chunk_begin, chunk_end)` on the pool; blocks until complete.
/// Partitioning depends only on (range, thread count), never on timing, so
/// any reduction the caller does per-chunk is reproducible. Tiny ranges
/// and 1-thread pools run the body inline as the single chunk
/// [begin, end); nested calls from pool tasks are safe (see class docs).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, const Body& body) {
  if (begin >= end) return;
  if (end - begin < kParallelForInlineCutoff || pool.thread_count() == 1) {
    body(begin, end);
    return;
  }
  detail::parallel_for_chunked(pool, begin, end, detail::ParallelBody(body));
}

/// Convenience overload on the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

}  // namespace obscorr
