#pragma once
/// \file table.hpp
/// Plain-text table rendering for the experiment benches: every
/// table/figure harness prints its rows through `TextTable` so output is
/// column-aligned and diffable, plus CSV emission for downstream plotting.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace obscorr {

/// Column-aligned text table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row; resets column count expectations.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width when a header is set.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with aligned columns (numbers right-aligned heuristically).
  void print(std::ostream& os) const;

  /// Render as CSV (no title, header first when present).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers used by the bench harnesses.
std::string fmt_double(double v, int precision = 4);
std::string fmt_sci(double v, int precision = 3);
std::string fmt_percent(double fraction, int precision = 1);
/// Thousands-separated integer, e.g. 2,752,690 (Table I style).
std::string fmt_count(std::uint64_t v);

}  // namespace obscorr
