#pragma once
/// \file cli.hpp
/// Minimal command-line argument parsing for the obscorr tools: GNU-style
/// long options (`--name value` or `--name=value`), boolean switches, and
/// positional arguments, with typed accessors and unknown-option
/// detection. Deliberately tiny — enough for the tool surface, fully
/// unit-testable, no global state.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace obscorr {

/// Parsed command line.
class CliArgs {
 public:
  /// Parse argv-style input (excluding the program name). `switches`
  /// lists option names that take no value; every other `--name` consumes
  /// the next token (or its `=value` suffix). Throws std::invalid_argument
  /// on a missing value or a token like `--` with no name.
  static CliArgs parse(const std::vector<std::string>& args,
                       const std::vector<std::string>& switches = {});

  /// True when `--name` appeared (switch or valued).
  bool has(const std::string& name) const;

  /// Value of `--name`; nullopt when absent.
  std::optional<std::string> get(const std::string& name) const;

  /// Value of `--name` or `fallback`.
  std::string get_or(const std::string& name, const std::string& fallback) const;

  /// Integer value of `--name` or `fallback`; throws on non-numeric.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Floating-point value of `--name` or `fallback`; throws on non-numeric.
  double get_double(const std::string& name, double fallback) const;

  /// Tokens that were not options (e.g. the subcommand name).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Option names that were parsed but never queried — typo detection.
  /// Call after all lookups; returns unconsumed names sorted.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace obscorr
