#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/telemetry.hpp"

namespace obscorr {

namespace {

/// Run one task under telemetry: count it and accumulate its wall time
/// as pool busy time. The disabled path is a single branch on the
/// cached level flag; no clock reads, no atomics.
void run_task_instrumented(std::function<void()>& task, bool is_help_drain) {
  if (!obs::counters_enabled()) {
    task();
    return;
  }
  static obs::Counter& tasks_executed = obs::counter("threadpool.tasks_executed");
  static obs::Counter& busy_ns = obs::counter("threadpool.busy_ns");
  static obs::Counter& help_drains = obs::counter("threadpool.help_drains");
  const std::uint64_t start = obs::now_ns();
  task();
  tasks_executed.add(1);
  busy_ns.add(obs::now_ns() - start);
  if (is_help_drain) help_drains.add(1);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  OBSCORR_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
    if (obs::counters_enabled()) {
      static obs::Gauge& high_water = obs::gauge("threadpool.queue_high_water");
      high_water.record_max(tasks_.size());
    }
  }
  task_available_.notify_one();
  // Wake helpers parked in wait_idle: new work is something they can run.
  all_done_.notify_all();
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    std::scoped_lock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  run_task_instrumented(task, /*is_help_drain=*/true);
  {
    std::scoped_lock lock(mutex_);
    if (--in_flight_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::wait_idle() {
  for (;;) {
    if (run_one_task()) continue;
    std::unique_lock lock(mutex_);
    if (in_flight_ == 0) return;
    // Queue empty but tasks still running elsewhere: sleep until they
    // finish or submit new work we can help with.
    all_done_.wait(lock, [this] { return in_flight_ == 0 || !tasks_.empty(); });
    if (in_flight_ == 0) return;
  }
}

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    run_task_instrumented(task, /*is_help_drain=*/false);
    {
      std::scoped_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace detail {

void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          ParallelBody body) {
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(pool.thread_count(), n);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  // Static split: chunk boundaries depend only on (n, chunks).
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t start = begin;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    ranges.emplace_back(start, start + len);
    start += len;
  }
  OBSCORR_INVARIANT(start == end);

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = ranges.size() - 1;
  for (std::size_t c = 0; c + 1 < ranges.size(); ++c) {
    pool.submit([&, c] {
      body(ranges[c].first, ranges[c].second);
      std::scoped_lock lock(done_mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  body(ranges.back().first, ranges.back().second);
  // Help drain the queue instead of sleeping: when this caller is itself
  // a pool worker, its remaining chunks may sit queued behind it, and
  // with every worker doing the same a sleeping wait would deadlock.
  // Sleeping is safe only once the queue is empty — then every
  // outstanding chunk is already executing on some other thread.
  for (;;) {
    {
      std::unique_lock lock(done_mutex);
      if (remaining == 0) return;
    }
    if (!pool.run_one_task()) {
      std::unique_lock lock(done_mutex);
      done_cv.wait(lock, [&] { return remaining == 0; });
      return;
    }
  }
}

}  // namespace detail

}  // namespace obscorr
