#pragma once
/// \file timeline.hpp
/// Calendar month arithmetic for the observation timeline. The study spans
/// 15 GreyNoise months (2020-02 .. 2021-04) with CAIDA snapshots at
/// ~6-week spacing; temporal correlations are indexed by month offsets
/// `t - t0`, so months are the natural time unit.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace obscorr {

/// A calendar year-month, with arithmetic in whole months.
class YearMonth {
 public:
  constexpr YearMonth() = default;
  /// month is 1-based (1 = January).
  YearMonth(int year, int month);

  int year() const { return year_; }
  int month() const { return month_; }

  /// Days in this month (Gregorian, leap-aware) — the Table I "duration".
  int days() const;

  /// Month index since year 0 for offset arithmetic.
  int index() const { return year_ * 12 + (month_ - 1); }

  /// Signed whole-month distance `*this - other`.
  int months_since(YearMonth other) const { return index() - other.index(); }

  /// The month `n` steps later (n may be negative).
  YearMonth plus_months(int n) const;

  /// Render as "2020-02".
  std::string to_string() const;

  /// Parse "YYYY-MM"; nullopt on malformation.
  static std::optional<YearMonth> parse(std::string_view text);

  friend constexpr auto operator<=>(const YearMonth&, const YearMonth&) = default;

 private:
  int year_ = 2020;
  int month_ = 1;
};

/// Seconds in a day, used to convert month durations.
inline constexpr std::int64_t kSecondsPerDay = 86400;

}  // namespace obscorr
