#include "common/arena.hpp"

#include <algorithm>

#include "common/asan.hpp"
#include "common/error.hpp"
#include "common/pool_alloc.hpp"
#include "obs/telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace obscorr::mem {

namespace {

/// Allocation quantum: sizes and the cursor round to 8 bytes so ASan's
/// shadow granules never straddle two live allocations.
constexpr std::size_t kQuantum = 8;

constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

void note_arena_alloc(std::size_t bytes) {
  if (!obs::counters_enabled()) return;
  static obs::Counter& total = obs::counter("mem.arena_bytes");
  total.add(bytes);
}

void note_arena_reset(std::size_t high_water) {
  if (!obs::counters_enabled()) return;
  static obs::Counter& resets = obs::counter("mem.arena_resets");
  static obs::Gauge& high = obs::gauge("mem.arena_high_water");
  resets.add(1);
  high.record_max(high_water);
}

}  // namespace

Arena::Arena(std::size_t first_region_bytes)
    : first_region_bytes_(std::max(first_region_bytes, kQuantum)) {}

Arena::~Arena() {
  for (const Region& r : regions_) {
    OBSCORR_ASAN_UNPOISON(r.base, r.capacity);
    BufferPool::instance().deallocate(r.base, r.capacity);
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  OBSCORR_REQUIRE(align != 0 && (align & (align - 1)) == 0 && align <= BufferPool::kBlockAlignment,
                  "Arena::allocate: alignment must be a power of two <= 4096");
  bytes = round_up(std::max<std::size_t>(bytes, 1), kQuantum);
  align = std::max(align, kQuantum);
  void* p = nullptr;
  if (region_ < regions_.size()) {
    // Region bases are page-aligned, so aligning the offset aligns the
    // pointer.
    const std::size_t at = round_up(offset_, align);
    if (at + bytes <= regions_[region_].capacity) {
      p = regions_[region_].base + at;
      offset_ = at + bytes;
    }
  }
  if (p == nullptr) p = allocate_slow(bytes);
  in_use_ += bytes;
  high_water_ = std::max(high_water_, in_use_);
  OBSCORR_ASAN_UNPOISON(p, bytes);
  note_arena_alloc(bytes);
  return p;
}

void* Arena::allocate_slow(std::size_t bytes) {
  // Try the regions already past the cursor (left over from a larger
  // earlier cycle); each starts page-aligned, satisfying any alignment.
  while (region_ + 1 < regions_.size()) {
    ++region_;
    offset_ = 0;
    if (bytes <= regions_[region_].capacity) {
      offset_ = bytes;
      return regions_[region_].base;
    }
  }
  // Grow: geometric doubling, rounded to the pool's size class so the
  // reservation matches what the pool actually hands out.
  const std::size_t last = regions_.empty() ? first_region_bytes_ / 2 : regions_.back().capacity;
  const std::size_t capacity = BufferPool::class_bytes(std::max(bytes, last * 2));
  Region r;
  r.base = static_cast<std::byte*>(BufferPool::instance().allocate(capacity));
  r.capacity = capacity;
  OBSCORR_ASAN_POISON(r.base, r.capacity);
  regions_.push_back(r);
  region_ = regions_.size() - 1;
  offset_ = bytes;
  return r.base;
}

void Arena::rewind(const Frame::Mark& mark) {
#if defined(OBSCORR_ASAN)
  // Poison everything past the mark: the mark region's tail plus every
  // region the cursor moved through since (re-poisoning an already
  // poisoned tail is harmless).
  for (std::size_t r = mark.region; r <= region_ && r < regions_.size(); ++r) {
    const std::size_t from = r == mark.region ? round_up(mark.offset, kQuantum) : 0;
    OBSCORR_ASAN_POISON(regions_[r].base + from, regions_[r].capacity - from);
  }
#endif
  region_ = mark.region;
  offset_ = mark.offset;
  in_use_ = mark.in_use;
  ++epoch_;
  note_arena_reset(high_water_);
}

void Arena::reset() { rewind(Frame::Mark{0, 0, 0}); }

std::size_t Arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Region& r : regions_) total += r.capacity;
  return total;
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

}  // namespace obscorr::mem
