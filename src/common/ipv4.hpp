#pragma once
/// \file ipv4.hpp
/// IPv4 address value type and prefix utilities.
///
/// The paper's traffic matrices index the full 2^32 x 2^32 IPv4 x IPv4
/// space with uint32 row/column ids; `Ipv4` is that id plus formatting,
/// parsing, and prefix arithmetic (the telescope darkspace is a /8).

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace obscorr {

/// An IPv4 address stored in host byte order; `1.1.1.1` has value
/// 16843009, matching the paper's matrix-index example.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Dotted-quad octets, most significant first.
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Render as dotted-quad, e.g. "10.0.0.1".
  std::string to_string() const;

  /// Parse a dotted-quad string; returns nullopt on any malformation
  /// (missing octets, out-of-range values, stray characters).
  static std::optional<Ipv4> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 77.0.0.0/8. Used for the telescope darkspace and
/// honeyfarm sensor subnets.
class Ipv4Prefix {
 public:
  /// Construct from a base address and prefix length in [0, 32].
  /// Host bits of `base` below the prefix are zeroed.
  Ipv4Prefix(Ipv4 base, int length);

  Ipv4 base() const { return base_; }
  int length() const { return length_; }

  /// Number of addresses covered (2^(32-length)); full for /0.
  std::uint64_t size() const { return 1ULL << (32 - length_); }

  /// True when `addr` falls inside the prefix.
  bool contains(Ipv4 addr) const {
    return length_ == 0 || ((addr.value() ^ base_.value()) >> (32 - length_)) == 0;
  }

  /// The i-th address in the prefix (i < size()).
  Ipv4 at(std::uint64_t i) const;

  /// Render as "a.b.c.d/len".
  std::string to_string() const;

  /// Parse "a.b.c.d/len"; nullopt on malformation.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  friend bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4 base_;
  int length_;
};

}  // namespace obscorr
