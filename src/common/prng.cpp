#include "common/prng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace obscorr {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id through SplitMix64 before combining so that
  // consecutive stream ids land far apart in seed space.
  SplitMix64 sid(stream ^ 0xd1b54a32d192ed03ULL);
  SplitMix64 sm(seed ^ sid.next());
  for (auto& s : s_) s = sm.next();
}

double Rng::uniform(double lo, double hi) {
  OBSCORR_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double lambda) {
  OBSCORR_REQUIRE(lambda > 0.0, "exponential: rate must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal() {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mu, double sigma) {
  OBSCORR_REQUIRE(sigma >= 0.0, "normal: sigma must be non-negative");
  return mu + sigma * normal();
}

double Rng::beta_a1(double a) {
  OBSCORR_REQUIRE(a > 0.0, "beta_a1: shape must be positive");
  return std::pow(uniform(), 1.0 / a);
}

std::uint64_t Rng::poisson(double lambda) {
  OBSCORR_REQUIRE(lambda >= 0.0, "poisson: mean must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below exp(-lambda).
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // PTRS transformed-rejection (Hormann 1993): valid for lambda >= 10.
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    double u = uniform() - 0.5;
    double v = uniform();
    double us = 0.5 - std::abs(u);
    double k = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * std::log(lambda) - lambda - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

AliasTable::AliasTable(std::span<const double> weights) {
  OBSCORR_REQUIRE(!weights.empty(), "AliasTable: weights must be non-empty");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    OBSCORR_REQUIRE(w >= 0.0 && std::isfinite(w), "AliasTable: weights must be finite and >= 0");
    total += w;
  }
  OBSCORR_REQUIRE(total > 0.0, "AliasTable: at least one weight must be positive");

  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residuals are 1 up to rounding error.
  for (std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.uniform_u64(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace obscorr
