#include "common/env.hpp"

#include <charconv>
#include <cstdlib>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace obscorr {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  std::int64_t value = 0;
  const char* end = raw;
  while (*end) ++end;
  auto [p, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc{} || p != end) return fallback;
  return value;
}

int resolve_thread_count(std::int64_t requested) {
  if (requested <= 0) requested = env_int("OBSCORR_THREADS", 0);
  if (requested <= 0) return static_cast<int>(ThreadPool::default_thread_count());
  return static_cast<int>(requested);
}

BenchEnv BenchEnv::from_environment() {
  BenchEnv env;
  env.log2_nv = static_cast<int>(env_int("OBSCORR_LOG2_NV", env.log2_nv));
  OBSCORR_REQUIRE(env.log2_nv >= 10 && env.log2_nv <= 34,
                  "OBSCORR_LOG2_NV must be in [10,34]");
  env.seed = static_cast<std::uint64_t>(env_int("OBSCORR_SEED", static_cast<std::int64_t>(env.seed)));
  env.threads = static_cast<int>(env_int("OBSCORR_THREADS", env.threads));
  return env;
}

}  // namespace obscorr
