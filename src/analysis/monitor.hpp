#pragma once
/// \file monitor.hpp
/// The live glue: one Monitor owns a SeriesStore plus a DetectorBank and
/// feeds them each published window — from an archive replay (`obscorr
/// correlate --events`, priming in `obscorr serve`) or from the resident
/// service's ingest loop. Anomaly events are returned to the caller (the
/// serve loop pushes them to `watch` subscribers) and, when configured,
/// appended to an NDJSON sidecar log next to the archive so offline
/// tooling sees the same stream.
///
/// Threading: a Monitor is driven by exactly one thread (the ingest
/// thread in `obscorr serve`); it is not internally synchronized.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/detectors.hpp"
#include "analysis/window_series.hpp"
#include "archive/study_archive.hpp"

namespace obscorr::analysis {

struct MonitorConfig {
  DetectorConfig detectors;
  /// NDJSON sidecar path for anomaly events; empty disables the log.
  std::string event_log_path;
};

/// {"event":"window",...} push line for one published window — the
/// heartbeat `watch` subscribers key their exactly-once accounting on.
std::string window_event_json(const archive::LiveWindowMeta& meta);

class Monitor {
 public:
  explicit Monitor(MonitorConfig cfg = {});

  /// Replay an archive's windows through the store and detectors, in
  /// order. Returns every event fired during the replay (callers priming
  /// a live monitor typically discard them; `correlate --events` prints
  /// them). The sidecar log is *not* written during priming — only live
  /// observations are logged.
  std::vector<AnomalyEvent> prime(const archive::StudyReader& reader, Domain domain);

  /// Observe one live window: appends to the store, runs the detectors,
  /// appends any events to the sidecar log. Returns the events.
  std::vector<AnomalyEvent> observe_window(std::uint64_t window, const WindowSample& sample,
                                           std::span<const double> degrees);

  const SeriesStore& store() const { return store_; }
  const DetectorBank& detectors() const { return bank_; }

 private:
  MonitorConfig cfg_;
  SeriesStore store_;
  DetectorBank bank_;
};

}  // namespace obscorr::analysis
