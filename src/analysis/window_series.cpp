#include "analysis/window_series.hpp"

#include "common/error.hpp"
#include "stats/summary.hpp"

namespace obscorr::analysis {

namespace {

/// The fixed metric catalogue. Order is the on-the-wire ranking order —
/// append new metrics at the end of their group and update the docs plus
/// the pinned tests, never reorder.
const std::vector<std::string>& catalogue() {
  static const std::vector<std::string> names = {
      "table2.valid_packets",
      "table2.unique_links",
      "table2.max_link_packets",
      "table2.unique_sources",
      "table2.max_source_packets",
      "table2.max_source_fanout",
      "table2.unique_destinations",
      "table2.max_destination_packets",
      "table2.max_destination_fanin",
      "window.discarded_packets",
      "window.duration_sec",
      "window.ingest_packets",
      "degree.source_gini",
      "degree.mean_source_packets",
  };
  return names;
}

}  // namespace

const std::vector<std::string>& metric_names() { return catalogue(); }

std::size_t metric_count() { return catalogue().size(); }

std::vector<double> metric_row(const WindowSample& s) {
  const gbl::AggregateQuantities& q = s.q;
  const double unique_sources = static_cast<double>(q.unique_sources);
  return {
      q.valid_packets,
      static_cast<double>(q.unique_links),
      q.max_link_packets,
      unique_sources,
      q.max_source_packets,
      q.max_source_fanout,
      static_cast<double>(q.unique_destinations),
      q.max_destination_packets,
      q.max_destination_fanin,
      static_cast<double>(s.discarded_packets),
      s.duration_sec,
      q.valid_packets + static_cast<double>(s.discarded_packets),
      s.source_gini,
      unique_sources > 0.0 ? q.valid_packets / unique_sources : 0.0,
  };
}

SeriesStore::SeriesStore() : data_(metric_count()) {}

void SeriesStore::append(const WindowSample& s) {
  const std::vector<double> row = metric_row(s);
  OBSCORR_REQUIRE(row.size() == data_.size(), "metric row/catalogue mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) data_[i].push_back(row[i]);
  ++windows_;
}

std::span<const double> SeriesStore::series(std::size_t i) const {
  OBSCORR_REQUIRE(i < data_.size(), "series index out of range");
  return data_[i];
}

std::size_t SeriesStore::find(std::string_view name) const {
  const std::vector<std::string>& names = catalogue();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return npos;
}

namespace {

WindowSample sample_from(const gbl::DcsrMatrix& matrix, std::span<const double> degrees,
                         std::uint64_t discarded, double duration_sec) {
  WindowSample s;
  s.q = gbl::aggregate_quantities(matrix);
  s.discarded_packets = discarded;
  s.duration_sec = duration_sec;
  s.source_gini = degrees.empty() ? 0.0 : stats::gini_coefficient(degrees);
  return s;
}

}  // namespace

WindowSample sample_snapshot(const archive::StudyReader& reader, std::size_t k) {
  const core::SnapshotData snap = reader.snapshot(k, /*with_matrix=*/false);
  const gbl::DcsrMatrix matrix = reader.matrix(k).materialize();
  return sample_from(matrix, snap.source_packets.values(), snap.discarded_packets,
                     snap.duration_sec);
}

WindowSample sample_window(const archive::StudyReader& reader, std::size_t w) {
  const archive::LiveWindowMeta meta = reader.window_meta(w);
  const gbl::DcsrMatrix matrix = reader.window_matrix(w).materialize();
  const gbl::SparseVec sources = reader.window_source_packets(w);
  return sample_from(matrix, sources.values(), meta.discarded_packets, meta.duration_sec);
}

SeriesStore store_from_reader(const archive::StudyReader& reader, Domain domain) {
  SeriesStore store;
  if (domain == Domain::kSnapshots) {
    for (std::size_t k = 0; k < reader.snapshot_count(); ++k) {
      store.append(sample_snapshot(reader, k));
    }
  } else {
    for (std::size_t w = 0; w < reader.window_count(); ++w) {
      store.append(sample_window(reader, w));
    }
  }
  return store;
}

}  // namespace obscorr::analysis
