#include "analysis/monitor.hpp"

#include <fstream>
#include <sstream>

namespace obscorr::analysis {

std::string window_event_json(const archive::LiveWindowMeta& meta) {
  std::ostringstream os;
  os << "{\"event\":\"window\",\"window\":" << meta.window
     << ",\"month_index\":" << meta.month_index
     << ",\"valid_packets\":" << meta.valid_packets
     << ",\"discarded_packets\":" << meta.discarded_packets << "}";
  return os.str();
}

Monitor::Monitor(MonitorConfig cfg) : cfg_(std::move(cfg)), bank_(cfg_.detectors) {}

std::vector<AnomalyEvent> Monitor::prime(const archive::StudyReader& reader, Domain domain) {
  std::vector<AnomalyEvent> all;
  const std::size_t n =
      domain == Domain::kSnapshots ? reader.snapshot_count() : reader.window_count();
  for (std::size_t w = 0; w < n; ++w) {
    const WindowSample sample = domain == Domain::kSnapshots ? sample_snapshot(reader, w)
                                                             : sample_window(reader, w);
    // Degree values for the shift detector, from the stored reduction.
    const gbl::SparseVec sources = domain == Domain::kSnapshots
                                       ? reader.source_packets(w)
                                       : reader.window_source_packets(w);
    store_.append(sample);
    std::vector<AnomalyEvent> events =
        bank_.observe(w, metric_row(sample), sources.values());
    all.insert(all.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
  }
  return all;
}

std::vector<AnomalyEvent> Monitor::observe_window(std::uint64_t window,
                                                  const WindowSample& sample,
                                                  std::span<const double> degrees) {
  store_.append(sample);
  std::vector<AnomalyEvent> events = bank_.observe(window, metric_row(sample), degrees);
  if (!events.empty() && !cfg_.event_log_path.empty()) {
    std::ofstream log(cfg_.event_log_path, std::ios::app);
    for (const AnomalyEvent& e : events) log << event_json(e) << '\n';
  }
  return events;
}

}  // namespace obscorr::analysis
