#pragma once
/// \file detectors.hpp
/// Streaming anomaly detectors over the window metric series: the
/// online half of the analysis layer. Three detectors, all O(metrics)
/// per window with O(history) state:
///
///  * zscore — each new value scored against the rolling mean/stddev of
///    the last `history` windows; catches step changes like the
///    scenario's 2020-03 config-change surge.
///  * ewma — exponentially-weighted mean/variance tracker; reacts to
///    sustained level shifts the rolling window has already absorbed.
///  * degree_shift — total-variation distance between the current
///    window's binary-log degree distribution and an EWMA reference
///    distribution; catches destination-strategy shifts that leave the
///    aggregate counters flat but reshape the histogram.
///
/// Both value detectors use a relative sigma floor so that perfectly
/// flat series (deterministic replay makes several metrics exactly
/// constant) neither divide by zero nor alert on float jitter.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

namespace obscorr::analysis {

/// Tuning knobs; defaults are calibrated for the scenario studies
/// (docs/observability.md discusses how to retune).
struct DetectorConfig {
  std::size_t warmup = 4;       ///< windows observed before any alert
  std::size_t history = 32;     ///< rolling-window length for zscore
  double z_threshold = 6.0;     ///< |z| that fires the zscore detector
  double ewma_alpha = 0.3;      ///< EWMA smoothing for mean/variance
  double ewma_threshold = 6.0;  ///< |z| that fires the ewma detector
  double sigma_floor = 0.02;    ///< relative stddev floor (× max(|mean|, 1))
  double shift_threshold = 0.25;  ///< TV distance that fires degree_shift
  double shift_alpha = 0.2;       ///< EWMA smoothing for the reference histogram
};

/// One structured anomaly event; serialized as NDJSON on the `watch`
/// stream and in the archive's anomaly sidecar log.
struct AnomalyEvent {
  std::uint64_t window = 0;  ///< window index the event fired at
  std::string metric;        ///< series name, or "degree.histogram"
  std::string detector;      ///< "zscore" | "ewma" | "degree_shift"
  double value = 0.0;        ///< observed value (TV distance for shifts)
  double expected = 0.0;     ///< detector's expectation before observing
  double score = 0.0;        ///< sigmas over threshold basis, or TV distance
};

/// {"event":"anomaly","window":...,"metric":...,...} — one line, no
/// trailing newline. Hand-rolled so the analysis layer stays free of a
/// svc dependency.
std::string event_json(const AnomalyEvent& e);

/// The detector state for one stream of windows. Feed every published
/// window in order via observe(); not internally synchronized (single
/// observer thread by construction).
class DetectorBank {
 public:
  explicit DetectorBank(DetectorConfig cfg = {});

  /// Observe one window: `row` in metric_row() catalogue order,
  /// `degrees` the window's per-source packet counts (degree histogram
  /// input; may be empty). Returns the events fired, ordered by metric.
  std::vector<AnomalyEvent> observe(std::uint64_t window, std::span<const double> row,
                                    std::span<const double> degrees);

  std::size_t observed() const { return observed_; }
  const DetectorConfig& config() const { return cfg_; }

 private:
  struct MetricState {
    std::deque<double> ring;  ///< last `history` values
    double ring_sum = 0.0;
    double ring_sq = 0.0;
    double ewma_mean = 0.0;
    double ewma_var = 0.0;
    bool ewma_primed = false;
  };

  DetectorConfig cfg_;
  std::vector<MetricState> metrics_;
  std::vector<double> ref_hist_;  ///< EWMA reference degree distribution
  bool ref_primed_ = false;
  std::size_t observed_ = 0;
};

}  // namespace obscorr::analysis
