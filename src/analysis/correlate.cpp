#include "analysis/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/ks_test.hpp"

namespace obscorr::analysis {

Method parse_method(std::string_view name) {
  if (name == "ks2") return Method::kKs2;
  if (name == "volume") return Method::kVolume;
  throw std::invalid_argument("unknown correlation method '" + std::string(name) +
                              "' (want ks2|volume)");
}

const char* method_name(Method m) {
  return m == Method::kKs2 ? "ks2" : "volume";
}

WindowRange default_highlight(std::size_t window_count) {
  OBSCORR_REQUIRE(window_count > 0, "default_highlight: empty series");
  const std::size_t len = std::max<std::size_t>(1, window_count / 5);
  return WindowRange{window_count - len, window_count - 1};
}

WindowRange default_baseline(WindowRange highlight) {
  const std::size_t want = 4 * highlight.length();
  const std::size_t first = highlight.first > want ? highlight.first - want : 0;
  OBSCORR_REQUIRE(highlight.first > 0, "default_baseline: no windows before highlight");
  return WindowRange{first, highlight.first - 1};
}

namespace {

double range_mean(std::span<const double> s, WindowRange r) {
  double sum = 0.0;
  for (std::size_t w = r.first; w <= r.last; ++w) sum += s[w];
  return sum / static_cast<double>(r.length());
}

/// netdata's Volume heuristic, normalized: the change in range averages
/// relative to the larger magnitude, so a flat series scores 0 and a
/// from-zero (or to-zero) step scores 1.
double volume_score(double baseline_mean, double highlight_mean) {
  const double denom = std::max(std::abs(baseline_mean), std::abs(highlight_mean));
  if (denom == 0.0) return 0.0;
  return std::abs(highlight_mean - baseline_mean) / denom;
}

void check_range(const SeriesStore& store, WindowRange r, const char* what) {
  OBSCORR_REQUIRE(r.first <= r.last, std::string(what) + ": range must be ordered");
  OBSCORR_REQUIRE(r.last < store.window_count(),
                  std::string(what) + ": range exceeds window count");
}

}  // namespace

std::vector<MetricScore> rank_series(const SeriesStore& store, WindowRange baseline,
                                     WindowRange highlight, Method method) {
  check_range(store, baseline, "baseline");
  check_range(store, highlight, "highlight");

  std::vector<MetricScore> scores;
  scores.reserve(store.series_count());
  for (std::size_t i = 0; i < store.series_count(); ++i) {
    const std::span<const double> s = store.series(i);
    MetricScore ms;
    ms.name = store.names()[i];
    const stats::KsResult ks =
        stats::two_sample_ks(s.subspan(baseline.first, baseline.length()),
                             s.subspan(highlight.first, highlight.length()));
    ms.ks_statistic = ks.statistic;
    ms.ks_p = ks.p_value;
    ms.baseline_mean = range_mean(s, baseline);
    ms.highlight_mean = range_mean(s, highlight);
    ms.volume = volume_score(ms.baseline_mean, ms.highlight_mean);
    ms.score = method == Method::kKs2 ? 1.0 - ms.ks_p : ms.volume;
    scores.push_back(std::move(ms));
  }

  // Deterministic ranking: an injected event typically separates several
  // metrics completely (KS statistic 1, identical p), so the tie-break
  // chain matters as much as the score.
  std::sort(scores.begin(), scores.end(), [](const MetricScore& a, const MetricScore& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.ks_statistic != b.ks_statistic) return a.ks_statistic > b.ks_statistic;
    if (a.volume != b.volume) return a.volume > b.volume;
    return a.name < b.name;
  });
  return scores;
}

}  // namespace obscorr::analysis
