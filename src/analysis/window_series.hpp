#pragma once
/// \file window_series.hpp
/// Per-window metric time-series: the substrate the correlation engine
/// (correlate.hpp) and the streaming detectors (detectors.hpp) operate
/// on. Each capture window — an archived CAIDA snapshot or a live ingest
/// window — is reduced to one WindowSample (Table II aggregates plus
/// capture metadata and degree-distribution shape), and a SeriesStore
/// holds the samples column-wise as named, append-friendly series.
///
/// The catalogue is fixed: every store carries the same metric names in
/// the same order, so ranked-correlation output is comparable across
/// archives and across live/offline runs. Population is deliberately
/// proxied by `table2.unique_sources` (the paper's observable estimate
/// of N_V) rather than the ground-truth generator state, which a live
/// observatory never has.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "archive/study_archive.hpp"
#include "gbl/quantities.hpp"

namespace obscorr::analysis {

/// One window reduced to the quantities worth tracking over time.
struct WindowSample {
  gbl::AggregateQuantities q;           ///< Table II aggregates of A_t
  std::uint64_t discarded_packets = 0;  ///< below-horizon drops this window
  double duration_sec = 0.0;            ///< scaled capture duration
  double source_gini = 0.0;             ///< Gini of the A·1 degree values
};

/// Names of the registered series, catalogue order. Fixed at
/// compile time; docs/observability.md documents each entry.
const std::vector<std::string>& metric_names();

/// Number of registered series.
std::size_t metric_count();

/// One sample flattened to catalogue order (metric_row(s)[i] is the
/// value of metric_names()[i]).
std::vector<double> metric_row(const WindowSample& s);

/// Column-wise store of the per-window series. Append-only: live ingest
/// pushes one row per published window, `store_from_reader` bulk-loads
/// an archive. Not internally synchronized — callers serialize appends
/// (the ingest loop is single-threaded by construction).
class SeriesStore {
 public:
  SeriesStore();

  const std::vector<std::string>& names() const { return metric_names(); }
  std::size_t series_count() const { return data_.size(); }
  std::size_t window_count() const { return windows_; }

  /// Append one window's sample to every series.
  void append(const WindowSample& s);

  /// Series i as a contiguous span, one value per appended window.
  std::span<const double> series(std::size_t i) const;

  /// Catalogue index of `name`, or npos when not registered.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(std::string_view name) const;

 private:
  std::vector<std::vector<double>> data_;  ///< [metric][window]
  std::size_t windows_ = 0;
};

/// Which window population an archive-backed store draws from.
enum class Domain {
  kSnapshots,  ///< the scenario's archived CAIDA snapshots
  kWindows,    ///< live windows appended by `obscorr serve`
};

/// Reduce archived snapshot k / live window w to a WindowSample. Both
/// materialize the stored matrix view and run the serial Table II
/// aggregation, so results are bit-identical across thread counts.
WindowSample sample_snapshot(const archive::StudyReader& reader, std::size_t k);
WindowSample sample_window(const archive::StudyReader& reader, std::size_t w);

/// Bulk-load every window of `domain` from an archive into a store.
SeriesStore store_from_reader(const archive::StudyReader& reader, Domain domain);

}  // namespace obscorr::analysis
