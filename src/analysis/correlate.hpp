#pragma once
/// \file correlate.hpp
/// Metric correlations over window series, after netdata's Metric
/// Correlations design: given a *baseline* window range (normal
/// behaviour) and a *highlight* range (the suspected event), score every
/// registered series by how much its distribution changed between the
/// two, and rank. Two scoring methods:
///
///  * KS2 — two-sample Kolmogorov–Smirnov between the baseline and
///    highlight samples of each series (stats/ks_test); score is
///    1 − p-value, so fully separated distributions score 1.
///  * Volume — netdata's cheap heuristic on the percentage change of
///    range averages, normalized to [0, 1].
///
/// Ranking is deterministic: the score is computed from serial
/// reductions only, and ties (common when an injected event fully
/// separates several metrics at KS statistic 1) break by KS statistic,
/// then volume, then metric name.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/window_series.hpp"

namespace obscorr::analysis {

/// Scoring method, netdata's two.
enum class Method { kKs2, kVolume };

/// Parse "ks2" | "volume" (throws std::invalid_argument otherwise).
Method parse_method(std::string_view name);
const char* method_name(Method m);

/// Inclusive window range [first, last].
struct WindowRange {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t length() const { return last - first + 1; }
};

/// netdata's default framing: the highlight is the trailing fifth of the
/// series (at least one window), the baseline the preceding stretch of
/// 4× the highlight length (clamped to what exists).
WindowRange default_highlight(std::size_t window_count);
WindowRange default_baseline(WindowRange highlight);

/// One series' change score between baseline and highlight.
struct MetricScore {
  std::string name;
  double score = 0.0;          ///< ranking key for the chosen method, in [0, 1]
  double ks_statistic = 0.0;   ///< sup |F̂_b − F̂_h|
  double ks_p = 1.0;           ///< asymptotic p-value
  double baseline_mean = 0.0;
  double highlight_mean = 0.0;
  double volume = 0.0;         ///< normalized |Δmean| in [0, 1]
};

/// Score and rank every series in `store`. Both ranges must be
/// non-empty, ordered, and within the store's window count (throws
/// std::invalid_argument otherwise); overlap is legal but usually a
/// caller mistake. All fields of every MetricScore are filled whichever
/// method drives the ranking.
std::vector<MetricScore> rank_series(const SeriesStore& store, WindowRange baseline,
                                     WindowRange highlight, Method method);

}  // namespace obscorr::analysis
