#include "analysis/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "analysis/window_series.hpp"
#include "common/error.hpp"
#include "obs/telemetry.hpp"
#include "stats/histogram.hpp"

namespace obscorr::analysis {

namespace {

/// Shortest-faithful double text (JSON number), deterministic for a
/// given value — the watch stream and sidecar log must replay
/// byte-identically.
std::string num_text(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

/// Effective stddev with the relative floor applied.
double floored_sigma(double stddev, double mean, double floor) {
  return std::max(stddev, floor * std::max(std::abs(mean), 1.0));
}

}  // namespace

std::string event_json(const AnomalyEvent& e) {
  std::ostringstream os;
  os << "{\"event\":\"anomaly\",\"window\":" << e.window << ",\"metric\":\"" << e.metric
     << "\",\"detector\":\"" << e.detector << "\",\"value\":" << num_text(e.value)
     << ",\"expected\":" << num_text(e.expected) << ",\"score\":" << num_text(e.score) << "}";
  return os.str();
}

DetectorBank::DetectorBank(DetectorConfig cfg) : cfg_(cfg), metrics_(metric_count()) {
  OBSCORR_REQUIRE(cfg_.history >= 2, "detector history must hold at least 2 windows");
  OBSCORR_REQUIRE(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0, "ewma_alpha in (0, 1]");
  OBSCORR_REQUIRE(cfg_.shift_alpha > 0.0 && cfg_.shift_alpha <= 1.0, "shift_alpha in (0, 1]");
}

std::vector<AnomalyEvent> DetectorBank::observe(std::uint64_t window,
                                                std::span<const double> row,
                                                std::span<const double> degrees) {
  OBSCORR_REQUIRE(row.size() == metrics_.size(), "row size must match the metric catalogue");
  const bool alerting = observed_ >= cfg_.warmup;
  const std::vector<std::string>& names = metric_names();
  std::vector<AnomalyEvent> events;

  for (std::size_t i = 0; i < row.size(); ++i) {
    const double x = row[i];
    MetricState& m = metrics_[i];

    if (alerting && !m.ring.empty()) {
      const double n = static_cast<double>(m.ring.size());
      const double mean = m.ring_sum / n;
      const double var = std::max(0.0, m.ring_sq / n - mean * mean);
      const double sigma = floored_sigma(std::sqrt(var), mean, cfg_.sigma_floor);
      const double z = (x - mean) / sigma;
      if (std::abs(z) >= cfg_.z_threshold) {
        events.push_back({window, names[i], "zscore", x, mean, z});
      }
    }
    m.ring.push_back(x);
    m.ring_sum += x;
    m.ring_sq += x * x;
    if (m.ring.size() > cfg_.history) {
      const double old = m.ring.front();
      m.ring.pop_front();
      m.ring_sum -= old;
      m.ring_sq -= old * old;
    }

    if (!m.ewma_primed) {
      m.ewma_mean = x;
      m.ewma_var = 0.0;
      m.ewma_primed = true;
    } else {
      if (alerting) {
        const double sigma =
            floored_sigma(std::sqrt(std::max(0.0, m.ewma_var)), m.ewma_mean, cfg_.sigma_floor);
        const double z = (x - m.ewma_mean) / sigma;
        if (std::abs(z) >= cfg_.ewma_threshold) {
          events.push_back({window, names[i], "ewma", x, m.ewma_mean, z});
        }
      }
      const double d = x - m.ewma_mean;
      m.ewma_mean += cfg_.ewma_alpha * d;
      m.ewma_var = (1.0 - cfg_.ewma_alpha) * (m.ewma_var + cfg_.ewma_alpha * d * d);
    }
  }

  // Degree-distribution shift: total-variation distance between this
  // window's binary-log degree distribution and the EWMA reference.
  const std::vector<double> p =
      stats::LogHistogram::from_degrees(degrees).differential_cumulative();
  if (!p.empty()) {
    if (!ref_primed_) {
      ref_hist_ = p;
      ref_primed_ = true;
    } else {
      const std::size_t bins = std::max(ref_hist_.size(), p.size());
      ref_hist_.resize(bins, 0.0);
      double tv = 0.0;
      for (std::size_t b = 0; b < bins; ++b) {
        const double pb = b < p.size() ? p[b] : 0.0;
        tv += std::abs(pb - ref_hist_[b]);
      }
      tv *= 0.5;
      if (alerting && tv >= cfg_.shift_threshold) {
        events.push_back({window, "degree.histogram", "degree_shift", tv,
                          cfg_.shift_threshold, tv});
      }
      for (std::size_t b = 0; b < bins; ++b) {
        const double pb = b < p.size() ? p[b] : 0.0;
        ref_hist_[b] = (1.0 - cfg_.shift_alpha) * ref_hist_[b] + cfg_.shift_alpha * pb;
      }
    }
  }

  ++observed_;
  static obs::Counter& c_windows = obs::counter("analysis.windows_observed");
  static obs::Counter& c_anomalies = obs::counter("analysis.anomalies");
  if (obs::counters_enabled()) {
    c_windows.add(1);
    if (!events.empty()) c_anomalies.add(events.size());
  }
  return events;
}

}  // namespace obscorr::analysis
