#pragma once
/// \file assoc.hpp
/// D4M associative arrays (Kepner & Jananthan, "Mathematics of Big Data").
///
/// An associative array is a sparse matrix whose rows and columns are
/// indexed by *strings* (here: dotted-quad IPs, month labels, metadata
/// columns) instead of integers. The paper stores GreyNoise observations
/// as associative arrays and converts reduced GraphBLAS results to
/// associative arrays for correlation.
///
/// String-valued data (e.g. GreyNoise classifications) is represented in
/// the canonical D4M *exploded schema*: the value moves into the column
/// key, `A('1.2.3.4', 'intent|malicious') = 1`, keeping stored values
/// numeric. Intersection of observatories then reduces to element-wise
/// multiplication — pure associative-array algebra.

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace obscorr::d4m {

/// One (row, col, value) triple with string keys.
struct Triple {
  std::string row;
  std::string col;
  double val = 0.0;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Immutable associative array. Row and column key sets are sorted and
/// deduplicated; entries are stored CSR-style over the key indices.
class AssocArray {
 public:
  /// The empty array.
  AssocArray();

  /// Build from triples; duplicate (row, col) values are summed
  /// (GraphBLAS "plus" accumulation, the D4M default).
  static AssocArray from_triples(std::vector<Triple> triples);

  /// Build a one-column array mapping each key to a value — the shape of
  /// a reduced GraphBLAS result (e.g. source -> packet count).
  static AssocArray from_column(std::span<const std::string> row_keys,
                                std::span<const double> values, std::string col_key);

  std::size_t nnz() const { return col_idx_.size(); }
  bool empty() const { return nnz() == 0; }

  /// Sorted unique row / column key sets.
  std::span<const std::string> row_keys() const { return row_keys_; }
  std::span<const std::string> col_keys() const { return col_keys_; }

  /// Value at (row, col); 0 when absent.
  double at(std::string_view row, std::string_view col) const;

  /// True when the row key has at least one stored entry.
  bool has_row(std::string_view row) const;

  /// Element-wise sum over the union of cells (D4M `A + B`).
  static AssocArray ewise_add(const AssocArray& a, const AssocArray& b);

  /// Element-wise product over the intersection of cells (D4M `A & B`);
  /// the correlation primitive: nonzeros are cells present in both.
  static AssocArray ewise_mult(const AssocArray& a, const AssocArray& b);

  /// Element-wise maximum over the union of cells (the D4M max semiring,
  /// e.g. peak monthly contact counts across a span of months).
  static AssocArray ewise_max(const AssocArray& a, const AssocArray& b);

  /// Zero-norm |A|₀: every stored value becomes 1.
  AssocArray logical() const;

  /// Transpose Aᵀ.
  AssocArray transpose() const;

  /// Sub-array of the rows whose key is in `keys` (D4M `A(keys, :)`).
  AssocArray select_rows(std::span<const std::string> keys) const;

  /// Sub-array of rows whose key satisfies `pred`.
  AssocArray select_rows_if(const std::function<bool(std::string_view)>& pred) const;

  /// Sub-array of rows whose key starts with `prefix` (the D4M
  /// `A('1.2.*', :)` idiom, e.g. all sources inside a /16).
  AssocArray select_rows_prefix(std::string_view prefix) const;

  /// Sub-array of the columns whose key is in `keys` (D4M `A(:, keys)`).
  AssocArray select_cols(std::span<const std::string> keys) const;

  /// Sub-array of columns whose key starts with `prefix` (the D4M
  /// `A(:, 'intent|*')` idiom over an exploded schema).
  AssocArray select_cols_prefix(std::string_view prefix) const;

  /// Row sums `A·1` as a one-column array (column key "sum").
  AssocArray row_sum() const;

  /// Column sums `1ᵀ·A` as a one-column array over the transposed keys.
  AssocArray col_sum() const;

  /// Sum of all stored values.
  double reduce_sum() const;

  /// Export all entries as sorted triples.
  std::vector<Triple> to_triples() const;

  /// Tab-separated triples "row\tcol\tval", sorted; the D4M interchange
  /// format used to move data between observatories.
  void write_tsv(std::ostream& os) const;
  static AssocArray read_tsv(std::istream& is);

  /// Binary serialization ("OBSD4MA1", little-endian): the study-archive
  /// representation. Exact — values round-trip bit-for-bit and keys are
  /// raw bytes (empty strings and non-ASCII bytes survive), unlike the
  /// TSV interchange format. `read_binary` validates the canonical-form
  /// invariants (sorted unique keys, monotone offsets, no unused keys)
  /// and throws std::invalid_argument on malformed input. The span
  /// overload is the archive's hot read path: it parses straight out of
  /// the mapped buffer (no istream indirection per key) and requires the
  /// buffer to hold exactly one serialized array; the istream overload
  /// consumes the rest of the stream and delegates to it.
  void write_binary(std::ostream& os) const;
  static AssocArray read_binary(std::istream& is);
  static AssocArray read_binary(std::span<const std::byte> bytes);

  friend bool operator==(const AssocArray&, const AssocArray&) = default;

 private:
  std::vector<std::string> row_keys_;
  std::vector<std::string> col_keys_;
  std::vector<std::uint64_t> row_ptr_;  // size row_keys_.size() + 1
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> val_;
};

/// Sorted intersection of two key sets; the paper's "sources seen by both
/// observatories" operation.
std::vector<std::string> intersect_keys(std::span<const std::string> a,
                                        std::span<const std::string> b);

/// Sorted union of two key sets.
std::vector<std::string> union_keys(std::span<const std::string> a,
                                    std::span<const std::string> b);

}  // namespace obscorr::d4m
