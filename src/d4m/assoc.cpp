#include "d4m/assoc.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <set>

#include "common/error.hpp"

namespace obscorr::d4m {

AssocArray::AssocArray() { row_ptr_.push_back(0); }

namespace {

bool triple_key_less(const Triple& a, const Triple& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

std::uint32_t key_index(const std::vector<std::string>& keys, std::string_view key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  OBSCORR_INVARIANT(it != keys.end() && *it == key);
  return static_cast<std::uint32_t>(it - keys.begin());
}

}  // namespace

AssocArray AssocArray::from_triples(std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end(), triple_key_less);
  // Accumulate duplicates (plus semiring).
  std::size_t out = 0;
  for (std::size_t i = 1; i < triples.size(); ++i) {
    if (triples[out].row == triples[i].row && triples[out].col == triples[i].col) {
      triples[out].val += triples[i].val;
    } else if (++out != i) {  // guard against self-move when nothing was combined
      triples[out] = std::move(triples[i]);
    }
  }
  if (!triples.empty()) triples.resize(out + 1);

  AssocArray a;
  if (triples.empty()) return a;

  for (const Triple& t : triples) {
    if (a.row_keys_.empty() || a.row_keys_.back() != t.row) a.row_keys_.push_back(t.row);
  }
  std::set<std::string> cols;
  for (const Triple& t : triples) cols.insert(t.col);
  a.col_keys_.assign(cols.begin(), cols.end());

  a.row_ptr_.clear();
  a.col_idx_.reserve(triples.size());
  a.val_.reserve(triples.size());
  for (std::size_t i = 0; i < triples.size(); ++i) {
    const Triple& t = triples[i];
    if (i == 0 || triples[i - 1].row != t.row) {
      a.row_ptr_.push_back(static_cast<std::uint64_t>(i));
    }
    a.col_idx_.push_back(key_index(a.col_keys_, t.col));
    a.val_.push_back(t.val);
  }
  a.row_ptr_.push_back(static_cast<std::uint64_t>(triples.size()));
  OBSCORR_INVARIANT(a.row_ptr_.size() == a.row_keys_.size() + 1);
  return a;
}

AssocArray AssocArray::from_column(std::span<const std::string> row_keys,
                                   std::span<const double> values, std::string col_key) {
  OBSCORR_REQUIRE(row_keys.size() == values.size(),
                  "from_column: key/value arrays must have equal length");
  std::vector<Triple> triples;
  triples.reserve(row_keys.size());
  for (std::size_t i = 0; i < row_keys.size(); ++i) {
    triples.push_back({row_keys[i], col_key, values[i]});
  }
  return from_triples(std::move(triples));
}

double AssocArray::at(std::string_view row, std::string_view col) const {
  const auto rit = std::lower_bound(row_keys_.begin(), row_keys_.end(), row);
  if (rit == row_keys_.end() || *rit != row) return 0.0;
  const auto cit = std::lower_bound(col_keys_.begin(), col_keys_.end(), col);
  if (cit == col_keys_.end() || *cit != col) return 0.0;
  const std::size_t r = static_cast<std::size_t>(rit - row_keys_.begin());
  const auto c = static_cast<std::uint32_t>(cit - col_keys_.begin());
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return val_[static_cast<std::size_t>(it - col_idx_.begin())];
}

bool AssocArray::has_row(std::string_view row) const {
  return std::binary_search(row_keys_.begin(), row_keys_.end(), row);
}

namespace {

enum class MergeOp { kAdd, kMult, kMax };

AssocArray merge(const AssocArray& a, const AssocArray& b, MergeOp op) {
  const bool intersect = op == MergeOp::kMult;
  auto ta = a.to_triples();
  auto tb = b.to_triples();
  std::vector<Triple> out;
  std::size_t i = 0, j = 0;
  const auto combine = [op](double x, double y) {
    switch (op) {
      case MergeOp::kAdd:
        return x + y;
      case MergeOp::kMult:
        return x * y;
      case MergeOp::kMax:
        return std::max(x, y);
    }
    OBSCORR_INVARIANT(false);
  };
  while (i < ta.size() && j < tb.size()) {
    const Triple& x = ta[i];
    const Triple& y = tb[j];
    if (x.row == y.row && x.col == y.col) {
      out.push_back({x.row, x.col, combine(x.val, y.val)});
      ++i;
      ++j;
    } else if (triple_key_less(x, y)) {
      if (!intersect) out.push_back(x);
      ++i;
    } else {
      if (!intersect) out.push_back(y);
      ++j;
    }
  }
  if (!intersect) {
    out.insert(out.end(), ta.begin() + static_cast<std::ptrdiff_t>(i), ta.end());
    out.insert(out.end(), tb.begin() + static_cast<std::ptrdiff_t>(j), tb.end());
  }
  return AssocArray::from_triples(std::move(out));
}

}  // namespace

AssocArray AssocArray::ewise_add(const AssocArray& a, const AssocArray& b) {
  return merge(a, b, MergeOp::kAdd);
}

AssocArray AssocArray::ewise_mult(const AssocArray& a, const AssocArray& b) {
  return merge(a, b, MergeOp::kMult);
}

AssocArray AssocArray::ewise_max(const AssocArray& a, const AssocArray& b) {
  return merge(a, b, MergeOp::kMax);
}

AssocArray AssocArray::logical() const {
  AssocArray a = *this;
  std::fill(a.val_.begin(), a.val_.end(), 1.0);
  return a;
}

AssocArray AssocArray::transpose() const {
  auto triples = to_triples();
  for (Triple& t : triples) std::swap(t.row, t.col);
  return from_triples(std::move(triples));
}

AssocArray AssocArray::select_rows(std::span<const std::string> keys) const {
  std::vector<std::string> wanted(keys.begin(), keys.end());
  std::sort(wanted.begin(), wanted.end());
  return select_rows_if([&](std::string_view key) {
    return std::binary_search(wanted.begin(), wanted.end(), key);
  });
}

AssocArray AssocArray::select_rows_if(const std::function<bool(std::string_view)>& pred) const {
  std::vector<Triple> kept;
  for (std::size_t r = 0; r < row_keys_.size(); ++r) {
    if (!pred(row_keys_[r])) continue;
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      kept.push_back({row_keys_[r], col_keys_[col_idx_[k]], val_[k]});
    }
  }
  return from_triples(std::move(kept));
}

AssocArray AssocArray::select_rows_prefix(std::string_view prefix) const {
  return select_rows_if([&](std::string_view key) { return key.starts_with(prefix); });
}

AssocArray AssocArray::select_cols(std::span<const std::string> keys) const {
  std::vector<std::string> wanted(keys.begin(), keys.end());
  std::sort(wanted.begin(), wanted.end());
  std::vector<Triple> kept;
  for (std::size_t r = 0; r < row_keys_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::string& col = col_keys_[col_idx_[k]];
      if (std::binary_search(wanted.begin(), wanted.end(), col)) {
        kept.push_back({row_keys_[r], col, val_[k]});
      }
    }
  }
  return from_triples(std::move(kept));
}

AssocArray AssocArray::select_cols_prefix(std::string_view prefix) const {
  std::vector<Triple> kept;
  for (std::size_t r = 0; r < row_keys_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::string& col = col_keys_[col_idx_[k]];
      if (col.size() >= prefix.size() && std::string_view(col).substr(0, prefix.size()) == prefix) {
        kept.push_back({row_keys_[r], col, val_[k]});
      }
    }
  }
  return from_triples(std::move(kept));
}

AssocArray AssocArray::row_sum() const {
  std::vector<Triple> sums;
  sums.reserve(row_keys_.size());
  for (std::size_t r = 0; r < row_keys_.size(); ++r) {
    double total = 0.0;
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) total += val_[k];
    sums.push_back({row_keys_[r], "sum", total});
  }
  return from_triples(std::move(sums));
}

AssocArray AssocArray::col_sum() const { return transpose().row_sum(); }

double AssocArray::reduce_sum() const {
  double total = 0.0;
  for (double v : val_) total += v;
  return total;
}

std::vector<Triple> AssocArray::to_triples() const {
  std::vector<Triple> triples;
  triples.reserve(nnz());
  for (std::size_t r = 0; r < row_keys_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triples.push_back({row_keys_[r], col_keys_[col_idx_[k]], val_[k]});
    }
  }
  return triples;
}

void AssocArray::write_tsv(std::ostream& os) const {
  char buf[64];
  for (const Triple& t : to_triples()) {
    std::snprintf(buf, sizeof buf, "%.17g", t.val);
    os << t.row << '\t' << t.col << '\t' << buf << '\n';
  }
}

AssocArray AssocArray::read_tsv(std::istream& is) {
  std::vector<Triple> triples;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto tab1 = line.find('\t');
    const auto tab2 = tab1 == std::string::npos ? std::string::npos : line.find('\t', tab1 + 1);
    OBSCORR_REQUIRE(tab2 != std::string::npos, "read_tsv: malformed line: " + line);
    double val = 0.0;
    const char* begin = line.data() + tab2 + 1;
    const char* end = line.data() + line.size();
    auto [p, ec] = std::from_chars(begin, end, val);
    OBSCORR_REQUIRE(ec == std::errc{} && p == end, "read_tsv: malformed value: " + line);
    triples.push_back({line.substr(0, tab1), line.substr(tab1 + 1, tab2 - tab1 - 1), val});
  }
  return from_triples(std::move(triples));
}

namespace {

constexpr char kBinaryMagic[8] = {'O', 'B', 'S', 'D', '4', 'M', 'A', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void write_keys(std::ostream& os, const std::vector<std::string>& keys) {
  write_pod<std::uint64_t>(os, keys.size());
  for (const std::string& key : keys) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
  }
}

/// Bounds-checked cursor over an in-memory serialized array; every read
/// validates against the remaining bytes before touching them, so hostile
/// counts fail before any allocation.
struct SpanCursor {
  std::span<const std::byte> bytes;
  std::size_t pos = 0;

  std::size_t remaining() const { return bytes.size() - pos; }

  const char* take(std::size_t n) {
    OBSCORR_REQUIRE(n <= remaining(), "read_binary: truncated stream");
    const char* p = reinterpret_cast<const char*>(bytes.data()) + pos;
    pos += n;
    return p;
  }

  template <typename T>
  T pod() {
    T value{};
    std::memcpy(&value, take(sizeof value), sizeof value);
    return value;
  }
};

std::vector<std::string> read_keys(SpanCursor& c, const char* what) {
  const auto count = c.pod<std::uint64_t>();
  // Each key costs at least its 4-byte length prefix, so the remaining
  // buffer bounds the plausible count — reject before reserving.
  OBSCORR_REQUIRE(count <= (1ULL << 32) && count <= c.remaining() / sizeof(std::uint32_t),
                  std::string("read_binary: implausible ") + what + " key count");
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto len = c.pod<std::uint32_t>();
    OBSCORR_REQUIRE(len <= (1u << 20), "read_binary: implausible key length");
    const std::string_view key(c.take(len), len);
    // Canonical form: strictly increasing keys (sorted, no duplicates).
    OBSCORR_REQUIRE(keys.empty() || std::string_view(keys.back()) < key,
                    std::string("read_binary: ") + what + " keys must be strictly increasing");
    keys.emplace_back(key);
  }
  return keys;
}

template <typename T>
std::vector<T> read_pod_array(SpanCursor& c, std::size_t n) {
  const char* p = c.take(n * sizeof(T));
  std::vector<T> values(n);
  if (n != 0) std::memcpy(values.data(), p, n * sizeof(T));
  return values;
}

}  // namespace

void AssocArray::write_binary(std::ostream& os) const {
  os.write(kBinaryMagic, sizeof kBinaryMagic);
  write_keys(os, row_keys_);
  write_keys(os, col_keys_);
  write_pod<std::uint64_t>(os, static_cast<std::uint64_t>(col_idx_.size()));
  os.write(reinterpret_cast<const char*>(row_ptr_.data()),
           static_cast<std::streamsize>(row_ptr_.size() * sizeof(std::uint64_t)));
  os.write(reinterpret_cast<const char*>(col_idx_.data()),
           static_cast<std::streamsize>(col_idx_.size() * sizeof(std::uint32_t)));
  os.write(reinterpret_cast<const char*>(val_.data()),
           static_cast<std::streamsize>(val_.size() * sizeof(double)));
  OBSCORR_REQUIRE(os.good(), "write_binary: stream failure");
}

AssocArray AssocArray::read_binary(std::istream& is) {
  // The istream form exists for symmetry with write_binary / read_tsv;
  // the span overload is the validated parser.
  const std::string buffer(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>{});
  return read_binary(std::as_bytes(std::span<const char>(buffer.data(), buffer.size())));
}

AssocArray AssocArray::read_binary(std::span<const std::byte> bytes) {
  SpanCursor c{bytes};
  OBSCORR_REQUIRE(std::memcmp(c.take(sizeof kBinaryMagic), kBinaryMagic,
                              sizeof kBinaryMagic) == 0,
                  "read_binary: bad magic");
  AssocArray a;
  a.row_keys_ = read_keys(c, "row");
  a.col_keys_ = read_keys(c, "col");
  const auto nnz = c.pod<std::uint64_t>();
  OBSCORR_REQUIRE(nnz <= (1ULL << 40), "read_binary: implausible entry count");
  OBSCORR_REQUIRE(a.row_keys_.size() <= nnz, "read_binary: more row keys than entries");
  a.row_ptr_ = read_pod_array<std::uint64_t>(c, a.row_keys_.size() + 1);
  a.col_idx_ = read_pod_array<std::uint32_t>(c, static_cast<std::size_t>(nnz));
  a.val_ = read_pod_array<double>(c, static_cast<std::size_t>(nnz));
  OBSCORR_REQUIRE(c.remaining() == 0, "read_binary: trailing bytes after array");

  // Canonical-form contract: offsets cover [0, nnz] with no empty rows,
  // column indices sorted unique within each row, and every column key
  // referenced at least once.
  OBSCORR_REQUIRE(a.row_ptr_.front() == 0 && a.row_ptr_.back() == nnz,
                  "read_binary: inconsistent row offsets");
  std::vector<bool> col_used(a.col_keys_.size(), false);
  for (std::size_t r = 0; r < a.row_keys_.size(); ++r) {
    OBSCORR_REQUIRE(a.row_ptr_[r] < a.row_ptr_[r + 1],
                    "read_binary: row offsets must be strictly increasing");
    OBSCORR_REQUIRE(a.row_ptr_[r + 1] <= nnz,
                    "read_binary: row offset exceeds the entry count");
    for (std::uint64_t k = a.row_ptr_[r]; k < a.row_ptr_[r + 1]; ++k) {
      OBSCORR_REQUIRE(a.col_idx_[k] < a.col_keys_.size(),
                      "read_binary: column index out of range");
      OBSCORR_REQUIRE(k == a.row_ptr_[r] || a.col_idx_[k - 1] < a.col_idx_[k],
                      "read_binary: column indices must be strictly increasing within a row");
      col_used[a.col_idx_[k]] = true;
    }
  }
  for (std::size_t c = 0; c < col_used.size(); ++c) {
    OBSCORR_REQUIRE(col_used[c], "read_binary: unused column key");
  }
  return a;
}

std::vector<std::string> intersect_keys(std::span<const std::string> a,
                                        std::span<const std::string> b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<std::string> union_keys(std::span<const std::string> a,
                                    std::span<const std::string> b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace obscorr::d4m
