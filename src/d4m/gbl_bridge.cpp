#include "d4m/gbl_bridge.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/ipv4.hpp"

namespace obscorr::d4m {

AssocArray from_sparse_vec(const gbl::SparseVec& vec, std::string col_key) {
  std::vector<Triple> triples;
  triples.reserve(vec.nnz());
  const auto idx = vec.indices();
  const auto val = vec.values();
  for (std::size_t i = 0; i < vec.nnz(); ++i) {
    triples.push_back({Ipv4(idx[i]).to_string(), col_key, val[i]});
  }
  return AssocArray::from_triples(std::move(triples));
}

gbl::SparseVec to_sparse_vec(const AssocArray& assoc, const std::string& col_key) {
  std::vector<std::pair<gbl::Index, gbl::Value>> entries;
  for (const Triple& t : assoc.to_triples()) {
    if (t.col != col_key) continue;
    const auto ip = Ipv4::parse(t.row);
    OBSCORR_REQUIRE(ip.has_value(), "to_sparse_vec: row key is not an IPv4 address: " + t.row);
    entries.emplace_back(ip->value(), t.val);
  }
  // Dotted-quad string order differs from numeric order; re-sort.
  std::sort(entries.begin(), entries.end());
  std::vector<gbl::Index> idx(entries.size());
  std::vector<gbl::Value> val(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    idx[i] = entries[i].first;
    val[i] = entries[i].second;
  }
  return gbl::SparseVec(std::move(idx), std::move(val));
}

}  // namespace obscorr::d4m
