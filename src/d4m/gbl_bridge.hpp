#pragma once
/// \file gbl_bridge.hpp
/// Bridge between GraphBLAS-lite results and D4M associative arrays.
///
/// The paper's workflow: network quantities are computed from hypersparse
/// GraphBLAS matrices, then "the reduced results are converted to D4M
/// associative arrays to facilitate correlation" with the GreyNoise
/// associative arrays. These adapters are that conversion — sparse vectors
/// over uint32 IPv4 ids become one-column associative arrays keyed by
/// dotted-quad strings.

#include <string>

#include "d4m/assoc.hpp"
#include "gbl/sparse_vec.hpp"

namespace obscorr::d4m {

/// Convert a reduced GraphBLAS vector (e.g. source packets `A·1`) to a
/// one-column associative array keyed by dotted-quad IPv4 strings.
AssocArray from_sparse_vec(const gbl::SparseVec& vec, std::string col_key);

/// Recover a sparse vector from a one-column associative array whose row
/// keys are dotted-quad IPv4 strings (inverse of `from_sparse_vec`).
gbl::SparseVec to_sparse_vec(const AssocArray& assoc, const std::string& col_key);

}  // namespace obscorr::d4m
