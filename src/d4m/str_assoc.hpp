#pragma once
/// \file str_assoc.hpp
/// String-valued D4M associative arrays — the full D4M value model. The
/// paper's example stores the GreyNoise data as
///
///     A_t('1.1.1.1', '2.2.2.2') = '3'
///
/// i.e. values are *strings from a sortable set*, not numbers. `StrAssoc`
/// implements that model: row keys, column keys, and value keys are all
/// sorted string sets; each entry references a value key. Collisions
/// resolve to the lexicographically larger value (the D4M max-collision
/// default), and union/intersection combine with string min/max — the
/// (max, min) algebra D4M defines on sortable value sets. Conversions to
/// and from the numeric `AssocArray` cover the paper's reduce-then-
/// correlate flow.

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "d4m/assoc.hpp"

namespace obscorr::d4m {

/// One (row, col, value) string triple.
struct StrTriple {
  std::string row;
  std::string col;
  std::string val;

  friend bool operator==(const StrTriple&, const StrTriple&) = default;
};

/// Immutable string-valued associative array.
class StrAssoc {
 public:
  StrAssoc();

  /// Build from triples; duplicate (row, col) cells keep the
  /// lexicographically largest value. Empty values are disallowed (an
  /// empty string is D4M's "not stored").
  static StrAssoc from_triples(std::vector<StrTriple> triples);

  /// Lift a numeric array: every value formatted with %.17g.
  static StrAssoc from_numeric(const AssocArray& numeric);

  std::size_t nnz() const { return col_idx_.size(); }
  bool empty() const { return nnz() == 0; }

  std::span<const std::string> row_keys() const { return row_keys_; }
  std::span<const std::string> col_keys() const { return col_keys_; }
  /// The sorted set of distinct stored values.
  std::span<const std::string> value_keys() const { return value_keys_; }

  /// Value at (row, col); nullopt when the cell is not stored.
  std::optional<std::string> at(std::string_view row, std::string_view col) const;
  bool has_row(std::string_view row) const;

  /// Union keeping the string-max per cell (D4M `A | B` over the value
  /// order); associative, commutative, idempotent.
  static StrAssoc ewise_max(const StrAssoc& a, const StrAssoc& b);

  /// Intersection keeping the string-min per shared cell (D4M `A & B`).
  static StrAssoc ewise_min(const StrAssoc& a, const StrAssoc& b);

  /// Pattern as a numeric array (1 per stored cell).
  AssocArray logical() const;

  /// Parse every value as a number (the paper's '3' -> 3.0); cells whose
  /// value is not numeric are dropped.
  AssocArray to_numeric() const;

  StrAssoc transpose() const;

  /// All entries as sorted triples.
  std::vector<StrTriple> to_triples() const;

  /// TSV interchange "row\tcol\tvalue" (values may contain anything but
  /// tabs and newlines).
  void write_tsv(std::ostream& os) const;
  static StrAssoc read_tsv(std::istream& is);

  friend bool operator==(const StrAssoc&, const StrAssoc&) = default;

 private:
  std::vector<std::string> row_keys_;
  std::vector<std::string> col_keys_;
  std::vector<std::string> value_keys_;
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<std::uint32_t> val_idx_;
};

}  // namespace obscorr::d4m
