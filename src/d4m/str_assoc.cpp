#include "d4m/str_assoc.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <set>

#include "common/error.hpp"

namespace obscorr::d4m {

StrAssoc::StrAssoc() { row_ptr_.push_back(0); }

namespace {

bool key_less(const StrTriple& a, const StrTriple& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

std::uint32_t index_of(const std::vector<std::string>& keys, std::string_view key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  OBSCORR_INVARIANT(it != keys.end() && *it == key);
  return static_cast<std::uint32_t>(it - keys.begin());
}

}  // namespace

StrAssoc StrAssoc::from_triples(std::vector<StrTriple> triples) {
  for (const StrTriple& t : triples) {
    OBSCORR_REQUIRE(!t.val.empty(), "StrAssoc: empty values are not storable");
  }
  std::sort(triples.begin(), triples.end(), key_less);
  // Max-collision policy: for equal cells keep the largest value.
  std::size_t out = 0;
  for (std::size_t i = 1; i < triples.size(); ++i) {
    if (triples[out].row == triples[i].row && triples[out].col == triples[i].col) {
      if (triples[i].val > triples[out].val) triples[out].val = std::move(triples[i].val);
    } else if (++out != i) {
      triples[out] = std::move(triples[i]);
    }
  }
  if (!triples.empty()) triples.resize(out + 1);

  StrAssoc a;
  if (triples.empty()) return a;

  std::set<std::string> cols, vals;
  for (const StrTriple& t : triples) {
    if (a.row_keys_.empty() || a.row_keys_.back() != t.row) a.row_keys_.push_back(t.row);
    cols.insert(t.col);
    vals.insert(t.val);
  }
  a.col_keys_.assign(cols.begin(), cols.end());
  a.value_keys_.assign(vals.begin(), vals.end());

  a.row_ptr_.clear();
  a.col_idx_.reserve(triples.size());
  a.val_idx_.reserve(triples.size());
  for (std::size_t i = 0; i < triples.size(); ++i) {
    if (i == 0 || triples[i - 1].row != triples[i].row) {
      a.row_ptr_.push_back(static_cast<std::uint64_t>(i));
    }
    a.col_idx_.push_back(index_of(a.col_keys_, triples[i].col));
    a.val_idx_.push_back(index_of(a.value_keys_, triples[i].val));
  }
  a.row_ptr_.push_back(static_cast<std::uint64_t>(triples.size()));
  OBSCORR_INVARIANT(a.row_ptr_.size() == a.row_keys_.size() + 1);
  return a;
}

StrAssoc StrAssoc::from_numeric(const AssocArray& numeric) {
  std::vector<StrTriple> triples;
  triples.reserve(numeric.nnz());
  char buf[64];
  for (const Triple& t : numeric.to_triples()) {
    std::snprintf(buf, sizeof buf, "%.17g", t.val);
    triples.push_back({t.row, t.col, buf});
  }
  return from_triples(std::move(triples));
}

std::optional<std::string> StrAssoc::at(std::string_view row, std::string_view col) const {
  const auto rit = std::lower_bound(row_keys_.begin(), row_keys_.end(), row);
  if (rit == row_keys_.end() || *rit != row) return std::nullopt;
  const auto cit = std::lower_bound(col_keys_.begin(), col_keys_.end(), col);
  if (cit == col_keys_.end() || *cit != col) return std::nullopt;
  const std::size_t r = static_cast<std::size_t>(rit - row_keys_.begin());
  const auto c = static_cast<std::uint32_t>(cit - col_keys_.begin());
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return std::nullopt;
  return value_keys_[val_idx_[static_cast<std::size_t>(it - col_idx_.begin())]];
}

bool StrAssoc::has_row(std::string_view row) const {
  return std::binary_search(row_keys_.begin(), row_keys_.end(), row);
}

namespace {

StrAssoc merge_str(const StrAssoc& a, const StrAssoc& b, bool intersect) {
  auto ta = a.to_triples();
  auto tb = b.to_triples();
  std::vector<StrTriple> out;
  std::size_t i = 0, j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i].row == tb[j].row && ta[i].col == tb[j].col) {
      const bool a_larger = ta[i].val > tb[j].val;
      // max for union semantics, min for intersection semantics.
      const StrTriple& pick = intersect == a_larger ? tb[j] : ta[i];
      out.push_back(pick);
      ++i;
      ++j;
    } else if (key_less(ta[i], tb[j])) {
      if (!intersect) out.push_back(ta[i]);
      ++i;
    } else {
      if (!intersect) out.push_back(tb[j]);
      ++j;
    }
  }
  if (!intersect) {
    out.insert(out.end(), ta.begin() + static_cast<std::ptrdiff_t>(i), ta.end());
    out.insert(out.end(), tb.begin() + static_cast<std::ptrdiff_t>(j), tb.end());
  }
  return StrAssoc::from_triples(std::move(out));
}

}  // namespace

StrAssoc StrAssoc::ewise_max(const StrAssoc& a, const StrAssoc& b) {
  return merge_str(a, b, /*intersect=*/false);
}

StrAssoc StrAssoc::ewise_min(const StrAssoc& a, const StrAssoc& b) {
  return merge_str(a, b, /*intersect=*/true);
}

AssocArray StrAssoc::logical() const {
  std::vector<Triple> ones;
  ones.reserve(nnz());
  for (const StrTriple& t : to_triples()) ones.push_back({t.row, t.col, 1.0});
  return AssocArray::from_triples(std::move(ones));
}

AssocArray StrAssoc::to_numeric() const {
  std::vector<Triple> numeric;
  for (const StrTriple& t : to_triples()) {
    double value = 0.0;
    const char* begin = t.val.data();
    const char* end = begin + t.val.size();
    auto [p, ec] = std::from_chars(begin, end, value);
    if (ec == std::errc{} && p == end) numeric.push_back({t.row, t.col, value});
  }
  return AssocArray::from_triples(std::move(numeric));
}

StrAssoc StrAssoc::transpose() const {
  auto triples = to_triples();
  for (StrTriple& t : triples) std::swap(t.row, t.col);
  return from_triples(std::move(triples));
}

std::vector<StrTriple> StrAssoc::to_triples() const {
  std::vector<StrTriple> triples;
  triples.reserve(nnz());
  for (std::size_t r = 0; r < row_keys_.size(); ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triples.push_back({row_keys_[r], col_keys_[col_idx_[k]], value_keys_[val_idx_[k]]});
    }
  }
  return triples;
}

void StrAssoc::write_tsv(std::ostream& os) const {
  for (const StrTriple& t : to_triples()) {
    os << t.row << '\t' << t.col << '\t' << t.val << '\n';
  }
}

StrAssoc StrAssoc::read_tsv(std::istream& is) {
  std::vector<StrTriple> triples;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto tab1 = line.find('\t');
    const auto tab2 = tab1 == std::string::npos ? std::string::npos : line.find('\t', tab1 + 1);
    OBSCORR_REQUIRE(tab2 != std::string::npos, "StrAssoc::read_tsv: malformed line: " + line);
    triples.push_back({line.substr(0, tab1), line.substr(tab1 + 1, tab2 - tab1 - 1),
                       line.substr(tab2 + 1)});
  }
  return from_triples(std::move(triples));
}

}  // namespace obscorr::d4m
