#include "telescope/telescope.hpp"

#include "common/error.hpp"
#include "gbl/coo.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::telescope {

namespace {

/// Flush one batch's local tallies into the registry. Local stack
/// counters keep the per-packet loop free of atomics; the single branch
/// on the cached flag is the entire disabled-path cost.
void flush_capture_counters(std::uint64_t valid, std::uint64_t discarded, std::uint64_t hits,
                            std::uint64_t misses) {
  if (!obs::counters_enabled()) return;
  static obs::Counter& valid_packets = obs::counter("telescope.valid_packets");
  static obs::Counter& discarded_packets = obs::counter("telescope.discarded_packets");
  static obs::Counter& cache_hits = obs::counter("telescope.anon_cache_hits");
  static obs::Counter& cache_misses = obs::counter("telescope.anon_cache_misses");
  valid_packets.add(valid);
  discarded_packets.add(discarded);
  cache_hits.add(hits);
  cache_misses.add(misses);
}

/// How many packets ahead the capture loops prefetch anon-cache probe
/// slots. Deep enough to cover the table's DRAM latency with the work on
/// the packets in between, shallow enough to stay inside every batch.
constexpr std::size_t kCachePrefetchAhead = 8;

}  // namespace

Telescope::Telescope(TelescopeConfig config, ThreadPool& pool)
    : config_(std::move(config)),
      cryptopan_(crypt::CryptoPan::from_seed(config_.cryptopan_seed)),
      accumulator_(config_.block_log2, pool) {}

bool Telescope::is_valid(const Packet& packet) const {
  if (!config_.darkspace.contains(packet.dst)) return false;
  for (const Ipv4Prefix& legit : config_.legit_prefixes) {
    if (legit.contains(packet.src)) return false;
  }
  return true;
}

bool Telescope::capture(const Packet& packet) {
  if (!is_valid(packet)) {
    ++discarded_;
    return false;
  }
  const std::uint32_t src = anonymize_value(packet.src.value());
  const std::uint32_t dst = anonymize_value(packet.dst.value());
  accumulator_.add_packet(src, dst);
  return true;
}

std::uint64_t Telescope::capture_block(std::span<const Packet> packets) {
  batch_keys_.clear();
  batch_keys_.reserve(packets.size());
  std::uint64_t discarded = 0, hits = 0, misses = 0;
  const auto anonymize = [&](std::uint32_t addr) {
    if (const std::uint32_t* hit = anon_cache_.find(addr)) {
      ++hits;
      return *hit;
    }
    ++misses;
    const std::uint32_t anon = cryptopan_.anonymize(Ipv4(addr)).value();
    anon_cache_.insert(addr, anon);
    dictionary_.emplace(anon, addr);
    return anon;
  };
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i + kCachePrefetchAhead < packets.size()) {
      const Packet& ahead = packets[i + kCachePrefetchAhead];
      anon_cache_.prefetch(ahead.src.value());
      anon_cache_.prefetch(ahead.dst.value());
    }
    const Packet& p = packets[i];
    if (!is_valid(p)) {
      ++discarded;
      continue;
    }
    const std::uint32_t src = anonymize(p.src.value());
    const std::uint32_t dst = anonymize(p.dst.value());
    batch_keys_.push_back(gbl::pack_key(src, dst));
  }
  discarded_ += discarded;
  accumulator_.add_packets(batch_keys_);
  flush_capture_counters(batch_keys_.size(), discarded, hits, misses);
  return batch_keys_.size();
}

gbl::DcsrMatrix Telescope::finish_window() {
  static obs::Counter& merge_ns = obs::counter("telescope.merge_ns");
  const obs::Span span("telescope.finish_window");
  const obs::ScopedNsCounter merge_time(merge_ns);
  return accumulator_.finish();
}

std::uint32_t Telescope::anonymize_value(std::uint32_t addr) const {
  if (const std::uint32_t* hit = anon_cache_.find(addr)) return *hit;
  const std::uint32_t anon = cryptopan_.anonymize(Ipv4(addr)).value();
  anon_cache_.insert(addr, anon);
  dictionary_.emplace(anon, addr);
  return anon;
}

Ipv4 Telescope::anonymize(Ipv4 addr) const { return Ipv4(anonymize_value(addr.value())); }

Ipv4 Telescope::deanonymize(Ipv4 anon) const {
  const auto it = dictionary_.find(anon.value());
  OBSCORR_REQUIRE(it != dictionary_.end(),
                  "deanonymize: id never produced by this telescope: " + anon.to_string());
  return Ipv4(it->second);
}

Ipv4Prefix Telescope::anonymized_darkspace() const {
  // Prefix preservation: the darkspace base maps to the anonymized base
  // of a prefix with identical length.
  const Ipv4 anon_base = cryptopan_.anonymize(config_.darkspace.base());
  return Ipv4Prefix(anon_base, config_.darkspace.length());
}

void Telescope::absorb(ShardCapture&& shard) {
  OBSCORR_REQUIRE(shard.scope_ == this, "absorb: shard belongs to a different telescope");
  discarded_ += shard.discarded_;
  dictionary_.merge(shard.dictionary_);
}

ShardCapture::ShardCapture(const Telescope& scope, ThreadPool& pool)
    : scope_(&scope), accumulator_(scope.config_.block_log2, pool) {}

std::uint64_t ShardCapture::capture_block(std::span<const Packet> packets) {
  batch_keys_.clear();
  batch_keys_.reserve(packets.size());
  std::uint64_t discarded = 0, hits = 0, misses = 0;
  const auto anonymize = [&](std::uint32_t addr) {
    if (const std::uint32_t* hit = anon_cache_.find(addr)) {
      ++hits;
      return *hit;
    }
    ++misses;
    const std::uint32_t anon = scope_->cryptopan_.anonymize(Ipv4(addr)).value();
    anon_cache_.insert(addr, anon);
    dictionary_.emplace(anon, addr);
    return anon;
  };
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i + kCachePrefetchAhead < packets.size()) {
      const Packet& ahead = packets[i + kCachePrefetchAhead];
      anon_cache_.prefetch(ahead.src.value());
      anon_cache_.prefetch(ahead.dst.value());
    }
    const Packet& p = packets[i];
    if (!scope_->is_valid(p)) {
      ++discarded;
      continue;
    }
    const std::uint32_t src = anonymize(p.src.value());
    const std::uint32_t dst = anonymize(p.dst.value());
    batch_keys_.push_back(gbl::pack_key(src, dst));
  }
  discarded_ += discarded;
  accumulator_.add_packets(batch_keys_);
  flush_capture_counters(batch_keys_.size(), discarded, hits, misses);
  return batch_keys_.size();
}

gbl::DcsrMatrix ShardCapture::finish() {
  static obs::Counter& merge_ns = obs::counter("telescope.merge_ns");
  const obs::Span span("telescope.shard_finish");
  const obs::ScopedNsCounter merge_time(merge_ns);
  return accumulator_.finish();
}

}  // namespace obscorr::telescope
