#include "telescope/telescope.hpp"

#include "common/error.hpp"

namespace obscorr::telescope {

Telescope::Telescope(TelescopeConfig config, ThreadPool& pool)
    : config_(std::move(config)),
      cryptopan_(crypt::CryptoPan::from_seed(config_.cryptopan_seed)),
      accumulator_(config_.block_log2, pool) {}

bool Telescope::is_valid(const Packet& packet) const {
  if (!config_.darkspace.contains(packet.dst)) return false;
  for (const Ipv4Prefix& legit : config_.legit_prefixes) {
    if (legit.contains(packet.src)) return false;
  }
  return true;
}

bool Telescope::capture(const Packet& packet) {
  if (!is_valid(packet)) {
    ++discarded_;
    return false;
  }
  const Ipv4 src = anonymize(packet.src);
  const Ipv4 dst = anonymize(packet.dst);
  accumulator_.add_packet(src.value(), dst.value());
  return true;
}

gbl::DcsrMatrix Telescope::finish_window() { return accumulator_.finish(); }

Ipv4 Telescope::anonymize(Ipv4 addr) const {
  const auto it = anon_cache_.find(addr.value());
  if (it != anon_cache_.end()) return Ipv4(it->second);
  const Ipv4 anon = cryptopan_.anonymize(addr);
  anon_cache_.emplace(addr.value(), anon.value());
  dictionary_.emplace(anon.value(), addr.value());
  return anon;
}

Ipv4 Telescope::deanonymize(Ipv4 anon) const {
  const auto it = dictionary_.find(anon.value());
  OBSCORR_REQUIRE(it != dictionary_.end(),
                  "deanonymize: id never produced by this telescope: " + anon.to_string());
  return Ipv4(it->second);
}

Ipv4Prefix Telescope::anonymized_darkspace() const {
  // Prefix preservation: the darkspace base maps to the anonymized base
  // of a prefix with identical length.
  const Ipv4 anon_base = cryptopan_.anonymize(config_.darkspace.base());
  return Ipv4Prefix(anon_base, config_.darkspace.length());
}

}  // namespace obscorr::telescope
