#pragma once
/// \file anon_cache.hpp
/// Flat open-addressing memoization cache for CryptoPAN anonymization.
///
/// Every captured packet anonymizes two addresses, and at telescope scale
/// almost every lookup is a hit (a 2^22-packet window touches ~2^20
/// distinct addresses but 2^23 lookups). `std::unordered_map` pays a
/// node dereference per probe; this cache is a single contiguous array of
/// (key, value) slots probed linearly from a multiplicative hash, so the
/// hit path is one or two cache lines with no pointer chasing.

#include <cstddef>
#include <cstdint>

#include "common/pool_alloc.hpp"

namespace obscorr::telescope {

/// Open-addressing u32 -> u32 hash map specialized for the anonymization
/// hot path: insert-only, linear probing, grown at 50% load.
class AnonCache {
 public:
  explicit AnonCache(std::size_t min_capacity = 1 << 16);

  /// Pointer to the value for `key`, or nullptr when absent. The pointer
  /// is invalidated by the next insert.
  const std::uint32_t* find(std::uint32_t key) const;

  /// Insert a fresh mapping; `key` must not already be present.
  void insert(std::uint32_t key, std::uint32_t value);

  /// Number of stored mappings (distinct addresses seen).
  std::size_t size() const { return size_; }

  /// Hint that `key` will be probed shortly: pulls the probe-start slot
  /// (and its occupancy byte) toward the cache. Batched ingest loops call
  /// this a few packets ahead so the table's random-access misses overlap
  /// with the packets in between; it never changes what `find` returns.
  void prefetch(std::uint32_t key) const {
    const std::size_t i = probe_start(key);
    __builtin_prefetch(&used_[i]);
    __builtin_prefetch(&slots_[i]);
  }

 private:
  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t value = 0;
  };

  std::size_t probe_start(std::uint32_t key) const {
    // Fibonacci multiplicative hash of the 32-bit key over the table size.
    return static_cast<std::size_t>((key * std::uint64_t{0x9E3779B97F4A7C15}) >> 32) & mask_;
  }
  void grow();

  // Pool-backed: per-shard capture contexts build a fresh cache per
  // window chunk, so the table arrays recycle instead of re-faulting.
  mem::PoolVec<Slot> slots_;
  mem::PoolVec<std::uint8_t> used_;
  std::size_t mask_ = 0;  // slots_.size() - 1 (power of two)
  std::size_t size_ = 0;
};

}  // namespace obscorr::telescope
