#include "telescope/anon_cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace obscorr::telescope {

AnonCache::AnonCache(std::size_t min_capacity) {
  OBSCORR_REQUIRE(min_capacity >= 2, "AnonCache: capacity must be at least 2");
  const std::size_t capacity = std::bit_ceil(min_capacity);
  slots_.resize(capacity);
  used_.assign(capacity, 0);
  mask_ = capacity - 1;
}

const std::uint32_t* AnonCache::find(std::uint32_t key) const {
  for (std::size_t i = probe_start(key); used_[i]; i = (i + 1) & mask_) {
    if (slots_[i].key == key) return &slots_[i].value;
  }
  return nullptr;
}

void AnonCache::insert(std::uint32_t key, std::uint32_t value) {
  if (2 * (size_ + 1) > slots_.size()) grow();
  std::size_t i = probe_start(key);
  while (used_[i]) {
    OBSCORR_INVARIANT(slots_[i].key != key);  // insert-only: no overwrites
    i = (i + 1) & mask_;
  }
  slots_[i] = {key, value};
  used_[i] = 1;
  ++size_;
}

void AnonCache::grow() {
  mem::PoolVec<Slot> old_slots(2 * slots_.size());
  mem::PoolVec<std::uint8_t> old_used(old_slots.size(), 0);
  old_slots.swap(slots_);
  old_used.swap(used_);
  mask_ = slots_.size() - 1;
  for (std::size_t i = 0; i < old_slots.size(); ++i) {
    if (!old_used[i]) continue;
    std::size_t j = probe_start(old_slots[i].key);
    while (used_[j]) j = (j + 1) & mask_;
    slots_[j] = old_slots[i];
    used_[j] = 1;
  }
}

}  // namespace obscorr::telescope
