#pragma once
/// \file quadrants.hpp
/// Traffic-matrix quadrant partitioning (paper Fig. 1): with a set of
/// monitored "internal" addresses, any traffic matrix splits into
/// external→internal, internal→external, internal→internal, and
/// external→external flows. A darkspace telescope only populates the
/// external→internal quadrant; an outpost that answers probes populates
/// internal→external too. The partition is computed with prefix
/// membership tests, so it works equally on CryptoPAN-anonymized
/// matrices using the anonymized prefix.

#include "common/ipv4.hpp"
#include "gbl/dcsr.hpp"

namespace obscorr::telescope {

/// The four quadrants of a traffic matrix.
struct Quadrants {
  gbl::DcsrMatrix external_to_internal;
  gbl::DcsrMatrix internal_to_external;
  gbl::DcsrMatrix internal_to_internal;
  gbl::DcsrMatrix external_to_external;
};

/// Partition `matrix` by membership of row (source) and column
/// (destination) in the internal prefix.
Quadrants partition_quadrants(const gbl::DcsrMatrix& matrix, const Ipv4Prefix& internal);

}  // namespace obscorr::telescope
