#include "telescope/capture_session.hpp"

#include "common/error.hpp"

namespace obscorr::telescope {

CaptureSession::CaptureSession(Telescope& telescope, CaptureSessionConfig config)
    : telescope_(telescope), config_(config), timing_(config.timing_seed, 0x7173) {
  OBSCORR_REQUIRE(config.window_packets > 0, "CaptureSession: window must be positive");
  OBSCORR_REQUIRE(config.mean_packet_rate > 0.0, "CaptureSession: rate must be positive");
}

void CaptureSession::offer(const Packet& packet,
                           const std::function<void(CaptureWindow&&)>& on_window) {
  // Every packet (valid or not) advances the Poisson clock; only valid
  // packets advance the constant-packet window.
  clock_sec_ += timing_.exponential(config_.mean_packet_rate);
  if (!telescope_.capture(packet)) return;
  if (telescope_.valid_packets() < config_.window_packets) return;

  CaptureWindow window;
  window.index = windows_;
  window.matrix = telescope_.finish_window();
  window.start_sec = window_start_sec_;
  window.duration_sec = clock_sec_ - window_start_sec_;
  window.discarded = telescope_.discarded_packets() - discarded_at_window_start_;
  ++windows_;
  window_start_sec_ = clock_sec_;
  discarded_at_window_start_ = telescope_.discarded_packets();
  on_window(std::move(window));
}

}  // namespace obscorr::telescope
