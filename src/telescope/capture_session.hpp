#pragma once
/// \file capture_session.hpp
/// Continuous telescope operation: segment an endless packet stream into
/// consecutive constant-packet windows — the paper's "constant packet,
/// variable time" sampling — and emit each window's matrix with its
/// measured wall-clock duration.
///
/// Packet timing follows a Poisson arrival process at a configurable
/// mean rate, so window durations fluctuate around N_V/rate exactly the
/// way the real instrument's do (Table I: 997–1594 s for the same 2^30
/// packets), and the duration statistics become measurable outputs
/// rather than inputs.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/prng.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::telescope {

/// One completed constant-packet window.
struct CaptureWindow {
  std::uint64_t index = 0;        ///< 0-based window number
  gbl::DcsrMatrix matrix;         ///< anonymized ext->int traffic matrix
  double start_sec = 0.0;         ///< stream time of the first packet
  double duration_sec = 0.0;      ///< variable time span of the window
  std::uint64_t discarded = 0;    ///< non-valid packets inside the window
};

/// Session configuration.
struct CaptureSessionConfig {
  std::uint64_t window_packets = 1 << 17;  ///< valid packets per window
  double mean_packet_rate = 1e6;           ///< packets/second (Poisson arrivals)
  std::uint64_t timing_seed = 1;           ///< arrival-process stream
};

/// Drives a Telescope through consecutive windows.
class CaptureSession {
 public:
  CaptureSession(Telescope& telescope, CaptureSessionConfig config);

  /// Offer one packet; when it completes a window the callback fires
  /// with the finished window before the function returns.
  void offer(const Packet& packet, const std::function<void(CaptureWindow&&)>& on_window);

  /// Windows completed so far.
  std::uint64_t windows_completed() const { return windows_; }

  /// Current stream time in seconds.
  double now_sec() const { return clock_sec_; }

 private:
  Telescope& telescope_;
  CaptureSessionConfig config_;
  Rng timing_;
  double clock_sec_ = 0.0;
  double window_start_sec_ = 0.0;
  std::uint64_t windows_ = 0;
  std::uint64_t discarded_at_window_start_ = 0;
};

}  // namespace obscorr::telescope
