#pragma once
/// \file trace.hpp
/// Packet-trace files: the recorded-capture ingest path. The telescope
/// normally consumes a live stream; operators also replay archived
/// captures. The format is a minimal binary header-pair log (the
/// anonymizable fields only — this library never stores payloads):
///
///   8 bytes  magic "OBSCTRC1"
///   u64      packet count
///   { u32 src, u32 dst } x count   (host-order IPv4 values)
///
/// `TraceWriter` streams packets out; `TraceReader` replays them through
/// a callback, so a multi-gigabyte trace never needs to fit in memory.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/packet.hpp"

namespace obscorr::telescope {

/// Streaming trace writer. The packet count is back-patched on `close`
/// (or destruction), so writers can stream without knowing the total.
class TraceWriter {
 public:
  /// Open `path` for writing; throws when the file cannot be created.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Append one packet.
  void write(const Packet& packet);

  /// Packets written so far.
  std::uint64_t count() const { return count_; }

  /// Finalize the header; further writes are invalid. Idempotent.
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t count_ = 0;
};

/// Replay a trace file through `sink`; returns the packet count.
/// Throws std::invalid_argument on malformed files (bad magic, count
/// mismatch, truncation).
std::uint64_t replay_trace(const std::string& path, const std::function<void(const Packet&)>& sink);

/// Convenience: record exactly the packets of one generated window.
/// Returns the number of packets written.
std::uint64_t record_trace(const std::string& path,
                           const std::function<void(const std::function<void(const Packet&)>&)>& producer);

}  // namespace obscorr::telescope
