#include "telescope/quadrants.hpp"

namespace obscorr::telescope {

Quadrants partition_quadrants(const gbl::DcsrMatrix& matrix, const Ipv4Prefix& internal) {
  Quadrants q;
  q.external_to_internal = matrix.select([&](gbl::Index r, gbl::Index c) {
    return !internal.contains(Ipv4(r)) && internal.contains(Ipv4(c));
  });
  q.internal_to_external = matrix.select([&](gbl::Index r, gbl::Index c) {
    return internal.contains(Ipv4(r)) && !internal.contains(Ipv4(c));
  });
  q.internal_to_internal = matrix.select([&](gbl::Index r, gbl::Index c) {
    return internal.contains(Ipv4(r)) && internal.contains(Ipv4(c));
  });
  q.external_to_external = matrix.select([&](gbl::Index r, gbl::Index c) {
    return !internal.contains(Ipv4(r)) && !internal.contains(Ipv4(c));
  });
  return q;
}

}  // namespace obscorr::telescope
