#include "telescope/trace.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace obscorr::telescope {

namespace {
constexpr char kMagic[8] = {'O', 'B', 'S', 'C', 'T', 'R', 'C', '1'};
constexpr std::uint64_t kCountPlaceholder = ~0ULL;
}  // namespace

struct TraceWriter::Impl {
  std::ofstream os;
  bool closed = false;
};

TraceWriter::TraceWriter(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->os.open(path, std::ios::binary);
  OBSCORR_REQUIRE(impl_->os.is_open(), "TraceWriter: cannot open " + path);
  impl_->os.write(kMagic, sizeof kMagic);
  impl_->os.write(reinterpret_cast<const char*>(&kCountPlaceholder), sizeof kCountPlaceholder);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::write(const Packet& packet) {
  OBSCORR_REQUIRE(!impl_->closed, "TraceWriter: write after close");
  const std::uint32_t pair[2] = {packet.src.value(), packet.dst.value()};
  impl_->os.write(reinterpret_cast<const char*>(pair), sizeof pair);
  ++count_;
}

void TraceWriter::close() {
  if (impl_->closed) return;
  impl_->closed = true;
  // Back-patch the packet count. No exceptions here: close() also runs
  // from the destructor, where throwing would terminate.
  impl_->os.seekp(sizeof kMagic, std::ios::beg);
  impl_->os.write(reinterpret_cast<const char*>(&count_), sizeof count_);
  impl_->os.flush();
}

std::uint64_t replay_trace(const std::string& path,
                           const std::function<void(const Packet&)>& sink) {
  std::ifstream is(path, std::ios::binary);
  OBSCORR_REQUIRE(is.is_open(), "replay_trace: cannot open " + path);
  char magic[8] = {};
  is.read(magic, sizeof magic);
  OBSCORR_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                  "replay_trace: bad magic in " + path);
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  OBSCORR_REQUIRE(is.good() && count != kCountPlaceholder,
                  "replay_trace: unfinalized or truncated header in " + path);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t pair[2];
    is.read(reinterpret_cast<char*>(pair), sizeof pair);
    OBSCORR_REQUIRE(is.good() || (is.eof() && is.gcount() == sizeof pair),
                    "replay_trace: truncated record in " + path);
    sink({Ipv4(pair[0]), Ipv4(pair[1])});
  }
  // No trailing garbage allowed.
  char extra;
  is.read(&extra, 1);
  OBSCORR_REQUIRE(is.eof(), "replay_trace: trailing bytes after " + std::to_string(count) +
                                " packets in " + path);
  return count;
}

std::uint64_t record_trace(
    const std::string& path,
    const std::function<void(const std::function<void(const Packet&)>&)>& producer) {
  TraceWriter writer(path);
  producer([&](const Packet& p) { writer.write(p); });
  writer.close();
  return writer.count();
}

}  // namespace obscorr::telescope
