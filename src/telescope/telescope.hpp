#pragma once
/// \file telescope.hpp
/// The darknet telescope simulator: the CAIDA-style Internet observatory.
///
/// The instrument monitors a routed darkspace prefix. Incoming packets
/// pass a validity filter (destination inside the darkspace, source not
/// in a known-legitimate prefix — the real telescope discards the small
/// amount of legitimate traffic), are CryptoPAN-anonymized, and stream
/// into a hierarchical hypersparse GraphBLAS accumulator in blocks of
/// 2^block_log2 valid packets, exactly the paper's matrix-construction
/// pipeline. Because CryptoPAN is prefix-preserving, the anonymized
/// darkspace is still a single /len prefix and quadrant partitioning
/// (Fig. 1) keeps working on anonymized data.
///
/// The telescope retains the anonymization dictionary so that, inside the
/// paper's trusted-sharing framework (§I, approach 1), observed source
/// ids can be "sent back to the source" for deanonymization during
/// cross-observatory correlation.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ipv4.hpp"
#include "common/packet.hpp"
#include "common/pool_alloc.hpp"
#include "common/thread_pool.hpp"
#include "crypt/cryptopan.hpp"
#include "gbl/dcsr.hpp"
#include "gbl/hierarchical.hpp"
#include "telescope/anon_cache.hpp"

namespace obscorr::telescope {

/// Telescope instrument configuration.
struct TelescopeConfig {
  /// The monitored darkspace (the paper's is a /8; simulations scale it
  /// with the window size to keep per-address density realistic).
  Ipv4Prefix darkspace{Ipv4(77, 0, 0, 0), 16};
  /// Source prefixes whose traffic is considered legitimate and dropped.
  std::vector<Ipv4Prefix> legit_prefixes{Ipv4Prefix(Ipv4(10, 0, 0, 0), 8)};
  /// log2 of the GraphBLAS leaf block (paper: 2^17 packets).
  int block_log2 = 17;
  /// CryptoPAN key seed (the telescope operator's secret).
  std::uint64_t cryptopan_seed = 0xCA1DA;
};

class ShardCapture;

/// Streaming darknet capture into one constant-packet window.
class Telescope {
 public:
  Telescope(TelescopeConfig config, ThreadPool& pool);

  const TelescopeConfig& config() const { return config_; }

  /// Offer one packet; returns true when it was valid and captured.
  bool capture(const Packet& packet);

  /// Offer a batch of packets: filter, anonymize (flat memoization
  /// cache), and append the packed (src, dst) keys to the accumulator in
  /// one pass with no per-packet function boundary. Returns the number
  /// of valid packets captured; the rest were discarded. Equivalent to
  /// calling `capture` per packet.
  std::uint64_t capture_block(std::span<const Packet> packets);

  /// Valid packets captured in the current window.
  std::uint64_t valid_packets() const { return accumulator_.packets(); }

  /// Packets discarded by the validity filter so far (across windows).
  std::uint64_t discarded_packets() const { return discarded_; }

  /// Deanonymization-dictionary entries (anon -> original) accumulated
  /// so far — the trusted-exchange state the paper's sharing framework
  /// rests on. Persists across windows, grows monotonically.
  std::size_t dictionary_entries() const { return dictionary_.size(); }

  /// Distinct addresses memoized by the anonymization cache.
  std::size_t anon_cache_entries() const { return anon_cache_.size(); }

  /// Close the window: the anonymized ext->int traffic matrix. Resets
  /// the window state; the anonymization dictionary persists.
  gbl::DcsrMatrix finish_window();

  /// Anonymize an address with the telescope's key (memoized; CryptoPAN
  /// costs 32 AES calls per fresh address).
  Ipv4 anonymize(Ipv4 addr) const;

  /// Trusted-exchange deanonymization: inverts `anonymize` for addresses
  /// this telescope has anonymized before; throws for unknown ids.
  Ipv4 deanonymize(Ipv4 anon) const;

  /// The anonymized image of the darkspace prefix (prefix preservation
  /// keeps it a single prefix of the same length).
  Ipv4Prefix anonymized_darkspace() const;

  /// Fold a shard capture context back into this telescope: its
  /// deanonymization dictionary entries and its discard counter. The
  /// shard's matrix is taken separately via `ShardCapture::finish`.
  /// Absorption order does not matter — dictionary entries from any two
  /// shards of the same telescope agree on shared addresses (CryptoPAN
  /// is a pure function of the key), and discard counts are summed.
  void absorb(ShardCapture&& shard);

 private:
  friend class ShardCapture;

  bool is_valid(const Packet& packet) const;
  std::uint32_t anonymize_value(std::uint32_t addr) const;

  TelescopeConfig config_;
  crypt::CryptoPan cryptopan_;
  gbl::HierarchicalAccumulator accumulator_;
  std::uint64_t discarded_ = 0;
  mutable AnonCache anon_cache_;  // original -> anon (hot, flat open addressing)
  mutable std::unordered_map<std::uint32_t, std::uint32_t> dictionary_;  // anon -> original
  mem::PoolVec<std::uint64_t> batch_keys_;  // capture_block scratch (pool-recycled)
};

/// Capture context for one generation shard (or a worker's run of
/// consecutive shards) of a telescope window. Shares the telescope's
/// const configuration and CryptoPAN key — anonymization is a pure
/// function of the key, so independent per-shard memoization caches
/// always agree — but owns its accumulator, caches, and counters, so
/// concurrent shard captures never synchronize. When done, take the
/// shard matrix with `finish` and fold the bookkeeping back with
/// `Telescope::absorb`; summing the shard matrices in any grouping
/// reproduces the single-context window matrix exactly (packet counts
/// are exact small integers, so the aggregation is order-free).
class ShardCapture {
 public:
  ShardCapture(const Telescope& scope, ThreadPool& pool);

  /// Filter, anonymize, and accumulate a batch; returns valid packets.
  /// Same semantics as `Telescope::capture_block`, against shard state.
  std::uint64_t capture_block(std::span<const Packet> packets);

  /// Valid packets captured by this shard context so far.
  std::uint64_t valid_packets() const { return accumulator_.packets(); }

  /// Packets discarded by the validity filter in this shard context.
  std::uint64_t discarded_packets() const { return discarded_; }

  /// Collapse this context's accumulator into its shard matrix.
  gbl::DcsrMatrix finish();

 private:
  friend class Telescope;

  const Telescope* scope_;
  gbl::HierarchicalAccumulator accumulator_;
  std::uint64_t discarded_ = 0;
  AnonCache anon_cache_;
  std::unordered_map<std::uint32_t, std::uint32_t> dictionary_;
  mem::PoolVec<std::uint64_t> batch_keys_;  // capture_block scratch (pool-recycled)
};

}  // namespace obscorr::telescope
