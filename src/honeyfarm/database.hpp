#pragma once
/// \file database.hpp
/// The outpost's query service: what the honeyfarm actually sells is a
/// lookup API over its accumulated monthly catalogs ("have you seen this
/// IP? what is it? how noisy?"). `Database` aggregates a span of
/// MonthlyObservation arrays and answers per-source queries using pure
/// associative-array algebra: months-seen via logical sums, peak
/// activity via the max semiring, facet labels via exploded-schema
/// column prefixes.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "honeyfarm/honeyfarm.hpp"

namespace obscorr::honeyfarm {

/// The answer to a source lookup.
struct SourceProfile {
  std::string ip;
  int months_seen = 0;                 ///< number of catalog months containing it
  std::optional<YearMonth> first_seen;
  std::optional<YearMonth> last_seen;
  std::string classification;          ///< "malicious" / "benign" / "unknown"
  std::string intent;                  ///< e.g. "scan"; empty for ephemerals
  double peak_contacts = 0.0;          ///< max monthly contact count
};

/// Aggregated monthly catalogs with O(log) per-month lookups.
class Database {
 public:
  /// Build from a chronological span of monthly observations.
  explicit Database(std::vector<MonthlyObservation> months);

  std::size_t month_count() const { return months_.size(); }

  /// Distinct sources across the whole span.
  std::size_t distinct_sources() const;

  /// Full profile for one source; nullopt when never seen.
  std::optional<SourceProfile> lookup(const std::string& ip) const;

  /// All sources seen in at least `min_months` months — the "persistent
  /// scanner" population (drifting-beam members).
  std::vector<std::string> persistent_sources(int min_months) const;

  /// Per-source peak monthly contacts across the span (max semiring fold).
  const d4m::AssocArray& peak_contacts() const { return peak_contacts_; }

  /// Per-source count of months seen (logical sum fold).
  const d4m::AssocArray& months_seen() const { return months_seen_; }

 private:
  std::vector<MonthlyObservation> months_;
  d4m::AssocArray months_seen_;    // ip -> "months" count
  d4m::AssocArray peak_contacts_;  // ip -> "contacts" max
};

}  // namespace obscorr::honeyfarm
