#include "honeyfarm/database.hpp"

#include "common/error.hpp"

namespace obscorr::honeyfarm {

Database::Database(std::vector<MonthlyObservation> months) : months_(std::move(months)) {
  OBSCORR_REQUIRE(!months_.empty(), "Database: need at least one month");
  for (std::size_t m = 1; m < months_.size(); ++m) {
    OBSCORR_REQUIRE(months_[m].month.months_since(months_[m - 1].month) == 1,
                    "Database: months must be consecutive");
  }
  // months_seen: fold of |A_m "seen" column|0 under plus.
  // peak_contacts: fold of the contacts column under max.
  const std::vector<std::string> contacts_col{"contacts"};
  for (const MonthlyObservation& obs : months_) {
    const d4m::AssocArray seen =
        obs.sources.logical().row_sum().logical();  // ip -> ("sum", 1)
    months_seen_ = d4m::AssocArray::ewise_add(months_seen_, seen);
    peak_contacts_ = d4m::AssocArray::ewise_max(peak_contacts_,
                                                obs.sources.select_cols(contacts_col));
  }
}

std::size_t Database::distinct_sources() const { return months_seen_.row_keys().size(); }

std::optional<SourceProfile> Database::lookup(const std::string& ip) const {
  if (!months_seen_.has_row(ip)) return std::nullopt;
  SourceProfile profile;
  profile.ip = ip;
  profile.months_seen = static_cast<int>(months_seen_.at(ip, "sum"));
  profile.peak_contacts = peak_contacts_.at(ip, "contacts");
  for (const MonthlyObservation& obs : months_) {
    if (!obs.sources.has_row(ip)) continue;
    if (!profile.first_seen) profile.first_seen = obs.month;
    profile.last_seen = obs.month;
    if (profile.classification.empty()) {
      // Hold the sub-arrays: col_keys() is a span into them (a bare
      // range-for over the temporary would dangle in C++20).
      const d4m::AssocArray cls = obs.sources.select_cols_prefix("classification|");
      for (const std::string& col : cls.col_keys()) {
        if (obs.sources.at(ip, col) > 0.0) {
          profile.classification = col.substr(std::string("classification|").size());
          break;
        }
      }
      const d4m::AssocArray intent = obs.sources.select_cols_prefix("intent|");
      for (const std::string& col : intent.col_keys()) {
        if (obs.sources.at(ip, col) > 0.0) {
          profile.intent = col.substr(std::string("intent|").size());
          break;
        }
      }
    }
  }
  return profile;
}

std::vector<std::string> Database::persistent_sources(int min_months) const {
  OBSCORR_REQUIRE(min_months >= 1, "persistent_sources: min_months must be >= 1");
  std::vector<std::string> out;
  for (const d4m::Triple& t : months_seen_.to_triples()) {
    if (t.val >= static_cast<double>(min_months)) out.push_back(t.row);
  }
  return out;
}

}  // namespace obscorr::honeyfarm
