#pragma once
/// \file honeyfarm.hpp
/// The honeyfarm outpost simulator: the GreyNoise-style commercial
/// observatory. Unlike the passive telescope, the outpost *converses*
/// with sources, so each catalogued source carries enrichment metadata —
/// classification, intent, protocol tags — stored in a D4M associative
/// array with the exploded schema (`'intent|scan' = 1`), the paper's
/// representation of the GreyNoise data.
///
/// Each study month yields one associative array whose row keys are the
/// dotted-quad addresses seen that month. A source appears when it is
/// (a) active that month in the ground-truth population and (b) detected
/// under the scenario's visibility model and month coverage factor; on
/// top sit ephemeral one-month noise sources (misconfigurations, one-off
/// scanners) that model the month-to-month volume swings and sensor
/// configuration changes in Table I.

#include <cstdint>

#include "d4m/assoc.hpp"
#include "netgen/population.hpp"
#include "netgen/scenario.hpp"
#include "netgen/visibility.hpp"

namespace obscorr::honeyfarm {

/// One month of honeyfarm observations.
struct MonthlyObservation {
  YearMonth month;
  d4m::AssocArray sources;          ///< exploded-schema assoc array
  std::uint64_t population_sources = 0;  ///< detected ground-truth sources
  std::uint64_t ephemeral_sources = 0;   ///< one-month noise sources
  std::uint64_t total_sources() const { return population_sources + ephemeral_sources; }
};

/// The outpost instrument.
class Honeyfarm {
 public:
  Honeyfarm(const netgen::Population& population, netgen::VisibilityModel visibility,
            std::uint64_t seed);

  /// Observe one study month (month_index is 0-based within the study).
  MonthlyObservation observe_month(const netgen::GreyNoiseMonthSpec& spec,
                                   int month_index) const;

 private:
  const netgen::Population& population_;
  netgen::VisibilityModel visibility_;
  std::uint64_t seed_;
};

}  // namespace obscorr::honeyfarm
