#include "honeyfarm/honeyfarm.hpp"

#include <array>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace obscorr::honeyfarm {

namespace {

/// Enrichment vocabularies: what the outpost's conversation layer labels
/// sources with. Chosen per source deterministically.
constexpr std::array<const char*, 3> kClassifications = {"malicious", "benign", "unknown"};
constexpr std::array<const char*, 4> kIntents = {"scan", "backscatter", "worm", "botnet-c2"};
constexpr std::array<const char*, 3> kProtocols = {"tcp", "udp", "icmp"};

}  // namespace

Honeyfarm::Honeyfarm(const netgen::Population& population, netgen::VisibilityModel visibility,
                     std::uint64_t seed)
    : population_(population), visibility_(visibility), seed_(seed) {}

MonthlyObservation Honeyfarm::observe_month(const netgen::GreyNoiseMonthSpec& spec,
                                            int month_index) const {
  OBSCORR_REQUIRE(month_index >= 0, "month index must be non-negative");
  OBSCORR_REQUIRE(spec.coverage > 0.0, "coverage must be positive");
  OBSCORR_REQUIRE(spec.ephemeral_factor >= 0.0, "ephemeral_factor must be non-negative");

  MonthlyObservation obs;
  obs.month = spec.month;
  std::vector<d4m::Triple> triples;

  // Ground-truth population sources: active this month AND detected.
  // One activity-row snapshot instead of a per-source `active` call: the
  // sweep is the hot loop, and month tasks run concurrently.
  const std::size_t n = population_.size();
  const std::vector<std::uint8_t> active_row = population_.activity_row(month_index);
  for (std::size_t i = 0; i < n; ++i) {
    if (active_row[i] == 0) continue;
    const double degree = population_.expected_active_degree(i);
    const double p = std::min(1.0, visibility_.probability(degree) * spec.coverage);
    // Per-(source, month) detection stream, independent of the activity
    // stream (0x500... base) and of evaluation order.
    Rng rng(seed_, std::uint64_t{0x500000000} + static_cast<std::uint64_t>(month_index) * n + i);
    if (!rng.bernoulli(p)) continue;

    const std::string ip = population_.source(i).ip.to_string();
    // Deterministic per-source enrichment (stable across months, as a
    // scanner's behaviour profile would be).
    Rng enrich(seed_, std::uint64_t{0x600000000} + i);
    const auto& cls = kClassifications[enrich.uniform_u64(kClassifications.size())];
    const auto& intent = kIntents[enrich.uniform_u64(kIntents.size())];
    const auto& proto = kProtocols[enrich.uniform_u64(kProtocols.size())];
    // Monthly interaction count: the outpost converses over the whole
    // month, so counts scale with the source's rate.
    const std::uint64_t contacts = 1 + rng.poisson(std::min(degree, 1e6) * 0.25);

    triples.push_back({ip, std::string("classification|") + cls, 1.0});
    triples.push_back({ip, std::string("intent|") + intent, 1.0});
    triples.push_back({ip, std::string("protocol|") + proto, 1.0});
    triples.push_back({ip, "contacts", static_cast<double>(contacts)});
    ++obs.population_sources;
  }

  // Ephemeral one-month noise sources: random addresses outside the
  // persistent population, labelled unknown.
  const auto ephemeral_target =
      static_cast<std::uint64_t>(spec.ephemeral_factor * static_cast<double>(n));
  Rng eph_rng(seed_, std::uint64_t{0x700000000} + static_cast<std::uint64_t>(month_index));
  std::uint64_t made = 0;
  while (made < ephemeral_target) {
    const std::uint32_t candidate = eph_rng.next_u32();
    const std::uint32_t top = candidate >> 24;
    if (top == 0 || top == 10 || top == 77 || top == 127 || top >= 224) continue;
    const Ipv4 ip(candidate);
    if (population_.owns_ip(ip)) continue;
    const std::string key = ip.to_string();
    triples.push_back({key, "classification|unknown", 1.0});
    triples.push_back({key, "contacts", 1.0});
    ++made;
  }
  obs.ephemeral_sources = made;

  obs.sources = d4m::AssocArray::from_triples(std::move(triples));
  return obs;
}

}  // namespace obscorr::honeyfarm
