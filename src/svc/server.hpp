#pragma once
/// \file server.hpp
/// The resident observatory daemon's connection front-end: one epoll
/// event loop (the calling thread) accepting TCP or Unix-socket clients
/// and framing newline-delimited JSON requests, with query execution
/// dispatched to the shared ThreadPool so the loop never blocks on a
/// render. Responses are queued back through a completion queue and an
/// eventfd wake.
///
/// Hostile-client posture, enforced here rather than per query:
///
///  * bounded request buffer — a line over kMaxRequestBytes gets a
///    `too_large` error and the connection is closed without buffering
///    the rest;
///  * per-request timeout — a partial line that stops making progress
///    (slow loris) is answered with `timeout` and closed; a client that
///    stops reading its response is closed once the write side stalls
///    past the same deadline;
///  * idle timeout — quiet connections are reaped;
///  * connection cap — accepts beyond max_connections get a best-effort
///    `shedding` error line and an immediate close (503-style shedding,
///    the listener never stops accepting so the backlog cannot fill
///    with dead sockets);
///  * serial per connection — one request in flight per connection,
///    responses in request order; concurrency comes from many
///    connections.
///
/// `watch` subscriptions: a connection that sends {"query":"watch"} is
/// acknowledged inline and marked as a subscriber; every line handed to
/// `publish_event()` (the ingest thread calls it per published window)
/// is pushed to all subscribers in publication order, exactly once
/// each. Watchers are exempt from the idle reaper but not from the
/// stalled-write deadline, and a watcher whose unread backlog exceeds
/// kMaxWatchBacklogBytes is disconnected — a stuck consumer cannot pin
/// daemon memory.
///
/// Shutdown (SIGINT/SIGTERM via common/interrupt.hpp, or
/// `request_stop()`): stop accepting, let in-flight requests finish,
/// flush every pending response, then return from `serve()`. The wake
/// eventfd is registered as the interrupt wake fd, so a signal landing
/// while the loop is blocked in epoll_wait is noticed immediately.
///
/// Linux-only (epoll); on other hosts `serve()` throws.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_pool.hpp"
#include "svc/queries.hpp"

namespace obscorr::svc {

struct ServerConfig {
  /// Unix-socket path; when empty, TCP on host:port is used.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;  ///< TCP port; 0 picks an ephemeral one (see Server::port)

  std::size_t max_connections = 256;
  double request_timeout_sec = 10.0;  ///< partial-read / stalled-write deadline
  double idle_timeout_sec = 300.0;    ///< quiet-connection reaper
  double drain_timeout_sec = 10.0;    ///< shutdown grace before force-close

  /// When non-empty, the loop writes an obscorr.metrics.v1 snapshot
  /// (with the mem.peak_rss gauge refreshed) to this path every
  /// metrics_interval_sec and once more on shutdown.
  std::string metrics_out;
  double metrics_interval_sec = 1.0;
};

/// The epoll front-end; construct, bind(), then serve().
class Server {
 public:
  Server(ServerConfig config, QueryEngine& engine, ThreadPool& pool);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create and bind the listening socket; throws std::invalid_argument
  /// on failure. After bind(), endpoint()/port() are valid.
  void bind();

  /// "unix:<path>" or "tcp:<host>:<port>" (the actually bound port).
  std::string endpoint() const;

  /// Bound TCP port (0 for unix sockets).
  int port() const;

  /// Run the event loop until a stop is requested and the drain
  /// completes. Returns 0 on a clean drain.
  int serve();

  /// Ask a running serve() to shut down (thread-safe; also triggered by
  /// SIGINT/SIGTERM through common/interrupt.hpp).
  void request_stop();

  /// Queue one event line for every `watch` subscriber (thread-safe; a
  /// missing trailing newline is added). Delivered by the event loop in
  /// publication order; dropped when no subscriber is connected. No-op
  /// on hosts without epoll.
  void publish_event(std::string line);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace obscorr::svc
