#pragma once
/// \file ingest.hpp
/// The daemon's background capture loop: continuous telescope operation
/// appending live windows to the archive the service is serving.
///
/// Each iteration streams one constant-packet generator window through a
/// `telescope::CaptureSession` (Poisson arrival timing, same pipeline as
/// the batch campaign), reduces it, appends it to the `LiveArchive`
/// (atomic manifest publication), and nudges the `QueryEngine` to
/// refresh — so a `degrees` query for window w starts answering the
/// moment w's publication rename lands, with bytes identical to what a
/// later batch CLI run over the same archive prints.
///
/// Determinism: window w always draws from scenario month `w %
/// month_count` with salt `salt_base + w` and timing seed `salt_base +
/// w`, so a crashed-and-restarted daemon regenerates byte-identical
/// frames for any window it had partially appended (the resume path of
/// LiveArchive::append_window relies on this).
///
/// The loop checks `interrupt::stop_requested()` (and the engine-side
/// stop flag) at window boundaries only: a SIGTERM mid-window finishes
/// and publishes that window, then exits — the paper's "never tear a
/// window" drain semantics.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "archive/live_archive.hpp"
#include "common/thread_pool.hpp"
#include "gbl/dcsr.hpp"
#include "gbl/sparse_vec.hpp"
#include "netgen/scenario.hpp"
#include "svc/queries.hpp"

namespace obscorr::svc {

/// One freshly published live window, handed to IngestConfig::on_publish
/// on the ingest thread right after the publication rename lands and the
/// engine refreshed. The matrix/sources references are valid only for
/// the duration of the callback.
struct PublishedWindow {
  archive::LiveWindowMeta meta;
  const gbl::DcsrMatrix& matrix;
  const gbl::SparseVec& sources;
  std::uint64_t streamed = 0;  ///< generator packets offered (valid + discarded)
};

struct IngestConfig {
  /// Stop after publishing this many new windows (in addition to any
  /// recovered ones); SIZE_MAX runs until shutdown.
  std::size_t max_windows = static_cast<std::size_t>(-1);
  std::uint64_t window_packets = 1 << 16;  ///< valid packets per live window
  double mean_packet_rate = 1e6;           ///< Poisson arrival rate (packets/s)
  /// Live-window salt/timing base; window w uses salt_base + w. Distinct
  /// from every campaign snapshot salt.
  std::uint64_t salt_base = 0x11E50000;

  /// Deterministic injected anomaly: windows [surge_start, surge_start +
  /// surge_len) stream `surge_factor ×` the usual packet budget — a
  /// 2020-03-style traffic surge the detectors and `correlate` should
  /// flag. Off by default (surge_start = SIZE_MAX). Window index is the
  /// archive-global index, so the surge lands at the same windows across
  /// restarts.
  std::size_t surge_start = static_cast<std::size_t>(-1);
  std::size_t surge_len = 1;
  double surge_factor = 4.0;

  /// Called on the ingest thread once per published window, after the
  /// engine refresh — the serve command chains the anomaly monitor and
  /// the server's event push here. Must not throw.
  std::function<void(const PublishedWindow&)> on_publish;
};

/// Background ingest thread over one archive directory.
class IngestLoop {
 public:
  /// `dir` must hold a completed archive of `engine`'s scenario. The
  /// engine, pool, and directory must outlive the loop.
  IngestLoop(std::string dir, QueryEngine& engine, ThreadPool& pool, IngestConfig config);
  ~IngestLoop();

  /// Spawn the ingest thread. Call at most once.
  void start();

  /// Signal the loop to stop at the next window boundary and wait for
  /// it to finish (idempotent; also triggered by the global interrupt
  /// flag).
  void stop_and_join();

  /// Windows published by this loop so far (excludes recovered ones).
  std::size_t published() const { return published_.load(std::memory_order_relaxed); }

  /// Set when the loop died on an exception; serve surfaces it.
  std::string error() const;

 private:
  void run();

  std::string dir_;
  QueryEngine& engine_;
  ThreadPool& pool_;
  IngestConfig config_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> published_{0};
  mutable std::mutex error_mu_;
  std::string error_;
};

}  // namespace obscorr::svc
