#pragma once
/// \file protocol.hpp
/// The service's wire protocol: newline-delimited JSON over a stream
/// socket. One request per line, one response line per request, answered
/// in order (requests on one connection are handled serially; concurrency
/// comes from concurrent connections).
///
/// Request line:
///   {"id": <any value>, "query": "<type>", "params": {...}}
/// `id` is optional and echoed verbatim; `params` is optional. Query
/// types: lookup, report, degrees, scaling, correlate, stats, metrics,
/// watch.
///
/// Response line (always a single line, '\n'-terminated):
///   {"id": <echoed>, "ok": true,  "result": {...}}
///   {"id": <echoed>, "ok": false, "error": {"code": "...", "message": "..."}}
///
/// `watch` upgrades the connection to a push subscription: after the
/// acknowledgement line ({"subscribed":true,"windows":N}), the server
/// pushes one NDJSON event line per published window —
///   {"event":"window","window":W,...}
/// optionally followed by that window's anomaly events —
///   {"event":"anomaly","window":W,"metric":"...","detector":"...",...}
/// — in publication order, each event delivered exactly once per
/// subscriber. The connection stays request-capable; subscribers that
/// stop reading are disconnected once their backlog exceeds a bound.
///
/// Error codes: bad_request (malformed JSON / unknown query / bad
/// params), too_large (request line over the byte cap), timeout (the
/// per-request deadline passed), shedding (connection cap reached),
/// shutting_down (drain in progress).
///
/// See docs/service.md for the full schema and examples.

#include <string>
#include <string_view>

#include "svc/json.hpp"

namespace obscorr::svc {

/// Hard cap on one request line (newline included). Far above any legal
/// request; a line exceeding it is answered with `too_large` and the
/// connection is closed without buffering the rest.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

/// One parsed request.
struct Request {
  JsonValue id;        ///< echoed verbatim; null when absent
  std::string query;   ///< query type (validated non-empty, not dispatched yet)
  JsonValue params;    ///< parameter object; empty object when absent
};

/// Parse one request line (without the trailing newline). Throws
/// std::invalid_argument on malformed JSON, a non-object request, a
/// missing/non-string "query", or a non-object "params".
Request parse_request(std::string_view line);

/// Serialize a success response line (terminating '\n' included).
std::string make_ok(const JsonValue& id, JsonValue result);

/// Serialize an error response line (terminating '\n' included).
std::string make_error(const JsonValue& id, std::string_view code, std::string_view message);

}  // namespace obscorr::svc
