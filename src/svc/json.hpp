#pragma once
/// \file json.hpp
/// Minimal strict JSON for the service's newline-delimited protocol.
///
/// The parser is written for hostile input: recursive descent with a
/// hard nesting-depth cap, full bounds checking, strict number/string
/// grammar, and a single-value requirement (trailing bytes after the
/// value are an error). Numbers are kept as their validated raw text,
/// so a u64 counter round-trips through parse + dump without passing
/// through a double (no precision loss above 2^53) — what the `metrics`
/// query relies on when re-serializing the obscorr.metrics.v1 document
/// into a compact single-line response.
///
/// Every error is a std::invalid_argument with a protocol-safe message;
/// the parser never reads out of bounds and never recurses past
/// kMaxJsonDepth frames regardless of input.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace obscorr::svc {

/// Nesting-depth cap: a request is a flat object with one params level,
/// so 32 is generous while keeping a hostile "[[[[..." line from
/// consuming stack.
inline constexpr std::size_t kMaxJsonDepth = 32;

/// One JSON value. Objects preserve insertion order (dump is
/// deterministic for a given parse).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  /// `raw` must be a valid JSON number token (the parser guarantees it;
  /// programmatic construction uses the typed helpers below).
  static JsonValue number_raw(std::string raw);
  static JsonValue number(std::int64_t v);
  static JsonValue number(std::uint64_t v);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  /// Integer in [0, 2^53]; throws on fractions, negatives, overflow —
  /// the accessor for indices and counts arriving off the wire.
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Append/insert (for building responses).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Validated raw number text (numbers only).
  const std::string& raw_number() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number raw text or string payload
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse exactly one JSON value spanning all of `text` (leading/trailing
/// whitespace allowed); throws std::invalid_argument on any violation.
JsonValue parse_json(std::string_view text);

/// Compact single-line serialization (no spaces, members in insertion
/// order, strings escaped; embedded newlines are escaped, so the result
/// is always protocol-safe as one NDJSON line).
std::string dump_json(const JsonValue& v);

/// Escape `s` as the *contents* of a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

}  // namespace obscorr::svc
