#include "svc/ingest.hpp"

#include <exception>
#include <optional>
#include <utility>

#include "archive/live_archive.hpp"
#include "common/error.hpp"
#include "common/interrupt.hpp"
#include "netgen/traffic.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "telescope/capture_session.hpp"
#include "telescope/telescope.hpp"

namespace obscorr::svc {

IngestLoop::IngestLoop(std::string dir, QueryEngine& engine, ThreadPool& pool,
                       IngestConfig config)
    : dir_(std::move(dir)), engine_(engine), pool_(pool), config_(config) {}

IngestLoop::~IngestLoop() { stop_and_join(); }

void IngestLoop::start() {
  OBSCORR_REQUIRE(!thread_.joinable(), "ingest: already started");
  thread_ = std::thread([this] { run(); });
}

void IngestLoop::stop_and_join() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

std::string IngestLoop::error() const {
  const std::lock_guard lk(error_mu_);
  return error_;
}

void IngestLoop::run() {
  try {
    archive::LiveArchive live(dir_);
    const netgen::Scenario& scenario = engine_.scenario();
    engine_.refresh();  // windows the LiveArchive open just republished

    const netgen::Population population(scenario.population);
    const netgen::TrafficGenerator generator(population, scenario.traffic);
    // Same instrument configuration as the batch campaign (the
    // cryptopan seed derivation must match tools/commands.cpp
    // scope_config, or live matrices would anonymize differently than
    // the archived snapshots).
    telescope::TelescopeConfig scope_cfg;
    scope_cfg.darkspace = scenario.traffic.darkspace;
    scope_cfg.legit_prefixes = {scenario.traffic.legit_prefix};
    scope_cfg.cryptopan_seed = scenario.population.seed ^ 0xCA1DAULL;
    telescope::Telescope scope(scope_cfg, pool_);

    while (!stop_.load(std::memory_order_relaxed) && !interrupt::stop_requested() &&
           published_.load(std::memory_order_relaxed) < config_.max_windows) {
      const std::size_t w = live.window_count();
      const int month = static_cast<int>(w % scenario.months.size());
      const std::uint64_t salt = config_.salt_base + w;
      const obs::Span span("svc.ingest_window", [&] { return std::to_string(w); });

      // The injected surge scales the packet budget for a contiguous
      // window range; keyed off the archive-global index, it replays
      // identically after a crash-restart.
      const bool surging =
          w >= config_.surge_start && w < config_.surge_start + config_.surge_len;
      const std::uint64_t wp =
          surging ? static_cast<std::uint64_t>(
                        static_cast<double>(config_.window_packets) * config_.surge_factor)
                  : config_.window_packets;

      // One generator window == one capture window: the session closes
      // its window on exactly the last valid packet streamed.
      telescope::CaptureSessionConfig session_cfg;
      session_cfg.window_packets = wp;
      session_cfg.mean_packet_rate = config_.mean_packet_rate;
      session_cfg.timing_seed = salt;
      telescope::CaptureSession session(scope, session_cfg);
      std::optional<telescope::CaptureWindow> window;
      const std::uint64_t streamed = generator.stream_window(
          month, wp, salt, [&](const Packet& p) {
            session.offer(p, [&](telescope::CaptureWindow&& cw) { window = std::move(cw); });
          });
      OBSCORR_REQUIRE(window.has_value(), "ingest: capture window did not close");

      archive::LiveWindowMeta meta;
      meta.window = w;
      meta.month_index = month;
      meta.salt = salt;
      meta.valid_packets = wp;
      meta.discarded_packets = window->discarded;
      meta.start_sec = window->start_sec;
      meta.duration_sec = window->duration_sec;
      const gbl::SparseVec sources = window->matrix.reduce_rows(pool_);
      live.append_window(meta, window->matrix, sources);
      engine_.refresh();
      published_.fetch_add(1, std::memory_order_relaxed);
      if (obs::counters_enabled()) {
        static obs::Counter& packets = obs::counter("svc.ingest_packets");
        packets.add(streamed);
      }
      if (config_.on_publish) {
        config_.on_publish(PublishedWindow{meta, window->matrix, sources, streamed});
      }
    }
  } catch (const std::exception& e) {
    const std::lock_guard lk(error_mu_);
    error_ = e.what();
  }
}

}  // namespace obscorr::svc
