#include "svc/render.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "core/correlation.hpp"
#include "stats/histogram.hpp"
#include "stats/powerlaw.hpp"
#include "stats/zipf.hpp"

namespace obscorr::svc {

void render_degrees(const gbl::SparseVec& sources, std::ostream& out) {
  const auto hist = stats::LogHistogram::from_sparse_vec(sources);
  OBSCORR_REQUIRE(hist.total() > 0, "degrees: matrix has no sources");
  const auto dcp = hist.differential_cumulative();

  TextTable table("source-packet differential cumulative probability");
  table.set_header({"d bin", "sources", "D(d)"});
  for (int b = 0; b < hist.bin_count(); ++b) {
    table.add_row({"2^" + std::to_string(b), fmt_count(hist.count(b)),
                   fmt_sci(dcp[static_cast<std::size_t>(b)], 3)});
  }
  table.print(out);

  const auto zm = stats::fit_zipf_mandelbrot(hist);
  out << "\nZipf-Mandelbrot: p(d) ~ 1/(d + " << fmt_double(zm.model.delta, 2) << ")^"
      << fmt_double(zm.model.alpha, 3) << "  (| |^(1/2) residual " << fmt_double(zm.residual, 3)
      << ")\n";
  const std::vector<double> degrees(sources.values().begin(), sources.values().end());
  const auto pl = stats::fit_power_law(degrees, 25);
  out << "power-law MLE:   alpha=" << fmt_double(pl.alpha, 3) << " for d >= " << pl.d_min
      << "  (KS " << fmt_double(pl.ks, 4) << ", tail n=" << fmt_count(pl.tail_count) << ")\n";
}

void render_study(const core::StudyData& study, std::ostream& out) {
  TextTable inventory("campaign inventory (Table I shape)");
  inventory.set_header({"month", "GreyNoise sources", "CAIDA snapshot", "CAIDA sources"});
  for (std::size_t m = 0; m < study.months.size(); ++m) {
    std::string snap_label, snap_sources;
    for (const auto& snap : study.snapshots) {
      if (snap.month_index == static_cast<int>(m)) {
        snap_label = snap.spec.start_label;
        snap_sources = fmt_count(snap.sources.row_keys().size());
      }
    }
    inventory.add_row({study.months[m].month.to_string(),
                       fmt_count(study.months[m].total_sources()), snap_label, snap_sources});
  }
  inventory.print(out);

  out << "\nsame-month overlap by brightness (Fig. 4 shape):\n";
  for (const auto& b : core::peak_correlation_all(study)) {
    if (b.caida_sources < 50) continue;
    out << "  d in [2^" << b.bin << ",2^" << b.bin + 1 << "): " << fmt_percent(b.fraction, 1)
        << " seen (log-law " << fmt_percent(b.model, 1) << ")\n";
  }

  const int bin = static_cast<int>(study.half_log_nv()) - 2;
  const auto curve = core::temporal_correlation(study.snapshots[0], study, bin, 10);
  if (curve) {
    out << "\ntemporal fit for d in [2^" << bin << ",2^" << bin + 1
        << "): modified Cauchy alpha=" << fmt_double(curve->modified_cauchy.model.alpha, 2)
        << " beta=" << fmt_double(curve->modified_cauchy.model.beta, 2) << " (one-month drop "
        << fmt_percent(curve->modified_cauchy.model.one_month_drop(), 1) << ")\n";
  }
}

void render_lookup(const honeyfarm::Database& db, const std::string& ip, std::ostream& out) {
  out << "database: " << fmt_count(db.distinct_sources()) << " distinct sources over "
      << db.month_count() << " months\n";

  const auto profile = db.lookup(ip);
  if (!profile) {
    out << ip << ": never observed\n";
    return;
  }
  out << profile->ip << ": seen in " << profile->months_seen << " months ("
      << profile->first_seen->to_string() << " .. " << profile->last_seen->to_string()
      << "), classification=" << profile->classification
      << (profile->intent.empty() ? "" : ", intent=" + profile->intent)
      << ", peak contacts=" << fmt_count(static_cast<std::uint64_t>(profile->peak_contacts))
      << '\n';
}

void render_scaling(const core::ScalingAnalysis& analysis, std::ostream& out) {
  TextTable table("window-size scaling");
  table.set_header({"N_V", "unique sources", "sources/sqrt(N_V)"});
  for (const auto& p : analysis.points) {
    table.add_row({"2^" + std::to_string(p.log2_nv), fmt_count(p.unique_sources),
                   fmt_double(static_cast<double>(p.unique_sources) /
                                  std::exp2(static_cast<double>(p.log2_nv) / 2.0), 1)});
  }
  table.print(out);
  out << "fitted source exponent: " << fmt_double(analysis.source_exponent, 3)
      << "  (paper: ~0.5)\n";
}

namespace {

std::string range_text(analysis::WindowRange r) {
  return std::to_string(r.first) + ":" + std::to_string(r.last);
}

}  // namespace

void render_correlate(const std::vector<analysis::MetricScore>& ranked,
                      analysis::Method method, analysis::WindowRange baseline,
                      analysis::WindowRange highlight, std::size_t top, std::ostream& out) {
  out << "metric correlations (" << analysis::method_name(method) << "), baseline "
      << range_text(baseline) << " vs highlight " << range_text(highlight) << ":\n";
  TextTable table("ranked by change score");
  table.set_header({"#", "metric", "score", "KS", "p", "base mean", "high mean", "volume"});
  const std::size_t limit =
      top == 0 ? ranked.size() : std::min<std::size_t>(top, ranked.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const analysis::MetricScore& ms = ranked[i];
    table.add_row({std::to_string(i + 1), ms.name, fmt_double(ms.score, 4),
                   fmt_double(ms.ks_statistic, 4), fmt_sci(ms.ks_p, 3),
                   fmt_double(ms.baseline_mean, 3), fmt_double(ms.highlight_mean, 3),
                   fmt_double(ms.volume, 4)});
  }
  table.print(out);
  if (limit < ranked.size()) {
    out << "(" << ranked.size() - limit << " lower-scoring metrics not shown)\n";
  }
}

JsonValue correlate_json(const std::vector<analysis::MetricScore>& ranked,
                         analysis::Method method, analysis::WindowRange baseline,
                         analysis::WindowRange highlight) {
  JsonValue result = JsonValue::object();
  result.set("method", JsonValue::string(analysis::method_name(method)));
  JsonValue b = JsonValue::object();
  b.set("first", JsonValue::number(static_cast<std::uint64_t>(baseline.first)));
  b.set("last", JsonValue::number(static_cast<std::uint64_t>(baseline.last)));
  result.set("baseline", std::move(b));
  JsonValue h = JsonValue::object();
  h.set("first", JsonValue::number(static_cast<std::uint64_t>(highlight.first)));
  h.set("last", JsonValue::number(static_cast<std::uint64_t>(highlight.last)));
  result.set("highlight", std::move(h));
  JsonValue list = JsonValue::array();
  for (const analysis::MetricScore& ms : ranked) {
    JsonValue row = JsonValue::object();
    row.set("metric", JsonValue::string(ms.name));
    row.set("score", JsonValue::number(ms.score));
    row.set("ks_statistic", JsonValue::number(ms.ks_statistic));
    row.set("ks_p", JsonValue::number(ms.ks_p));
    row.set("baseline_mean", JsonValue::number(ms.baseline_mean));
    row.set("highlight_mean", JsonValue::number(ms.highlight_mean));
    row.set("volume", JsonValue::number(ms.volume));
    list.push_back(std::move(row));
  }
  result.set("ranked", std::move(list));
  return result;
}

}  // namespace obscorr::svc
