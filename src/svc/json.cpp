#include "svc/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace obscorr::svc {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number_raw(std::string raw) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::move(raw);
  return v;
}

JsonValue JsonValue::number(std::int64_t n) { return number_raw(std::to_string(n)); }
JsonValue JsonValue::number(std::uint64_t n) { return number_raw(std::to_string(n)); }

JsonValue JsonValue::number(double d) {
  OBSCORR_REQUIRE(std::isfinite(d), "json: non-finite number");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return number_raw(buf);
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  OBSCORR_REQUIRE(kind_ == Kind::kBool, "json: expected a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  OBSCORR_REQUIRE(kind_ == Kind::kNumber, "json: expected a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t JsonValue::as_uint() const {
  OBSCORR_REQUIRE(kind_ == Kind::kNumber, "json: expected a number");
  OBSCORR_REQUIRE(scalar_.find_first_of(".eE-") == std::string::npos,
                  "json: expected a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  OBSCORR_REQUIRE(errno == 0 && end == scalar_.c_str() + scalar_.size(),
                  "json: integer out of range");
  return v;
}

const std::string& JsonValue::as_string() const {
  OBSCORR_REQUIRE(kind_ == Kind::kString, "json: expected a string");
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  OBSCORR_REQUIRE(kind_ == Kind::kArray, "json: expected an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  OBSCORR_REQUIRE(kind_ == Kind::kObject, "json: expected an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  OBSCORR_REQUIRE(kind_ == Kind::kArray, "json: push_back on a non-array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  OBSCORR_REQUIRE(kind_ == Kind::kObject, "json: set on a non-object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const std::string& JsonValue::raw_number() const {
  OBSCORR_REQUIRE(kind_ == Kind::kNumber, "json: expected a number");
  return scalar_;
}

namespace {

/// Recursive-descent parser over a bounded view. All failures throw;
/// nothing reads past `end_`.
class Parser {
 public:
  explicit Parser(std::string_view text) : cur_(text.data()), end_(text.data() + text.size()) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    OBSCORR_REQUIRE(cur_ == end_, "json: trailing bytes after value");
    return v;
  }

 private:
  void skip_ws() {
    while (cur_ != end_ && (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\n' || *cur_ == '\r')) {
      ++cur_;
    }
  }

  char peek() {
    OBSCORR_REQUIRE(cur_ != end_, "json: truncated input");
    return *cur_;
  }

  char take() {
    OBSCORR_REQUIRE(cur_ != end_, "json: truncated input");
    return *cur_++;
  }

  void expect(char c) {
    OBSCORR_REQUIRE(take() == c, std::string("json: expected '") + c + "'");
  }

  bool consume_if(char c) {
    if (cur_ != end_ && *cur_ == c) {
      ++cur_;
      return true;
    }
    return false;
  }

  void literal(std::string_view word) {
    for (const char c : word) expect(c);
  }

  JsonValue value(std::size_t depth) {
    OBSCORR_REQUIRE(depth < kMaxJsonDepth, "json: nesting too deep");
    skip_ws();
    switch (peek()) {
      case 'n': literal("null"); return JsonValue::null();
      case 't': literal("true"); return JsonValue::boolean(true);
      case 'f': literal("false"); return JsonValue::boolean(false);
      case '"': return JsonValue::string(string_body());
      case '[': return array_body(depth);
      case '{': return object_body(depth);
      default: return number_body();
    }
  }

  JsonValue array_body(std::size_t depth) {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (consume_if(']')) return v;
    while (true) {
      v.push_back(value(depth + 1));
      skip_ws();
      if (consume_if(']')) return v;
      expect(',');
    }
  }

  JsonValue object_body(std::size_t depth) {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (consume_if('}')) return v;
    while (true) {
      skip_ws();
      OBSCORR_REQUIRE(peek() == '"', "json: object key must be a string");
      std::string key = string_body();
      skip_ws();
      expect(':');
      v.set(std::move(key), value(depth + 1));
      skip_ws();
      if (consume_if('}')) return v;
      expect(',');
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_codepoint(out); break;
          default: OBSCORR_REQUIRE(false, "json: bad escape");
        }
      } else {
        OBSCORR_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                        "json: unescaped control character in string");
        out += c;
      }
    }
  }

  std::uint32_t hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        OBSCORR_REQUIRE(false, "json: bad \\u escape");
      }
    }
    return v;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: require the pair
      expect('\\');
      expect('u');
      const std::uint32_t lo = hex4();
      OBSCORR_REQUIRE(lo >= 0xDC00 && lo <= 0xDFFF, "json: unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else {
      OBSCORR_REQUIRE(!(cp >= 0xDC00 && cp <= 0xDFFF), "json: unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue number_body() {
    const char* start = cur_;
    consume_if('-');
    OBSCORR_REQUIRE(cur_ != end_ && *cur_ >= '0' && *cur_ <= '9', "json: malformed number");
    if (*cur_ == '0') {
      ++cur_;  // leading zeros are not JSON
    } else {
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    if (consume_if('.')) {
      OBSCORR_REQUIRE(cur_ != end_ && *cur_ >= '0' && *cur_ <= '9', "json: malformed number");
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    if (cur_ != end_ && (*cur_ == 'e' || *cur_ == 'E')) {
      ++cur_;
      if (cur_ != end_ && (*cur_ == '+' || *cur_ == '-')) ++cur_;
      OBSCORR_REQUIRE(cur_ != end_ && *cur_ >= '0' && *cur_ <= '9', "json: malformed number");
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    return JsonValue::number_raw(std::string(start, static_cast<std::size_t>(cur_ - start)));
  }

  const char* cur_;
  const char* end_;
};

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += v.raw_number();
      return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        dump_value(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

std::string dump_json(const JsonValue& v) {
  std::string out;
  dump_value(v, out);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static const char* hex = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obscorr::svc
