#include "svc/queries.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <sstream>
#include <stdexcept>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/ipv4.hpp"
#include "core/scaling_analysis.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "svc/render.hpp"

namespace obscorr::svc {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

JsonValue text_result(std::string text) {
  JsonValue result = JsonValue::object();
  result.set("text", JsonValue::string(std::move(text)));
  return result;
}

}  // namespace

QueryEngine::QueryEngine(const std::string& dir, ThreadPool& pool)
    : reader_(dir), pool_(pool) {}

std::string QueryEngine::execute(const Request& req) {
  const obs::Span span("svc.query", [&] { return req.query; });
  if (obs::counters_enabled()) {
    static obs::Counter& requests = obs::counter("svc.requests");
    requests.add(1);
  }
  const std::uint64_t start_ns = obs::now_ns();
  try {
    std::string resp;
    {
      const std::shared_lock lock(data_mu_);
      resp = make_ok(req.id, dispatch(req));
    }
    // Latency is recorded per successfully dispatched query type, so the
    // key set is bounded by the dispatch table (a hostile client cannot
    // grow the map with invented query names).
    {
      const double us = static_cast<double>(obs::now_ns() - start_ns) / 1000.0;
      const std::lock_guard lk(latency_mu_);
      latency_us_[req.query].add(std::max(1.0, us));
    }
    return resp;
  } catch (const std::exception& e) {
    if (obs::counters_enabled()) {
      static obs::Counter& errors = obs::counter("svc.errors");
      errors.add(1);
    }
    return make_error(req.id, "bad_request", e.what());
  }
}

std::vector<QueryLatency> QueryEngine::latency_snapshot() {
  const std::lock_guard lk(latency_mu_);
  std::vector<QueryLatency> out;
  out.reserve(latency_us_.size());
  for (const auto& [query, hist] : latency_us_) {
    out.push_back({query, hist.total(), hist.quantile(0.5), hist.quantile(0.99)});
  }
  return out;
}

std::size_t QueryEngine::refresh() {
  const std::unique_lock lock(data_mu_);
  const std::size_t added = reader_.refresh();
  if (added > 0 && obs::counters_enabled()) {
    static obs::Counter& refreshes = obs::counter("svc.refreshes");
    refreshes.add(1);
  }
  return added;
}

std::size_t QueryEngine::window_count() {
  const std::shared_lock lock(data_mu_);
  return reader_.window_count();
}

JsonValue QueryEngine::dispatch(const Request& req) {
  if (req.query == "lookup") return q_lookup(req.params);
  if (req.query == "report") return q_report();
  if (req.query == "degrees") return q_degrees(req.params);
  if (req.query == "scaling") return q_scaling();
  if (req.query == "correlate") return q_correlate(req.params);
  if (req.query == "stats") return q_stats();
  if (req.query == "metrics") return q_metrics(req.params);
  OBSCORR_REQUIRE(false, "unknown query type \"" + req.query + "\"");
  return JsonValue::null();  // unreachable
}

std::string QueryEngine::cached(const std::string& key,
                                const std::function<std::string()>& render) {
  std::shared_future<std::string> future;
  {
    const std::lock_guard lk(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
    } else if (cache_.size() < kMaxCacheEntries) {
      // Deferred: the first get() below runs the render on that caller's
      // thread; every racer blocks on the same shared state, so the
      // render runs exactly once per key.
      future = std::async(std::launch::deferred, render).share();
      cache_.emplace(key, future);
    }
  }
  if (future.valid()) return future.get();
  return render();  // cache full: serve uncached rather than evict
}

const honeyfarm::Database& QueryEngine::database() {
  std::call_once(db_once_, [&] {
    db_ = std::make_unique<honeyfarm::Database>(reader_.months());
  });
  return *db_;
}

JsonValue QueryEngine::q_lookup(const JsonValue& params) {
  const JsonValue* ip = params.find("ip");
  OBSCORR_REQUIRE(ip != nullptr && ip->is_string(), "lookup needs params.ip (string)");
  const std::string& ip_text = ip->as_string();
  OBSCORR_REQUIRE(Ipv4::parse(ip_text).has_value(), "lookup: malformed address " + ip_text);
  return text_result(cached("lookup/" + ip_text, [&] {
    std::ostringstream out;
    render_lookup(database(), ip_text, out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_report() {
  return text_result(cached("report", [&] {
    std::ostringstream out;
    render_study(reader_.analysis_study(), out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_degrees(const JsonValue& params) {
  const JsonValue* snapshot = params.find("snapshot");
  const JsonValue* window = params.find("window");
  OBSCORR_REQUIRE(snapshot == nullptr || window == nullptr,
                  "degrees takes params.snapshot or params.window, not both");
  std::string key;
  gbl::SparseVec sources;
  if (window != nullptr) {
    const std::uint64_t w = window->as_uint();
    key = "degrees/w/" + std::to_string(w);
    sources = reader_.window_source_packets(static_cast<std::size_t>(w));
  } else {
    const std::uint64_t k = snapshot != nullptr ? snapshot->as_uint() : 0;
    key = "degrees/s/" + std::to_string(k);
    sources = reader_.source_packets(static_cast<std::size_t>(k));
  }
  return text_result(cached(key, [&] {
    std::ostringstream out;
    render_degrees(sources, out);
    return std::move(out).str();
  }));
}

namespace {

/// Parse a "first:last" window-range parameter.
analysis::WindowRange parse_range(const JsonValue& v, const char* what) {
  OBSCORR_REQUIRE(v.is_string(), std::string(what) + " must be a \"first:last\" string");
  const std::string& text = v.as_string();
  const std::size_t colon = text.find(':');
  OBSCORR_REQUIRE(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
                  std::string(what) + ": want \"first:last\"");
  analysis::WindowRange r;
  try {
    r.first = std::stoull(text.substr(0, colon));
    r.last = std::stoull(text.substr(colon + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + ": want \"first:last\" integers");
  }
  OBSCORR_REQUIRE(r.first <= r.last, std::string(what) + ": range must be ordered");
  return r;
}

}  // namespace

JsonValue QueryEngine::q_correlate(const JsonValue& params) {
  // Domain defaults to live windows when any exist — the population the
  // resident service is watching — falling back to archived snapshots.
  const JsonValue* domain_param = params.find("domain");
  std::string domain_text;
  if (domain_param != nullptr) {
    OBSCORR_REQUIRE(domain_param->is_string(), "correlate: domain must be a string");
    domain_text = domain_param->as_string();
    OBSCORR_REQUIRE(domain_text == "windows" || domain_text == "snapshots",
                    "correlate: domain must be windows|snapshots");
  } else {
    domain_text = reader_.window_count() > 0 ? "windows" : "snapshots";
  }
  const analysis::Domain domain =
      domain_text == "windows" ? analysis::Domain::kWindows : analysis::Domain::kSnapshots;
  const std::size_t n =
      domain == analysis::Domain::kWindows ? reader_.window_count() : reader_.snapshot_count();
  OBSCORR_REQUIRE(n >= 2, "correlate: need at least 2 " + domain_text);

  const JsonValue* method_param = params.find("method");
  analysis::Method method = analysis::Method::kKs2;
  if (method_param != nullptr) {
    OBSCORR_REQUIRE(method_param->is_string(), "correlate: method must be a string");
    method = analysis::parse_method(method_param->as_string());
  }

  const JsonValue* highlight_param = params.find("highlight");
  const JsonValue* baseline_param = params.find("baseline");
  const analysis::WindowRange highlight = highlight_param != nullptr
                                              ? parse_range(*highlight_param, "highlight")
                                              : analysis::default_highlight(n);
  const analysis::WindowRange baseline = baseline_param != nullptr
                                             ? parse_range(*baseline_param, "baseline")
                                             : analysis::default_baseline(highlight);

  const JsonValue* top_param = params.find("top");
  const std::uint64_t top = top_param != nullptr ? top_param->as_uint() : 10;

  // Ranges are immutable data once published, so a fully range-qualified
  // key stays valid forever — default ranges are resolved before keying.
  const std::string key = "correlate/" + domain_text + "/" + std::to_string(baseline.first) +
                          ":" + std::to_string(baseline.last) + "/" +
                          std::to_string(highlight.first) + ":" +
                          std::to_string(highlight.last) + "/" + analysis::method_name(method) +
                          "/" + std::to_string(top);
  return parse_json(cached(key, [&] {
    const analysis::SeriesStore store = analysis::store_from_reader(reader_, domain);
    const std::vector<analysis::MetricScore> ranked =
        analysis::rank_series(store, baseline, highlight, method);
    JsonValue result = correlate_json(ranked, method, baseline, highlight);
    std::ostringstream out;
    render_correlate(ranked, method, baseline, highlight, static_cast<std::size_t>(top), out);
    result.set("text", JsonValue::string(std::move(out).str()));
    return dump_json(result);
  }));
}

JsonValue QueryEngine::q_scaling() {
  return text_result(cached("scaling", [&] {
    const netgen::Scenario& scenario = reader_.scenario();
    const int ladder_top = static_cast<int>(scenario.population.log2_nv);
    const auto analysis = core::scaling_analysis(scenario, 0, 10, ladder_top, pool_);
    std::ostringstream out;
    render_scaling(analysis, out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_stats() {
  JsonValue result = JsonValue::object();
  result.set("archive", JsonValue::string(reader_.dir()));
  result.set("scenario_hash", JsonValue::string(hex64(reader_.scenario_hash())));
  result.set("snapshots", JsonValue::number(static_cast<std::uint64_t>(reader_.snapshot_count())));
  result.set("months", JsonValue::number(static_cast<std::uint64_t>(reader_.month_count())));
  result.set("windows", JsonValue::number(static_cast<std::uint64_t>(reader_.window_count())));
  result.set("log2_nv",
             JsonValue::number(static_cast<std::uint64_t>(reader_.scenario().population.log2_nv)));
  result.set("mapped", JsonValue::boolean(reader_.mapped()));
  JsonValue latency = JsonValue::object();
  for (const QueryLatency& ql : latency_snapshot()) {
    JsonValue digest = JsonValue::object();
    digest.set("count", JsonValue::number(ql.count));
    digest.set("p50_us", JsonValue::number(ql.p50_us));
    digest.set("p99_us", JsonValue::number(ql.p99_us));
    latency.set(ql.query, std::move(digest));
  }
  result.set("latency", std::move(latency));
  return result;
}

JsonValue QueryEngine::q_metrics(const JsonValue& params) {
  obs::gauge("mem.peak_rss").record_max(static_cast<std::uint64_t>(mem::peak_rss_bytes()));
  const JsonValue* format = params.find("format");
  if (format != nullptr) {
    OBSCORR_REQUIRE(format->is_string() &&
                        (format->as_string() == "json" || format->as_string() == "prom"),
                    "metrics: format must be json|prom");
    if (format->as_string() == "prom") {
      // Prometheus exposition is a text artifact; ship it as one field so
      // the response stays a single NDJSON line.
      std::ostringstream os;
      obs::write_metrics_prometheus(os);
      JsonValue result = JsonValue::object();
      result.set("format", JsonValue::string("prom"));
      result.set("text", JsonValue::string(std::move(os).str()));
      return result;
    }
  }
  // Snapshot the live registry as the canonical obscorr.metrics.v1
  // document, then re-serialize it compact: the writer's output is
  // multiline, and protocol responses must be one NDJSON line. Numbers
  // survive the round-trip verbatim (raw-text number storage).
  std::ostringstream os;
  obs::write_metrics_json(os);
  return parse_json(std::move(os).str());
}

}  // namespace obscorr::svc
