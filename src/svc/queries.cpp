#include "svc/queries.hpp"

#include <cstdio>
#include <exception>
#include <sstream>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/ipv4.hpp"
#include "core/scaling_analysis.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "svc/render.hpp"

namespace obscorr::svc {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

JsonValue text_result(std::string text) {
  JsonValue result = JsonValue::object();
  result.set("text", JsonValue::string(std::move(text)));
  return result;
}

}  // namespace

QueryEngine::QueryEngine(const std::string& dir, ThreadPool& pool)
    : reader_(dir), pool_(pool) {}

std::string QueryEngine::execute(const Request& req) {
  const obs::Span span("svc.query", [&] { return req.query; });
  if (obs::counters_enabled()) {
    static obs::Counter& requests = obs::counter("svc.requests");
    requests.add(1);
  }
  try {
    const std::shared_lock lock(data_mu_);
    return make_ok(req.id, dispatch(req));
  } catch (const std::exception& e) {
    if (obs::counters_enabled()) {
      static obs::Counter& errors = obs::counter("svc.errors");
      errors.add(1);
    }
    return make_error(req.id, "bad_request", e.what());
  }
}

std::size_t QueryEngine::refresh() {
  const std::unique_lock lock(data_mu_);
  const std::size_t added = reader_.refresh();
  if (added > 0 && obs::counters_enabled()) {
    static obs::Counter& refreshes = obs::counter("svc.refreshes");
    refreshes.add(1);
  }
  return added;
}

std::size_t QueryEngine::window_count() {
  const std::shared_lock lock(data_mu_);
  return reader_.window_count();
}

JsonValue QueryEngine::dispatch(const Request& req) {
  if (req.query == "lookup") return q_lookup(req.params);
  if (req.query == "report") return q_report();
  if (req.query == "degrees") return q_degrees(req.params);
  if (req.query == "scaling") return q_scaling();
  if (req.query == "stats") return q_stats();
  if (req.query == "metrics") return q_metrics();
  OBSCORR_REQUIRE(false, "unknown query type \"" + req.query + "\"");
  return JsonValue::null();  // unreachable
}

std::string QueryEngine::cached(const std::string& key,
                                const std::function<std::string()>& render) {
  std::shared_future<std::string> future;
  {
    const std::lock_guard lk(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
    } else if (cache_.size() < kMaxCacheEntries) {
      // Deferred: the first get() below runs the render on that caller's
      // thread; every racer blocks on the same shared state, so the
      // render runs exactly once per key.
      future = std::async(std::launch::deferred, render).share();
      cache_.emplace(key, future);
    }
  }
  if (future.valid()) return future.get();
  return render();  // cache full: serve uncached rather than evict
}

const honeyfarm::Database& QueryEngine::database() {
  std::call_once(db_once_, [&] {
    db_ = std::make_unique<honeyfarm::Database>(reader_.months());
  });
  return *db_;
}

JsonValue QueryEngine::q_lookup(const JsonValue& params) {
  const JsonValue* ip = params.find("ip");
  OBSCORR_REQUIRE(ip != nullptr && ip->is_string(), "lookup needs params.ip (string)");
  const std::string& ip_text = ip->as_string();
  OBSCORR_REQUIRE(Ipv4::parse(ip_text).has_value(), "lookup: malformed address " + ip_text);
  return text_result(cached("lookup/" + ip_text, [&] {
    std::ostringstream out;
    render_lookup(database(), ip_text, out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_report() {
  return text_result(cached("report", [&] {
    std::ostringstream out;
    render_study(reader_.analysis_study(), out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_degrees(const JsonValue& params) {
  const JsonValue* snapshot = params.find("snapshot");
  const JsonValue* window = params.find("window");
  OBSCORR_REQUIRE(snapshot == nullptr || window == nullptr,
                  "degrees takes params.snapshot or params.window, not both");
  std::string key;
  gbl::SparseVec sources;
  if (window != nullptr) {
    const std::uint64_t w = window->as_uint();
    key = "degrees/w/" + std::to_string(w);
    sources = reader_.window_source_packets(static_cast<std::size_t>(w));
  } else {
    const std::uint64_t k = snapshot != nullptr ? snapshot->as_uint() : 0;
    key = "degrees/s/" + std::to_string(k);
    sources = reader_.source_packets(static_cast<std::size_t>(k));
  }
  return text_result(cached(key, [&] {
    std::ostringstream out;
    render_degrees(sources, out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_scaling() {
  return text_result(cached("scaling", [&] {
    const netgen::Scenario& scenario = reader_.scenario();
    const int ladder_top = static_cast<int>(scenario.population.log2_nv);
    const auto analysis = core::scaling_analysis(scenario, 0, 10, ladder_top, pool_);
    std::ostringstream out;
    render_scaling(analysis, out);
    return std::move(out).str();
  }));
}

JsonValue QueryEngine::q_stats() {
  JsonValue result = JsonValue::object();
  result.set("archive", JsonValue::string(reader_.dir()));
  result.set("scenario_hash", JsonValue::string(hex64(reader_.scenario_hash())));
  result.set("snapshots", JsonValue::number(static_cast<std::uint64_t>(reader_.snapshot_count())));
  result.set("months", JsonValue::number(static_cast<std::uint64_t>(reader_.month_count())));
  result.set("windows", JsonValue::number(static_cast<std::uint64_t>(reader_.window_count())));
  result.set("log2_nv",
             JsonValue::number(static_cast<std::uint64_t>(reader_.scenario().population.log2_nv)));
  result.set("mapped", JsonValue::boolean(reader_.mapped()));
  return result;
}

JsonValue QueryEngine::q_metrics() {
  // Snapshot the live registry as the canonical obscorr.metrics.v1
  // document, then re-serialize it compact: the writer's output is
  // multiline, and protocol responses must be one NDJSON line. Numbers
  // survive the round-trip verbatim (raw-text number storage).
  obs::gauge("mem.peak_rss").record_max(static_cast<std::uint64_t>(mem::peak_rss_bytes()));
  std::ostringstream os;
  obs::write_metrics_json(os);
  return parse_json(std::move(os).str());
}

}  // namespace obscorr::svc
