#pragma once
/// \file render.hpp
/// The one rendering path for analysis output. Each function here
/// produces exactly the bytes the corresponding CLI subcommand prints on
/// stdout; both `tools/commands.cpp` and the service's query engine call
/// these, which is what makes a `serve` response over a fixed window
/// range byte-identical to the batch CLI run — same code, same bytes, by
/// construction rather than by parallel maintenance.

#include <cstddef>
#include <ostream>
#include <vector>

#include "analysis/correlate.hpp"
#include "core/scaling_analysis.hpp"
#include "core/study.hpp"
#include "gbl/sparse_vec.hpp"
#include "honeyfarm/database.hpp"
#include "svc/json.hpp"

namespace obscorr::svc {

/// `obscorr degrees` stdout for a source-packet reduction: the
/// differential-cumulative table plus Zipf-Mandelbrot and power-law
/// fits. Throws when `sources` is empty.
void render_degrees(const gbl::SparseVec& sources, std::ostream& out);

/// `obscorr study` stdout for a materialized study: campaign inventory,
/// same-month overlap by brightness, and the temporal fit headline.
void render_study(const core::StudyData& study, std::ostream& out);

/// `obscorr lookup` stdout: the database summary line plus the profile
/// (or "never observed") for `ip`, which must already be validated.
void render_lookup(const honeyfarm::Database& db, const std::string& ip, std::ostream& out);

/// `obscorr scaling` stdout: the ladder table plus the fitted exponent.
void render_scaling(const core::ScalingAnalysis& analysis, std::ostream& out);

/// `obscorr correlate` stdout: the ranked metric-correlation table for
/// one baseline/highlight framing, truncated to the `top` strongest
/// changes (0 prints every metric).
void render_correlate(const std::vector<analysis::MetricScore>& ranked,
                      analysis::Method method, analysis::WindowRange baseline,
                      analysis::WindowRange highlight, std::size_t top, std::ostream& out);

/// The machine-readable ranked result — the CLI `--json` artifact and
/// the svc `correlate` result payload share this structure:
///   {"method","baseline":{"first","last"},"highlight":{...},
///    "ranked":[{"metric","score","ks_statistic","ks_p",
///               "baseline_mean","highlight_mean","volume"},...]}
JsonValue correlate_json(const std::vector<analysis::MetricScore>& ranked,
                         analysis::Method method, analysis::WindowRange baseline,
                         analysis::WindowRange highlight);

}  // namespace obscorr::svc
