#include "svc/protocol.hpp"

#include "common/error.hpp"

namespace obscorr::svc {

Request parse_request(std::string_view line) {
  const JsonValue v = parse_json(line);
  OBSCORR_REQUIRE(v.is_object(), "request must be a JSON object");
  Request req;
  if (const JsonValue* id = v.find("id")) req.id = *id;
  const JsonValue* query = v.find("query");
  OBSCORR_REQUIRE(query != nullptr && query->is_string(),
                  "request needs a string \"query\" member");
  req.query = query->as_string();
  OBSCORR_REQUIRE(!req.query.empty(), "request \"query\" must be non-empty");
  if (const JsonValue* params = v.find("params")) {
    OBSCORR_REQUIRE(params->is_object(), "request \"params\" must be an object");
    req.params = *params;
  } else {
    req.params = JsonValue::object();
  }
  return req;
}

std::string make_ok(const JsonValue& id, JsonValue result) {
  JsonValue resp = JsonValue::object();
  resp.set("id", id);
  resp.set("ok", JsonValue::boolean(true));
  resp.set("result", std::move(result));
  return dump_json(resp) + "\n";
}

std::string make_error(const JsonValue& id, std::string_view code, std::string_view message) {
  JsonValue error = JsonValue::object();
  error.set("code", JsonValue::string(std::string(code)));
  error.set("message", JsonValue::string(std::string(message)));
  JsonValue resp = JsonValue::object();
  resp.set("id", id);
  resp.set("ok", JsonValue::boolean(false));
  resp.set("error", std::move(error));
  return dump_json(resp) + "\n";
}

}  // namespace obscorr::svc
