#pragma once
/// \file queries.hpp
/// The service's query engine: dispatches parsed protocol requests over
/// a live `StudyReader`. Thread-safe — many connections execute queries
/// concurrently while the ingest loop publishes new windows:
///
///  * a shared/exclusive lock separates queries (shared) from
///    `refresh()` (exclusive), so a refresh never swaps the catalog
///    under a reader mid-query;
///  * rendered query outputs are cached by key behind deferred shared
///    futures, so an expensive render (scaling, report) runs exactly
///    once no matter how many clients race for it, and repeat queries
///    are a string copy;
///  * the completed campaign prefix is immutable, so cached entries for
///    it are valid forever; per-window entries are keyed by index and
///    windows are immutable once published.
///
/// Rendering goes through svc/render.hpp — the same functions the batch
/// CLI prints with — which is what makes responses byte-identical to the
/// corresponding `obscorr <cmd> --from DIR` stdout.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "archive/study_archive.hpp"
#include "common/thread_pool.hpp"
#include "honeyfarm/database.hpp"
#include "stats/histogram.hpp"
#include "svc/protocol.hpp"

namespace obscorr::svc {

/// One query type's service-latency digest (microseconds, log-binned
/// percentiles — exact to within one binary-log bin).
struct QueryLatency {
  std::string query;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Dispatches requests over one archive; shared by every connection.
class QueryEngine {
 public:
  /// Open the archive; throws on a missing/corrupt one. `pool` is used
  /// for the scaling ladder (and must outlive the engine).
  QueryEngine(const std::string& dir, ThreadPool& pool);

  /// Execute one parsed request and return the full response line.
  /// Never throws: failures become protocol error responses.
  std::string execute(const Request& req);

  /// Absorb windows published since open/last refresh (exclusive lock);
  /// returns the number of newly visible windows.
  std::size_t refresh();

  /// Currently visible live windows (shared lock).
  std::size_t window_count();

  /// Per-query-type latency digests, sorted by query name. Populated by
  /// execute(); `--timing` and the svc `stats` query surface these.
  std::vector<QueryLatency> latency_snapshot();

  const netgen::Scenario& scenario() const { return reader_.scenario(); }

 private:
  JsonValue dispatch(const Request& req);
  JsonValue q_lookup(const JsonValue& params);
  JsonValue q_report();
  JsonValue q_degrees(const JsonValue& params);
  JsonValue q_scaling();
  JsonValue q_correlate(const JsonValue& params);
  JsonValue q_stats();
  JsonValue q_metrics(const JsonValue& params);

  /// Rendered-output cache: compute `render()` once per key, share the
  /// result. Bounded: past kMaxCacheEntries new keys compute uncached.
  std::string cached(const std::string& key, const std::function<std::string()>& render);

  /// Lazily built honeyfarm database over the completed campaign's
  /// months (immutable under live ingest); built once, first use.
  const honeyfarm::Database& database();

  static constexpr std::size_t kMaxCacheEntries = 256;

  archive::StudyReader reader_;
  ThreadPool& pool_;
  std::shared_mutex data_mu_;  // queries shared, refresh exclusive
  std::mutex cache_mu_;
  std::unordered_map<std::string, std::shared_future<std::string>> cache_;
  std::mutex latency_mu_;
  std::map<std::string, stats::LogHistogram> latency_us_;  // by query type
  std::once_flag db_once_;
  std::unique_ptr<honeyfarm::Database> db_;
};

}  // namespace obscorr::svc
