#include "svc/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/interrupt.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "svc/protocol.hpp"

#if defined(__linux__)
#define OBSCORR_HAVE_EPOLL 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace obscorr::svc {

#ifdef OBSCORR_HAVE_EPOLL

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double>(now - then).count();
}

}  // namespace

struct Server::Impl {
  ServerConfig cfg;
  QueryEngine& engine;
  ThreadPool& pool;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  int bound_port = 0;
  bool is_unix = false;
  bool bound = false;

  std::atomic<bool> stop_flag{false};
  bool draining = false;
  Clock::time_point drain_since;

  /// One client connection. Requests are handled serially per
  /// connection: `busy` marks one in flight; pipelined lines wait in
  /// `in` until its completion arrives.
  struct Conn {
    int fd = -1;
    std::string in;
    Clock::time_point in_since;   ///< when `in` last became non-empty
    std::string out;
    std::size_t out_pos = 0;
    Clock::time_point out_since;  ///< when `out` last became non-empty
    bool busy = false;
    bool close_after_flush = false;
    bool watching = false;  ///< subscribed to pushed window/anomaly events
    Clock::time_point last_activity;
  };

  /// A watcher whose unread output (responses + pushed events) exceeds
  /// this is disconnected rather than buffered without bound.
  static constexpr std::size_t kMaxWatchBacklogBytes = 4 * 1024 * 1024;
  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_id = 1;

  /// Completion queue filled by pool tasks, drained by the loop thread.
  /// Tasks hold a raw Impl pointer: serve() counts dispatches in
  /// `inflight` and does not return until every completion has been
  /// consumed, so the Impl strictly outlives every task it spawned.
  std::mutex done_mu;
  std::vector<std::pair<std::uint64_t, std::string>> done;
  std::size_t inflight = 0;

  /// Event lines queued by publish_event() (any thread), fanned out to
  /// watchers by the loop thread.
  std::mutex events_mu;
  std::vector<std::string> pending_events;

  Clock::time_point next_metrics;

  Impl(ServerConfig c, QueryEngine& e, ThreadPool& p)
      : cfg(std::move(c)), engine(e), pool(p) {}

  ~Impl() {
    interrupt::set_wake_fd(-1);
    for (auto& [id, conn] : conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (is_unix && bound) ::unlink(cfg.unix_path.c_str());
  }

  void bind() {
    OBSCORR_REQUIRE(!bound, "serve: already bound");
    is_unix = !cfg.unix_path.empty();
    if (is_unix) {
      OBSCORR_REQUIRE(cfg.unix_path.size() < sizeof(sockaddr_un{}.sun_path),
                      "serve: unix socket path too long");
      listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      OBSCORR_REQUIRE(listen_fd >= 0, "serve: cannot create unix socket");
      ::unlink(cfg.unix_path.c_str());  // a stale socket file from a dead daemon
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, cfg.unix_path.c_str(), sizeof(addr.sun_path) - 1);
      OBSCORR_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                      "serve: cannot bind " + cfg.unix_path);
    } else {
      listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      OBSCORR_REQUIRE(listen_fd >= 0, "serve: cannot create tcp socket");
      const int one = 1;
      ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(cfg.port));
      OBSCORR_REQUIRE(::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) == 1,
                      "serve: malformed host address " + cfg.host);
      OBSCORR_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                      "serve: cannot bind " + cfg.host + ":" + std::to_string(cfg.port));
      sockaddr_in bound_addr{};
      socklen_t len = sizeof(bound_addr);
      OBSCORR_REQUIRE(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound_addr), &len) == 0,
                      "serve: getsockname failed");
      bound_port = static_cast<int>(ntohs(bound_addr.sin_port));
    }
    OBSCORR_REQUIRE(::listen(listen_fd, 128) == 0, "serve: listen failed");

    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    OBSCORR_REQUIRE(epoll_fd >= 0, "serve: epoll_create1 failed");
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    OBSCORR_REQUIRE(wake_fd >= 0, "serve: eventfd failed");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // id 0 = listener
    OBSCORR_REQUIRE(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) == 0,
                    "serve: epoll_ctl(listen) failed");
    epoll_event wev{};
    wev.events = EPOLLIN;
    wev.data.u64 = 1;  // id 1 = wake eventfd
    OBSCORR_REQUIRE(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &wev) == 0,
                    "serve: epoll_ctl(wake) failed");
    // A signal delivered while the loop is blocked in epoll_wait pokes
    // the same eventfd the completion queue uses.
    interrupt::set_wake_fd(wake_fd);
    next_id = 2;
    bound = true;
  }

  std::string endpoint() const {
    if (is_unix) return "unix:" + cfg.unix_path;
    return "tcp:" + cfg.host + ":" + std::to_string(bound_port);
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd, &one, sizeof(one));
  }

  void update_events(std::uint64_t id, Conn& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.out_pos < conn.out.size() ? EPOLLOUT : 0u);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    conns.erase(it);
  }

  void accept_clients() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN, or a transient accept failure
      if (!is_unix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      if (conns.size() >= cfg.max_connections || draining) {
        // 503-style shedding: best-effort error line, immediate close.
        // The listener keeps accepting so the backlog never silts up
        // with sockets nobody will ever answer.
        const std::string line = make_error(
            JsonValue::null(), draining ? "shutting_down" : "shedding",
            draining ? "server is draining" : "connection limit reached");
        [[maybe_unused]] const auto n = ::write(fd, line.data(), line.size());
        ::close(fd);
        if (obs::counters_enabled()) {
          static obs::Counter& shed = obs::counter("svc.shed");
          shed.add(1);
        }
        continue;
      }
      const std::uint64_t id = next_id++;
      Conn conn;
      conn.fd = fd;
      conn.last_activity = Clock::now();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conns.emplace(id, std::move(conn));
      if (obs::counters_enabled()) {
        static obs::Counter& accepted = obs::counter("svc.accepted");
        accepted.add(1);
        obs::gauge("svc.connections_high_water")
            .record_max(static_cast<std::uint64_t>(conns.size()));
      }
    }
  }

  void fail_conn(std::uint64_t id, Conn& conn, std::string_view code, std::string_view message) {
    conn.in.clear();
    conn.busy = false;  // any in-flight completion is dropped at delivery
    conn.close_after_flush = true;
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
      conn.out_since = Clock::now();
    }
    conn.out += make_error(JsonValue::null(), code, message);
    // No inline flush: a completed flush of a parting connection erases
    // it, and every caller still holds a reference (the deadline sweep
    // is mid-iteration over the map). The EPOLLOUT registered here does
    // the flush-then-close on the next loop pass instead.
    update_events(id, conn);
  }

  void append_out(std::uint64_t id, Conn& conn, std::string bytes) {
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
      conn.out_since = Clock::now();
    }
    conn.out += bytes;
    flush_conn(id, conn);
  }

  /// Write as much pending output as the socket accepts; closes on a
  /// completed flush of a parting connection. May erase the conn.
  void flush_conn(std::uint64_t id, Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      const auto n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos);
      if (n <= 0) break;
      conn.out_pos += static_cast<std::size_t>(n);
      conn.out_since = Clock::now();
      conn.last_activity = conn.out_since;
      if (obs::counters_enabled()) {
        static obs::Counter& bytes_out = obs::counter("svc.bytes_out");
        bytes_out.add(static_cast<std::uint64_t>(n));
      }
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
      if (conn.close_after_flush && !conn.busy) {
        close_conn(id);
        return;
      }
    }
    update_events(id, conn);
  }

  void dispatch_request(std::uint64_t id, Request req) {
    ++inflight;
    // The task owns only its request; results come back through `done`.
    // Tasks must not throw (ThreadPool contract) — execute() converts
    // failures to protocol error responses itself, the catch is a belt.
    pool.submit([this, id, req = std::move(req)] {
      std::string resp;
      try {
        resp = engine.execute(req);
      } catch (const std::exception& e) {
        resp = make_error(JsonValue::null(), "bad_request", e.what());
      } catch (...) {
        resp = make_error(JsonValue::null(), "bad_request", "unparseable request");
      }
      {
        const std::lock_guard lk(done_mu);
        done.emplace_back(id, std::move(resp));
      }
      wake();
    });
  }

  /// Handle a `watch` subscription inline on the loop thread: mark the
  /// connection, acknowledge with the current window count so the
  /// client knows which window the stream starts after. May erase the
  /// conn (a dead socket fails the ack flush).
  void subscribe_watch(std::uint64_t id, Conn& conn, const Request& req) {
    conn.watching = true;
    JsonValue result = JsonValue::object();
    result.set("subscribed", JsonValue::boolean(true));
    result.set("windows",
               JsonValue::number(static_cast<std::uint64_t>(engine.window_count())));
    if (obs::counters_enabled()) {
      std::size_t watchers = 0;
      for (const auto& [cid, c] : conns) watchers += c.watching ? 1u : 0u;
      obs::gauge("svc.watchers_high_water").record_max(static_cast<std::uint64_t>(watchers));
    }
    append_out(id, conn, make_ok(req.id, std::move(result)));
  }

  /// Consume complete request lines from the connection's buffer. One
  /// request in flight per connection; the rest stay buffered. Parsing
  /// happens here on the loop thread (cheap — requests are one small
  /// line) so `watch` can be recognized and handled without a pool
  /// round-trip; everything else dispatches to the pool as before.
  void process_lines(std::uint64_t id, Conn& conn) {
    while (!conn.busy && !conn.close_after_flush) {
      const std::size_t nl = conn.in.find('\n');
      if (nl == std::string::npos) {
        if (conn.in.size() > kMaxRequestBytes) {
          fail_conn(id, conn, "too_large", "request line exceeds " +
                                               std::to_string(kMaxRequestBytes) + " bytes");
        }
        return;
      }
      std::string line = conn.in.substr(0, nl);
      conn.in.erase(0, nl + 1);
      conn.in_since = Clock::now();  // the remainder starts a fresh request
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank keep-alive lines are ignored
      if (line.size() > kMaxRequestBytes) {
        fail_conn(id, conn, "too_large", "request line exceeds " +
                                             std::to_string(kMaxRequestBytes) + " bytes");
        return;
      }
      Request req;
      try {
        req = parse_request(line);
      } catch (const std::exception& e) {
        append_out(id, conn, make_error(JsonValue::null(), "bad_request", e.what()));
        const auto again = conns.find(id);
        if (again == conns.end()) return;  // dead socket: flush erased it
        continue;
      }
      if (req.query == "watch") {
        subscribe_watch(id, conn, req);
        const auto again = conns.find(id);
        if (again == conns.end()) return;
        continue;
      }
      conn.busy = true;
      dispatch_request(id, std::move(req));
    }
  }

  /// Read everything available; may erase the conn (EOF / fatal error).
  void readable(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    char buf[16384];
    while (true) {
      const auto n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        if (conn.in.empty()) conn.in_since = Clock::now();
        conn.last_activity = Clock::now();
        if (!conn.close_after_flush) conn.in.append(buf, static_cast<std::size_t>(n));
        if (obs::counters_enabled()) {
          static obs::Counter& bytes_in = obs::counter("svc.bytes_in");
          bytes_in.add(static_cast<std::uint64_t>(n));
        }
        if (!conn.close_after_flush && conn.in.size() > kMaxRequestBytes) {
          // Bounded buffering: the cap applies to unprocessed bytes as a
          // whole, so neither one oversized line nor an unbounded
          // pipeline backlog can grow the buffer. Once failed, further
          // input is read and discarded until the error line flushes.
          fail_conn(id, conn, "too_large", "request buffer exceeds " +
                                               std::to_string(kMaxRequestBytes) + " bytes");
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or error. A client that half-closed after sending requests
      // still gets its in-flight response flushed.
      if (conn.busy || conn.out_pos < conn.out.size()) {
        conn.close_after_flush = true;
        break;
      }
      close_conn(id);
      return;
    }
    process_lines(id, conn);
  }

  void deliver_completions() {
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    {
      const std::lock_guard lk(done_mu);
      batch.swap(done);
    }
    for (auto& [id, resp] : batch) {
      --inflight;
      const auto it = conns.find(id);
      if (it == conns.end()) continue;  // connection died while executing
      Conn& conn = it->second;
      if (!conn.busy) continue;  // failed/reset connection: drop the response
      conn.busy = false;
      conn.last_activity = Clock::now();
      append_out(id, conn, std::move(resp));  // may close the conn
      const auto again = conns.find(id);
      if (again != conns.end()) process_lines(id, again->second);
    }
  }

  void publish_event(std::string line) {
    if (line.empty()) return;
    if (line.back() != '\n') line += '\n';
    {
      const std::lock_guard lk(events_mu);
      pending_events.push_back(std::move(line));
    }
    wake();
  }

  /// Fan pending events out to every watcher, in publication order.
  /// Each event reaches each subscriber exactly once: the queue is
  /// swapped out under the lock and appended to every watcher's output
  /// in one pass. May erase conns (backlog overflow, parting flush).
  void deliver_events() {
    std::vector<std::string> batch;
    {
      const std::lock_guard lk(events_mu);
      batch.swap(pending_events);
    }
    if (batch.empty()) return;
    std::string payload;
    for (const std::string& e : batch) payload += e;
    std::vector<std::uint64_t> watchers;
    for (const auto& [id, conn] : conns) {
      if (conn.watching && !conn.close_after_flush) watchers.push_back(id);
    }
    for (const std::uint64_t id : watchers) {
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      if (conn.out.size() - conn.out_pos + payload.size() > kMaxWatchBacklogBytes) {
        close_conn(id);  // stuck consumer: cut it loose, keep the daemon bounded
        continue;
      }
      if (obs::counters_enabled()) {
        static obs::Counter& watch_events = obs::counter("svc.watch_events");
        watch_events.add(batch.size());
      }
      append_out(id, conn, payload);
    }
  }

  void sweep_deadlines() {
    const auto now = Clock::now();
    std::vector<std::uint64_t> to_close;
    for (auto& [id, conn] : conns) {
      if (conn.busy) continue;  // execution owns the clock until completion
      const bool out_pending = conn.out_pos < conn.out.size();
      if (out_pending && seconds_since(conn.out_since, now) > cfg.request_timeout_sec) {
        to_close.push_back(id);  // reader stopped draining its response
        continue;
      }
      if (!out_pending && !conn.in.empty() &&
          seconds_since(conn.in_since, now) > cfg.request_timeout_sec) {
        // Slow loris: a partial line with no newline in sight. The
        // deadline runs from when the fragment started accumulating,
        // not from the last byte, so trickling keeps nothing alive.
        if (obs::counters_enabled()) {
          static obs::Counter& timeouts = obs::counter("svc.timeouts");
          timeouts.add(1);
        }
        fail_conn(id, conn, "timeout", "request incomplete after " +
                                           std::to_string(cfg.request_timeout_sec) + "s");
        continue;
      }
      if (!out_pending && conn.in.empty() && !conn.watching &&
          seconds_since(conn.last_activity, now) > cfg.idle_timeout_sec) {
        // Watchers are exempt: a subscriber is quiet by design; the
        // stalled-write deadline above still covers one that stops
        // reading.
        to_close.push_back(id);
      }
    }
    for (const std::uint64_t id : to_close) {
      if (obs::counters_enabled()) {
        static obs::Counter& timeouts = obs::counter("svc.timeouts");
        timeouts.add(1);
      }
      close_conn(id);
    }
  }

  void write_metrics_snapshot() {
    if (cfg.metrics_out.empty()) return;
    obs::gauge("mem.peak_rss").record_max(static_cast<std::uint64_t>(mem::peak_rss_bytes()));
    const std::string tmp = cfg.metrics_out + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      if (!os.is_open()) return;  // snapshotting must never kill the daemon
      obs::write_metrics_json(os);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, cfg.metrics_out, ec);
  }

  void begin_drain() {
    draining = true;
    drain_since = Clock::now();
    // Stop accepting; clients attempting to connect now get a RST (tcp)
    // or ENOENT (unix) instead of queueing behind a closing daemon.
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
      if (is_unix) ::unlink(cfg.unix_path.c_str());
    }
    std::vector<std::uint64_t> idle;
    for (auto& [id, conn] : conns) {
      conn.close_after_flush = true;
      if (!conn.busy && conn.out_pos == conn.out.size()) idle.push_back(id);
    }
    for (const std::uint64_t id : idle) close_conn(id);
  }

  int serve() {
    OBSCORR_REQUIRE(bound, "serve: bind() first");
    next_metrics = Clock::now();
    epoll_event events[64];
    while (true) {
      const bool stop = stop_flag.load(std::memory_order_relaxed) || interrupt::stop_requested();
      if (stop && !draining) begin_drain();
      if (draining) {
        if (conns.empty() && inflight == 0) break;
        if (seconds_since(drain_since, Clock::now()) > cfg.drain_timeout_sec) {
          // Grace expired: drop the stragglers, but still wait for
          // in-flight pool tasks — their completions reference us.
          for (auto it = conns.begin(); it != conns.end();) {
            ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
            ::close(it->second.fd);
            it = conns.erase(it);
          }
          if (inflight == 0) break;
        }
      }

      const int n = ::epoll_wait(epoll_fd, events, 64, /*timeout_ms=*/250);
      if (n < 0) {
        if (errno == EINTR) continue;
        OBSCORR_REQUIRE(false, "serve: epoll_wait failed");
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[i].data.u64;
        if (id == 0) {
          accept_clients();
          continue;
        }
        if (id == 1) {
          std::uint64_t drained = 0;
          while (::read(wake_fd, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          const auto it = conns.find(id);
          if (it != conns.end() && !it->second.busy) {
            close_conn(id);
            continue;
          }
        }
        if (events[i].events & EPOLLIN) readable(id);
        if (events[i].events & EPOLLOUT) {
          const auto it = conns.find(id);
          if (it != conns.end()) flush_conn(id, it->second);
        }
      }
      deliver_completions();
      deliver_events();
      sweep_deadlines();
      if (!cfg.metrics_out.empty() && Clock::now() >= next_metrics) {
        write_metrics_snapshot();
        next_metrics =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(cfg.metrics_interval_sec));
      }
    }
    write_metrics_snapshot();  // final state, peak RSS included
    return 0;
  }
};

Server::Server(ServerConfig config, QueryEngine& engine, ThreadPool& pool)
    : impl_(std::make_unique<Impl>(std::move(config), engine, pool)) {}

Server::~Server() = default;

void Server::bind() { impl_->bind(); }

std::string Server::endpoint() const { return impl_->endpoint(); }

int Server::port() const { return impl_->bound_port; }

int Server::serve() { return impl_->serve(); }

void Server::request_stop() {
  impl_->stop_flag.store(true, std::memory_order_relaxed);
  impl_->wake();
}

void Server::publish_event(std::string line) { impl_->publish_event(std::move(line)); }

#else  // !OBSCORR_HAVE_EPOLL

struct Server::Impl {
  ServerConfig cfg;
  Impl(ServerConfig c, QueryEngine&, ThreadPool&) : cfg(std::move(c)) {}
};

Server::Server(ServerConfig config, QueryEngine& engine, ThreadPool& pool)
    : impl_(std::make_unique<Impl>(std::move(config), engine, pool)) {}

Server::~Server() = default;

void Server::bind() {
  OBSCORR_REQUIRE(false, "serve: the resident service requires linux (epoll)");
}

std::string Server::endpoint() const { return ""; }

int Server::port() const { return 0; }

int Server::serve() {
  OBSCORR_REQUIRE(false, "serve: the resident service requires linux (epoll)");
  return 2;
}

void Server::request_stop() {}

void Server::publish_event(std::string) {}

#endif

}  // namespace obscorr::svc
