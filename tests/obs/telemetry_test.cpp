/// Tests of the `src/obs/` telemetry subsystem: counter-registry
/// concurrency (run under TSan in CI), deterministic read-time merges,
/// span recording semantics, and the golden metrics schema that pins the
/// canonical counter catalogue — renaming a metric must be a deliberate
/// edit here, never a silent drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::obs {
namespace {

/// Every test leaves telemetry disarmed and the registry zeroed so the
/// global state never leaks across tests (or into other suites).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override {
    set_level(Level::kOff);
    reset();
  }
};

using TelemetryStressTest = TelemetryTest;
using TelemetrySpanTest = TelemetryTest;
using TelemetryExportTest = TelemetryTest;

TEST_F(TelemetryTest, LevelsGateTheCachedFlags) {
  EXPECT_FALSE(counters_enabled());
  EXPECT_FALSE(spans_enabled());
  set_level(Level::kCounters);
  EXPECT_TRUE(counters_enabled());
  EXPECT_FALSE(spans_enabled());
  set_level(Level::kFull);
  EXPECT_TRUE(counters_enabled());
  EXPECT_TRUE(spans_enabled());
  set_level(Level::kOff);
  EXPECT_FALSE(counters_enabled());
  EXPECT_FALSE(spans_enabled());
}

TEST_F(TelemetryTest, CounterHandleIsStableAndNamed) {
  Counter& a = counter("test.handle");
  Counter& b = counter("test.handle");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  const auto snap = counters_snapshot();
  const auto it = std::find_if(snap.begin(), snap.end(),
                               [](const MetricSample& s) { return s.name == "test.handle"; });
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->value, 7u);
}

TEST_F(TelemetryTest, PerThreadMergeIsDeterministic) {
  // N threads each add a distinct known amount; the read-time merge must
  // produce the exact sum whatever shard each thread landed on, and
  // repeated reads must agree bit for bit.
  Counter& c = counter("test.merge");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  std::uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t amount = static_cast<std::uint64_t>(t) + 1;
    expected += amount * kAddsPerThread;
    threads.emplace_back([&c, amount] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add(amount);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), expected);
  EXPECT_EQ(c.value(), c.value());  // merges are pure reads
}

TEST_F(TelemetryTest, GaugeKeepsTheHighWaterMark) {
  Gauge& g = gauge("test.gauge");
  g.record_max(7);
  g.record_max(3);
  EXPECT_EQ(g.value(), 7u);
  g.record_max(19);
  EXPECT_EQ(g.value(), 19u);
  g.zero();
  EXPECT_EQ(g.value(), 0u);
}

TEST_F(TelemetryTest, ResetZerosCountersAndDropsSpans) {
  set_level(Level::kFull);
  counter("test.reset").add(5);
  { const Span span("test.reset_span"); }
  ASSERT_GE(span_events().size(), 1u);
  reset();
  EXPECT_EQ(counter("test.reset").value(), 0u);
  EXPECT_TRUE(span_events().empty());
  EXPECT_EQ(dropped_span_events(), 0u);
}

TEST_F(TelemetryTest, ScopedNsCounterIsNoOpWhenDisabled) {
  Counter& ns = counter("test.scoped_ns");
  { const ScopedNsCounter timer(ns); }
  EXPECT_EQ(ns.value(), 0u);
  set_level(Level::kCounters);
  { const ScopedNsCounter timer(ns); }
  set_level(Level::kOff);
  EXPECT_GT(ns.value(), 0u);
}

TEST_F(TelemetryStressTest, ConcurrentRegistryAndCounterTraffic) {
  // The TSan target: concurrent registry lookups (same and distinct
  // names), counter adds, and gauge updates from many threads at once,
  // racing against snapshot reads. Values must still merge exactly.
  set_level(Level::kCounters);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Counter& shared = counter("test.stress_shared");
      Counter& own = counter("test.stress_" + std::to_string(t));
      Gauge& g = gauge("test.stress_gauge");
      for (std::uint64_t i = 0; i < kIters; ++i) {
        shared.add(1);
        own.add(2);
        g.record_max(i);
      }
    });
  }
  // Reader racing the writers: snapshots must never tear or crash.
  std::thread reader([] {
    for (int i = 0; i < 50; ++i) (void)counters_snapshot();
  });
  for (auto& t : threads) t.join();
  reader.join();
  EXPECT_EQ(counter("test.stress_shared").value(), kThreads * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counter("test.stress_" + std::to_string(t)).value(), 2 * kIters) << t;
  }
  EXPECT_EQ(gauge("test.stress_gauge").value(), kIters - 1);
}

TEST_F(TelemetryStressTest, ConcurrentSpansFromManyThreads) {
  set_level(Level::kFull);
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const Span outer("test.stress_outer");
        const Span inner("test.stress_inner", [&] { return std::to_string(i); });
      }
    });
  }
  for (auto& t : threads) t.join();
  set_level(Level::kOff);
  const auto events = span_events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  EXPECT_EQ(dropped_span_events(), 0u);
}

TEST_F(TelemetrySpanTest, DisabledSpansRecordNothingAndBuildNoDetail) {
  bool detail_built = false;
  {
    const Span span("test.disabled", [&] {
      detail_built = true;
      return std::string("never");
    });
  }
  EXPECT_FALSE(detail_built);
  EXPECT_TRUE(span_events().empty());
}

TEST_F(TelemetrySpanTest, NestingRecordsDepthAndContainment) {
  set_level(Level::kFull);
  {
    const Span outer("test.outer");
    { const Span inner("test.inner", [] { return std::string("i0"); }); }
    { const Span inner("test.inner", [] { return std::string("i1"); }); }
  }
  set_level(Level::kOff);
  const auto events = span_events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer first, then the two inners in order.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].detail, "i0");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].detail, "i1");
  // Containment: the outer span covers both inner intervals.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns, events[2].start_ns + events[2].dur_ns);

  const auto aggregates = aggregate_spans();
  ASSERT_EQ(aggregates.size(), 2u);
  EXPECT_EQ(aggregates[0].name, "test.inner");
  EXPECT_EQ(aggregates[0].count, 2u);
  EXPECT_EQ(aggregates[1].name, "test.outer");
  EXPECT_GE(aggregates[1].max_ns, aggregates[0].max_ns);
}

TEST_F(TelemetrySpanTest, RingOverflowDropsOldestAndCounts) {
  set_level(Level::kFull);
  const std::size_t total = kSpanRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    const Span span("test.ring");
  }
  set_level(Level::kOff);
  EXPECT_EQ(span_events().size(), kSpanRingCapacity);
  EXPECT_EQ(dropped_span_events(), 100u);
}

TEST_F(TelemetryExportTest, MetricsJsonSchemaAndCanonicalCatalogue) {
  // The golden schema test: the metrics document always carries the full
  // canonical catalogue (zeros included), and every instrumented
  // pipeline-prefixed counter in the registry is canonical. Renaming or
  // adding a pipeline metric must edit the canonical list (and
  // docs/observability.md) — this test is the tripwire.
  std::ostringstream os;
  write_metrics_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"obscorr.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_span_events\""), std::string::npos);
  for (const std::string& name : canonical_counter_names()) {
    EXPECT_NE(json.find('"' + name + '"'), std::string::npos) << name;
  }
  for (const std::string& name : canonical_gauge_names()) {
    EXPECT_NE(json.find('"' + name + '"'), std::string::npos) << name;
  }

  // The canonical catalogue, pinned. A rename lands here on purpose.
  const std::vector<std::string> expected_counters = {
      "analysis.anomalies",
      "analysis.windows_observed",
      "archive.bytes_read",
      "archive.bytes_written",
      "archive.crc_ns",
      "archive.frames_read",
      "archive.frames_written",
      "archive.open_heap",
      "archive.open_mmap",
      "archive.raw_bytes",
      "archive.stored_bytes",
      "cache.evictions",
      "cache.hits",
      "cache.misses",
      "mem.arena_bytes",
      "mem.arena_resets",
      "mem.pool_hits",
      "mem.pool_misses",
      "netgen.packets_emitted",
      "netgen.rng_streams",
      "netgen.shards_generated",
      "netgen.valid_packets",
      "netgen.windows_planned",
      "simd.dispatch_codec",
      "simd.dispatch_ingest",
      "simd.dispatch_merge",
      "simd.dispatch_radix",
      "simd.dispatch_reduce",
      "svc.accepted",
      "svc.bytes_in",
      "svc.bytes_out",
      "svc.errors",
      "svc.ingest_packets",
      "svc.refreshes",
      "svc.requests",
      "svc.shed",
      "svc.timeouts",
      "svc.watch_events",
      "svc.windows_published",
      "telescope.anon_cache_hits",
      "telescope.anon_cache_misses",
      "telescope.discarded_packets",
      "telescope.merge_ns",
      "telescope.valid_packets",
      "threadpool.busy_ns",
      "threadpool.help_drains",
      "threadpool.tasks_executed",
  };
  EXPECT_EQ(canonical_counter_names(), expected_counters);
  const std::vector<std::string> expected_gauges = {
      "cache.bytes",
      "mem.arena_high_water",
      "mem.hugepage_bytes",
      "mem.peak_rss",
      "mem.pool_high_water",
      "simd.tier",
      "svc.connections_high_water",
      "svc.watchers_high_water",
      "threadpool.queue_high_water",
  };
  EXPECT_EQ(canonical_gauge_names(), expected_gauges);

  // Tripwire: any registry counter named with a pipeline prefix must be
  // canonical — an instrumentation site can't invent names on the side.
  const std::set<std::string> canonical(expected_counters.begin(), expected_counters.end());
  for (const MetricSample& s : counters_snapshot()) {
    for (const std::string& prefix : {std::string("netgen."), std::string("telescope."),
                                      std::string("archive."), std::string("threadpool."),
                                      std::string("study."), std::string("core."),
                                      std::string("stats."), std::string("simd."),
                                      std::string("mem."), std::string("svc."),
                                      std::string("cache."), std::string("analysis.")}) {
      if (s.name.rfind(prefix, 0) == 0) {
        EXPECT_TRUE(canonical.count(s.name) == 1) << "non-canonical counter: " << s.name;
      }
    }
  }
}

TEST_F(TelemetryExportTest, PrometheusExpositionSchema) {
  // The prom exposition pins the same canonical catalogue under the
  // obscorr_ prefix with dots mapped to underscores: counters carry the
  // OpenMetrics _total suffix, gauges the bare name, and the document
  // ends with the "# EOF" framing line.
  set_level(Level::kFull);
  counter("svc.requests").add(42);
  gauge("svc.connections_high_water").record_max(3);
  { const Span span("test.prom_span"); }
  set_level(Level::kOff);
  std::ostringstream os;
  write_metrics_prometheus(os);
  const std::string text = os.str();

  for (const std::string& name : canonical_counter_names()) {
    std::string prom = "obscorr_";
    for (const char c : name) prom += (c == '.') ? '_' : c;
    EXPECT_NE(text.find("# TYPE " + prom + " counter\n" + prom + "_total "), std::string::npos)
        << name;
  }
  for (const std::string& name : canonical_gauge_names()) {
    std::string prom = "obscorr_";
    for (const char c : name) prom += (c == '.') ? '_' : c;
    EXPECT_NE(text.find("# TYPE " + prom + " gauge\n" + prom + " "), std::string::npos) << name;
  }
  EXPECT_NE(text.find("obscorr_svc_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("obscorr_svc_connections_high_water 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obscorr_span_test_prom_span summary\n"), std::string::npos);
  EXPECT_NE(text.find("obscorr_span_test_prom_span_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("obscorr_span_test_prom_span_seconds_sum "), std::string::npos);
  EXPECT_NE(text.find("obscorr_dropped_span_events_total 0\n"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

  // Exposition-format hygiene: every line is a comment or `name value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string metric = line.substr(0, space);
    EXPECT_EQ(metric.rfind("obscorr_", 0), 0u) << line;
    EXPECT_EQ(metric.find_first_not_of("abcdefghijklmnopqrstuvwxyz0123456789_"),
              std::string::npos)
        << line;
  }
}

TEST_F(TelemetryExportTest, ChromeTraceIsWellFormed) {
  set_level(Level::kFull);
  {
    const Span span("test.trace", [] { return std::string("de\"tail"); });
  }
  set_level(Level::kOff);
  std::ostringstream os;
  write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.trace\""), std::string::npos);
  EXPECT_NE(json.find("de\\\"tail"), std::string::npos);  // details are escaped
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST_F(TelemetryExportTest, TimingSummaryListsSpansAndNonZeroCounters) {
  set_level(Level::kFull);
  counter("test.summary").add(11);
  { const Span span("test.summary_span"); }
  set_level(Level::kOff);
  std::ostringstream os;
  write_timing_summary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("test.summary: 11"), std::string::npos);
  EXPECT_NE(text.find("test.summary_span: 1"), std::string::npos);
  // Zero-valued canonical counters stay out of the human summary.
  EXPECT_EQ(text.find("archive.bytes_read"), std::string::npos);
}

}  // namespace
}  // namespace obscorr::obs
