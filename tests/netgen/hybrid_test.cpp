/// Tests for the hybrid power-law extension (Devlin et al. 2021): an
/// adversarial source component with its own rank law layered on the
/// background population.

#include <gtest/gtest.h>

#include <cmath>

#include "netgen/population.hpp"

namespace obscorr::netgen {
namespace {

PopulationConfig hybrid_config(double share, std::size_t sources) {
  PopulationConfig c;
  c.population = 8192;
  c.log2_nv = 16;
  c.seed = 42;
  c.hybrid_share = share;
  c.hybrid_sources = sources;
  c.hybrid_alpha = 1.05;
  c.hybrid_delta = 2.0;
  return c;
}

TEST(HybridPopulationTest, DisabledByDefault) {
  PopulationConfig c;
  EXPECT_EQ(c.hybrid_share, 0.0);
  c.population = 1024;
  const Population pop(c);  // must construct fine with pure background law
  EXPECT_GT(pop.total_weight(), 0.0);
}

TEST(HybridPopulationTest, SharesAreNormalized) {
  const Population pop(hybrid_config(0.3, 256));
  double adv = 0.0, bg = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    (i < 256 ? adv : bg) += pop.source(i).weight;
  }
  EXPECT_NEAR(adv, 0.3, 1e-9);
  EXPECT_NEAR(bg, 0.7, 1e-9);
  EXPECT_NEAR(pop.total_weight(), 1.0, 1e-9);
}

TEST(HybridPopulationTest, ComponentsFollowTheirOwnRankLaws) {
  const auto cfg = hybrid_config(0.3, 256);
  const Population pop(cfg);
  // Within each component, weight ratios follow that component's law.
  const double adv_ratio = pop.source(0).weight / pop.source(10).weight;
  EXPECT_NEAR(adv_ratio, std::pow((1.0 + cfg.hybrid_delta) / (11.0 + cfg.hybrid_delta),
                                  -cfg.hybrid_alpha),
              1e-9);
  const double bg_ratio = pop.source(256).weight / pop.source(266).weight;
  EXPECT_NEAR(bg_ratio,
              std::pow((1.0 + cfg.zm_delta) / (11.0 + cfg.zm_delta), -cfg.zm_alpha), 1e-9);
}

TEST(HybridPopulationTest, AdversarialComponentDecaysFlatterInItsTail) {
  // The adversarial beam has a smaller exponent, so once ranks dwarf the
  // delta offsets its decay across a fixed rank span is flatter than the
  // background component's decay across the same span.
  const Population hybrid(hybrid_config(0.4, 512));
  const double adv_decay = hybrid.source(100).weight / hybrid.source(400).weight;
  // Background ranks 100 and 400 sit at population indices 512+100/400.
  const double bg_decay = hybrid.source(612).weight / hybrid.source(912).weight;
  EXPECT_LT(adv_decay, bg_decay);
}

TEST(HybridPopulationTest, ExpectedDegreesStillSumToWindow) {
  const Population pop(hybrid_config(0.25, 128));
  double total = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) total += pop.expected_window_degree(i);
  EXPECT_NEAR(total, std::exp2(16.0), 1e-3);
}

TEST(HybridPopulationTest, ConfigValidation) {
  EXPECT_THROW(Population(hybrid_config(1.0, 128)), std::invalid_argument);
  EXPECT_THROW(Population(hybrid_config(-0.1, 128)), std::invalid_argument);
  EXPECT_THROW(Population(hybrid_config(0.3, 0)), std::invalid_argument);
  EXPECT_THROW(Population(hybrid_config(0.3, 8192)), std::invalid_argument);
}

}  // namespace
}  // namespace obscorr::netgen
