#include "netgen/scenario.hpp"

#include <gtest/gtest.h>

namespace obscorr::netgen {
namespace {

TEST(ScenarioTest, PaperTimelineShape) {
  const Scenario s = Scenario::paper(22, 42);
  ASSERT_EQ(s.months.size(), 15u);  // 2020-02 .. 2021-04
  EXPECT_EQ(s.months.front().month, YearMonth(2020, 2));
  EXPECT_EQ(s.months.back().month, YearMonth(2021, 4));
  ASSERT_EQ(s.snapshots.size(), 5u);
  EXPECT_EQ(s.snapshots.front().month, YearMonth(2020, 6));
  EXPECT_EQ(s.snapshots.back().month, YearMonth(2020, 12));
}

TEST(ScenarioTest, MonthsAreConsecutive) {
  const Scenario s = Scenario::paper(22, 42);
  for (std::size_t i = 1; i < s.months.size(); ++i) {
    EXPECT_EQ(s.months[i].month.months_since(s.months[i - 1].month), 1);
  }
}

TEST(ScenarioTest, MonthIndexRoundTrips) {
  const Scenario s = Scenario::paper(22, 42);
  EXPECT_EQ(s.month_index(YearMonth(2020, 2)), 0);
  EXPECT_EQ(s.month_index(YearMonth(2020, 6)), 4);
  EXPECT_EQ(s.month_index(YearMonth(2021, 4)), 14);
  EXPECT_THROW(s.month_index(YearMonth(2020, 1)), std::invalid_argument);
  EXPECT_THROW(s.month_index(YearMonth(2021, 5)), std::invalid_argument);
}

TEST(ScenarioTest, ConfigChangeMonthsHaveEphemeralSurges) {
  // Table I: 2020-03 and 2021-04 jump by ~10x from configuration
  // changes; 2020-12 is also elevated.
  const Scenario s = Scenario::paper(22, 42);
  const auto factor = [&](int y, int m) {
    return s.months[static_cast<std::size_t>(s.month_index(YearMonth(y, m)))].ephemeral_factor;
  };
  EXPECT_GT(factor(2020, 3), 5.0 * factor(2020, 4));
  EXPECT_GT(factor(2021, 4), 5.0 * factor(2020, 4));
  EXPECT_GT(factor(2020, 12), 3.0 * factor(2020, 4));
}

TEST(ScenarioTest, SnapshotDurationsScaleWithWindow) {
  const Scenario big = Scenario::paper(30, 42);
  const Scenario small = Scenario::paper(22, 42);
  // At the paper's scale the published duration is recovered exactly.
  EXPECT_NEAR(big.scaled_duration_sec(big.snapshots[0]), 1594.0, 1e-9);
  // At 2^22 the same implied packet rate gives a 2^-8 shorter window.
  EXPECT_NEAR(small.scaled_duration_sec(small.snapshots[0]), 1594.0 / 256.0, 1e-9);
}

TEST(ScenarioTest, DarkspaceScalesWithWindow) {
  EXPECT_EQ(Scenario::paper(30, 42).traffic.darkspace.length(), 8);
  EXPECT_EQ(Scenario::paper(22, 42).traffic.darkspace.length(), 16);
  EXPECT_EQ(Scenario::paper(14, 42).traffic.darkspace.length(), 24);
}

TEST(ScenarioTest, PopulationScalesWithSqrtWindow) {
  EXPECT_EQ(Scenario::paper(22, 42).population.population, std::size_t{1} << 17);
  EXPECT_EQ(Scenario::paper(20, 42).population.population, std::size_t{1} << 16);
}

TEST(ScenarioTest, VisibilityThresholdTracksWindow) {
  EXPECT_EQ(Scenario::paper(24, 42).visibility.log2_nv, 24);
}

TEST(ScenarioTest, SeedIsPropagated) {
  EXPECT_EQ(Scenario::paper(22, 99).population.seed, 99u);
}

TEST(ScenarioTest, RejectsOutOfRangeWindow) {
  EXPECT_THROW(Scenario::paper(9, 42), std::invalid_argument);
  EXPECT_THROW(Scenario::paper(35, 42), std::invalid_argument);
}

TEST(ScenarioTest, SnapshotLabelsMatchTableOne) {
  const Scenario s = Scenario::paper(22, 42);
  EXPECT_EQ(s.snapshots[0].start_label, "2020-06-17-12:00:00");
  EXPECT_EQ(s.snapshots[2].start_label, "2020-09-16-12:00:00");
  EXPECT_EQ(s.snapshots[2].paper_duration_sec, 997.0);
}

}  // namespace
}  // namespace obscorr::netgen
