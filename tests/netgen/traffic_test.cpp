#include "netgen/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include <map>

namespace obscorr::netgen {
namespace {

Population make_population(std::uint64_t seed = 42) {
  PopulationConfig c;
  c.population = 2048;
  c.log2_nv = 14;
  c.seed = seed;
  return Population(c);
}

TEST(TrafficTest, EmitsExactValidCount) {
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  std::uint64_t valid = 0, legit = 0;
  const std::uint64_t emitted =
      gen.stream_window(0, 10000, 1, [&](const Packet& p) {
        if (cfg.legit_prefix.contains(p.src)) {
          ++legit;
        } else {
          ++valid;
        }
      });
  EXPECT_EQ(valid, 10000u);
  EXPECT_EQ(emitted, valid + legit);
  EXPECT_GT(legit, 0u);  // legit_fraction 0.001 over 10k packets: ~10 expected
  EXPECT_LT(legit, 100u);
}

TEST(TrafficTest, BatchedStreamEmitsIdenticalPacketSequence) {
  // The batched sink is a pure buffering layer: concatenating its spans
  // must reproduce the per-packet sequence exactly, for any batch size
  // (including ones that do not divide the emitted count).
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  std::vector<Packet> per_packet;
  const std::uint64_t emitted =
      gen.stream_window(2, 4000, 7, [&](const Packet& p) { per_packet.push_back(p); });
  for (const std::size_t batch : {1u, 13u, 1024u, 100000u}) {
    std::vector<Packet> batched;
    const std::uint64_t emitted_batched = gen.stream_window_batched(
        2, 4000, 7,
        [&](std::span<const Packet> b) { batched.insert(batched.end(), b.begin(), b.end()); },
        batch);
    EXPECT_EQ(emitted_batched, emitted) << "batch " << batch;
    ASSERT_EQ(batched.size(), per_packet.size()) << "batch " << batch;
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ASSERT_EQ(batched[i].src, per_packet[i].src) << i;
      ASSERT_EQ(batched[i].dst, per_packet[i].dst) << i;
    }
  }
}

TEST(TrafficTest, AllDestinationsInDarkspace) {
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  gen.stream_window(0, 5000, 1, [&](const Packet& p) {
    EXPECT_TRUE(cfg.darkspace.contains(p.dst)) << p.dst.to_string();
  });
}

TEST(TrafficTest, ValidSourcesBelongToActivePopulation) {
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  const auto active = pop.active_sources(2);
  std::set<std::uint32_t> active_ips;
  for (std::uint32_t i : active) active_ips.insert(pop.source(i).ip.value());
  gen.stream_window(2, 5000, 1, [&](const Packet& p) {
    if (cfg.legit_prefix.contains(p.src)) return;
    EXPECT_TRUE(active_ips.contains(p.src.value())) << p.src.to_string();
  });
}

TEST(TrafficTest, DeterministicPerSalt) {
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  std::vector<Packet> a, b, c;
  gen.stream_window(0, 1000, 7, [&](const Packet& p) { a.push_back(p); });
  gen.stream_window(0, 1000, 7, [&](const Packet& p) { b.push_back(p); });
  gen.stream_window(0, 1000, 8, [&](const Packet& p) { c.push_back(p); });
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TrafficTest, BrightSourcesDominatePacketShare) {
  // The Zipf-Mandelbrot head must carry most packets.
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  std::map<std::uint32_t, std::uint64_t> counts;
  TrafficConfig cfg;
  gen.stream_window(0, 50000, 1, [&](const Packet& p) {
    if (!cfg.legit_prefix.contains(p.src)) ++counts[p.src.value()];
  });
  std::vector<std::uint64_t> sorted;
  for (const auto& [ip, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());
  std::uint64_t top10 = 0, total = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i < 10) top10 += sorted[i];
    total += sorted[i];
  }
  EXPECT_GT(static_cast<double>(top10) / static_cast<double>(total), 0.15);
}

TEST(TrafficTest, LegitFractionValidation) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.legit_fraction = 1.0;
  EXPECT_THROW(TrafficGenerator(pop, cfg), std::invalid_argument);
  cfg.legit_fraction = -0.1;
  EXPECT_THROW(TrafficGenerator(pop, cfg), std::invalid_argument);
}

TEST(TrafficTest, ZeroLegitFractionEmitsOnlyValid) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.legit_fraction = 0.0;
  const TrafficGenerator gen(pop, cfg);
  const std::uint64_t emitted = gen.stream_window(0, 3000, 1, [](const Packet&) {});
  EXPECT_EQ(emitted, 3000u);
}

}  // namespace
}  // namespace obscorr::netgen
