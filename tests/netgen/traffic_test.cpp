#include "netgen/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include <map>

namespace obscorr::netgen {
namespace {

Population make_population(std::uint64_t seed = 42) {
  PopulationConfig c;
  c.population = 2048;
  c.log2_nv = 14;
  c.seed = seed;
  return Population(c);
}

TEST(TrafficTest, EmitsExactValidCount) {
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  std::uint64_t valid = 0, legit = 0;
  const std::uint64_t emitted =
      gen.stream_window(0, 10000, 1, [&](const Packet& p) {
        if (cfg.legit_prefix.contains(p.src)) {
          ++legit;
        } else {
          ++valid;
        }
      });
  EXPECT_EQ(valid, 10000u);
  EXPECT_EQ(emitted, valid + legit);
  EXPECT_GT(legit, 0u);  // legit_fraction 0.001 over 10k packets: ~10 expected
  EXPECT_LT(legit, 100u);
}

TEST(TrafficTest, BatchedStreamEmitsIdenticalPacketSequence) {
  // The batched sink is a pure buffering layer: concatenating its spans
  // must reproduce the per-packet sequence exactly, for any batch size
  // (including ones that do not divide the emitted count).
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  std::vector<Packet> per_packet;
  const std::uint64_t emitted =
      gen.stream_window(2, 4000, 7, [&](const Packet& p) { per_packet.push_back(p); });
  for (const std::size_t batch : {1u, 13u, 1024u, 100000u}) {
    std::vector<Packet> batched;
    const std::uint64_t emitted_batched = gen.stream_window_batched(
        2, 4000, 7,
        [&](std::span<const Packet> b) { batched.insert(batched.end(), b.begin(), b.end()); },
        batch);
    EXPECT_EQ(emitted_batched, emitted) << "batch " << batch;
    ASSERT_EQ(batched.size(), per_packet.size()) << "batch " << batch;
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ASSERT_EQ(batched[i].src, per_packet[i].src) << i;
      ASSERT_EQ(batched[i].dst, per_packet[i].dst) << i;
    }
  }
}

TEST(TrafficTest, AllDestinationsInDarkspace) {
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  gen.stream_window(0, 5000, 1, [&](const Packet& p) {
    EXPECT_TRUE(cfg.darkspace.contains(p.dst)) << p.dst.to_string();
  });
}

TEST(TrafficTest, ValidSourcesBelongToActivePopulation) {
  const Population pop = make_population();
  TrafficConfig cfg;
  const TrafficGenerator gen(pop, cfg);
  const auto active = pop.active_sources(2);
  std::set<std::uint32_t> active_ips;
  for (std::uint32_t i : active) active_ips.insert(pop.source(i).ip.value());
  gen.stream_window(2, 5000, 1, [&](const Packet& p) {
    if (cfg.legit_prefix.contains(p.src)) return;
    EXPECT_TRUE(active_ips.contains(p.src.value())) << p.src.to_string();
  });
}

TEST(TrafficTest, DeterministicPerSalt) {
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  std::vector<Packet> a, b, c;
  gen.stream_window(0, 1000, 7, [&](const Packet& p) { a.push_back(p); });
  gen.stream_window(0, 1000, 7, [&](const Packet& p) { b.push_back(p); });
  gen.stream_window(0, 1000, 8, [&](const Packet& p) { c.push_back(p); });
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TrafficTest, BrightSourcesDominatePacketShare) {
  // The Zipf-Mandelbrot head must carry most packets.
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  std::map<std::uint32_t, std::uint64_t> counts;
  TrafficConfig cfg;
  gen.stream_window(0, 50000, 1, [&](const Packet& p) {
    if (!cfg.legit_prefix.contains(p.src)) ++counts[p.src.value()];
  });
  std::vector<std::uint64_t> sorted;
  for (const auto& [ip, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());
  std::uint64_t top10 = 0, total = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i < 10) top10 += sorted[i];
    total += sorted[i];
  }
  EXPECT_GT(static_cast<double>(top10) / static_cast<double>(total), 0.15);
}

TEST(TrafficTest, LegitFractionValidation) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.legit_fraction = 1.0;
  EXPECT_THROW(TrafficGenerator(pop, cfg), std::invalid_argument);
  cfg.legit_fraction = -0.1;
  EXPECT_THROW(TrafficGenerator(pop, cfg), std::invalid_argument);
}

TEST(TrafficTest, ShardCountAndSizesTileTheWindow) {
  constexpr std::uint64_t K = TrafficGenerator::kShardValidPackets;
  EXPECT_EQ(TrafficGenerator::shard_count(0), 1u);
  EXPECT_EQ(TrafficGenerator::shard_count(1), 1u);
  EXPECT_EQ(TrafficGenerator::shard_count(K), 1u);
  EXPECT_EQ(TrafficGenerator::shard_count(K + 1), 2u);
  EXPECT_EQ(TrafficGenerator::shard_count(5 * K), 5u);
  for (const std::uint64_t valid : {std::uint64_t{1}, K - 1, K, K + 1, 3 * K + 17}) {
    std::uint64_t total = 0;
    const std::uint64_t shards = TrafficGenerator::shard_count(valid);
    for (std::uint64_t s = 0; s < shards; ++s) {
      const std::uint64_t len = TrafficGenerator::shard_valid_packets(valid, s);
      EXPECT_GT(len, 0u);
      EXPECT_LE(len, K);
      if (s + 1 < shards) {
        EXPECT_EQ(len, K);
      }
      total += len;
    }
    EXPECT_EQ(total, valid) << "valid " << valid;
  }
}

TEST(TrafficTest, ShardZeroReproducesUnshardedStream) {
  // The legacy single-stream window is, by construction, shard 0 of the
  // decomposition: a window no larger than one shard must match it
  // byte for byte (this is what keeps pre-sharding archives valid).
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  std::vector<Packet> legacy;
  gen.stream_window(1, 9000, 5, [&](const Packet& p) { legacy.push_back(p); });

  const WindowPlan plan = gen.plan_window(1);
  ShardScratch scratch;
  std::vector<Packet> sharded;
  const std::uint64_t emitted = gen.stream_shard_batched(
      plan, 9000, 5, 0, scratch,
      [&](std::span<const Packet> b) { sharded.insert(sharded.end(), b.begin(), b.end()); });
  EXPECT_EQ(emitted, legacy.size());
  ASSERT_EQ(sharded.size(), legacy.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    ASSERT_EQ(sharded[i].src, legacy[i].src) << i;
    ASSERT_EQ(sharded[i].dst, legacy[i].dst) << i;
  }
}

TEST(TrafficTest, ShardsAreDeterministicAndScratchReuseIsClean) {
  // Re-generating a shard with a fresh scratch and with a scratch dirtied
  // by other shards must give the same packets: the epoch stamp fully
  // isolates shards sharing one scratch.
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  const WindowPlan plan = gen.plan_window(0);
  const auto collect = [&](std::uint64_t shard, ShardScratch& scratch) {
    std::vector<Packet> out;
    gen.stream_shard_batched(plan, 2500, 3, shard, scratch, [&](std::span<const Packet> b) {
      out.insert(out.end(), b.begin(), b.end());
    });
    return out;
  };
  ShardScratch dirty;
  const std::vector<Packet> s2_dirty_before = collect(2, dirty);
  (void)collect(0, dirty);
  (void)collect(7, dirty);
  const std::vector<Packet> s2_dirty_after = collect(2, dirty);
  ShardScratch fresh;
  const std::vector<Packet> s2_fresh = collect(2, fresh);
  EXPECT_EQ(s2_dirty_before, s2_dirty_after);
  EXPECT_EQ(s2_dirty_before, s2_fresh);
}

TEST(TrafficTest, DistinctShardsProduceDistinctStreams) {
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  const WindowPlan plan = gen.plan_window(0);
  ShardScratch scratch;
  std::vector<Packet> s0, s1;
  gen.stream_shard_batched(plan, 2000, 1, 0, scratch, [&](std::span<const Packet> b) {
    s0.insert(s0.end(), b.begin(), b.end());
  });
  gen.stream_shard_batched(plan, 2000, 1, 1, scratch, [&](std::span<const Packet> b) {
    s1.insert(s1.end(), b.begin(), b.end());
  });
  EXPECT_NE(s0, s1);
}

TEST(TrafficTest, ShardedUnionIsScheduleInvariant) {
  // Concatenating the shards of a multi-shard window in any order must
  // give the same packet multiset — this is the property that makes
  // parallel captures exact, since the capture matrix is an order-free
  // aggregation of this multiset.
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  const WindowPlan plan = gen.plan_window(0);
  constexpr std::uint64_t valid = 3 * TrafficGenerator::kShardValidPackets / 2;  // 1.5 shards
  const std::uint64_t shards = TrafficGenerator::shard_count(valid);
  ASSERT_EQ(shards, 2u);

  const auto key = [](const Packet& p) {
    return (std::uint64_t{p.src.value()} << 32) | p.dst.value();
  };
  std::map<std::uint64_t, std::uint64_t> forward, reverse;
  ShardScratch scratch;
  std::uint64_t forward_valid = 0;
  for (std::uint64_t s = 0; s < shards; ++s) {
    forward_valid += TrafficGenerator::shard_valid_packets(valid, s);
    gen.stream_shard_batched(plan, TrafficGenerator::shard_valid_packets(valid, s), 1, s,
                             scratch, [&](std::span<const Packet> b) {
                               for (const Packet& p : b) ++forward[key(p)];
                             });
  }
  EXPECT_EQ(forward_valid, valid);
  for (std::uint64_t s = shards; s-- > 0;) {
    gen.stream_shard_batched(plan, TrafficGenerator::shard_valid_packets(valid, s), 1, s,
                             scratch, [&](std::span<const Packet> b) {
                               for (const Packet& p : b) ++reverse[key(p)];
                             });
  }
  EXPECT_EQ(forward, reverse);
}

TEST(TrafficTest, ZeroLegitFractionEmitsOnlyValid) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.legit_fraction = 0.0;
  const TrafficGenerator gen(pop, cfg);
  const std::uint64_t emitted = gen.stream_window(0, 3000, 1, [](const Packet&) {});
  EXPECT_EQ(emitted, 3000u);
}

}  // namespace
}  // namespace obscorr::netgen
