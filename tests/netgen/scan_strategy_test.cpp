/// Tests for destination scan strategies: the mixture assignment, the
/// per-strategy destination footprints, and the invariance of the
/// source-packet statistics the correlation analyses depend on.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "netgen/traffic.hpp"

namespace obscorr::netgen {
namespace {

Population make_population(std::uint64_t seed = 42) {
  PopulationConfig c;
  c.population = 2048;
  c.log2_nv = 14;
  c.seed = seed;
  return Population(c);
}

TEST(ScanStrategyTest, AssignmentIsDeterministicAndMixed) {
  const Population pop = make_population();
  const TrafficGenerator gen(pop, TrafficConfig{});
  std::map<ScanStrategy, int> counts;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const ScanStrategy s = gen.strategy_of(i);
    EXPECT_EQ(s, gen.strategy_of(i));  // stable
    ++counts[s];
  }
  // Default mixture 0.6 / 0.25 / 0.15 over 2048 sources.
  EXPECT_NEAR(counts[ScanStrategy::kUniform], 2048 * 0.60, 120);
  EXPECT_NEAR(counts[ScanStrategy::kSequential], 2048 * 0.25, 100);
  EXPECT_NEAR(counts[ScanStrategy::kSubnet], 2048 * 0.15, 80);
}

TEST(ScanStrategyTest, PureMixturesRespected) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.uniform_weight = 0.0;
  cfg.sequential_weight = 1.0;
  cfg.subnet_weight = 0.0;
  const TrafficGenerator gen(pop, cfg);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.strategy_of(i), ScanStrategy::kSequential);
  }
}

TEST(ScanStrategyTest, WeightValidation) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.uniform_weight = cfg.sequential_weight = cfg.subnet_weight = 0.0;
  EXPECT_THROW(TrafficGenerator(pop, cfg), std::invalid_argument);
  cfg.uniform_weight = -1.0;
  EXPECT_THROW(TrafficGenerator(pop, cfg), std::invalid_argument);
}

std::map<std::uint32_t, std::set<std::uint32_t>> destinations_by_source(
    const TrafficGenerator& gen, const TrafficConfig& cfg, std::uint64_t packets) {
  std::map<std::uint32_t, std::set<std::uint32_t>> dsts;
  gen.stream_window(0, packets, 1, [&](const Packet& p) {
    if (!cfg.legit_prefix.contains(p.src)) dsts[p.src.value()].insert(p.dst.value());
  });
  return dsts;
}

TEST(ScanStrategyTest, SubnetScannersStayInsideOneBlock) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.uniform_weight = 0.0;
  cfg.sequential_weight = 0.0;
  cfg.subnet_weight = 1.0;
  const TrafficGenerator gen(pop, cfg);
  const auto dsts = destinations_by_source(gen, cfg, 20000);
  for (const auto& [src, targets] : dsts) {
    ASSERT_FALSE(targets.empty());
    const std::uint32_t base = *targets.begin() & ~0xFFu;
    for (const std::uint32_t dst : targets) {
      EXPECT_EQ(dst & ~0xFFu, base) << Ipv4(src).to_string() << " escaped its /24";
    }
  }
}

TEST(ScanStrategyTest, SequentialScannersSweepContiguously) {
  const Population pop = make_population();
  TrafficConfig cfg;
  cfg.uniform_weight = 0.0;
  cfg.sequential_weight = 1.0;
  cfg.subnet_weight = 0.0;
  const TrafficGenerator gen(pop, cfg);
  // Track the raw destination sequence of the brightest *active* source
  // (rank 0 itself may be dormant in month 0).
  const auto active = pop.active_sources(0);
  ASSERT_FALSE(active.empty());
  const std::uint32_t bright = pop.source(active.front()).ip.value();
  std::vector<std::uint32_t> seq;
  gen.stream_window(0, 20000, 1, [&](const Packet& p) {
    if (p.src.value() == bright) seq.push_back(p.dst.value());
  });
  ASSERT_GT(seq.size(), 10u);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const std::uint32_t expected = seq[i - 1] + 1;  // may wrap inside darkspace
    EXPECT_TRUE(seq[i] == expected || seq[i] < seq[i - 1]) << "non-sequential sweep at " << i;
  }
}

TEST(ScanStrategyTest, SourcePacketCountsUnaffectedByStrategyMixture) {
  // Fan-out structure changes, but A·1 (the quantity all correlation
  // analyses use) must not depend on how destinations are chosen.
  const Population pop = make_population();
  TrafficConfig uniform_only;
  uniform_only.uniform_weight = 1.0;
  uniform_only.sequential_weight = 0.0;
  uniform_only.subnet_weight = 0.0;
  TrafficConfig mixed;  // defaults

  std::map<std::uint32_t, int> counts_uniform, counts_mixed;
  TrafficGenerator(pop, uniform_only)
      .stream_window(0, 10000, 1, [&](const Packet& p) { ++counts_uniform[p.src.value()]; });
  TrafficGenerator(pop, mixed).stream_window(0, 10000, 1, [&](const Packet& p) {
    ++counts_mixed[p.src.value()];
  });
  EXPECT_EQ(counts_uniform, counts_mixed);
}

TEST(ScanStrategyTest, MixtureBroadensFaninDistribution) {
  // Sequential/subnet scanners concentrate on fewer destinations than
  // uniform spray: the max destination fan-in must rise.
  const Population pop = make_population();
  TrafficConfig uniform_only;
  uniform_only.uniform_weight = 1.0;
  uniform_only.sequential_weight = 0.0;
  uniform_only.subnet_weight = 0.0;
  TrafficConfig subnet_only;
  subnet_only.uniform_weight = 0.0;
  subnet_only.sequential_weight = 0.0;
  subnet_only.subnet_weight = 1.0;

  std::map<std::uint32_t, int> fanin_uniform, fanin_subnet;
  TrafficGenerator(pop, uniform_only)
      .stream_window(0, 30000, 1, [&](const Packet& p) { ++fanin_uniform[p.dst.value()]; });
  TrafficGenerator(pop, subnet_only)
      .stream_window(0, 30000, 1, [&](const Packet& p) { ++fanin_subnet[p.dst.value()]; });
  int max_uniform = 0, max_subnet = 0;
  for (const auto& [dst, n] : fanin_uniform) max_uniform = std::max(max_uniform, n);
  for (const auto& [dst, n] : fanin_subnet) max_subnet = std::max(max_subnet, n);
  EXPECT_GT(max_subnet, 2 * max_uniform);
}

}  // namespace
}  // namespace obscorr::netgen
