#include "netgen/visibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace obscorr::netgen {
namespace {

TEST(VisibilityTest, EmpiricalLogMatchesPaperFormula) {
  // p(d) = log2(d) / log2(sqrt(N_V)) below the threshold (paper Fig. 4).
  VisibilityModel m;
  m.kind = VisibilityKind::kEmpiricalLog;
  m.log2_nv = 30;
  EXPECT_NEAR(m.probability(std::exp2(7.5)), 7.5 / 15.0, 1e-12);
  EXPECT_NEAR(m.probability(1024.0), 10.0 / 15.0, 1e-12);
}

TEST(VisibilityTest, EmpiricalLogSaturatesAtSqrtNv) {
  VisibilityModel m;
  m.log2_nv = 30;
  EXPECT_DOUBLE_EQ(m.probability(std::exp2(15.0)), 1.0);   // d = sqrt(N_V)
  EXPECT_DOUBLE_EQ(m.probability(std::exp2(20.0)), 1.0);   // brighter
}

TEST(VisibilityTest, EmpiricalLogFloorForSubUnitDegrees) {
  VisibilityModel m;
  m.log2_nv = 30;
  const double floor = m.probability(0.5);
  EXPECT_GT(floor, 0.0);
  EXPECT_LT(floor, 0.1);
  EXPECT_EQ(m.probability(0.0), floor);
}

TEST(VisibilityTest, EmpiricalLogScalesWithWindowSize) {
  // The threshold is sqrt(N_V): the same degree is more visible against
  // a smaller window.
  VisibilityModel big;
  big.log2_nv = 30;
  VisibilityModel small;
  small.log2_nv = 20;
  EXPECT_GT(small.probability(256.0), big.probability(256.0));
  EXPECT_DOUBLE_EQ(small.probability(std::exp2(10.0)), 1.0);
}

TEST(VisibilityTest, CoverageSaturatesExponentially) {
  VisibilityModel m;
  m.kind = VisibilityKind::kCoverage;
  m.coverage_half = 100.0;
  EXPECT_NEAR(m.probability(100.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m.probability(0.0), 0.0, 1e-12);
  EXPECT_GT(m.probability(1000.0), 0.9999);
}

TEST(VisibilityTest, BothModelsMonotone) {
  for (VisibilityKind kind : {VisibilityKind::kEmpiricalLog, VisibilityKind::kCoverage}) {
    VisibilityModel m;
    m.kind = kind;
    m.log2_nv = 22;
    double prev = 0.0;
    for (double d = 1.0; d < 1e7; d *= 2.0) {
      const double p = m.probability(d);
      EXPECT_GE(p, prev - 1e-12);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
  }
}

TEST(VisibilityTest, ShapesDivergeInTheMidRange) {
  // The ablation's point: the mechanistic coverage model saturates far
  // faster than the observed log law.
  VisibilityModel log_law;
  log_law.log2_nv = 30;
  VisibilityModel coverage;
  coverage.kind = VisibilityKind::kCoverage;
  coverage.coverage_half = 256.0;
  // At d = 2^11 (an eighth of the way to saturation in log space) the
  // coverage model is already ~1 while the log law is ~0.73.
  EXPECT_GT(coverage.probability(2048.0), 0.99);
  EXPECT_LT(log_law.probability(2048.0), 0.8);
}

TEST(VisibilityTest, InputValidation) {
  VisibilityModel m;
  EXPECT_THROW(m.probability(-1.0), std::invalid_argument);
  m.kind = VisibilityKind::kCoverage;
  m.coverage_half = 0.0;
  EXPECT_THROW(m.probability(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace obscorr::netgen
