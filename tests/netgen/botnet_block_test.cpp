/// Tests for the botnet-block extension: contiguous /24 address layout,
/// block-gated correlated activity, and backward compatibility when the
/// extension is disabled.

#include <gtest/gtest.h>

#include <cmath>

#include "netgen/population.hpp"

namespace obscorr::netgen {
namespace {

PopulationConfig block_config(double fraction, std::uint64_t seed = 42) {
  PopulationConfig c;
  c.population = 4096;
  c.log2_nv = 14;
  c.seed = seed;
  c.botnet_fraction = fraction;
  c.botnet_block_size = 64;
  return c;
}

TEST(BotnetBlockTest, DisabledByDefaultMatchesBaseline) {
  PopulationConfig with_field = block_config(0.0, 7);
  PopulationConfig plain;
  plain.population = 4096;
  plain.log2_nv = 14;
  plain.seed = 7;
  const Population a(with_field);
  const Population b(plain);
  EXPECT_EQ(a.block_count(), 0u);
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.source(i).ip, b.source(i).ip);
    EXPECT_EQ(a.block_of(i), -1);
  }
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(a.active_sources(m), b.active_sources(m));
  }
}

TEST(BotnetBlockTest, MembershipAndBlockCount) {
  const Population pop(block_config(0.25));
  // 25% of 4096 = 1024 members / 64 per block = 16 blocks.
  EXPECT_EQ(pop.block_count(), 16u);
  std::size_t members = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const int b = pop.block_of(i);
    if (b >= 0) {
      ++members;
      EXPECT_LT(b, 16);
    }
  }
  EXPECT_EQ(members, 1024u);
  // Members occupy the dimmest tail of the rank order.
  EXPECT_EQ(pop.block_of(0), -1);
  EXPECT_GE(pop.block_of(pop.size() - 1), 0);
}

TEST(BotnetBlockTest, MembersShareA24WithContiguousAddresses) {
  const Population pop(block_config(0.25));
  std::map<int, std::vector<std::uint32_t>> by_block;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (pop.block_of(i) >= 0) by_block[pop.block_of(i)].push_back(pop.source(i).ip.value());
  }
  for (auto& [block, ips] : by_block) {
    ASSERT_EQ(ips.size(), 64u);
    std::sort(ips.begin(), ips.end());
    for (std::size_t j = 1; j < ips.size(); ++j) {
      EXPECT_EQ(ips[j], ips[j - 1] + 1) << "block " << block;
    }
    EXPECT_EQ(ips.front() >> 8, ips.back() >> 8) << "block escaped its /24";
  }
}

TEST(BotnetBlockTest, IntraBlockActivityIsCorrelated) {
  // Members of one block must co-activate far more than two independent
  // sources: compare the fraction of months where a random member pair
  // agrees (both on / both off) within vs across blocks.
  const Population pop(block_config(0.5, 11));
  const std::size_t first_member = pop.size() / 2;  // tail half are members
  const int months = 24;

  const auto agreement = [&](std::size_t i, std::size_t j) {
    int agree = 0;
    for (int m = 0; m < months; ++m) {
      agree += pop.active(i, m) == pop.active(j, m);
    }
    return static_cast<double>(agree) / months;
  };

  double intra = 0.0, inter = 0.0;
  int pairs = 0;
  for (std::size_t k = 0; k + 70 < pop.size() - first_member; k += 130) {
    const std::size_t i = first_member + k;
    const std::size_t same_block = i + 1;  // same 64-member block
    const std::size_t other_block = i + 65;
    if (pop.block_of(i) != pop.block_of(same_block)) continue;
    if (pop.block_of(i) == pop.block_of(other_block)) continue;
    intra += agreement(i, same_block);
    inter += agreement(i, other_block);
    ++pairs;
  }
  ASSERT_GT(pairs, 5);
  EXPECT_GT(intra / pairs, inter / pairs + 0.1);
}

TEST(BotnetBlockTest, DormantBlockSilencesAllMembers) {
  const Population pop(block_config(0.5, 13));
  // Find a month where some block is fully silent: all members inactive.
  // With block persist 0.8 / rebirth 0.25, blocks are dormant ~38% of
  // months, so over 16+ blocks and 10 months one dormant case is certain.
  bool found_dormant = false;
  for (int m = 0; m < 10 && !found_dormant; ++m) {
    std::map<int, std::pair<int, int>> per_block;  // block -> (active, total)
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const int b = pop.block_of(i);
      if (b < 0) continue;
      auto& [active, total] = per_block[b];
      active += pop.active(i, m);
      ++total;
    }
    for (const auto& [b, counts] : per_block) {
      if (counts.first == 0) found_dormant = true;
    }
  }
  EXPECT_TRUE(found_dormant);
}

TEST(BotnetBlockTest, ConfigValidation) {
  PopulationConfig c = block_config(1.5);
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = block_config(0.25);
  c.botnet_block_size = 1;
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = block_config(0.25);
  c.botnet_block_size = 512;
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = block_config(0.25);
  c.botnet_block_persist = 1.0;
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = block_config(0.25);
  c.botnet_block_rebirth = 0.0;
  EXPECT_THROW(Population{c}, std::invalid_argument);
}

}  // namespace
}  // namespace obscorr::netgen
