#include "netgen/population.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace obscorr::netgen {
namespace {

PopulationConfig small_config(std::uint64_t seed = 42) {
  PopulationConfig c;
  c.population = 4096;
  c.log2_nv = 16;
  c.seed = seed;
  return c;
}

TEST(PopulationTest, ConfigValidation) {
  PopulationConfig c = small_config();
  c.population = 0;
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = small_config();
  c.zm_alpha = 0.0;
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = small_config();
  c.zm_delta = -1.0;
  EXPECT_THROW(Population{c}, std::invalid_argument);
  c = small_config();
  c.rebirth_prob = 1.0;
  EXPECT_THROW(Population{c}, std::invalid_argument);
}

TEST(PopulationTest, WeightsFollowZipfMandelbrotRankLaw) {
  const Population pop(small_config());
  const auto& cfg = pop.config();
  for (std::size_t r : {std::size_t{0}, std::size_t{1}, std::size_t{100}, std::size_t{4095}}) {
    EXPECT_DOUBLE_EQ(pop.source(r).weight,
                     std::pow(static_cast<double>(r + 1) + cfg.zm_delta, -cfg.zm_alpha));
  }
  EXPECT_GT(pop.source(0).weight, pop.source(1).weight);
}

TEST(PopulationTest, IpsAreUniqueAndOutsideReservedSpace) {
  const Population pop(small_config());
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const Ipv4 ip = pop.source(i).ip;
    EXPECT_TRUE(seen.insert(ip.value()).second) << "duplicate " << ip.to_string();
    const int top = ip.octet(0);
    EXPECT_NE(top, 0);
    EXPECT_NE(top, 10);   // legit prefix
    EXPECT_NE(top, 77);   // darkspace
    EXPECT_NE(top, 127);  // loopback
    EXPECT_LT(top, 224);  // multicast+
  }
}

TEST(PopulationTest, OwnsIpMatchesMembership) {
  const Population pop(small_config());
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{4000}}) {
    EXPECT_TRUE(pop.owns_ip(pop.source(i).ip));
  }
  EXPECT_FALSE(pop.owns_ip(Ipv4(10, 1, 2, 3)));
  EXPECT_FALSE(pop.owns_ip(Ipv4(77, 1, 2, 3)));
}

TEST(PopulationTest, DeterministicPerSeed) {
  const Population a(small_config(7));
  const Population b(small_config(7));
  const Population c(small_config(8));
  for (std::size_t i : {std::size_t{0}, std::size_t{100}, std::size_t{1000}}) {
    EXPECT_EQ(a.source(i).ip, b.source(i).ip);
    EXPECT_EQ(a.source(i).persist, b.source(i).persist);
  }
  int diff = 0;
  for (std::size_t i = 0; i < 100; ++i) diff += a.source(i).ip != c.source(i).ip;
  EXPECT_GT(diff, 90);
}

TEST(PopulationTest, PersistenceIsAProbability) {
  const Population pop(small_config());
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_GT(pop.source(i).persist, 0.0);
    EXPECT_LE(pop.source(i).persist, 1.0);
    EXPECT_EQ(pop.source(i).rebirth, pop.config().rebirth_prob);
  }
}

TEST(PopulationTest, ExpectedDegreesSumToWindowSize) {
  // Sum over sources of E[window degree] == N_V by construction.
  const Population pop(small_config());
  double total = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) total += pop.expected_window_degree(i);
  EXPECT_NEAR(total, std::exp2(16.0), 1e-3);
}

TEST(PopulationTest, ActiveDegreeExceedsFullPopulationDegree) {
  // Conditioning on activity concentrates the window on fewer sources.
  const Population pop(small_config());
  EXPECT_LT(pop.active_weight(), pop.total_weight());
  for (std::size_t i : {std::size_t{0}, std::size_t{50}, std::size_t{2000}}) {
    EXPECT_GT(pop.expected_active_degree(i), pop.expected_window_degree(i));
  }
}

TEST(PopulationTest, ActivityIsDeterministicAndOrderIndependent) {
  const Population a(small_config(3));
  const Population b(small_config(3));
  // Query b's months in reverse order; results must agree with a's.
  for (int m = 5; m >= 0; --m) {
    for (std::size_t i = 0; i < 200; ++i) {
      EXPECT_EQ(a.active(i, m), b.active(i, m)) << "i=" << i << " m=" << m;
    }
  }
}

TEST(PopulationTest, StationaryActivityLevelIsStableAcrossMonths) {
  // The chain starts in equilibrium: the active fraction should not
  // drift over the study (no cold-start transient).
  const Population pop(small_config(11));
  std::vector<double> fractions;
  for (int m = 0; m < 12; ++m) {
    fractions.push_back(static_cast<double>(pop.active_sources(m).size()) /
                        static_cast<double>(pop.size()));
  }
  for (double f : fractions) {
    EXPECT_NEAR(f, fractions.front(), 0.05);
  }
}

TEST(PopulationTest, ObservedOverlapMatchesDriftingBeamTheory) {
  // Of the sources active at month 0, the fraction active at month k
  // should follow E[pi + (1-pi) (s-b)^k] — for small rebirth roughly the
  // modified Cauchy a/(a+k) plus floor. Verify monotone decay toward a
  // positive floor rather than exponential collapse.
  PopulationConfig c = small_config(13);
  c.population = 20000;
  const Population pop(c);
  const auto base = pop.active_sources(0);
  ASSERT_GT(base.size(), 1000u);
  std::vector<double> overlap;
  for (int k = 0; k <= 10; ++k) {
    std::size_t still = 0;
    for (std::uint32_t i : base) still += pop.active(i, k);
    overlap.push_back(static_cast<double>(still) / static_cast<double>(base.size()));
  }
  EXPECT_DOUBLE_EQ(overlap[0], 1.0);
  for (std::size_t k = 1; k < overlap.size(); ++k) EXPECT_LE(overlap[k], overlap[k - 1] + 0.03);
  EXPECT_GT(overlap.back(), 0.1);  // background floor, not extinction
  EXPECT_LT(overlap.back(), 0.7);  // but a real drop happened
  // Heavier than exponential: overlap(8) must beat the exponential
  // through overlap(1) extrapolation (the heavy-tail signature).
  const double exp_extrapolation = std::pow(overlap[1], 8.0);
  EXPECT_GT(overlap[8], exp_extrapolation);
}

TEST(PersistenceShapeTest, DipsAtMidBrightness) {
  PopulationConfig c = small_config();
  c.log2_nv = 30;
  // x = log2(d)/15: bright (x=1 -> d=2^15); the dip is centred at x=0.5
  // in full-population degree (x ~ 0.66 in observed, activity-conditioned
  // degree, the paper's coordinate).
  const double bright = persistence_shape(std::exp2(15.0), c);
  const double mid = persistence_shape(std::exp2(7.5), c);
  const double dim = persistence_shape(1.0, c);
  EXPECT_GT(bright, mid);
  EXPECT_GT(dim, mid);
  EXPECT_NEAR(mid, c.persist_shape_churny, 0.35);
  EXPECT_NEAR(bright, c.persist_shape_stable, 1.2);
}

TEST(PopulationTest, NegativeMonthRejected) {
  const Population pop(small_config());
  EXPECT_THROW(pop.active(0, -1), std::invalid_argument);
  EXPECT_THROW(pop.active(pop.size(), 0), std::invalid_argument);
}

TEST(PopulationTest, CollisionHeavyBlockLayoutKeepsIpsUniqueAndContiguous) {
  // 25,000 two-member blocks draw /24 bases from a few-million-slot
  // space, so base collisions are all but guaranteed — the retry probe
  // must catch every one. This is the regression test for the clash
  // check that used to rescan `used` member by member.
  PopulationConfig c = small_config();
  c.population = 50000;
  c.botnet_fraction = 1.0;
  c.botnet_block_size = 2;
  const Population pop(c);
  ASSERT_EQ(pop.block_count(), 25000u);
  std::set<std::uint32_t> ips;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_TRUE(ips.insert(pop.source(i).ip.value()).second)
        << "duplicate ip for source " << i;
  }
  // Every block's members sit at consecutive addresses inside one /24.
  for (std::size_t i = 0; i + 1 < pop.size(); ++i) {
    const int b = pop.block_of(i);
    if (b < 0 || pop.block_of(i + 1) != b) continue;
    const std::uint32_t a = pop.source(i).ip.value();
    const std::uint32_t n = pop.source(i + 1).ip.value();
    EXPECT_EQ(n, a + 1);
    EXPECT_EQ(n >> 8, a >> 8) << "block " << b << " straddles a /24";
  }
}

}  // namespace
}  // namespace obscorr::netgen
