/// Differential tests for the AVX2 ingest path: the packet stream from
/// `stream_shard_batched` must be byte-identical under every dispatch
/// tier, on every shard, for every batch size and legit fraction. This
/// is the correctness oracle for the vectorized alias sampling — the
/// scalar path is the reference, and any divergence in RNG draw order,
/// alias resolution, or scan-state evolution shows up as a differing
/// packet.

#include "netgen/traffic.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/packet.hpp"
#include "common/simd.hpp"
#include "netgen/population.hpp"

namespace obscorr::netgen {
namespace {

PopulationConfig small_population(std::uint64_t seed = 42) {
  PopulationConfig c;
  c.population = 2048;
  c.log2_nv = 14;
  c.seed = seed;
  return c;
}

std::vector<Packet> collect_shard(const TrafficGenerator& gen, const WindowPlan& plan,
                                  std::uint64_t valid, std::uint64_t salt, std::uint64_t shard,
                                  std::size_t batch_packets, simd::Tier tier) {
  simd::set_tier(tier);
  ShardScratch scratch;
  std::vector<Packet> out;
  gen.stream_shard_batched(plan, valid, salt, shard, scratch,
                           [&](std::span<const Packet> b) { out.insert(out.end(), b.begin(), b.end()); },
                           batch_packets);
  simd::set_tier(std::nullopt);
  return out;
}

void expect_identical_streams(const TrafficConfig& traffic, std::uint64_t valid,
                              std::uint64_t shard, std::size_t batch_packets) {
  const Population population(small_population());
  const TrafficGenerator gen(population, traffic);
  const WindowPlan plan = gen.plan_window(0);
  const std::vector<Packet> scalar =
      collect_shard(gen, plan, valid, /*salt=*/3, shard, batch_packets, simd::Tier::kScalar);
  const std::vector<Packet> vectorized =
      collect_shard(gen, plan, valid, /*salt=*/3, shard, batch_packets, simd::Tier::kAvx2);
  ASSERT_EQ(scalar.size(), vectorized.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar[i].src.value(), vectorized[i].src.value()) << "packet " << i;
    ASSERT_EQ(scalar[i].dst.value(), vectorized[i].dst.value()) << "packet " << i;
  }
}

bool have_avx2() { return simd::detected_tier() >= simd::Tier::kAvx2; }

TEST(TrafficSimdTest, ShardStreamIdenticalAcrossTiers) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  expect_identical_streams(TrafficConfig{}, /*valid=*/20000, /*shard=*/0, /*batch=*/8192);
}

TEST(TrafficSimdTest, NonzeroShardIdenticalAcrossTiers) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  expect_identical_streams(TrafficConfig{}, /*valid=*/5000, /*shard=*/7, /*batch=*/8192);
}

TEST(TrafficSimdTest, BatchBoundariesDoNotLeakIntoTheStream) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  // Batch sizes around the SIMD staging width (128) and odd sizes that
  // force flushes mid-batch.
  for (const std::size_t batch : {1u, 3u, 127u, 128u, 129u, 1000u}) {
    expect_identical_streams(TrafficConfig{}, /*valid=*/3000, /*shard=*/1, batch);
  }
}

TEST(TrafficSimdTest, HeavyLegitTrafficIdenticalAcrossTiers) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  TrafficConfig traffic;
  traffic.legit_fraction = 0.4;  // interrupts nearly every SIMD batch
  expect_identical_streams(traffic, /*valid=*/10000, /*shard=*/0, /*batch=*/512);
}

TEST(TrafficSimdTest, ZeroLegitFractionIdenticalAcrossTiers) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  TrafficConfig traffic;
  traffic.legit_fraction = 0.0;  // bernoulli consumes no draw at all
  expect_identical_streams(traffic, /*valid=*/10000, /*shard=*/2, /*batch=*/8192);
}

TEST(TrafficSimdTest, SingleStrategyMixturesIdenticalAcrossTiers) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  for (int which = 0; which < 3; ++which) {
    TrafficConfig traffic;
    traffic.uniform_weight = which == 0 ? 1.0 : 0.0;
    traffic.sequential_weight = which == 1 ? 1.0 : 0.0;
    traffic.subnet_weight = which == 2 ? 1.0 : 0.0;
    expect_identical_streams(traffic, /*valid=*/5000, /*shard=*/0, /*batch=*/4096);
  }
}

TEST(TrafficSimdTest, TinyShardCountsIdenticalAcrossTiers) {
  if (!have_avx2()) GTEST_SKIP() << "host has no AVX2";
  for (const std::uint64_t valid : {0u, 1u, 2u, 127u, 128u, 129u, 255u}) {
    expect_identical_streams(TrafficConfig{}, valid, /*shard=*/0, /*batch=*/64);
  }
}

TEST(TrafficSimdTest, PlanCarriesGatherTables) {
  const Population population(small_population());
  const TrafficGenerator gen(population, TrafficConfig{});
  const WindowPlan plan = gen.plan_window(0);
  ASSERT_EQ(plan.src_ips.size(), plan.active.size());
  ASSERT_EQ(plan.strategies.size(), plan.active.size());
  for (std::size_t i = 0; i < plan.active.size(); ++i) {
    EXPECT_EQ(plan.src_ips[i], population.source(plan.active[i]).ip.value());
    EXPECT_EQ(plan.strategies[i], gen.strategy_of(plan.active[i]));
  }
}

}  // namespace
}  // namespace obscorr::netgen
