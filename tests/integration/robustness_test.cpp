/// Robustness sweep: every parser and deserializer in the library fed
/// seeded random garbage, random truncations of valid artifacts, and
/// hostile near-valid inputs. The contract under test: malformed input
/// either parses (returning a valid object) or throws
/// std::invalid_argument — never crashes, never corrupts, never loops.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/ipv4.hpp"
#include "common/prng.hpp"
#include "common/timeline.hpp"
#include "crypt/anon_table.hpp"
#include "d4m/assoc.hpp"
#include "d4m/str_assoc.hpp"
#include "gbl/matrix_io.hpp"
#include "telescope/trace.hpp"

namespace obscorr {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.uniform_u64(max_len + 1);
  std::string s(n, '\0');
  for (char& c : s) c = static_cast<char>(rng.uniform_u64(256));
  return s;
}

std::string random_printable(Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.uniform_u64(max_len + 1);
  std::string s(n, '\0');
  for (char& c : s) c = static_cast<char>(' ' + rng.uniform_u64(95));
  return s;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, Ipv4ParseNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto result = Ipv4::parse(random_printable(rng, 24));
    if (result.has_value()) {
      // Anything accepted must round-trip.
      EXPECT_EQ(Ipv4::parse(result->to_string()), result);
    }
  }
}

TEST_P(FuzzTest, YearMonthParseNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto result = YearMonth::parse(random_printable(rng, 10));
    if (result.has_value()) {
      EXPECT_EQ(YearMonth::parse(result->to_string()), result);
    }
  }
}

TEST_P(FuzzTest, AssocTsvReaderThrowsOrParses) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_printable(rng, 200));
    try {
      const d4m::AssocArray a = d4m::AssocArray::read_tsv(ss);
      EXPECT_LE(a.nnz(), 200u);
    } catch (const std::invalid_argument&) {
      // acceptable outcome
    }
  }
}

TEST_P(FuzzTest, StrAssocTsvReaderThrowsOrParses) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_printable(rng, 200));
    try {
      const d4m::StrAssoc a = d4m::StrAssoc::read_tsv(ss);
      EXPECT_LE(a.nnz(), 200u);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(FuzzTest, MatrixReaderThrowsOnGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_bytes(rng, 300));
    EXPECT_THROW(gbl::read_matrix(ss), std::invalid_argument);
  }
}

TEST_P(FuzzTest, MatrixReaderSurvivesRandomTruncationsOfValidFile) {
  Rng rng(GetParam());
  std::vector<gbl::Tuple> tuples;
  for (int i = 0; i < 200; ++i) tuples.push_back({rng.next_u32(), rng.next_u32(), 1.0});
  const gbl::DcsrMatrix m = gbl::DcsrMatrix::from_tuples(std::move(tuples));
  std::stringstream full;
  gbl::write_matrix(full, m);
  const std::string bytes = full.str();
  for (int i = 0; i < 100; ++i) {
    const std::size_t cut = rng.uniform_u64(bytes.size());  // strictly shorter
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(gbl::read_matrix(truncated), std::invalid_argument) << "cut=" << cut;
  }
}

TEST_P(FuzzTest, AnonTableReaderThrowsOnGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss(random_bytes(rng, 200));
    EXPECT_THROW(crypt::AnonymizationTable::read(ss), std::invalid_argument);
  }
}

TEST_P(FuzzTest, TraceReplayThrowsOnGarbageFiles) {
  Rng rng(GetParam());
  const std::string path = ::testing::TempDir() + "/fuzz_trace.trc";
  for (int i = 0; i < 50; ++i) {
    std::ofstream(path, std::ios::binary) << random_bytes(rng, 200);
    EXPECT_THROW(telescope::replay_trace(path, [](const Packet&) {}), std::invalid_argument);
  }
  std::remove(path.c_str());
}

TEST_P(FuzzTest, CliParserThrowsOrParses) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> args;
    const std::size_t n = rng.uniform_u64(6);
    for (std::size_t k = 0; k < n; ++k) args.push_back(random_printable(rng, 12));
    try {
      const CliArgs parsed = CliArgs::parse(args);
      EXPECT_LE(parsed.positional().size(), args.size());
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3));

TEST(RobustnessTest, MatrixHeaderFieldCorruption) {
  // Flip each byte of the header of a valid matrix file; the reader must
  // throw or produce a structurally valid matrix, never crash.
  Rng rng(9);
  std::vector<gbl::Tuple> tuples;
  for (int i = 0; i < 50; ++i) tuples.push_back({rng.next_u32(), rng.next_u32(), 1.0});
  const gbl::DcsrMatrix m = gbl::DcsrMatrix::from_tuples(std::move(tuples));
  std::stringstream full;
  gbl::write_matrix(full, m);
  std::string bytes = full.str();
  for (std::size_t pos = 0; pos < 24 && pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0xFF);
    std::stringstream ss(corrupted);
    try {
      const gbl::DcsrMatrix parsed = gbl::read_matrix(ss);
      EXPECT_LE(parsed.nnz(), m.nnz());
    } catch (const std::invalid_argument&) {
    } catch (const std::length_error&) {
      // a corrupted count can exceed vector limits before validation
    } catch (const std::bad_alloc&) {
      // or request an unserviceable allocation; both are clean failures
    }
  }
}

}  // namespace
}  // namespace obscorr
