/// Cross-scale property sweep: the invariants every analysis rests on
/// must hold at every window size, not just the sizes the other tests
/// happen to use — plus coverage for error paths and parallel-reduction
/// determinism that no other suite exercises.

#include <gtest/gtest.h>

#include <cmath>

#include "core/correlation.hpp"
#include "core/study.hpp"
#include "gbl/dcsr.hpp"

namespace obscorr {
namespace {

class ScaleSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweepTest, CoreInvariantsHoldAtEveryScale) {
  const int log2_nv = GetParam();
  ThreadPool pool(2);
  const auto study = core::run_study(netgen::Scenario::paper(log2_nv, 99), pool);

  // Constant-packet windows at any scale.
  for (const auto& snap : study.snapshots) {
    EXPECT_EQ(snap.valid_packets, 1ULL << log2_nv);
    EXPECT_EQ(snap.sources.row_keys().size(), snap.source_packets.nnz());
  }
  // Fig. 4 fractions are probabilities and grow with brightness over the
  // well-populated range.
  const auto bins = core::peak_correlation_all(study);
  double prev = 0.0;
  for (const auto& b : bins) {
    EXPECT_GE(b.fraction, 0.0);
    EXPECT_LE(b.fraction, 1.0);
    if (b.caida_sources >= 300 && b.bin >= 2) {
      EXPECT_GE(b.fraction, prev - 0.08) << "bin " << b.bin << " at 2^" << log2_nv;
      prev = b.fraction;
    }
  }
  // The brightest populated bin is essentially always seen.
  for (auto it = bins.rbegin(); it != bins.rend(); ++it) {
    if (it->caida_sources >= 10) {
      EXPECT_GT(it->fraction, 0.85) << "at 2^" << log2_nv;
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, ScaleSweepTest, ::testing::Values(12, 14, 16));

TEST(CoverageEdgeTest, SnapshotOutsideHoneyfarmCoverageIsRejected) {
  ThreadPool pool(2);
  auto scenario = netgen::Scenario::paper(12, 5);
  auto study = core::run_study(scenario, pool);
  // Truncate the honeyfarm months so a snapshot's month has no coverage.
  study.months.resize(4);  // first snapshot sits in study month 4
  EXPECT_THROW(core::peak_correlation_all(study), std::invalid_argument);
}

TEST(ParallelReduceTest, MatchesSerialAtEveryThreadCount) {
  Rng rng(7);
  std::vector<gbl::Tuple> tuples;
  for (int i = 0; i < 60000; ++i) {
    tuples.push_back({rng.next_u32() >> 8, rng.next_u32() >> 16,
                      static_cast<gbl::Value>(1 + rng.uniform_u64(9))});
  }
  const gbl::DcsrMatrix m = gbl::DcsrMatrix::from_tuples(std::move(tuples));
  const gbl::SparseVec serial = m.reduce_rows();
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(m.reduce_rows(pool), serial) << threads << " threads";
  }
}

TEST(ParallelReduceTest, EmptyMatrix) {
  ThreadPool pool(4);
  EXPECT_EQ(gbl::DcsrMatrix{}.reduce_rows(pool).nnz(), 0u);
}

}  // namespace
}  // namespace obscorr
