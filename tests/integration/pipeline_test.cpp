/// End-to-end integration tests: the full paper pipeline — generator ->
/// telescope capture -> CryptoPAN -> hierarchical GraphBLAS matrices ->
/// Table II reductions -> D4M conversion -> honeyfarm correlation ->
/// statistical fits — exercised together, with cross-module invariants
/// that no single-module test can see.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include <cmath>
#include <numeric>

#include "core/correlation.hpp"
#include "core/degree_analysis.hpp"
#include "core/study.hpp"
#include "d4m/gbl_bridge.hpp"
#include "gbl/quantities.hpp"
#include "netgen/traffic.hpp"
#include "telescope/quadrants.hpp"
#include "telescope/telescope.hpp"

namespace obscorr {
namespace {

TEST(PipelineTest, GroundTruthFlowsThroughToAnalysis) {
  // The telescope's per-source packet counts, after deanonymization, must
  // agree exactly with an unanonymized reference capture of the same
  // generated stream — anonymization must be analytically lossless.
  const auto scenario = netgen::Scenario::paper(14, 7);
  ThreadPool pool(2);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);

  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  telescope::Telescope scope(cfg, pool);

  std::map<std::uint32_t, double> reference;  // raw src -> packets
  generator.stream_window(0, scenario.nv(), 1, [&](const Packet& p) {
    if (scope.capture(p)) reference[p.src.value()] += 1.0;
  });
  const gbl::DcsrMatrix matrix = scope.finish_window();
  const gbl::SparseVec anon_sources = matrix.reduce_rows();

  ASSERT_EQ(anon_sources.nnz(), reference.size());
  const auto ids = anon_sources.indices();
  const auto counts = anon_sources.values();
  for (std::size_t i = 0; i < anon_sources.nnz(); ++i) {
    const Ipv4 original = scope.deanonymize(Ipv4(ids[i]));
    const auto it = reference.find(original.value());
    ASSERT_NE(it, reference.end()) << original.to_string();
    EXPECT_EQ(counts[i], it->second) << original.to_string();
  }
}

TEST(PipelineTest, AnonymizedMatrixIsPureExtToIntQuadrant) {
  // Fig. 1 property surviving the full pipeline: partition the anonymized
  // snapshot by the anonymized darkspace; everything is ext->int.
  ThreadPool pool(2);
  const auto scenario = netgen::Scenario::paper(14, 11);
  const netgen::Population population(scenario.population);
  const netgen::TrafficGenerator generator(population, scenario.traffic);
  telescope::TelescopeConfig cfg;
  cfg.darkspace = scenario.traffic.darkspace;
  cfg.legit_prefixes = {scenario.traffic.legit_prefix};
  telescope::Telescope scope(cfg, pool);
  generator.stream_window(0, scenario.nv(), 1, [&](const Packet& p) { scope.capture(p); });
  const gbl::DcsrMatrix matrix = scope.finish_window();

  const auto q = telescope::partition_quadrants(matrix, scope.anonymized_darkspace());
  EXPECT_EQ(q.external_to_internal.nnz(), matrix.nnz());
  EXPECT_EQ(q.internal_to_external.nnz(), 0u);
  EXPECT_EQ(q.internal_to_internal.nnz(), 0u);
  EXPECT_EQ(q.external_to_external.nnz(), 0u);
}

TEST(PipelineTest, TableTwoQuantitiesOnRealSnapshot) {
  ThreadPool pool(2);
  const auto study = core::run_telescope_only(netgen::Scenario::paper(14, 42), pool);
  const auto q = gbl::aggregate_quantities(study.snapshots[0].matrix);
  EXPECT_EQ(q.valid_packets, std::exp2(14.0));
  EXPECT_GE(q.unique_links, q.unique_sources);
  EXPECT_GE(static_cast<double>(q.unique_links), q.max_source_fanout);
  EXPECT_GE(q.max_source_packets, q.max_link_packets);
  EXPECT_LE(q.max_source_fanout, static_cast<double>(q.unique_destinations));
  EXPECT_GT(q.unique_destinations, 0u);
}

TEST(PipelineTest, D4mBridgeMatchesAssocFromStudy) {
  // The study's assoc array equals bridging the deanonymized vector.
  ThreadPool pool(2);
  const auto study = core::run_telescope_only(netgen::Scenario::paper(14, 42), pool);
  const core::SnapshotData& snap = study.snapshots[0];
  // Reconstruct via the D4M bridge over deanonymized ids and compare.
  const gbl::SparseVec restored = d4m::to_sparse_vec(snap.sources, "packets");
  EXPECT_EQ(restored.nnz(), snap.source_packets.nnz());
  EXPECT_NEAR(restored.reduce_sum(), snap.source_packets.reduce_sum(), 1e-9);
  EXPECT_EQ(restored.reduce_max(), snap.source_packets.reduce_max());
}

TEST(PipelineTest, SameMonthOverlapViaD4mAlgebraMatchesKeyIntersection) {
  // Two equivalent formulations of "sources seen by both observatories":
  // assoc-algebra intersection vs sorted key intersection.
  ThreadPool pool(2);
  const auto study = core::run_study(netgen::Scenario::paper(14, 42), pool);
  const core::SnapshotData& snap = study.snapshots[0];
  const auto& month = study.months[static_cast<std::size_t>(snap.month_index)];

  const auto keys = d4m::intersect_keys(snap.sources.row_keys(), month.sources.row_keys());

  // Algebra route: |A_caida|0 row-summed to one "seen" column, then
  // element-wise multiplied with the honeyfarm's "seen" column.
  const d4m::AssocArray caida_seen = snap.sources.logical().row_sum().logical();
  const d4m::AssocArray gn_seen = month.sources.logical().row_sum().logical();
  const d4m::AssocArray both = d4m::AssocArray::ewise_mult(caida_seen, gn_seen);
  EXPECT_EQ(both.nnz(), keys.size());
  for (const std::string& k : keys) EXPECT_EQ(both.at(k, "sum"), 1.0) << k;
}

TEST(PipelineTest, VisibilityAblationChangesFig4Shape) {
  // Swapping the visibility mechanism must visibly change the Fig. 4
  // curve (that is the point of the ablation): the coverage model
  // saturates far below sqrt(N_V).
  ThreadPool pool(2);
  auto scenario = netgen::Scenario::paper(14, 42);
  const auto log_study = core::run_study(scenario, pool);
  scenario.visibility.kind = netgen::VisibilityKind::kCoverage;
  scenario.visibility.coverage_half = 8.0;
  const auto cov_study = core::run_study(scenario, pool);

  const auto log_bins = core::peak_correlation_all(log_study);
  const auto cov_bins = core::peak_correlation_all(cov_study);
  // At bin 5 (d ~ 32..64, half-way to sqrt(N_V)=2^7): log law ~ 0.75,
  // coverage with half=8 ~ 0.98.
  ASSERT_GT(log_bins.size(), 5u);
  ASSERT_GT(cov_bins.size(), 5u);
  EXPECT_GT(cov_bins[5].fraction, log_bins[5].fraction + 0.1);
}

TEST(PipelineTest, EndToEndFigure5ShapeAtTinyScale) {
  // Even at 2^14 packets the pipeline must recover: peak at dt=0,
  // monotone-ish decay, modified-Cauchy preferred, alpha near 1.
  ThreadPool pool(2);
  const auto study = core::run_study(netgen::Scenario::paper(14, 42), pool);
  const auto curve = core::temporal_correlation(study.snapshots[0], study, /*bin=*/4, 20);
  ASSERT_TRUE(curve.has_value());
  EXPECT_LE(curve->modified_cauchy.residual, curve->gaussian.residual);
  EXPECT_GT(curve->modified_cauchy.model.alpha, 0.1);
  EXPECT_LT(curve->modified_cauchy.model.alpha, 2.5);
}

TEST(PipelineTest, TsvExportImportPreservesCorrelation) {
  // The trusted-sharing interchange: write the honeyfarm month to TSV,
  // read it back, and get identical correlation results.
  ThreadPool pool(2);
  const auto study = core::run_study(netgen::Scenario::paper(14, 42), pool);
  const auto& month = study.months[4];
  std::stringstream ss;
  month.sources.write_tsv(ss);
  const d4m::AssocArray restored = d4m::AssocArray::read_tsv(ss);
  EXPECT_EQ(restored, month.sources);

  honeyfarm::MonthlyObservation month_copy;
  month_copy.month = month.month;
  month_copy.sources = restored;
  const auto before =
      core::peak_correlation(study.snapshots[0], month, study.half_log_nv());
  const auto after =
      core::peak_correlation(study.snapshots[0], month_copy, study.half_log_nv());
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].matched, after[i].matched);
  }
}

}  // namespace
}  // namespace obscorr
