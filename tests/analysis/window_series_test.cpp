/// WindowSeries store: the pinned metric catalogue, row flattening, and
/// archive-backed loading for both domains (snapshots, live windows).

#include "analysis/window_series.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "archive/live_archive.hpp"
#include "archive/study_archive.hpp"
#include "common/thread_pool.hpp"
#include "gbl/dcsr.hpp"
#include "netgen/scenario.hpp"

namespace obscorr::analysis {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string completed_archive(const std::string& name) {
  const std::string dir = temp_dir(name);
  ThreadPool pool(2);
  archive::archive_study(netgen::Scenario::paper(/*log2_nv=*/10, /*seed=*/7), dir, pool);
  return dir;
}

/// Deterministic synthetic live window: `scale` multiplies every packet
/// count, modelling a config-change surge.
gbl::DcsrMatrix window_matrix(std::size_t w, double scale = 1.0) {
  std::vector<gbl::Tuple> tuples;
  for (std::uint32_t i = 0; i < 8; ++i) {
    tuples.push_back({static_cast<gbl::Index>(w * 100 + i), i, scale * double(i + 1)});
    tuples.push_back({static_cast<gbl::Index>(w * 100 + i), i + 8, scale * 2.0});
  }
  return gbl::DcsrMatrix::from_tuples(std::move(tuples));
}

void append_window(archive::LiveArchive& live, std::size_t w, double scale = 1.0) {
  archive::LiveWindowMeta meta;
  meta.window = w;
  meta.month_index = static_cast<std::int32_t>(w % 15);
  meta.salt = 0x11E50000ull + w;
  const gbl::DcsrMatrix m = window_matrix(w, scale);
  meta.valid_packets = static_cast<std::uint64_t>(m.reduce_sum());
  meta.discarded_packets = 3 * w;
  meta.start_sec = 3.5 * double(w);
  meta.duration_sec = 3.5;
  live.append_window(meta, m, m.reduce_rows());
}

TEST(SeriesStoreTest, CatalogueIsPinned) {
  // The catalogue is part of the ranked-output contract: a rename or
  // reorder must be a deliberate edit here and in docs/observability.md.
  const std::vector<std::string> expected = {
      "table2.valid_packets",
      "table2.unique_links",
      "table2.max_link_packets",
      "table2.unique_sources",
      "table2.max_source_packets",
      "table2.max_source_fanout",
      "table2.unique_destinations",
      "table2.max_destination_packets",
      "table2.max_destination_fanin",
      "window.discarded_packets",
      "window.duration_sec",
      "window.ingest_packets",
      "degree.source_gini",
      "degree.mean_source_packets",
  };
  EXPECT_EQ(metric_names(), expected);
  EXPECT_EQ(metric_count(), expected.size());
}

TEST(SeriesStoreTest, MetricRowFollowsCatalogueOrder) {
  WindowSample s;
  s.q.valid_packets = 100.0;
  s.q.unique_links = 7;
  s.q.unique_sources = 4;
  s.discarded_packets = 25;
  s.duration_sec = 3.5;
  s.source_gini = 0.42;
  const std::vector<double> row = metric_row(s);
  ASSERT_EQ(row.size(), metric_count());
  const SeriesStore store;
  EXPECT_DOUBLE_EQ(row[store.find("table2.valid_packets")], 100.0);
  EXPECT_DOUBLE_EQ(row[store.find("table2.unique_links")], 7.0);
  EXPECT_DOUBLE_EQ(row[store.find("window.discarded_packets")], 25.0);
  EXPECT_DOUBLE_EQ(row[store.find("window.ingest_packets")], 125.0);
  EXPECT_DOUBLE_EQ(row[store.find("window.duration_sec")], 3.5);
  EXPECT_DOUBLE_EQ(row[store.find("degree.source_gini")], 0.42);
  EXPECT_DOUBLE_EQ(row[store.find("degree.mean_source_packets")], 25.0);  // 100 / 4
  EXPECT_EQ(store.find("no.such.metric"), SeriesStore::npos);
}

TEST(SeriesStoreTest, AppendsColumnwise) {
  SeriesStore store;
  EXPECT_EQ(store.window_count(), 0u);
  for (int w = 0; w < 3; ++w) {
    WindowSample s;
    s.q.valid_packets = 10.0 * (w + 1);
    store.append(s);
  }
  EXPECT_EQ(store.window_count(), 3u);
  const std::span<const double> valid = store.series(store.find("table2.valid_packets"));
  ASSERT_EQ(valid.size(), 3u);
  EXPECT_DOUBLE_EQ(valid[0], 10.0);
  EXPECT_DOUBLE_EQ(valid[2], 30.0);
  EXPECT_THROW(store.series(metric_count()), std::invalid_argument);
}

TEST(SeriesStoreTest, SnapshotDomainLoadsEveryArchivedSnapshot) {
  const std::string dir = completed_archive("series_snapshots");
  const archive::StudyReader reader(dir);
  const SeriesStore store = store_from_reader(reader, Domain::kSnapshots);
  ASSERT_EQ(store.window_count(), reader.snapshot_count());
  const std::span<const double> valid = store.series(store.find("table2.valid_packets"));
  const std::span<const double> sources = store.series(store.find("table2.unique_sources"));
  for (std::size_t k = 0; k < store.window_count(); ++k) {
    EXPECT_GT(valid[k], 0.0) << k;
    EXPECT_GT(sources[k], 0.0) << k;
    // The aggregate must agree with the archived capture metadata.
    const core::SnapshotData snap = reader.snapshot(k, /*with_matrix=*/false);
    EXPECT_DOUBLE_EQ(valid[k], static_cast<double>(snap.valid_packets)) << k;
  }
}

TEST(SeriesStoreTest, WindowDomainTracksLiveWindows) {
  const std::string dir = completed_archive("series_windows");
  {
    archive::LiveArchive live(dir);
    for (std::size_t w = 0; w < 4; ++w) append_window(live, w, w == 3 ? 8.0 : 1.0);
  }
  archive::StudyReader reader(dir);
  ASSERT_EQ(reader.window_count(), 4u);
  const SeriesStore store = store_from_reader(reader, Domain::kWindows);
  ASSERT_EQ(store.window_count(), 4u);

  const std::span<const double> valid = store.series(store.find("table2.valid_packets"));
  const std::span<const double> discarded =
      store.series(store.find("window.discarded_packets"));
  // Scaling every packet count by 8 scales the aggregate by 8.
  EXPECT_DOUBLE_EQ(valid[3], 8.0 * valid[0]);
  EXPECT_DOUBLE_EQ(discarded[2], 6.0);

  // sample_window agrees with a by-hand aggregate of the same matrix.
  const WindowSample s = sample_window(reader, 1);
  const gbl::AggregateQuantities q = gbl::aggregate_quantities(window_matrix(1));
  EXPECT_DOUBLE_EQ(s.q.valid_packets, q.valid_packets);
  EXPECT_EQ(s.q.unique_sources, q.unique_sources);
  EXPECT_DOUBLE_EQ(s.duration_sec, 3.5);
}

}  // namespace
}  // namespace obscorr::analysis
