/// Monitor: archive replay priming, live observation with the NDJSON
/// anomaly sidecar, and the window push-event serialization.

#include "analysis/monitor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "archive/live_archive.hpp"
#include "archive/study_archive.hpp"
#include "common/thread_pool.hpp"
#include "gbl/dcsr.hpp"
#include "netgen/scenario.hpp"

namespace obscorr::analysis {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string completed_archive(const std::string& name) {
  const std::string dir = temp_dir(name);
  ThreadPool pool(2);
  archive::archive_study(netgen::Scenario::paper(/*log2_nv=*/10, /*seed=*/7), dir, pool);
  return dir;
}

gbl::DcsrMatrix window_matrix(std::size_t w, double scale) {
  std::vector<gbl::Tuple> tuples;
  for (std::uint32_t i = 0; i < 8; ++i) {
    tuples.push_back({static_cast<gbl::Index>(w * 100 + i), i, scale * double(i + 1)});
    tuples.push_back({static_cast<gbl::Index>(w * 100 + i), i + 8, scale * 2.0});
  }
  return gbl::DcsrMatrix::from_tuples(std::move(tuples));
}

void append_window(archive::LiveArchive& live, std::size_t w, double scale) {
  archive::LiveWindowMeta meta;
  meta.window = w;
  meta.month_index = static_cast<std::int32_t>(w % 15);
  meta.salt = 0x11E50000ull + w;
  const gbl::DcsrMatrix m = window_matrix(w, scale);
  meta.valid_packets = static_cast<std::uint64_t>(m.reduce_sum());
  meta.duration_sec = 3.5;
  live.append_window(meta, m, m.reduce_rows());
}

TEST(MonitorTest, PrimeReplaysArchiveAndFlagsInjectedSurge) {
  const std::string dir = completed_archive("monitor_prime");
  {
    archive::LiveArchive live(dir);
    for (std::size_t w = 0; w < 10; ++w) append_window(live, w, w == 8 ? 8.0 : 1.0);
  }
  archive::StudyReader reader(dir);
  Monitor monitor;
  const std::vector<AnomalyEvent> events = monitor.prime(reader, Domain::kWindows);
  EXPECT_EQ(monitor.store().window_count(), 10u);

  // The surge at window 8 fires; the detectors stay silent elsewhere
  // (window 9 returns to baseline, which is itself a detectable step
  // back — accept events only at 8 and 9).
  ASSERT_FALSE(events.empty());
  bool surge_flagged = false;
  for (const AnomalyEvent& e : events) {
    EXPECT_TRUE(e.window == 8 || e.window == 9) << e.window << " " << e.metric;
    if (e.window == 8 && e.metric == "table2.valid_packets") surge_flagged = true;
  }
  EXPECT_TRUE(surge_flagged);
}

TEST(MonitorTest, ObserveWindowAppendsSidecarEvents) {
  const std::string dir = temp_dir("monitor_sidecar");
  std::filesystem::create_directories(dir);
  MonitorConfig cfg;
  cfg.event_log_path = dir + "/anomalies.ndjson";
  Monitor monitor(cfg);

  WindowSample flat;
  flat.q.valid_packets = 1000.0;
  flat.q.unique_sources = 40;
  const std::vector<double> degrees(40, 4.0);
  for (std::uint64_t w = 0; w < 8; ++w) {
    EXPECT_TRUE(monitor.observe_window(w, flat, degrees).empty()) << w;
  }
  EXPECT_FALSE(std::filesystem::exists(cfg.event_log_path));  // nothing fired yet

  WindowSample surge = flat;
  surge.q.valid_packets = 9000.0;
  const std::vector<AnomalyEvent> events = monitor.observe_window(8, surge, degrees);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(monitor.store().window_count(), 9u);

  // Sidecar holds exactly the fired events, one JSON object per line.
  std::ifstream log(cfg.event_log_path);
  ASSERT_TRUE(log.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(log, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(lines[i], event_json(events[i]));
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
  }
}

TEST(MonitorTest, WindowEventJsonShape) {
  archive::LiveWindowMeta meta;
  meta.window = 5;
  meta.month_index = 2;
  meta.valid_packets = 4096;
  meta.discarded_packets = 17;
  EXPECT_EQ(window_event_json(meta),
            "{\"event\":\"window\",\"window\":5,\"month_index\":2,"
            "\"valid_packets\":4096,\"discarded_packets\":17}");
}

}  // namespace
}  // namespace obscorr::analysis
