/// Correlation engine: netdata's KS2 and Volume scoring over
/// baseline-vs-highlight window ranges, with deterministic ranking.

#include "analysis/correlate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace obscorr::analysis {
namespace {

/// Store of `n` windows where every metric is flat except
/// table2.valid_packets (steps ×`factor` from window `step_at` on) and
/// the metrics derived from it (ingest packets, mean source packets).
SeriesStore stepped_store(std::size_t n, std::size_t step_at, double factor) {
  SeriesStore store;
  for (std::size_t w = 0; w < n; ++w) {
    WindowSample s;
    s.q.valid_packets = (w >= step_at ? factor : 1.0) * 1000.0;
    s.q.unique_links = 50;
    s.q.max_link_packets = 9.0;
    s.q.unique_sources = 40;
    s.q.max_source_packets = 30.0;
    s.q.max_source_fanout = 5.0;
    s.q.unique_destinations = 20;
    s.q.max_destination_packets = 60.0;
    s.q.max_destination_fanin = 7.0;
    s.discarded_packets = 11;
    s.duration_sec = 3.5;
    s.source_gini = 0.5;
    store.append(s);
  }
  return store;
}

TEST(CorrelateTest, ParseMethodRoundTrips) {
  EXPECT_EQ(parse_method("ks2"), Method::kKs2);
  EXPECT_EQ(parse_method("volume"), Method::kVolume);
  EXPECT_STREQ(method_name(Method::kKs2), "ks2");
  EXPECT_STREQ(method_name(Method::kVolume), "volume");
  EXPECT_THROW(parse_method("pearson"), std::invalid_argument);
}

TEST(CorrelateTest, DefaultRangesFollowNetdataFraming) {
  // Highlight = trailing fifth, baseline = preceding 4× stretch.
  const WindowRange h = default_highlight(25);
  EXPECT_EQ(h.first, 20u);
  EXPECT_EQ(h.last, 24u);
  const WindowRange b = default_baseline(h);
  EXPECT_EQ(b.first, 0u);
  EXPECT_EQ(b.last, 19u);

  // Short series: at least one highlight window, baseline clamps to 0.
  const WindowRange h3 = default_highlight(3);
  EXPECT_EQ(h3.first, 2u);
  EXPECT_EQ(h3.last, 2u);
  const WindowRange b3 = default_baseline(h3);
  EXPECT_EQ(b3.first, 0u);
  EXPECT_EQ(b3.last, 1u);

  EXPECT_THROW(default_highlight(0), std::invalid_argument);
  EXPECT_THROW(default_baseline(WindowRange{0, 0}), std::invalid_argument);
}

TEST(CorrelateTest, ValidatesRanges) {
  const SeriesStore store = stepped_store(10, 8, 4.0);
  const WindowRange ok{0, 7};
  EXPECT_THROW(rank_series(store, WindowRange{5, 3}, ok, Method::kKs2),
               std::invalid_argument);
  EXPECT_THROW(rank_series(store, ok, WindowRange{8, 10}, Method::kKs2),
               std::invalid_argument);
}

TEST(CorrelateTest, StepChangeDrivesRankingByBothMethods) {
  const SeriesStore store = stepped_store(10, 8, 4.0);
  const WindowRange baseline{0, 7};
  const WindowRange highlight{8, 9};

  for (const Method m : {Method::kKs2, Method::kVolume}) {
    const std::vector<MetricScore> ranked = rank_series(store, baseline, highlight, m);
    ASSERT_EQ(ranked.size(), metric_count());
    // The stepped metric and its two derivatives occupy the top 3; every
    // flat metric scores 0.
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(ranked[i].name == "table2.valid_packets" ||
                  ranked[i].name == "window.ingest_packets" ||
                  ranked[i].name == "degree.mean_source_packets")
          << method_name(m) << " rank " << i << ": " << ranked[i].name;
      EXPECT_GT(ranked[i].score, 0.5) << ranked[i].name;
      EXPECT_DOUBLE_EQ(ranked[i].ks_statistic, 1.0) << ranked[i].name;
    }
    for (std::size_t i = 3; i < ranked.size(); ++i) {
      EXPECT_DOUBLE_EQ(ranked[i].score, 0.0) << ranked[i].name;
    }
  }

  // Volume details: a clean 4× step has |Δ|/max = 3/4. The tied top
  // group breaks by name, so locate the valid_packets entry explicitly.
  const std::vector<MetricScore> by_volume =
      rank_series(store, baseline, highlight, Method::kVolume);
  const auto vp = std::find_if(by_volume.begin(), by_volume.end(), [](const MetricScore& ms) {
    return ms.name == "table2.valid_packets";
  });
  ASSERT_NE(vp, by_volume.end());
  EXPECT_NEAR(vp->volume, 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(vp->baseline_mean, 1000.0);
  EXPECT_DOUBLE_EQ(vp->highlight_mean, 4000.0);
}

TEST(CorrelateTest, RankingIsDeterministicUnderTies) {
  // Fully-separated metrics tie on every score component except the
  // name; repeated runs must produce the identical order.
  const SeriesStore store = stepped_store(12, 9, 6.0);
  const WindowRange baseline{0, 8};
  const WindowRange highlight{9, 11};
  const std::vector<MetricScore> a = rank_series(store, baseline, highlight, Method::kKs2);
  const std::vector<MetricScore> b = rank_series(store, baseline, highlight, Method::kKs2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << i;
  }
}

TEST(CorrelateTest, FlatSeriesScoreZeroWithFullConfidenceP) {
  const SeriesStore store = stepped_store(10, 99, 1.0);  // no step at all
  const std::vector<MetricScore> ranked =
      rank_series(store, WindowRange{0, 7}, WindowRange{8, 9}, Method::kKs2);
  for (const MetricScore& ms : ranked) {
    EXPECT_DOUBLE_EQ(ms.ks_statistic, 0.0) << ms.name;
    EXPECT_NEAR(ms.ks_p, 1.0, 1e-9) << ms.name;
    EXPECT_DOUBLE_EQ(ms.volume, 0.0) << ms.name;
  }
}

}  // namespace
}  // namespace obscorr::analysis
