/// Streaming detectors: rolling z-score, EWMA, and the degree-histogram
/// shift detector, plus the structured event serialization.

#include "analysis/detectors.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/window_series.hpp"
#include "obs/telemetry.hpp"

namespace obscorr::analysis {
namespace {

/// Flat row with valid_packets (and derived metrics) at `scale`.
std::vector<double> flat_row(double scale = 1.0) {
  WindowSample s;
  s.q.valid_packets = 1000.0 * scale;
  s.q.unique_links = 50;
  s.q.max_link_packets = 9.0;
  s.q.unique_sources = 40;
  s.q.max_source_packets = 30.0;
  s.q.max_source_fanout = 5.0;
  s.q.unique_destinations = 20;
  s.q.max_destination_packets = 60.0;
  s.q.max_destination_fanin = 7.0;
  s.discarded_packets = 11;
  s.duration_sec = 3.5;
  s.source_gini = 0.5;
  return metric_row(s);
}

/// Degree sample: `n` sources of degree `d`.
std::vector<double> degrees_of(std::size_t n, double d) {
  return std::vector<double>(n, d);
}

bool has_event(const std::vector<AnomalyEvent>& events, const std::string& metric,
               const std::string& detector) {
  for (const AnomalyEvent& e : events) {
    if (e.metric == metric && e.detector == detector) return true;
  }
  return false;
}

TEST(DetectorBankTest, WarmupSuppressesEarlyAlerts) {
  DetectorConfig cfg;
  cfg.warmup = 4;
  DetectorBank bank(cfg);
  // A huge step inside the warmup period stays silent.
  EXPECT_TRUE(bank.observe(0, flat_row(), degrees_of(40, 4.0)).empty());
  EXPECT_TRUE(bank.observe(1, flat_row(100.0), degrees_of(40, 4.0)).empty());
  EXPECT_TRUE(bank.observe(2, flat_row(), degrees_of(40, 4.0)).empty());
  EXPECT_EQ(bank.observed(), 3u);
}

TEST(DetectorBankTest, StepFiresZscoreAndEwmaAtTheRightWindow) {
  DetectorBank bank;
  for (std::uint64_t w = 0; w < 8; ++w) {
    EXPECT_TRUE(bank.observe(w, flat_row(), degrees_of(40, 4.0)).empty()) << w;
  }
  // Window 8: everything packet-scaled jumps 8×.
  const std::vector<AnomalyEvent> events = bank.observe(8, flat_row(8.0), degrees_of(40, 32.0));
  EXPECT_TRUE(has_event(events, "table2.valid_packets", "zscore"));
  EXPECT_TRUE(has_event(events, "table2.valid_packets", "ewma"));
  EXPECT_TRUE(has_event(events, "window.ingest_packets", "zscore"));
  // Constant metrics stay quiet even during the surge.
  EXPECT_FALSE(has_event(events, "table2.unique_sources", "zscore"));
  EXPECT_FALSE(has_event(events, "window.duration_sec", "zscore"));
  for (const AnomalyEvent& e : events) {
    EXPECT_EQ(e.window, 8u);
    EXPECT_GT(std::abs(e.score), 0.0);
  }
}

TEST(DetectorBankTest, FlatSeriesNeverAlerts) {
  DetectorBank bank;
  for (std::uint64_t w = 0; w < 50; ++w) {
    EXPECT_TRUE(bank.observe(w, flat_row(), degrees_of(40, 4.0)).empty()) << w;
  }
}

TEST(DetectorBankTest, DegreeShiftDetectsHistogramReshape) {
  DetectorBank bank;
  // Stable bimodal-ish distribution during warmup and after.
  for (std::uint64_t w = 0; w < 8; ++w) {
    std::vector<double> degrees = degrees_of(30, 2.0);
    const std::vector<double> heavy = degrees_of(10, 64.0);
    degrees.insert(degrees.end(), heavy.begin(), heavy.end());
    EXPECT_FALSE(has_event(bank.observe(w, flat_row(), degrees), "degree.histogram",
                           "degree_shift"))
        << w;
  }
  // The strategy shift: the same packet budget concentrated on one bin.
  const std::vector<AnomalyEvent> events =
      bank.observe(8, flat_row(), degrees_of(40, 1024.0));
  EXPECT_TRUE(has_event(events, "degree.histogram", "degree_shift"));
}

TEST(DetectorBankTest, RowSizeIsValidated) {
  DetectorBank bank;
  const std::vector<double> short_row(3, 1.0);
  EXPECT_THROW(bank.observe(0, short_row, {}), std::invalid_argument);
}

TEST(DetectorBankTest, TelemetryCountsWindowsAndAnomalies) {
  obs::reset();
  obs::set_level(obs::Level::kCounters);
  DetectorBank bank;
  for (std::uint64_t w = 0; w < 8; ++w) bank.observe(w, flat_row(), degrees_of(40, 4.0));
  bank.observe(8, flat_row(10.0), degrees_of(40, 40.0));
  obs::set_level(obs::Level::kOff);
  EXPECT_EQ(obs::counter("analysis.windows_observed").value(), 9u);
  EXPECT_GT(obs::counter("analysis.anomalies").value(), 0u);
  obs::reset();
}

TEST(DetectorEventTest, EventJsonIsOneStructuredLine) {
  AnomalyEvent e;
  e.window = 12;
  e.metric = "table2.valid_packets";
  e.detector = "zscore";
  e.value = 8000.0;
  e.expected = 1000.0;
  e.score = 350.5;
  const std::string json = event_json(e);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json, "{\"event\":\"anomaly\",\"window\":12,"
                  "\"metric\":\"table2.valid_packets\",\"detector\":\"zscore\","
                  "\"value\":8000,\"expected\":1000,\"score\":350.5}");
}

}  // namespace
}  // namespace obscorr::analysis
