/// End-to-end tests of the `obscorr` CLI subcommands through the public
/// command functions, exercising generate -> capture -> quantities ->
/// degrees as a chained workflow plus lookup/scaling/usage behaviour.

#include "commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "archive/page_cache.hpp"
#include "netgen/population.hpp"
#include "netgen/scenario.hpp"

namespace obscorr::tools {
namespace {

std::string temp(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(CliToolTest, HelpAndUnknownCommand) {
  std::ostringstream out;
  EXPECT_EQ(run({"help"}, out), 0);
  EXPECT_NE(out.str().find("usage: obscorr"), std::string::npos);
  std::ostringstream err;
  EXPECT_EQ(run({"frobnicate"}, err), 2);
  EXPECT_NE(err.str().find("unknown command"), std::string::npos);
  std::ostringstream empty;
  EXPECT_EQ(run({}, empty), 2);
}

TEST(CliToolTest, MissingRequiredOptionIsUsageError) {
  std::ostringstream out;
  EXPECT_EQ(run({"generate"}, out), 2);
  EXPECT_NE(out.str().find("--out"), std::string::npos);
  std::ostringstream out2;
  EXPECT_EQ(run({"quantities"}, out2), 2);
}

TEST(CliToolTest, UnknownOptionRejected) {
  std::ostringstream out;
  EXPECT_EQ(run({"generate", "--out", temp("x.trc"), "--banana", "3"}, out), 2);
  EXPECT_NE(out.str().find("banana"), std::string::npos);
}

TEST(CliToolTest, GenerateCaptureQuantitiesDegreesChain) {
  const std::string trace = temp("cli_chain.trc");
  const std::string matrix = temp("cli_chain.gbl");

  std::ostringstream gen;
  ASSERT_EQ(run({"generate", "--out", trace, "--log2-nv", "14", "--seed", "5"}, gen), 0);
  EXPECT_NE(gen.str().find("16,384 valid"), std::string::npos);

  std::ostringstream cap;
  ASSERT_EQ(run({"capture", "--trace", trace, "--out", matrix, "--log2-nv", "14", "--seed", "5"},
                cap),
            0);
  EXPECT_NE(cap.str().find("captured 16,384 valid"), std::string::npos);

  std::ostringstream quant;
  ASSERT_EQ(run({"quantities", "--matrix", matrix}, quant), 0);
  EXPECT_NE(quant.str().find("valid packets"), std::string::npos);
  EXPECT_NE(quant.str().find("16,384"), std::string::npos);

  std::ostringstream deg;
  ASSERT_EQ(run({"degrees", "--matrix", matrix}, deg), 0);
  EXPECT_NE(deg.str().find("Zipf-Mandelbrot"), std::string::npos);
  EXPECT_NE(deg.str().find("power-law MLE"), std::string::npos);

  std::remove(trace.c_str());
  std::remove(matrix.c_str());
}

TEST(CliToolTest, CaptureRejectsMissingTrace) {
  std::ostringstream out;
  EXPECT_EQ(run({"capture", "--trace", temp("nope.trc"), "--out", temp("nope.gbl")}, out), 2);
}

TEST(CliToolTest, StudyPrintsCampaignSummary) {
  std::ostringstream out;
  ASSERT_EQ(run({"study", "--log2-nv", "14", "--seed", "5"}, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("campaign inventory"), std::string::npos);
  EXPECT_NE(text.find("2020-06-17-12:00:00"), std::string::npos);
  EXPECT_NE(text.find("same-month overlap"), std::string::npos);
  EXPECT_NE(text.find("modified Cauchy"), std::string::npos);
}

TEST(CliToolTest, ThreadsFlagIsAcceptedAndNeverChangesOutput) {
  // --threads is plumbing, not physics: the full study report must come
  // out byte-identical whatever worker count the user asks for.
  std::ostringstream serial;
  ASSERT_EQ(run({"study", "--log2-nv", "14", "--seed", "5", "--threads", "1"}, serial), 0);
  std::ostringstream pooled;
  ASSERT_EQ(run({"study", "--log2-nv", "14", "--seed", "5", "--threads", "3"}, pooled), 0);
  EXPECT_EQ(serial.str(), pooled.str());
  EXPECT_NE(serial.str().find("campaign inventory"), std::string::npos);

  std::ostringstream bad;
  EXPECT_EQ(run({"study", "--log2-nv", "14", "--threads", "zero"}, bad), 2);
}

TEST(CliToolTest, LookupFindsAPersistentSourceAndMissesAStranger) {
  // The rank-0 source is nearly always catalogued; grab its IP from the
  // deterministic population and look it up.
  const auto scenario = netgen::Scenario::paper(14, 5);
  const netgen::Population population(scenario.population);
  const std::string bright_ip = population.source(0).ip.to_string();

  std::ostringstream hit;
  ASSERT_EQ(run({"lookup", "--ip", bright_ip, "--log2-nv", "14", "--seed", "5"}, hit), 0);
  EXPECT_NE(hit.str().find("seen in"), std::string::npos);

  std::ostringstream miss;
  ASSERT_EQ(run({"lookup", "--ip", "203.0.113.7", "--log2-nv", "14", "--seed", "5"}, miss), 0);
  EXPECT_NE(miss.str().find("never observed"), std::string::npos);

  std::ostringstream bad;
  EXPECT_EQ(run({"lookup", "--ip", "not-an-ip", "--log2-nv", "14"}, bad), 2);
}

TEST(CliToolTest, ReportWritesAllArtifacts) {
  const std::string dir = ::testing::TempDir();
  std::ostringstream out;
  ASSERT_EQ(run({"report", "--out", dir, "--log2-nv", "14", "--seed", "5"}, out), 0);
  for (const char* name :
       {"table1_inventory.csv", "fig3_degree_distribution.csv", "fig4_peak_correlation.csv",
        "fig5_fig6_temporal_curves.csv", "fig7_fig8_fit_parameters.csv", "REPORT.md"}) {
    std::ifstream file(dir + "/" + name);
    EXPECT_TRUE(file.is_open()) << name;
    std::string first_line;
    std::getline(file, first_line);
    EXPECT_FALSE(first_line.empty()) << name;
    std::remove((dir + "/" + name).c_str());
  }
  std::ostringstream err;
  EXPECT_EQ(run({"report", "--out", dir + "/no/such/dir"}, err), 2);
}

TEST(CliToolTest, PrefixesAnalyzesArchivedMatrix) {
  const std::string trace = temp("cli_prefix.trc");
  const std::string matrix = temp("cli_prefix.gbl");
  std::ostringstream io;
  ASSERT_EQ(run({"generate", "--out", trace, "--log2-nv", "14", "--seed", "5"}, io), 0);
  ASSERT_EQ(run({"capture", "--trace", trace, "--out", matrix, "--log2-nv", "14", "--seed", "5"},
                io),
            0);
  std::ostringstream out;
  ASSERT_EQ(run({"prefixes", "--matrix", matrix, "--length", "12"}, out), 0);
  EXPECT_NE(out.str().find("top-10 packet share"), std::string::npos);
  EXPECT_NE(out.str().find("Gini"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(matrix.c_str());
}

TEST(CliToolTest, OutOfRangeScaleIsUsageError) {
  std::ostringstream out;
  EXPECT_EQ(run({"study", "--log2-nv", "5"}, out), 2);
  EXPECT_NE(out.str().find("error:"), std::string::npos);
  std::ostringstream out2;
  EXPECT_EQ(run({"lookup", "--ip", "1.2.3.4", "--log2-nv", "99"}, out2), 2);
}

TEST(CliToolTest, NonNumericOptionIsUsageError) {
  std::ostringstream out;
  EXPECT_EQ(run({"study", "--log2-nv", "abc"}, out), 2);
}

TEST(CliToolTest, ScalingPrintsExponent) {
  std::ostringstream out;
  ASSERT_EQ(run({"scaling", "--log2-nv", "13", "--seed", "5"}, out), 0);
  EXPECT_NE(out.str().find("fitted source exponent"), std::string::npos);
}

TEST(CliToolTest, ArchiveThenQueryFromMatchesRecompute) {
  const std::string dir = temp("cli_archive");
  std::filesystem::remove_all(dir);

  std::ostringstream arch;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, arch), 0);
  EXPECT_NE(arch.str().find("archived 5 snapshots"), std::string::npos);
  EXPECT_NE(arch.str().find("15 months"), std::string::npos);
  EXPECT_NE(arch.str().find("query it with --from"), std::string::npos);

  // Re-archiving a completed campaign is a cheap no-op.
  std::ostringstream again;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, again), 0);
  EXPECT_NE(again.str().find("archive already complete"), std::string::npos);

  // The archived query path must print exactly what recomputing prints.
  std::ostringstream fresh, from;
  ASSERT_EQ(run({"study", "--log2-nv", "12", "--seed", "5"}, fresh), 0);
  ASSERT_EQ(run({"study", "--from", dir}, from), 0);
  EXPECT_EQ(from.str(), fresh.str());

  std::ostringstream deg;
  ASSERT_EQ(run({"degrees", "--from", dir, "--snapshot", "1"}, deg), 0);
  EXPECT_NE(deg.str().find("Zipf-Mandelbrot"), std::string::npos);

  std::ostringstream pre;
  ASSERT_EQ(run({"prefixes", "--from", dir, "--length", "12"}, pre), 0);
  EXPECT_NE(pre.str().find("top-10 packet share"), std::string::npos);

  std::ostringstream look;
  ASSERT_EQ(run({"lookup", "--ip", "203.0.113.7", "--from", dir}, look), 0);
  EXPECT_NE(look.str().find("never observed"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(CliToolTest, ReportFromArchiveWritesSameArtifacts) {
  const std::string dir = temp("cli_report_archive");
  const std::string fresh_dir = temp("cli_report_fresh");
  const std::string from_dir = temp("cli_report_from");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(fresh_dir);
  std::filesystem::create_directories(from_dir);

  std::ostringstream io;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, io), 0);
  ASSERT_EQ(run({"report", "--out", fresh_dir, "--log2-nv", "12", "--seed", "5"}, io), 0);
  ASSERT_EQ(run({"report", "--out", from_dir, "--from", dir}, io), 0);

  for (const char* name :
       {"table1_inventory.csv", "fig3_degree_distribution.csv", "fig4_peak_correlation.csv",
        "fig5_fig6_temporal_curves.csv", "fig7_fig8_fit_parameters.csv", "REPORT.md"}) {
    std::ifstream a(fresh_dir + "/" + name), b(from_dir + "/" + name);
    ASSERT_TRUE(a.is_open() && b.is_open()) << name;
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sb.str(), sa.str()) << name << " differs between --from and recompute";
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(fresh_dir);
  std::filesystem::remove_all(from_dir);
}

TEST(CliToolTest, FromMissingArchiveIsCleanError) {
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"study", "--from", temp("no_such_archive")},
        std::vector<std::string>{"degrees", "--from", temp("no_such_archive")},
        std::vector<std::string>{"report", "--out", ::testing::TempDir(), "--from",
                                 temp("no_such_archive")}}) {
    std::ostringstream out;
    EXPECT_EQ(run(args, out), 2) << args.front();
    EXPECT_NE(out.str().find("error:"), std::string::npos) << args.front();
  }
}

TEST(CliToolTest, FromCorruptArchiveIsCleanError) {
  const std::string dir = temp("cli_corrupt_archive");
  std::filesystem::remove_all(dir);
  std::ostringstream io;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, io), 0);

  // Flip one byte deep inside the entry log.
  const std::string log = dir + "/entries.dat";
  std::fstream f(log, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 1000);
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  std::ostringstream out;
  EXPECT_EQ(run({"study", "--from", dir}, out), 2);
  EXPECT_NE(out.str().find("corrupted"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliToolTest, MatrixAndFromAreMutuallyExclusive) {
  std::ostringstream both;
  EXPECT_EQ(run({"degrees", "--matrix", temp("m.gbl"), "--from", temp("a")}, both), 2);
  std::ostringstream neither;
  EXPECT_EQ(run({"degrees"}, neither), 2);
  std::ostringstream prefixes_neither;
  EXPECT_EQ(run({"prefixes"}, prefixes_neither), 2);
}

TEST(CliToolTest, TimingFlagsNeverChangeStdout) {
  // The observability contract: telemetry writes to stderr and files
  // only, so stdout must be byte-identical with and without the flags.
  std::ostringstream plain_out, plain_err;
  ASSERT_EQ(run({"study", "--log2-nv", "12", "--seed", "5"}, plain_out, plain_err), 0);

  const std::string metrics = temp("cli_metrics.json");
  const std::string trace = temp("cli_trace.json");
  std::ostringstream telem_out, telem_err;
  ASSERT_EQ(run({"study", "--log2-nv", "12", "--seed", "5", "--timing", "--metrics-out",
                 metrics, "--trace-out", trace},
                telem_out, telem_err),
            0);
  EXPECT_EQ(telem_out.str(), plain_out.str());
  EXPECT_NE(telem_err.str().find("per-window capture rates"), std::string::npos);
  EXPECT_NE(telem_err.str().find("telemetry timing summary"), std::string::npos);

  std::stringstream m, t;
  std::ifstream mf(metrics), tf(trace);
  ASSERT_TRUE(mf.is_open() && tf.is_open());
  m << mf.rdbuf();
  t << tf.rdbuf();
  EXPECT_NE(m.str().find("\"schema\": \"obscorr.metrics.v1\""), std::string::npos);
  EXPECT_NE(m.str().find("netgen.packets_emitted"), std::string::npos);
  EXPECT_NE(t.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(t.str().find("study.snapshot"), std::string::npos);
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

TEST(CliToolTest, DiagnosticsGoToStderrNotStdout) {
  // generate/capture produce files; their progress summaries are
  // diagnostics and must leave stdout empty for machine consumers.
  const std::string trace = temp("cli_split.trc");
  const std::string matrix = temp("cli_split.gbl");
  std::ostringstream gen_out, gen_err;
  ASSERT_EQ(run({"generate", "--out", trace, "--log2-nv", "12", "--seed", "5"}, gen_out,
                gen_err),
            0);
  EXPECT_TRUE(gen_out.str().empty());
  EXPECT_NE(gen_err.str().find("wrote"), std::string::npos);

  std::ostringstream cap_out, cap_err;
  ASSERT_EQ(run({"capture", "--trace", trace, "--out", matrix, "--log2-nv", "12", "--seed",
                 "5"},
                cap_out, cap_err),
            0);
  EXPECT_TRUE(cap_out.str().empty());
  EXPECT_NE(cap_err.str().find("discarded"), std::string::npos);
  EXPECT_NE(cap_err.str().find("deanonymization-dictionary"), std::string::npos);

  // Errors are diagnostics too.
  std::ostringstream bad_out, bad_err;
  EXPECT_EQ(run({"generate"}, bad_out, bad_err), 2);
  EXPECT_TRUE(bad_out.str().empty());
  EXPECT_NE(bad_err.str().find("error:"), std::string::npos);

  std::remove(trace.c_str());
  std::remove(matrix.c_str());
}

TEST(CliToolTest, StudySurfacesTelescopeBookkeeping) {
  std::ostringstream out, err;
  ASSERT_EQ(run({"study", "--log2-nv", "12", "--seed", "5"}, out, err), 0);
  EXPECT_NE(err.str().find("packets discarded"), std::string::npos);
  EXPECT_NE(err.str().find("deanonymized"), std::string::npos);
  EXPECT_EQ(out.str().find("deanonymized"), std::string::npos);
}

TEST(CliToolTest, ArchiveCompactShrinksAndQueriesStayByteIdentical) {
  const std::string dir = temp("cli_compact");
  std::filesystem::remove_all(dir);
  std::ostringstream io;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, io), 0);

  std::ostringstream before;
  ASSERT_EQ(run({"study", "--from", dir}, before), 0);
  const auto raw_log = std::filesystem::file_size(dir + "/entries.dat");

  std::ostringstream compact_out, compact_err;
  ASSERT_EQ(run({"archive", "compact", "--dir", dir, "--all", "--stats"}, compact_out,
                compact_err),
            0);
  EXPECT_NE(compact_out.str().find("compression ratio:"), std::string::npos);
  EXPECT_NE(compact_out.str().find("generation: 1"), std::string::npos);
  EXPECT_NE(compact_err.str().find("compacted"), std::string::npos);

  // The generation rolled and the archive got smaller on disk.
  EXPECT_FALSE(std::filesystem::exists(dir + "/entries.dat"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/entries.1.dat"));
  EXPECT_LT(std::filesystem::file_size(dir + "/entries.1.dat"), raw_log);

  // Every query path prints the exact pre-compaction bytes: with the
  // default cache, with an explicit tiny budget, and with caching off.
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"study", "--from", dir},
        std::vector<std::string>{"study", "--from", dir, "--cache-bytes", "4096"},
        std::vector<std::string>{"study", "--from", dir, "--cache-bytes", "0"}}) {
    std::ostringstream after;
    ASSERT_EQ(run(args, after), 0);
    EXPECT_EQ(after.str(), before.str());
  }
  // Restore auto resolution for the rest of the suite.
  archive::set_cache_bytes(std::nullopt);

  std::ostringstream deg;
  ASSERT_EQ(run({"degrees", "--from", dir, "--snapshot", "1"}, deg), 0);
  EXPECT_NE(deg.str().find("Zipf-Mandelbrot"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliToolTest, ArchiveCompactUsageErrors) {
  std::ostringstream no_dir;
  EXPECT_EQ(run({"archive", "compact"}, no_dir), 2);
  EXPECT_NE(no_dir.str().find("--dir"), std::string::npos);

  std::ostringstream bad_keep;
  EXPECT_EQ(run({"archive", "compact", "--dir", temp("x"), "--keep-recent", "-1"}, bad_keep),
            2);
  EXPECT_NE(bad_keep.str().find("keep-recent"), std::string::npos);

  std::ostringstream missing;
  EXPECT_EQ(run({"archive", "compact", "--dir", temp("no_such_archive")}, missing), 2);

  std::ostringstream bad_cache;
  EXPECT_EQ(run({"study", "--log2-nv", "12", "--cache-bytes", "-5"}, bad_cache), 2);
  EXPECT_NE(bad_cache.str().find("cache-bytes"), std::string::npos);
  archive::set_cache_bytes(std::nullopt);
}

TEST(CliToolTest, FromCorruptCompactedArchiveIsCleanError) {
  const std::string dir = temp("cli_corrupt_compact");
  std::filesystem::remove_all(dir);
  std::ostringstream io;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, io), 0);
  ASSERT_EQ(run({"archive", "compact", "--dir", dir, "--all"}, io), 0);

  // Flip one byte deep inside the compressed generation-1 log: the
  // corruption guarantee holds on OBSAENT2 frames too — clean exit 2,
  // never a crash or silently wrong numbers.
  const std::string log = dir + "/entries.1.dat";
  std::fstream f(log, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 1000);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  std::ostringstream out;
  EXPECT_EQ(run({"study", "--from", dir}, out), 2);
  EXPECT_NE(out.str().find("corrupted"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliToolTest, UsageDocumentsCompactAndCacheBytes) {
  std::ostringstream help;
  ASSERT_EQ(run({"help"}, help), 0);
  EXPECT_NE(help.str().find("archive compact"), std::string::npos);
  EXPECT_NE(help.str().find("--cache-bytes"), std::string::npos);
  EXPECT_NE(help.str().find("OBSCORR_CACHE_BYTES"), std::string::npos);
}

TEST(CliToolTest, CorrelateUsageErrors) {
  std::ostringstream no_from;
  EXPECT_EQ(run({"correlate"}, no_from), 2);
  EXPECT_NE(no_from.str().find("--from"), std::string::npos);

  std::ostringstream bad_method;
  EXPECT_EQ(run({"correlate", "--from", temp("x"), "--method", "pearson"}, bad_method), 2);
  EXPECT_NE(bad_method.str().find("method"), std::string::npos);

  std::ostringstream bad_domain;
  EXPECT_EQ(run({"correlate", "--from", temp("x"), "--domain", "galaxies"}, bad_domain), 2);

  std::ostringstream bad_top;
  EXPECT_EQ(run({"correlate", "--from", temp("x"), "--top", "-3"}, bad_top), 2);
  EXPECT_NE(bad_top.str().find("top"), std::string::npos);

  std::ostringstream missing;
  EXPECT_EQ(run({"correlate", "--from", temp("no_such_archive")}, missing), 2);
  EXPECT_NE(missing.str().find("error:"), std::string::npos);
}

TEST(CliToolTest, CorrelateRanksArchiveDeterministically) {
  const std::string dir = temp("cli_correlate");
  std::filesystem::remove_all(dir);
  std::ostringstream io;
  ASSERT_EQ(run({"archive", "--out", dir, "--log2-nv", "12", "--seed", "5"}, io), 0);

  // Ranked output carries the netdata-style table, and --threads is
  // plumbing only: both worker counts print byte-identical results.
  std::ostringstream serial, pooled;
  ASSERT_EQ(run({"correlate", "--from", dir, "--top", "0", "--threads", "1"}, serial), 0);
  ASSERT_EQ(run({"correlate", "--from", dir, "--top", "0", "--threads", "4"}, pooled), 0);
  EXPECT_EQ(serial.str(), pooled.str());
  EXPECT_NE(serial.str().find("metric correlations (ks2)"), std::string::npos);
  EXPECT_NE(serial.str().find("table2.valid_packets"), std::string::npos);
  EXPECT_NE(serial.str().find("5 snapshots"), std::string::npos);

  // Both methods work over explicit ranges, and --events replays the
  // streaming detectors over the archived history.
  std::ostringstream volume;
  ASSERT_EQ(run({"correlate", "--from", dir, "--method", "volume", "--baseline", "0:2",
                 "--highlight", "3:4", "--events"},
                volume),
            0);
  EXPECT_NE(volume.str().find("metric correlations (volume)"), std::string::npos);
  EXPECT_NE(volume.str().find("anomaly events ("), std::string::npos);

  // The --json artifact is machine-parseable and self-describing.
  const std::string json_path = temp("cli_correlate.json");
  std::ostringstream json_out, json_err;
  ASSERT_EQ(run({"correlate", "--from", dir, "--json", json_path}, json_out, json_err), 0);
  EXPECT_NE(json_err.str().find("wrote ranked correlations"), std::string::npos);
  std::ifstream jf(json_path);
  ASSERT_TRUE(jf.is_open());
  std::stringstream js;
  js << jf.rdbuf();
  EXPECT_NE(js.str().find("\"method\":\"ks2\""), std::string::npos);
  EXPECT_NE(js.str().find("\"ranked\":["), std::string::npos);
  EXPECT_NE(js.str().find("\"baseline\":"), std::string::npos);

  std::remove(json_path.c_str());
  std::filesystem::remove_all(dir);
}

TEST(CliToolTest, MetricsFormatPromWritesOpenMetricsText) {
  const std::string metrics = temp("cli_metrics.prom");
  std::ostringstream out, err;
  ASSERT_EQ(run({"study", "--log2-nv", "12", "--seed", "5", "--metrics-out", metrics,
                 "--metrics-format", "prom"},
                out, err),
            0);
  EXPECT_NE(err.str().find("(prom)"), std::string::npos);

  std::ifstream mf(metrics);
  ASSERT_TRUE(mf.is_open());
  std::stringstream m;
  m << mf.rdbuf();
  const std::string text = m.str();
  EXPECT_NE(text.find("# TYPE obscorr_"), std::string::npos);
  EXPECT_NE(text.find("obscorr_netgen_packets_emitted_total "), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  std::remove(metrics.c_str());

  std::ostringstream bad;
  EXPECT_EQ(run({"study", "--log2-nv", "12", "--metrics-out", metrics, "--metrics-format",
                 "xml"},
                bad),
            2);
  EXPECT_NE(bad.str().find("metrics-format"), std::string::npos);
}

TEST(CliToolTest, UsageDocumentsCorrelateAndServeAnomalyFlags) {
  std::ostringstream help;
  ASSERT_EQ(run({"help"}, help), 0);
  EXPECT_NE(help.str().find("correlate"), std::string::npos);
  EXPECT_NE(help.str().find("--surge-start"), std::string::npos);
  EXPECT_NE(help.str().find("--metrics-format"), std::string::npos);
  EXPECT_NE(help.str().find("watch"), std::string::npos);
}

TEST(CliToolTest, ArchiveRequiresOutAndUsageMentionsIt) {
  std::ostringstream out;
  EXPECT_EQ(run({"archive"}, out), 2);
  EXPECT_NE(out.str().find("--out"), std::string::npos);
  std::ostringstream help;
  ASSERT_EQ(run({"help"}, help), 0);
  EXPECT_NE(help.str().find("archive"), std::string::npos);
  EXPECT_NE(help.str().find("--from"), std::string::npos);
}

}  // namespace
}  // namespace obscorr::tools
